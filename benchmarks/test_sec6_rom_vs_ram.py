"""Section 6: crosspoint ROM vs RAM and vs the prior-art WORM."""

import pytest
from conftest import emit

from repro.eval.report import render_table
from repro.memory import CrosspointRom, SramArray, WormMemory
from repro.units import to_mm2


def build_comparison():
    rom = CrosspointRom(words=16, bits_per_word=9)
    worm = WormMemory(16, 9)
    ram_bit = SramArray(words=1, bits_per_word=1)
    rom_bit = CrosspointRom(words=1, bits_per_word=1)
    return rom, worm, ram_bit, rom_bit


def test_sec6_rom_architecture(benchmark):
    rom, worm, ram_bit, rom_bit = benchmark(build_comparison)
    emit(render_table(
        "Section 6: 16x9 instruction memory comparison",
        ("Design", "Transistors", "Area mm2"),
        [
            ("Crosspoint ROM (ours)", rom.transistors, to_mm2(rom.area)),
            ("+ pull-up resistors", rom.pullup_resistors, ""),
            ("WORM (Myny et al.)", worm.transistors, to_mm2(worm.area)),
        ],
    ))
    # Published example: 220 transistors + 52 pull-ups in 20.42 mm^2,
    # under half the WORM's 62.1 mm^2 / 815 transistors.
    assert rom.transistors == pytest.approx(220, abs=5)
    assert to_mm2(rom.area) == pytest.approx(20.42, rel=0.02)
    assert worm.transistors == 815
    assert to_mm2(worm.area) == pytest.approx(62.1, rel=0.01)
    assert rom.area < worm.area / 2


def test_sec6_rom_beats_ram(benchmark):
    def ratios():
        from repro.memory.devices import EGFET_MEMORY_DEVICES

        ram = EGFET_MEMORY_DEVICES["ram_bit"]
        rom = EGFET_MEMORY_DEVICES["rom_bit"]
        return (
            ram.active_power / rom.active_power,
            ram.area / rom.area,
            ram.delay / rom.delay,
        )

    power_ratio, area_ratio, delay_ratio = benchmark(ratios)
    emit(render_table(
        "Section 6: crosspoint ROM advantage over RAM-based memory",
        ("Metric", "ROM advantage", "Paper"),
        [
            ("power", round(power_ratio, 2), 5.77),
            ("area", round(area_ratio, 2), 16.8),
            ("delay", round(delay_ratio, 2), 2.42),
        ],
    ))
    assert power_ratio == pytest.approx(5.77, rel=0.01)
    assert area_ratio == pytest.approx(16.8, rel=0.01)
    assert delay_ratio == pytest.approx(2.42, rel=0.01)
