"""Section 4's feasibility argument: which Table 3 applications can a
battery-powered printed microprocessor serve?"""

from conftest import emit

from repro.apps.feasibility import assess
from repro.apps.requirements import APPLICATIONS
from repro.dse.sweep import evaluate_design
from repro.coregen.config import CoreConfig
from repro.eval.report import render_table
from repro.power.battery import battery_by_name


def run_matrix():
    battery = battery_by_name("Molex")
    rows = []
    egfet = evaluate_design(CoreConfig(datawidth=8), "EGFET")
    cnt = evaluate_design(CoreConfig(datawidth=8), "CNT-TFT")
    for app in APPLICATIONS:
        egfet_verdict = assess(
            app, ips=egfet.fmax, datawidth=8,
            active_power=egfet.power_at_fmax, battery=battery,
        )
        cnt_verdict = assess(
            app, ips=cnt.fmax, datawidth=8,
            active_power=cnt.power_at_fmax, battery=battery,
        )
        rows.append((
            app.name,
            app.sample_rate_hz,
            app.precision_bits,
            "yes" if egfet_verdict.feasible else "no",
            f"{egfet_verdict.lifetime_hours:.1f}",
            "yes" if cnt_verdict.feasible else "no",
        ))
    return rows


def test_sec4_feasibility(benchmark):
    rows = benchmark(run_matrix)
    emit(render_table(
        "Section 4: application feasibility of an 8-bit TP-ISA core",
        ("Application", "Rate Hz", "Bits", "EGFET ok",
         "EGFET lifetime h", "CNT ok"),
        rows,
    ))
    egfet_feasible = [row for row in rows if row[3] == "yes"]
    # Paper: "several printing applications can be feasibly targeted"
    # by EGFET cores (the low-rate ones)...
    assert len(egfet_feasible) >= 5
    names = {row[0] for row in egfet_feasible}
    assert "Smart Bandage" in names
    assert "Light Level Sensor" in names
    # ...while fast sensing outruns a few-Hz EGFET clock...
    infeasible = {row[0] for row in rows if row[3] == "no"}
    assert "Blood Pressure Sensor" in infeasible
    # ...and CNT-TFT meets every application's performance requirement.
    assert all(row[5] == "yes" for row in rows)
