"""Ablation: the netlist builder's synthesis-style optimizations.

The builder's common-subexpression elimination and constant folding
stand in for a synthesis tool's logic optimization (DESIGN.md).  This
ablation quantifies what they are worth -- and shows the BAR[0]=0
constant-folding effect the paper relies on (barless program-specific
cores shed their whole address-resolution adders)."""

from conftest import emit

from repro.coregen.config import CoreConfig
from repro.coregen.generator import generate_core
from repro.eval.report import render_table
from repro.netlist.stats import area_report
from repro.pdk import egfet_library


def run_ablation():
    library = egfet_library()
    rows = []
    for width in (8, 32):
        config = CoreConfig(datawidth=width)
        with_cse = area_report(generate_core(config, cse=True), library)
        without = area_report(generate_core(config, cse=False), library)
        rows.append((
            f"p1_{width}_2",
            without.gate_count,
            with_cse.gate_count,
            f"{1 - with_cse.gate_count / without.gate_count:.1%}",
            f"{1 - with_cse.total / without.total:.1%}",
        ))
    # Constant folding: a barless core vs the same core with BARs.
    barless = area_report(
        generate_core(CoreConfig(num_bars=1, bar_bits=0)), library
    )
    with_bars = area_report(generate_core(CoreConfig(num_bars=2)), library)
    rows.append((
        "BAR folding (8b)",
        with_bars.gate_count,
        barless.gate_count,
        f"{1 - barless.gate_count / with_bars.gate_count:.1%}",
        f"{1 - barless.total / with_bars.total:.1%}",
    ))
    return rows


def test_synthesis_optimizations(benchmark):
    rows = benchmark(run_ablation)
    emit(render_table(
        "Ablation: builder optimizations (gate count / area saved)",
        ("Design", "Unoptimized gates", "Optimized gates",
         "Gates saved", "Area saved"),
        rows,
    ))
    # CSE removes a meaningful share of cells on every core.
    for row in rows[:2]:
        saved = float(row[3].rstrip("%"))
        assert saved > 5.0
    # Removing the BARs (constant folding of BAR[0]=0 plus the pruned
    # mux/adders) shrinks the core further -- the PS-ISA mechanism.
    assert float(rows[2][3].rstrip("%")) > 10.0
