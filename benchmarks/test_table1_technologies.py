"""Table 1: printed/flexible electronics technology comparison."""

from conftest import emit

from repro.eval.report import render_table
from repro.eval.tables import table1_technologies


def test_table1(benchmark):
    headers, rows = benchmark(table1_technologies)
    emit(render_table("Table 1: printed technology comparison", headers, rows))
    # The low-voltage technologies the paper builds on stand out:
    # EGFET pairs sub-1V operation with the highest mobility.
    by_name = {row[0]: row for row in rows}
    assert by_name["EGFET"][2] == "<1"
    assert by_name["EGFET"][3] == max(row[3] for row in rows)
    assert by_name["Carbon Nanotube"][2] == "1-2"
    # Organic TFTs need tens of volts -- unusable on printed batteries.
    otft_voltages = [row for row in rows if row[0].startswith("OTFT")]
    assert len(otft_voltages) >= 4
