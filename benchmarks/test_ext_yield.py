"""Extension study: process variation and functional yield.

Quantifies two printed-electronics realities behind the paper's
minimal-hardware philosophy: the fmax spread across printed units, and
how fast functional yield collapses with device count (EGFET devices
measure 90-99% yield, Section 3.1)."""

from conftest import emit

from repro.coregen.config import CoreConfig
from repro.coregen.generator import generate_core
from repro.eval.report import render_table
from repro.netlist.stats import area_report
from repro.pdk import egfet_library
from repro.pdk.variation import (
    cost_per_working_unit,
    functional_yield,
    monte_carlo_timing,
    required_device_yield,
)


def run_study():
    library = egfet_library()
    rows = []
    for width in (4, 8, 16, 32):
        netlist = generate_core(CoreConfig(datawidth=width))
        area = area_report(netlist, library)
        devices = area.transistors + area.resistors
        timing = monte_carlo_timing(netlist, library, sigma=0.2, trials=24)
        rows.append((
            f"p1_{width}_2",
            devices,
            round(timing.yield_fmax(0.95) / timing.nominal_fmax, 3),
            f"{functional_yield(devices, 0.9995):.3f}",
            f"{required_device_yield(devices, 0.9) * 100:.4f}%",
        ))
    return rows


def test_yield_extension(benchmark):
    rows = benchmark(run_study)
    emit(render_table(
        "Extension: variation-aware fmax and functional yield (EGFET)",
        ("Core", "Devices", "95%-yield fmax / nominal",
         "Design yield @ 99.95%/device", "Device yield needed for 90%"),
        rows,
    ))
    # Variation costs clock: the yield-aware fmax is below nominal.
    assert all(row[2] < 1.0 for row in rows)
    # Yield collapses with size: wider cores always yield worse.
    yields = [float(row[3]) for row in rows]
    assert yields == sorted(yields, reverse=True)
    # Even the 4-bit core needs >99.9% device yield for 90% units --
    # far above the paper's measured 90-99% range: printed
    # microprocessors must be tiny, and ROM-heavy (passive crosspoints
    # have no transistor to fail).
    assert float(rows[0][4].rstrip("%")) > 99.9

    # Yield amplifies the TP-ISA area advantage over baselines.
    library = egfet_library()
    tp = area_report(generate_core(CoreConfig(datawidth=8)), library)
    tp_devices = tp.transistors + tp.resistors
    tp_cost = cost_per_working_unit(
        tp.total, functional_yield(tp_devices, 0.9995)
    )
    from repro.baselines.specs import BASELINE_SPECS

    legacy = BASELINE_SPECS["light8080"].egfet
    legacy_devices = int(legacy.gate_count * tp_devices / tp.gate_count)
    legacy_cost = cost_per_working_unit(
        legacy.area, functional_yield(legacy_devices, 0.9995)
    )
    emit(f"cost-per-working-unit advantage: raw area {legacy.area / tp.total:.1f}x "
         f"-> yielded {legacy_cost / tp_cost:.1f}x\n")
    assert legacy_cost / tp_cost > legacy.area / tp.total
