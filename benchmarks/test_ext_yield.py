"""Extension study: fleet-scale variation and functional yield.

Quantifies two printed-electronics realities behind the paper's
minimal-hardware philosophy -- the fmax spread across printed units
and how fast yield collapses with device count (EGFET devices measure
90-99% yield, Section 3.1) -- by actually printing a virtual fleet:
10,000 Monte-Carlo units per sweep width through
:func:`repro.mc.engine.run_yield_campaign`, with defective units
lane-packed through the real netlist rather than read off the
analytic ``y^n`` curve."""

from conftest import emit

from repro.coregen.config import CoreConfig
from repro.eval.report import render_table
from repro.mc.engine import YieldSpec, run_yield_campaign
from repro.pdk.variation import required_device_yield

INSTANCES = 10_000
DEVICE_YIELD = 0.99995


def run_study():
    reports = []
    for width in (4, 8, 16, 32):
        spec = YieldSpec(
            config=CoreConfig(datawidth=width),
            device_yield=DEVICE_YIELD,
            sigma=0.2,
            seed=0xBEEF,
        )
        reports.append(run_yield_campaign(spec, INSTANCES))
    return reports


def test_yield_extension(benchmark):
    reports = benchmark(run_study)
    rows = [
        (
            r.design,
            r.devices,
            round(r.fmax_quantiles[0.05] / r.nominal_fmax, 3),
            f"{r.functional_yield:.3f}",
            f"{r.analytic_yield:.3f}",
            f"{required_device_yield(r.devices, 0.9) * 100:.4f}%",
        )
        for r in reports
    ]
    emit(render_table(
        "Extension: fleet Monte-Carlo fmax and functional yield (EGFET)",
        ("Core", "Devices", "95%-yield fmax / nominal",
         f"Measured yield @ {DEVICE_YIELD}/device", "Analytic y^n",
         "Device yield needed for 90%"),
        rows,
    ))
    # Variation costs clock: the fleet's 5th-percentile fmax is below
    # nominal, and (sigma = 0.2 lognormal over deep paths) by a
    # bounded, repeatable margin on 10k units.
    for r in reports:
        ratio = r.fmax_quantiles[0.05] / r.nominal_fmax
        assert 0.5 < ratio < 1.0
    # Yield collapses with size: wider cores always yield worse, on
    # the measured fleet as on the analytic curve.
    measured = [r.functional_yield for r in reports]
    assert measured == sorted(measured, reverse=True)
    analytic = [r.analytic_yield for r in reports]
    assert analytic == sorted(analytic, reverse=True)
    # Application-level yield can only sit ABOVE the analytic
    # defect-free probability: every defect-free unit works, and the
    # lane-packed simulation additionally ships defective units whose
    # faults the program never exposes.  The 95% Wilson interval on
    # 10k units must contain the measured point and exclude 0/1.
    for r in reports:
        assert r.functional_yield >= r.analytic_yield - 1e-12
        assert r.defective >= r.working_defective + r.wedged
        lo, hi = r.yield_ci
        assert 0.0 < lo <= r.functional_yield <= hi < 1.0
        assert hi - lo < 0.03  # 10k units pin the CI tight
    # Even the 4-bit core needs >99.9% device yield for 90% units --
    # far above the paper's measured 90-99% range: printed
    # microprocessors must be tiny, and ROM-heavy (passive crosspoints
    # have no transistor to fail).
    assert float(rows[0][5].rstrip("%")) > 99.9

    # Yield amplifies the TP-ISA area advantage over baselines: the
    # measured cost per working unit grows faster than raw area.
    tp = reports[1]  # p1_8_2
    from repro.baselines.specs import BASELINE_SPECS
    from repro.coregen.generator import generate_core
    from repro.netlist.stats import area_report
    from repro.pdk import egfet_library
    from repro.pdk.variation import functional_yield

    legacy = BASELINE_SPECS["light8080"].egfet
    # Baselines report gates, not devices: scale by the TP core's
    # devices-per-gate ratio.
    tp_gates = area_report(
        generate_core(CoreConfig(datawidth=8)), egfet_library()
    ).gate_count
    legacy_devices = int(legacy.gate_count * tp.devices / tp_gates)
    legacy_cost = legacy.area / functional_yield(legacy_devices, DEVICE_YIELD)
    emit(
        f"cost-per-working-unit advantage: raw area "
        f"{legacy.area / tp.area:.1f}x -> yielded "
        f"{legacy_cost / tp.cost_per_working_unit:.1f}x\n"
    )
    assert legacy_cost / tp.cost_per_working_unit > legacy.area / tp.area
