"""Section 7 / abstract: program-specific ISA core power and area gains
("up to 4.18x power and 1.93x area")."""

from conftest import emit

from repro.coregen.config import CoreConfig, program_specific_config
from repro.dse.sweep import evaluate_design
from repro.eval.report import render_table
from repro.isa.analysis import analyze_program
from repro.programs import BENCHMARKS, build_benchmark


def core_level_gains(technology="EGFET"):
    """Standard vs program-specific *core* power/area per benchmark."""
    gains = []
    for name in BENCHMARKS:
        program = build_benchmark(name, 8, 8)
        base_config = CoreConfig(datawidth=8)
        ps_config = program_specific_config(base_config, analyze_program(program))
        base = evaluate_design(base_config, technology)
        specific = evaluate_design(ps_config, technology)
        gains.append((
            name,
            base.power_at_fmax / specific.power_at_fmax,
            base.area / specific.area,
            specific.fmax / base.fmax,
        ))
    return gains


def test_sec7_core_gains(benchmark):
    gains = benchmark(core_level_gains)
    emit(render_table(
        "Section 7: program-specific core gains (8-bit benchmarks, EGFET)",
        ("Benchmark", "Power gain", "Area gain", "Fmax ratio"),
        [(n, round(p, 2), round(a, 2), round(f, 2)) for n, p, a, f in gains],
    ))
    power_gains = [p for _, p, _, _ in gains]
    area_gains = [a for _, _, a, _ in gains]
    fmax_ratios = [f for _, _, _, f in gains]

    # Every benchmark benefits on both axes...
    assert min(power_gains) > 1.0
    assert min(area_gains) > 1.0
    # ...with peak gains in the paper's "up to 4.18x / 1.93x" regime.
    assert 1.5 < max(power_gains) < 6.0
    assert 1.3 < max(area_gains) < 3.0
    # fmax varies only mildly ("minor variation in fmax").
    assert all(0.7 < f < 2.5 for f in fmax_ratios)


def test_sec7_cnt_benefits_more(benchmark):
    """Section 8: CNT cores gain more from PS-ISA than EGFET ones,
    because CNT registers are costlier relative to logic."""
    def both():
        egfet = core_level_gains("EGFET")
        cnt = core_level_gains("CNT-TFT")
        return egfet, cnt

    egfet, cnt = benchmark(both)
    egfet_mean_area = sum(a for _, _, a, _ in egfet) / len(egfet)
    cnt_mean_area = sum(a for _, _, a, _ in cnt) / len(cnt)
    emit(f"mean PS area gain: EGFET {egfet_mean_area:.2f}x, CNT {cnt_mean_area:.2f}x\n")
    assert cnt_mean_area > egfet_mean_area
