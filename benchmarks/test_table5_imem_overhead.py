"""Table 5: RAM-based instruction-memory overhead per benchmark."""

from conftest import emit

from repro.baselines.kernels import run_baseline
from repro.eval.report import render_table
from repro.eval.tables import TABLE5_BENCHMARKS, table5_imem_overhead
from repro.units import cm2


def test_table5(benchmark):
    headers, rows = benchmark(table5_imem_overhead)
    emit(render_table(
        "Table 5: instruction memory overhead (EGFET RAM)", headers, rows
    ))
    assert len(rows) == 4

    # Shape claims from the published table:
    # 1) dTree is by far the largest program on every core;
    sizes = {
        core: {b: run_baseline(core, b).size_bytes for b in TABLE5_BENCHMARKS}
        for core in ("light8080", "Z80", "ZPU_small", "openMSP430")
    }
    for core, per_benchmark in sizes.items():
        assert per_benchmark["dTree"] == max(per_benchmark.values()), core
    # 2) instruction memory areas are in the multi-cm^2 range even for
    #    small kernels -- RAM storage is prohibitively expensive;
    area_index = headers.index("mult A cm2")
    for row in rows:
        assert row[area_index] > 0.5  # cm^2 rendered values
    # 3) the loop kernels are tens of bytes on the accumulator machines
    #    (hand assembly; the paper's sdcc output ran larger).
    assert sizes["Z80"]["mult"] < 64
    assert sizes["light8080"]["inSort16"] < 128
