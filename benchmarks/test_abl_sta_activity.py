"""Ablations of two modeling choices DESIGN.md calls out.

1. **Polarity-aware vs pessimistic STA** -- transistor-resistor logic
   is so rise/fall asymmetric that propagating worst-edge delays
   everywhere understates fmax badly; polarity-aware propagation is
   what reproduces the paper's Figure 7 anchors.
2. **Flat 0.88 activity vs measured toggles** -- the paper uses a flat
   simulated activity factor; gate-level toggle counting on a real
   kernel shows the flat factor is a conservative (upper-bound)
   choice.
"""

from conftest import emit

from repro.baselines.specs import BASELINE_SPECS
from repro.coregen.config import CoreConfig
from repro.coregen.cosim import CoSimHarness
from repro.coregen.generator import generate_core
from repro.eval.report import render_table
from repro.netlist.power import measured_power_report, power_report
from repro.netlist.sta import timing_report
from repro.pdk import egfet_library
from repro.programs import build_benchmark
from repro.sim.machine import Machine


def sta_ablation():
    library = egfet_library()
    rows = []
    for width in (4, 8, 32):
        netlist = generate_core(CoreConfig(datawidth=width))
        aware = timing_report(netlist, library).fmax
        pessimistic = timing_report(netlist, library, pessimistic=True).fmax
        rows.append((f"p1_{width}_2", round(aware, 2), round(pessimistic, 2),
                     round(aware / pessimistic, 2)))
    return rows


def test_abl_sta_model(benchmark):
    rows = benchmark(sta_ablation)
    emit(render_table(
        "Ablation: polarity-aware vs pessimistic STA (EGFET fmax, Hz)",
        ("Core", "Polarity-aware", "Pessimistic", "Ratio"),
        rows,
    ))
    # Polarity-aware is consistently faster, by a meaningful factor.
    assert all(row[3] > 1.1 for row in rows)
    # And it is required to reproduce the paper's anchor: the fastest
    # core must beat light8080 by >38%, which the pessimistic model
    # misses.
    light8080 = BASELINE_SPECS["light8080"].egfet.fmax
    aware_4 = rows[0][1]
    pessimistic_4 = rows[0][2]
    assert aware_4 > 1.38 * light8080
    assert pessimistic_4 < 1.38 * light8080


def activity_ablation():
    library = egfet_library()
    program = build_benchmark("mult", 8, 8)
    machine = Machine(program)
    machine.run()

    harness = CoSimHarness(program)
    for _ in range(machine.stats.instructions):
        harness.step()
    measured = measured_power_report(
        harness.netlist, library, harness.sim.toggle_counts(), harness.sim.cycles
    )
    flat = power_report(harness.netlist, library)
    return flat, measured


def test_abl_activity_factor(benchmark):
    flat, measured = benchmark(activity_ablation)
    emit(render_table(
        "Ablation: flat 0.88 activity vs gate-level measured toggles (mult8)",
        ("Model", "Activity", "Energy/cycle nJ"),
        [
            ("flat (paper)", flat.activity, flat.energy_per_cycle * 1e9),
            ("measured", round(measured.activity, 3), measured.energy_per_cycle * 1e9),
        ],
    ))
    # The flat factor is a conservative upper bound on real toggling.
    assert 0.0 < measured.activity < flat.activity
    assert measured.energy_per_cycle < flat.energy_per_cycle
    # But within an order of magnitude -- the paper's numbers are not
    # wildly pessimistic.
    assert measured.energy_per_cycle > flat.energy_per_cycle / 12
