"""Figure 5: lifetime vs duty cycle for CNT-TFT legacy cores."""

from conftest import emit

from repro.eval.figures import fig4_lifetime, fig5_lifetime
from repro.eval.report import render_table


def test_fig5(benchmark):
    series = benchmark(fig5_lifetime)
    rows = [
        (s.core, s.battery, f"{s.points[0][1]:.3f}", f"{s.points[-1][1]:.1f}")
        for s in series
    ]
    emit(render_table(
        "Figure 5: CNT-TFT lifetime hours (duty 1.0 -> duty 0.001)",
        ("Core", "Battery", "Hours @ duty 1.0", "Hours @ duty 0.001"),
        rows,
    ))
    assert len(series) == 16

    # CNT cores burn watts: at full duty, every pairing dies within
    # tens of minutes -- far faster than EGFET (Figure 4).
    egfet = {(s.core, s.battery): s for s in fig4_lifetime()}
    for s in series:
        assert s.points[0][1] < 0.5
        assert s.points[0][1] < egfet[(s.core, s.battery)].points[0][1]
