"""Figure 7: fmax/area/power of the 24 TP-ISA core configurations."""

from conftest import emit

from repro.baselines.specs import BASELINE_SPECS
from repro.dse.pareto import pareto_front
from repro.eval.figures import fig7_design_space
from repro.eval.report import render_table
from repro.units import to_cm2, to_mW


def test_fig7_egfet(benchmark):
    points = benchmark(fig7_design_space, "EGFET")
    rows = [
        (
            p.name,
            f"{p.fmax:.2f}",
            to_cm2(p.area),
            to_cm2(p.combinational_area),
            to_cm2(p.sequential_area),
            to_mW(p.power_at_fmax),
            p.gate_count,
            p.dff_count,
        )
        for p in points
    ]
    emit(render_table(
        "Figure 7: TP-ISA design space (EGFET)",
        ("Core", "Fmax Hz", "Area cm2", "Comb cm2", "Reg cm2",
         "Power mW", "Gates", "DFFs"),
        rows,
    ))
    assert len(points) == 24

    light8080 = BASELINE_SPECS["light8080"].egfet

    # Headline: the fastest TP core beats the fastest baseline by >38%.
    fastest = max(points, key=lambda p: p.fmax)
    assert fastest.fmax > 1.38 * light8080.fmax
    # Even the slowest TP core beats the Z80 and openMSP430.
    slowest = min(points, key=lambda p: p.fmax)
    assert slowest.fmax > BASELINE_SPECS["Z80"].egfet.fmax
    # The largest TP core is smaller than the smallest baseline.
    assert max(p.area for p in points) < light8080.area
    # The 8-bit single-cycle core burns under 7 mW (vs 41.7 mW).
    best8 = min(
        (p for p in points if p.config.datawidth == 8 and p.config.pipeline_stages == 1),
        key=lambda p: p.power_at_fmax,
    )
    assert best8.power_at_fmax < 7e-3
    assert best8.power_at_fmax < 0.2 * light8080.power
    # Single-stage cores own the Pareto front at every datawidth.
    for width in (4, 8, 16, 32):
        group = [p for p in points if p.config.datawidth == width]
        front = pareto_front(group, lambda p: (p.area, p.power_at_fmax, 1 / p.fmax))
        assert all(p.config.pipeline_stages == 1 for p in front)


def test_fig7_cnt(benchmark):
    """The CNT-TFT half of Figure 7: same shape, kHz clocks, sub-cm^2
    areas, watt-class power at nominal frequency."""
    points = benchmark(fig7_design_space, "CNT-TFT")
    emit(render_table(
        "Figure 7: TP-ISA design space (CNT-TFT)",
        ("Core", "Fmax Hz", "Area cm2", "Power mW"),
        [(p.name, f"{p.fmax:.0f}", to_cm2(p.area), to_mW(p.power_at_fmax))
         for p in points],
    ))
    assert len(points) == 24
    # kHz-class clocks (Table 4's baselines run 15-57 kHz there).
    assert all(p.fmax > 1000 for p in points)
    # Every core beats the CNT baselines in area by a wide margin.
    smallest_baseline = min(
        s.cnt.area for s in BASELINE_SPECS.values()
    )
    assert max(p.area for p in points) < smallest_baseline
    # Single-stage still owns the frontier.
    for width in (4, 8, 16, 32):
        group = [p for p in points if p.config.datawidth == width]
        front = pareto_front(group, lambda p: (p.area, p.power_at_fmax, 1 / p.fmax))
        assert all(p.config.pipeline_stages == 1 for p in front)
