"""Shared helpers for the table/figure regeneration benchmarks.

Every module under ``benchmarks/`` regenerates one table or figure of
the paper: the ``benchmark`` fixture times the regeneration, the
rendered rows are emitted through :func:`emit` (visible with ``-s`` or
in the captured output), and shape assertions encode the paper's
qualitative claims.
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print regenerated table/figure text (kept visible in -s runs)."""
    sys.stdout.write("\n" + text + "\n")
