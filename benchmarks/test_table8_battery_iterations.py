"""Table 8: maximum benchmark iterations on a 1 V, 30 mAh battery."""

from conftest import emit

from repro.eval.report import render_table
from repro.eval.tables import table8_battery_iterations


def test_table8(benchmark):
    headers, rows = benchmark(table8_battery_iterations)
    emit(render_table(
        "Table 8: iterations on a 30 mAh battery (STD vs PS cores)",
        headers, rows,
    ))
    by_name = {row[0]: row for row in rows}

    for name, row in by_name.items():
        for std_col, ps_col in ((1, 2), (3, 4), (5, 6)):
            std, ps = row[std_col], row[ps_col]
            if std == "" or ps == "":
                continue
            # Program-specific cores always extend battery life...
            assert ps > std, (name, std_col)
            # ...within the paper's 1.16x-2.59x gain band (widened).
            assert 1.0 < ps / std < 3.5, (name, ps / std)
        # Wider data versions always cost iterations.
        numeric = [row[i] for i in (1, 3, 5) if row[i] != ""]
        assert numeric == sorted(numeric, reverse=True), name

    # Ordering claims visible in the published table.
    assert by_name["dTree"][1] == max(row[1] for row in rows if row[1] != "")
    assert by_name["inSort"][1] == min(row[1] for row in rows if row[1] != "")
    assert by_name["crc8"][3] == ""  # crc8 exists at 8 bits only
