"""Figure 6: the TP-ISA instruction formats and encodings."""

from conftest import emit

from repro.eval.figures import fig6_isa_listing
from repro.eval.report import render_table
from repro.isa.encoding import INSTRUCTION_BITS, decode, encode
from repro.isa.spec import Instruction, MemOperand, Mnemonic, OP_TABLE


def test_fig6(benchmark):
    rows = benchmark(fig6_isa_listing)
    emit(render_table(
        "Figure 6: TP-ISA instructions (control bits W C A B)",
        ("Mnemonic", "Format", "WCAB"),
        rows,
    ))
    assert len(rows) == 19  # the full Figure 6 roster

    # Encoding facts from the figure.
    assert INSTRUCTION_BITS == 24
    add_family = [Mnemonic.ADD, Mnemonic.ADC, Mnemonic.SUB, Mnemonic.CMP, Mnemonic.SBB]
    assert len({OP_TABLE[m].opcode for m in add_family}) == 1
    assert all(OP_TABLE[m].b == 1 for m in (Mnemonic.BR, Mnemonic.BRN))

    # Full round-trip over every M-type instruction at both BAR
    # configurations.
    for mnemonic, spec in OP_TABLE.items():
        if spec.fmt != "M":
            continue
        for bars in (2, 4):
            instruction = Instruction(
                mnemonic, dst=MemOperand(5, bar=1), src=MemOperand(3, bar=0)
            )
            assert decode(encode(instruction, bars), bars) == instruction
