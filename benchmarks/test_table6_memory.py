"""Table 6: EGFET memory device characteristics."""

import pytest
from conftest import emit

from repro.eval.report import render_table
from repro.eval.tables import table6_memory_devices
from repro.memory.devices import EGFET_MEMORY_DEVICES


def test_table6(benchmark):
    headers, rows = benchmark(table6_memory_devices)
    emit(render_table("Table 6: EGFET memory devices", headers, rows))
    assert len(rows) == 6

    ram = EGFET_MEMORY_DEVICES["ram_bit"]
    rom = EGFET_MEMORY_DEVICES["rom_bit"]
    # Headline ratios (Section 6 / abstract): 5.77x / 16.8x / 2.42x.
    assert ram.active_power / rom.active_power == pytest.approx(5.77, rel=0.01)
    assert ram.area / rom.area == pytest.approx(16.8, rel=0.01)
    assert ram.delay / rom.delay == pytest.approx(2.42, rel=0.01)
    # MLC cells are denser per bit but slower to read.
    mlc2 = EGFET_MEMORY_DEVICES["rom_mlc2"]
    assert mlc2.area / 2 < rom.area
    assert mlc2.delay > rom.delay
