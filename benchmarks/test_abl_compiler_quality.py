"""Ablation: TPC compiler output vs hand-written TP-ISA kernels.

The paper's program-specific processors presume someone writes the
program; this ablation prices the convenience of writing it in a
high-level language instead of assembly -- static size, dynamic
instruction count, and full-system energy, on the same algorithms with
the same inputs."""

from conftest import emit

from repro.eval.report import render_table
from repro.eval.system import evaluate_system
from repro.lang import compile_tpc
from repro.programs import build_benchmark, intavg, thold
from repro.sim import Machine


def tpc_thold():
    values, threshold = thold.default_inputs(8)
    initializers = ", ".join(str(v) for v in values)
    return compile_tpc(f"""
        var arr[16] = {{{initializers}}}
        var threshold = {threshold}
        var count = 0
        var i = 0
        while i < 16 {{
            if arr[i] >= threshold {{ count = count + 1 }}
            i = i + 1
        }}
    """, name="tHold_tpc")


def tpc_intavg():
    values = intavg.default_inputs(8)
    initializers = ", ".join(str(v) for v in values)
    return compile_tpc(f"""
        var arr[16] = {{{initializers}}}
        var avg = 0
        var i = 0
        while i < 16 {{
            avg = avg + arr[i]
            i = i + 1
        }}
        avg = avg >> 4
    """, name="intAvg_tpc")


def run_comparison():
    rows = []
    for name, tpc_build in (("tHold", tpc_thold), ("intAvg", tpc_intavg)):
        hand = build_benchmark(name, 8, 8)
        compiled = tpc_build()

        hand_machine = Machine(hand)
        hand_machine.run()
        tpc_machine = Machine(compiled)
        tpc_machine.run()

        hand_metrics = evaluate_system(hand, program_specific=True)
        tpc_metrics = evaluate_system(compiled, program_specific=True)
        rows.append((
            name,
            hand.static_size,
            compiled.static_size,
            hand_machine.stats.instructions,
            tpc_machine.stats.instructions,
            round(tpc_metrics.total_energy / hand_metrics.total_energy, 2),
        ))
        # Same answer, of course.
        if name == "tHold":
            assert tpc_machine.peek("count") == hand_machine.peek("count")
        else:
            assert tpc_machine.peek("avg") == hand_machine.peek("avg")
    return rows


def test_compiler_quality(benchmark):
    rows = benchmark(run_comparison)
    emit(render_table(
        "Ablation: hand-written TP-ISA vs TPC-compiled (8-bit, PS systems)",
        ("Kernel", "Hand size", "TPC size", "Hand dyn. instr",
         "TPC dyn. instr", "TPC/hand energy"),
        rows,
    ))
    by_name = {row[0]: row for row in rows}
    # Like-for-like (both loops): the compiler's copy/temp discipline
    # costs a small constant factor -- high-level firmware is
    # affordable on printed hardware.
    thold_row = by_name["tHold"]
    assert thold_row[1] <= thold_row[2] < 4 * thold_row[1]
    assert thold_row[5] < 5.0
    # Structure mismatch: the hand kernel *unrolls* intAvg into
    # straight-line adds (Table 7's zero-flag kernel) while TPC loops;
    # the large gap is the measured value of unrolling, not compiler
    # overhead -- and the reason program-specific codegen matters.
    intavg_row = by_name["intAvg"]
    assert intavg_row[5] > 5.0
