"""Extension study (paper Section 8 future work): an instruction cache
for ROM-latency-bound CNT-TFT cores."""

from conftest import emit

from repro.eval.extensions import evaluate_with_icache
from repro.eval.report import render_table
from repro.programs import build_benchmark

KERNELS = ("mult", "div", "tHold", "crc8", "inSort", "dTree")


def run_study():
    rows = []
    for name in KERNELS:
        program = build_benchmark(name, 8, 8)
        cnt = evaluate_with_icache(program, cache_words=32, technology="CNT-TFT")
        egfet = evaluate_with_icache(program, cache_words=32, technology="EGFET")
        rows.append((
            name,
            f"{cnt.hit_rate:.1%}",
            round(cnt.speedup, 2),
            f"{cnt.area_overhead:.1%}",
            round(egfet.speedup, 2),
        ))
    return rows


def test_cnt_icache_extension(benchmark):
    rows = benchmark(run_study)
    emit(render_table(
        "Extension: 32-word loop cache in front of the instruction ROM",
        ("Benchmark", "Hit rate", "CNT speedup", "CNT area overhead",
         "EGFET speedup"),
        rows,
    ))
    by_name = {row[0]: row for row in rows}
    # Loop kernels speed up on CNT (the paper's hypothesis)...
    for name in ("mult", "div", "tHold", "crc8", "inSort"):
        assert by_name[name][2] > 1.05, name
    # ...the straight-line decision tree does not...
    assert by_name["dTree"][2] < 1.0
    # ...and EGFET never benefits (core-cycle bound + latch cost).
    assert all(row[4] < 1.0 for row in rows)
