"""Extension study: benchmarks as functional print tests.

Sub-cent printed systems cannot afford scan-chain test infrastructure;
the economical post-print test is "run the application, check the
output".  This campaign measures how much of the core each benchmark
actually exercises -- the fault coverage of application-as-test."""

from conftest import emit

from repro.coregen.fault_test import run_fault_campaign
from repro.eval.report import render_table
from repro.programs import build_benchmark

KERNELS = ("mult", "div", "tHold")


def run_campaigns():
    rows = []
    for name in KERNELS:
        program = build_benchmark(name, 8, 8)
        campaign = run_fault_campaign(program, stride=24, max_faults=40)
        rows.append((
            name,
            campaign.total,
            campaign.detected,
            f"{campaign.coverage:.0%}",
        ))
    return rows


def test_fault_coverage_extension(benchmark):
    # One round only: each campaign replays hundreds of gate-level
    # kernel runs.
    rows = benchmark.pedantic(run_campaigns, rounds=1, iterations=1)
    emit(render_table(
        "Extension: stuck-at fault coverage of application-as-test "
        "(sampled sites, 8-bit core)",
        ("Benchmark", "Faults injected", "Detected", "Coverage"),
        rows,
    ))
    coverages = [int(row[3].rstrip("%")) for row in rows]
    # Every kernel flushes out a substantial share of faults...
    assert all(coverage >= 30 for coverage in coverages)
    # ...but none reaches full coverage: a single application leaves
    # parts of the core untested, so print-test programs should be
    # chosen (or combined) deliberately.
    assert all(coverage < 100 for coverage in coverages)
