"""Table 4: characterization of the four pre-existing cores."""

from conftest import emit

from repro.baselines.model import structural_report
from repro.baselines.specs import BASELINE_SPECS
from repro.eval.report import render_table
from repro.eval.tables import table4_baseline_cores
from repro.pdk import cnt_tft_library, egfet_library


def test_table4(benchmark):
    headers, rows = benchmark(table4_baseline_cores)
    emit(render_table("Table 4: pre-existing CPU characterization", headers, rows))
    assert len(rows) == 4

    # Structural cross-check: area derived from gate count + cell
    # library lands within ~40% of the published synthesis area for
    # every core in both technologies.
    for spec in BASELINE_SPECS.values():
        for library in (egfet_library(), cnt_tft_library()):
            report = structural_report(spec, library)
            assert 0.6 < report.area_ratio < 1.6, (spec.name, library.name)

    # The paper's framing facts.
    light8080 = BASELINE_SPECS["light8080"]
    assert light8080.egfet.gate_count == min(
        s.egfet.gate_count for s in BASELINE_SPECS.values()
    )
    assert BASELINE_SPECS["openMSP430"].egfet.fmax == min(
        s.egfet.fmax for s in BASELINE_SPECS.values()
    )
