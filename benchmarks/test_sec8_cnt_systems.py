"""Section 8's CNT-TFT observations (benchmark-level results the paper
describes but does not plot)."""

from conftest import emit

from repro.eval.report import render_table
from repro.eval.system import evaluate_system
from repro.dse.sweep import evaluate_design
from repro.coregen.config import CoreConfig
from repro.power.battery import PRINTED_BATTERIES
from repro.programs import build_benchmark
from repro.units import to_mW


def run_cnt_study():
    rows = []
    for name in ("mult", "div", "tHold", "crc8"):
        program = build_benchmark(name, 8, 8)
        egfet = evaluate_system(program, technology="EGFET")
        cnt = evaluate_system(program, technology="CNT-TFT")
        rows.append((
            name,
            f"{egfet.total_time:.2f}",
            f"{cnt.total_time * 1e3:.1f}",
            round(egfet.total_time / cnt.total_time, 1),
            f"{cnt.imem_time / cnt.total_time:.0%}",
            round(egfet.total_energy / cnt.total_energy, 2),
        ))
    return rows


def test_sec8_cnt_benchmarks(benchmark):
    rows = benchmark(run_cnt_study)
    emit(render_table(
        "Section 8: CNT-TFT benchmark-level results",
        ("Benchmark", "EGFET time s", "CNT time ms", "Speedup",
         "CNT time in IM", "Energy ratio"),
        rows,
    ))
    for row in rows:
        # Orders-of-magnitude better performance...
        assert row[3] > 20
        # ...but dominated by the 302 us ROM access latency.
        assert int(row[4].rstrip("%")) > 50


def test_sec8_cnt_power_exceeds_batteries(benchmark):
    """Section 8: 'CNT-TFT power consumption at nominal frequency
    exceeds the output of currently available printed batteries'."""
    def nominal_powers():
        return [
            evaluate_design(CoreConfig(datawidth=w), "CNT-TFT").power_at_fmax
            for w in (8, 16, 32)
        ]

    powers = benchmark(nominal_powers)
    emit(render_table(
        "CNT cores at nominal frequency vs printed battery limits",
        ("Core width", "Power mW", "Largest battery limit mW"),
        [
            (w, to_mW(p), to_mW(max(b.max_power for b in PRINTED_BATTERIES)))
            for w, p in zip((8, 16, 32), powers)
        ],
    ))
    limit = max(battery.max_power for battery in PRINTED_BATTERIES)
    assert all(power > limit for power in powers)
