"""Table 7: program-specific ISA variants per benchmark."""

from conftest import emit

from repro.eval.report import render_table
from repro.eval.tables import table7_program_specific


def test_table7(benchmark):
    headers, rows = benchmark(table7_program_specific)
    emit(render_table("Table 7: program-specific TP-ISA variants", headers, rows))
    by_name = {row[0]: row for row in rows}

    # dTree uses all 256 instruction words -> full 8-bit PC and the
    # full 24-bit instruction (paper: exactly this row).
    assert by_name["dTree"][1] == 8
    assert by_name["dTree"][5] == "24 bits"
    # Straight-line kernels shed all their BARs...
    for name in ("mult", "div", "intAvg", "dTree"):
        assert by_name[name][3] == 0
        assert by_name[name][2] == "N/A"
    # ...while the dynamic-indexing loops keep exactly one settable BAR.
    for name in ("inSort", "tHold"):
        assert by_name[name][3] == 1
    # intAvg consumes no flags (pure rotate/mask division).
    assert by_name["intAvg"][4] == 0
    # Every instruction shrinks to at most the standard 24 bits.
    assert all(int(row[5].split()[0]) <= 24 for row in rows)
