"""Table 2: standard-cell characteristics for EGFET and CNT-TFT."""

from conftest import emit

from repro.eval.report import render_table
from repro.eval.tables import table2_standard_cells
from repro.pdk import cnt_tft_library, egfet_library


def test_table2(benchmark):
    headers, rows = benchmark(table2_standard_cells)
    emit(render_table("Table 2: standard cell characteristics", headers, rows))
    assert len(rows) == 11

    egfet = egfet_library()
    cnt = cnt_tft_library()
    # The architectural driver: sequential cells dwarf combinational.
    assert egfet.cell("DFFX1").area > 5 * egfet.cell("NAND2X1").area
    assert egfet.cell("DFFX1").energy > 100 * egfet.cell("NAND2X1").energy
    # CNT cells are orders of magnitude smaller and faster.
    for name in egfet.cells:
        assert cnt.cell(name).area < egfet.cell(name).area
        assert cnt.cell(name).worst_delay < egfet.cell(name).worst_delay
