"""Benchmark: interpreted vs compiled gate-level simulation backends.

Times lock-step co-simulation (the hot loop behind every headline
result: Figure 7/8 verification, fault campaigns, measured-activity
power) on the standard sweep cores with both backends, plus a sampled
fault campaign with the interpreted, per-fault compiled, and
bit-parallel batched engines, plus the tracked full-stride campaign
(``fault_campaign_numpy``) that races the bigint lane backend against
the vectorized numpy bit-slice backend on every fault site of the
p1_8_2 mult8 core -- the headline the numpy backend must hold:
>100x interpreted and >5x batched, bit-exact detected-fault sets.
The ``yield_engine`` section races the vectorized Monte-Carlo timing
sampler (:mod:`repro.mc.timing`) against the scalar per-trial
reference walk on the same fleet (bit-exact prefix asserted); its
``speedup_vs_scalar`` is gated by the cross-run history sentinel
rather than a fixed floor.  The ``placement_quality`` section places
a sweep cross-section on auto-sized printed fabrics in both
technologies and tracks greedy-vs-annealed HPWL plus the wire-aware
vs wire-blind fmax/energy deltas (:mod:`repro.place`); ``hpwl_m`` and
``improvement_pct`` are sentinel-gated the same way.

The run is emitted through the :mod:`repro.obs` layer: every stage is
a tracing span, and ``BENCH_sim.json`` at the repository root is a
run-report superset (the run-report schema plus ``+bench``) that keeps
the historical top-level keys (``cosim``, ``fault_campaign``,
``headline_speedup_p1_8_2``) alongside stage timings, the metrics
snapshot, and environment/git metadata, so the speedup is tracked
across PRs.  Emission is deterministic (sorted keys, one fixed float
encoding) and ``--compact`` elides the per-span detail so the
checked-in file diffs by changed values, not layout; every emission
also appends one compact record to the cross-run history ledger
(``python -m repro history check`` then gates the headline ratios
against their rolling median/MAD baseline -- see
``docs/OBSERVABILITY.md``).

It also measures the *instrumentation overhead budget*: the p1_8_2
co-simulation is timed with the obs switch off and on, interleaved,
and ``--check`` fails the run if enabling the whole layer costs more
than 2%.  (The disabled path is strictly cheaper than the enabled path
-- the hooks share one guard -- so this bounds disabled-mode overhead
too.  The timed harness carries *no attached probes*, so the budget
also covers the probe hook added to ``CycleSimulator.tick`` -- an
empty-list truth test per edge.  The delta against the checked-in
baseline's disabled rate is reported as ``baseline_regression_pct``
but not asserted, since absolute rates are machine-dependent.)

The cost of *enabled* probing -- a full architectural
:class:`~repro.netlist.probe.WaveProbe` plus an
:class:`~repro.netlist.probe.InstructionEnergyProfiler` attached -- is
measured the same paired way and recorded as the ``probe_overhead``
section (informational: probing is opt-in, so it has no budget).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_sim_backends.py            # full
    PYTHONPATH=src python benchmarks/bench_sim_backends.py --compact  # no spans
    PYTHONPATH=src python benchmarks/bench_sim_backends.py --smoke --check
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro import obs
from repro.coregen.config import CoreConfig
from repro.coregen.cosim import CoSimHarness
from repro.coregen import fault_test
from repro.coregen.fault_test import run_fault_campaign
from repro.dse.sweep import sweep_design_spaces
from repro.eval import evaluate_suite
from repro.exec import clear_caches
from repro.programs import build_benchmark

#: Cores timed for co-simulation throughput (name -> config).
COSIM_CONFIGS = (
    CoreConfig(datawidth=4),
    CoreConfig(datawidth=8),
    CoreConfig(datawidth=8, pipeline_stages=3),
    CoreConfig(datawidth=16),
    CoreConfig(datawidth=32),
)

#: The tracked headline core (also the overhead-budget workload).
HEADLINE = CoreConfig(datawidth=8)

#: Wall-clock floor per measurement, seconds.
MIN_DURATION = 0.25

#: Maximum tolerated slowdown from enabling the obs layer, percent.
OVERHEAD_BUDGET_PCT = 2.0


def _program_for(config: CoreConfig):
    kernel_width = max(8, config.datawidth)
    return build_benchmark("mult", kernel_width, config.datawidth)


def _cosim_rate(
    config: CoreConfig, backend: str, min_duration: float = MIN_DURATION
) -> float:
    """Steady-state co-simulation throughput in cycles/second."""
    program = _program_for(config)
    harness = CoSimHarness(program, config, backend=backend)
    for _ in range(5):  # warm-up (and compile, for the compiled backend)
        harness.step()
    cycles = 0
    elapsed = 0.0
    chunk = 32
    while elapsed < min_duration:
        start = time.perf_counter()
        for _ in range(chunk):
            harness.step()
        elapsed += time.perf_counter() - start
        cycles += chunk
        chunk = min(4 * chunk, 4096)
    return cycles / elapsed


def bench_cosim(
    configs=COSIM_CONFIGS, min_duration: float = MIN_DURATION
) -> dict:
    """Per-core interpreted vs compiled cycles/second and speedup."""
    results = {}
    for config in configs:
        with obs.span("bench_cosim", design=config.name):
            interpreted = _cosim_rate(config, "interpreted", min_duration)
            compiled = _cosim_rate(config, "compiled", min_duration)
        results[config.name] = {
            "interpreted_cycles_per_s": round(interpreted, 1),
            "compiled_cycles_per_s": round(compiled, 1),
            "speedup": round(compiled / interpreted, 2),
        }
        print(
            f"cosim {config.name:>9}: interpreted {interpreted:8.0f} c/s, "
            f"compiled {compiled:8.0f} c/s, speedup {compiled / interpreted:5.1f}x"
        )
    return results


def bench_fault_campaign(max_faults: int = 40) -> dict:
    """Sampled stuck-at campaign wall time per backend (identical results)."""
    program = build_benchmark("mult", 8, 8)
    results = {}
    reference = None
    for backend in ("interpreted", "compiled", "batched"):
        with obs.span("bench_fault_campaign", backend=backend):
            start = time.perf_counter()
            campaign = run_fault_campaign(
                program, stride=24, max_faults=max_faults, backend=backend
            )
            elapsed = time.perf_counter() - start
        outcome = (campaign.total, campaign.detected, campaign.undetected_sites)
        if reference is None:
            reference = outcome
        elif outcome != reference:
            raise AssertionError(f"{backend} campaign diverged from interpreted")
        results[backend] = {
            "seconds": round(elapsed, 3),
            "faults": campaign.total,
            "detected": campaign.detected,
        }
        print(
            f"fault campaign [{backend:>11}]: {campaign.total} faults in "
            f"{elapsed:6.2f}s ({campaign.detected} detected)"
        )
    for backend in ("compiled", "batched"):
        results[backend]["speedup"] = round(
            results["interpreted"]["seconds"] / max(1e-9, results[backend]["seconds"]), 2
        )
    return results


#: Floors the numpy campaign headline must hold (``--check``).
NUMPY_VS_INTERPRETED_FLOOR = 100.0
NUMPY_VS_BATCHED_FLOOR = 5.0

#: Tolerated drop of the recorded numpy headline speedup, percent.
NUMPY_REGRESSION_PCT = 10.0


def bench_fault_campaign_numpy(
    stride: int = 1, interpreted_sample: int = 32
) -> dict:
    """The tracked numpy headline: every p1_8_2/mult8 fault site.

    Runs the **full-stride** stuck-at campaign (one fault per instance
    output and polarity, ~1000 sites) on the bigint batched backend
    and the numpy bit-slice backend, asserting the detected-fault sets
    are bit-exact; the interpreted baseline is timed on a
    ``interpreted_sample``-fault sample and extrapolated (running all
    sites interpreted takes minutes -- exactly why this backend
    exists).
    """
    program = build_benchmark("mult", 8, 8)
    results: dict = {}

    with obs.span("bench_fault_campaign_numpy", backend="interpreted"):
        start = time.perf_counter()
        sampled = run_fault_campaign(
            program,
            stride=stride,
            max_faults=interpreted_sample,
            backend="interpreted",
        )
        sampled_elapsed = time.perf_counter() - start
    interpreted_rate = sampled.total / max(1e-9, sampled_elapsed)
    results["interpreted"] = {
        "sampled_faults": sampled.total,
        "faults_per_s": round(interpreted_rate, 1),
    }
    print(
        f"numpy campaign [interpreted]: {sampled.total}-fault sample in "
        f"{sampled_elapsed:6.2f}s ({interpreted_rate:.0f} faults/s)"
    )

    outcomes = {}
    for backend in ("batched", "numpy"):
        # Best of two timed passes: the first also pays compile /
        # cache-load cost, and the minimum filters scheduler jitter
        # out of the ratio the --check floors gate on.
        elapsed = float("inf")
        with obs.span("bench_fault_campaign_numpy", backend=backend):
            for _ in range(2):
                start = time.perf_counter()
                campaign = run_fault_campaign(
                    program, stride=stride, backend=backend
                )
                elapsed = min(elapsed, time.perf_counter() - start)
        outcomes[backend] = (
            campaign.total, campaign.detected, campaign.undetected_sites
        )
        results[backend] = {
            "seconds": round(elapsed, 3),
            "faults": campaign.total,
            "detected": campaign.detected,
            "faults_per_s": round(campaign.total / max(1e-9, elapsed), 1),
        }
        print(
            f"numpy campaign [{backend:>11}]: {campaign.total} faults in "
            f"{elapsed:6.2f}s ({campaign.detected} detected, "
            f"{results[backend]['faults_per_s']:.0f} faults/s)"
        )
    if outcomes["numpy"] != outcomes["batched"]:
        raise AssertionError(
            "numpy campaign diverged from batched (detected-fault sets differ)"
        )

    total = results["numpy"]["faults"]
    interpreted_est = total / interpreted_rate
    results["interpreted"]["estimated_seconds_full"] = round(interpreted_est, 1)
    results["speedup_vs_interpreted"] = round(
        interpreted_est / max(1e-9, results["numpy"]["seconds"]), 1
    )
    results["speedup_vs_batched"] = round(
        results["batched"]["seconds"] / max(1e-9, results["numpy"]["seconds"]), 2
    )
    print(
        f"numpy campaign headline: {results['speedup_vs_interpreted']}x "
        f"interpreted, {results['speedup_vs_batched']}x batched"
    )
    return results


def _numpy_regression(out_path: Path, campaign: dict) -> float | None:
    """Drop of the numpy-vs-batched headline vs baseline, percent.

    The batched ratio is the regression metric because both sides are
    measured in the same process on the same sites; the interpreted
    ratio rides on a small extrapolated sample and is gated only by
    its absolute floor.
    """
    try:
        baseline = json.loads(out_path.read_text())
        before = baseline["fault_campaign_numpy"]["speedup_vs_batched"]
    except (OSError, KeyError, ValueError):
        return None
    now = campaign["speedup_vs_batched"]
    return round(100.0 * (before - now) / before, 2)


#: Worker counts measured by the parallel-scaling section.
SCALING_JOBS = (1, 2, 4)

#: Minimum tolerated jobs=4 combined speedup on a >=4-core machine.
SCALING_FLOOR = 2.5

#: Tolerated serial (jobs=1) slowdown vs the checked-in baseline.
SCALING_REGRESSION_FACTOR = 2.5


def _scaling_round(jobs: int, campaign_stride: int) -> tuple[dict, tuple]:
    """One timed pass of the three fan-out layers at one worker count."""
    program = build_benchmark("dTree", 8, 8)
    # Every round starts memo-cold (but disk-warm) so each jobs value
    # does identical work and the timing isolates execution strategy.
    clear_caches()
    fault_test._WORKER_CONTEXT = None
    timings = {}
    start = time.perf_counter()
    sweep = sweep_design_spaces(("EGFET", "CNT"), jobs=jobs)
    timings["sweep_s"] = time.perf_counter() - start
    start = time.perf_counter()
    campaign = run_fault_campaign(program, stride=campaign_stride, jobs=jobs)
    timings["fault_campaign_s"] = time.perf_counter() - start
    start = time.perf_counter()
    suite = evaluate_suite(jobs=jobs)
    timings["suite_s"] = time.perf_counter() - start
    timings["combined_s"] = sum(timings.values())
    return timings, (sweep, campaign, suite)


def bench_parallel_scaling(
    jobs_list: tuple[int, ...] = SCALING_JOBS, campaign_stride: int = 1
) -> dict:
    """Wall time of the three ``jobs=`` fan-outs at 1/2/4 workers.

    Times the Figure 7 two-technology sweep, a full-stride dTree fault
    campaign, and the Figure 8 suite grid at each worker count, after
    one warm-up pass that populates the on-disk artifact cache.  Every
    parallel round is asserted bit-exact against the ``jobs=1`` round;
    speedups are relative to ``jobs=1`` on the same machine, with
    ``cpu_count`` recorded because scaling saturates at the physical
    core count.
    """
    with obs.span("bench_parallel_scaling"):
        # Warm the artifact cache so round one isn't charged for
        # first-touch elaboration the later rounds get from disk.
        _scaling_round(1, campaign_stride)
        results: dict = {"cpu_count": os.cpu_count(), "jobs": {}}
        reference = None
        for jobs in jobs_list:
            timings, outcome = _scaling_round(jobs, campaign_stride)
            if reference is None:
                reference = outcome
            elif outcome != reference:
                raise AssertionError(
                    f"jobs={jobs} scaling round diverged from jobs=1"
                )
            entry = {key: round(value, 3) for key, value in timings.items()}
            serial = results["jobs"].get("1", entry)
            entry["speedup"] = round(
                serial["combined_s"] / max(1e-9, timings["combined_s"]), 2
            )
            results["jobs"][str(jobs)] = entry
            print(
                f"parallel scaling [jobs={jobs}]: sweep {timings['sweep_s']:5.2f}s, "
                f"campaign {timings['fault_campaign_s']:5.2f}s, "
                f"suite {timings['suite_s']:5.2f}s "
                f"(speedup {entry['speedup']:.2f}x)"
            )
        return results


def _scaling_regression(out_path: Path, scaling: dict) -> float | None:
    """Serial combined-seconds ratio vs the checked-in baseline (>1 = slower)."""
    try:
        baseline = json.loads(out_path.read_text())
        before = baseline["parallel_scaling"]["jobs"]["1"]["combined_s"]
    except (OSError, KeyError, ValueError):
        return None
    now = scaling["jobs"]["1"]["combined_s"]
    return round(now / max(1e-9, before), 2)


def bench_obs_overhead(pairs: int = 64, chunk: int = 256) -> dict:
    """Cost of the observability layer on the p1_8_2 compiled cosim.

    One warm harness runs ``pairs`` back-to-back chunk pairs, one side
    of each pair with the obs switch off and one with it on, order
    alternating; the reported overhead is the median of the per-pair
    time ratios.  Pairing at chunk granularity cancels the clock and
    load drift that dominates coarse A/B timing on shared machines
    (raw rates here swing +-15% between seconds; the paired ratio is
    stable to ~1%).  Restores the obs switch to the caller's state.

    The enabled side runs with a *live telemetry bus* installed
    (:mod:`repro.obs.live`, as ``python -m repro serve`` does) so the
    checked budget covers the bus hook at every instrumentation site,
    not just the base collector.
    """
    from repro.obs import live as _live

    was_enabled = obs.enabled()
    harness = CoSimHarness(_program_for(HEADLINE), HEADLINE, backend="compiled")
    for _ in range(64):  # warm-up: compile and reach steady state
        harness.step()
    ratios: list[float] = []
    times = {False: 0.0, True: 0.0}
    bus = _live.activate()
    drain = bus.subscribe(maxlen=64)  # keep the ring's consumer real
    try:
        for i in range(pairs):
            order = (False, True) if i % 2 == 0 else (True, False)
            pair = {}
            for enabled in order:
                obs.STATE.enabled = enabled
                start = time.perf_counter()
                for _ in range(chunk):
                    harness.step()
                pair[enabled] = time.perf_counter() - start
            ratios.append(pair[True] / pair[False])
            times[False] += pair[False]
            times[True] += pair[True]
    finally:
        obs.STATE.enabled = was_enabled
        _live.deactivate()
    overhead_pct = 100.0 * (statistics.median(ratios) - 1.0)
    disabled = pairs * chunk / times[False]
    enabled = pairs * chunk / times[True]
    print(
        f"obs overhead (p1_8_2 cosim, live bus): "
        f"disabled {disabled:8.0f} c/s, "
        f"enabled {enabled:8.0f} c/s, overhead {overhead_pct:+.2f}%"
    )
    return {
        "disabled_cycles_per_s": round(disabled, 1),
        "enabled_cycles_per_s": round(enabled, 1),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "live_bus": True,
    }


def bench_probe_overhead(pairs: int = 48, chunk: int = 160) -> dict:
    """Cost of enabled probing on the p1_8_2 compiled cosim.

    Same paired-chunk scheme as :func:`bench_obs_overhead`, but the
    A/B axis is probes attached vs detached: one side of each pair
    runs with a full architectural waveform probe (PC, flags, BARs,
    bus) plus the per-instruction energy profiler, the other side
    bare.  Informational -- probing is opt-in, so there is no budget
    to enforce -- but recorded so the cost of ``profile-design`` runs
    is tracked across PRs.
    """
    from repro.netlist.probe import (
        InstructionEnergyProfiler,
        WaveProbe,
        resolve_probes,
    )
    from repro.pdk import technology_library

    harness = CoSimHarness(_program_for(HEADLINE), HEADLINE, backend="compiled")
    for _ in range(64):  # warm-up: compile and reach steady state
        harness.step()
    netlist = harness.netlist
    signals = resolve_probes(netlist, groups=("pc", "flags", "bars", "bus"))
    wave = WaveProbe(netlist, signals)
    profiler = InstructionEnergyProfiler(
        netlist,
        technology_library("EGFET"),
        resolve_probes(netlist, groups=("pc",))[0].nets,
    )
    ratios: list[float] = []
    times = {False: 0.0, True: 0.0}
    for i in range(pairs):
        order = (False, True) if i % 2 == 0 else (True, False)
        pair = {}
        for probed in order:
            if probed:
                harness.sim.attach_probe(wave)
                harness.sim.attach_probe(profiler)
            start = time.perf_counter()
            for _ in range(chunk):
                harness.step()
            pair[probed] = time.perf_counter() - start
            if probed:
                harness.sim.detach_probe(wave)
                harness.sim.detach_probe(profiler)
        ratios.append(pair[True] / pair[False])
        times[False] += pair[False]
        times[True] += pair[True]
    overhead_pct = 100.0 * (statistics.median(ratios) - 1.0)
    unprobed = pairs * chunk / times[False]
    probed = pairs * chunk / times[True]
    print(
        f"probe overhead (p1_8_2 cosim): unprobed {unprobed:8.0f} c/s, "
        f"probed {probed:8.0f} c/s, overhead {overhead_pct:+.2f}%"
    )
    return {
        "unprobed_cycles_per_s": round(unprobed, 1),
        "probed_cycles_per_s": round(probed, 1),
        "overhead_pct": round(overhead_pct, 2),
        "probed_signals": len(signals),
    }


def bench_yield_engine(units: int = 50_000, scalar_trials: int = 24) -> dict:
    """Monte-Carlo timing throughput: vectorized engine vs scalar loop.

    Samples ``units`` printed p1_8_2 units through the vectorized
    fleet sampler (:func:`repro.mc.timing.sample_delays`) and
    ``scalar_trials`` through the per-trial Python reference walk
    (:func:`repro.pdk.variation.monte_carlo_timing`), best of two
    passes each, and asserts the scalar samples are a bit-exact prefix
    of the vectorized ones -- the speedup only counts because both
    sides compute the *same* fleet.  ``speedup_vs_scalar`` is gated by
    the cross-run history sentinel rather than a fixed floor.
    """
    import numpy as np

    from repro.coregen.generator import generate_core
    from repro.mc.timing import sample_delays
    from repro.pdk import technology_library
    from repro.pdk.variation import monte_carlo_timing

    netlist = generate_core(HEADLINE)
    library = technology_library("EGFET")
    seed = 0xBEEF

    with obs.span("bench_yield_engine", side="vectorized"):
        vec_elapsed = float("inf")
        for _ in range(2):  # best of two: first pass pays kernel prep
            start = time.perf_counter()
            delays = sample_delays(netlist, library, 0.2, 0, units, seed)
            vec_elapsed = min(vec_elapsed, time.perf_counter() - start)
    with obs.span("bench_yield_engine", side="scalar"):
        scalar_elapsed = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            dist = monte_carlo_timing(
                netlist, library, sigma=0.2, trials=scalar_trials, seed=seed
            )
            scalar_elapsed = min(scalar_elapsed, time.perf_counter() - start)
    if not np.array_equal(np.array(dist.samples), delays[:scalar_trials]):
        raise AssertionError(
            "vectorized delay samples diverged from the scalar reference"
        )

    vec_rate = units / max(1e-9, vec_elapsed)
    scalar_rate = scalar_trials / max(1e-9, scalar_elapsed)
    results = {
        "design": HEADLINE.name,
        "vectorized": {
            "units": units,
            "seconds": round(vec_elapsed, 3),
            "instances_per_s": round(vec_rate, 1),
        },
        "scalar": {
            "units": scalar_trials,
            "seconds": round(scalar_elapsed, 3),
            "instances_per_s": round(scalar_rate, 1),
        },
        "speedup_vs_scalar": round(vec_rate / max(1e-9, scalar_rate), 1),
    }
    print(
        f"yield engine ({HEADLINE.name}): vectorized {vec_rate:8.0f} units/s, "
        f"scalar {scalar_rate:6.1f} units/s, "
        f"speedup {results['speedup_vs_scalar']}x (bit-exact prefix)"
    )
    return results


#: Sweep cross-section for the placement-quality bench.
PLACEMENT_CONFIGS = ("p1_4_2", "p1_8_2", "p2_8_2", "p1_16_2")


def bench_placement_quality(
    configs=PLACEMENT_CONFIGS,
    technologies=("EGFET", "CNT"),
    seed: int = 0,
) -> dict:
    """Placement quality and wire-aware PPA across the sweep.

    Places each config on its auto-sized fabric in both technologies
    and records greedy-vs-annealed HPWL plus the wire-aware vs
    wire-blind fmax/energy deltas.  Keys are ``<design>.<technology>``;
    ``hpwl_m`` (lower) and ``improvement_pct`` (higher) are gated by
    the cross-run history sentinel.  The run also asserts the placer's
    two hard invariants -- annealed HPWL never worse than greedy, and
    wire-aware PPA never better than wire-blind -- so a quality bug
    fails the bench, not just a trend line.
    """
    from repro.coregen.config import config_from_name
    from repro.coregen.generator import generate_core
    from repro.pdk import technology_library
    from repro.place import fabric_for, place, wire_aware_ppa

    results: dict[str, dict] = {}
    for name in configs:
        netlist = generate_core(config_from_name(name))
        for technology in technologies:
            with obs.span(
                "bench_placement", design=name, technology=technology
            ):
                start = time.perf_counter()
                fabric = fabric_for(netlist, technology=technology)
                placement = place(netlist, fabric, seed=seed)
                ppa = wire_aware_ppa(
                    netlist, placement, technology_library(technology)
                )
                elapsed = time.perf_counter() - start
            if placement.hpwl > placement.greedy_hpwl:
                raise AssertionError(
                    f"{name}/{technology}: annealed HPWL worse than greedy"
                )
            if (
                ppa["delay_overhead_pct"] < 0.0
                or ppa["energy_overhead_pct"] < 0.0
            ):
                raise AssertionError(
                    f"{name}/{technology}: wire-aware PPA better than blind"
                )
            results[f"{name}.{technology}"] = {
                "fabric": fabric.name,
                "greedy_hpwl_m": round(placement.greedy_hpwl, 6),
                "hpwl_m": round(placement.hpwl, 6),
                "improvement_pct": round(placement.improvement_pct, 2),
                "delay_overhead_pct": round(ppa["delay_overhead_pct"], 3),
                "energy_overhead_pct": round(ppa["energy_overhead_pct"], 3),
                "wall_s": round(elapsed, 3),
            }
            print(
                f"placement ({name}, {technology}): "
                f"hpwl {placement.hpwl:.4g} m "
                f"(greedy -{placement.improvement_pct:.1f}%), "
                f"delay +{ppa['delay_overhead_pct']:.2f}%, "
                f"energy +{ppa['energy_overhead_pct']:.2f}%"
            )
    return results


def _baseline_regression(out_path: Path, overhead: dict) -> float | None:
    """Disabled-rate delta vs the checked-in baseline, percent (+ = slower)."""
    try:
        baseline = json.loads(out_path.read_text())
        before = baseline["obs_overhead"]["disabled_cycles_per_s"]
    except (OSError, KeyError, ValueError):
        return None
    now = overhead["disabled_cycles_per_s"]
    return round(100.0 * (before - now) / before, 2)


def main(argv: list[str]) -> int:
    """Run the benchmarks; write ``BENCH_sim.json`` unless ``--smoke``."""
    smoke = "--smoke" in argv
    check = "--check" in argv
    compact = "--compact" in argv
    obs.enable()  # the bench itself reports through the telemetry layer
    start = time.perf_counter()

    if smoke:
        cosim = bench_cosim(configs=(HEADLINE,), min_duration=0.1)
        fault = bench_fault_campaign(max_faults=16)
        numpy_fault = bench_fault_campaign_numpy(interpreted_sample=16)
        overhead = bench_obs_overhead(pairs=48, chunk=160)
        probe = bench_probe_overhead(pairs=24, chunk=96)
        scaling = bench_parallel_scaling(jobs_list=(1, 2), campaign_stride=8)
        yield_engine = bench_yield_engine(units=2_000, scalar_trials=8)
        placement = bench_placement_quality(
            configs=("p1_8_2",), technologies=("EGFET",)
        )
    else:
        cosim = bench_cosim()
        fault = bench_fault_campaign()
        numpy_fault = bench_fault_campaign_numpy()
        overhead = bench_obs_overhead()
        probe = bench_probe_overhead()
        scaling = bench_parallel_scaling()
        yield_engine = bench_yield_engine()
        placement = bench_placement_quality()

    out = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
    report = obs.build_run_report(
        ["bench_sim_backends", *argv], time.perf_counter() - start
    )
    report["schema"] = f"{obs.report.SCHEMA}+bench"
    report["python"] = report["environment"]["python"]
    report["machine"] = report["environment"]["machine"]
    report["cosim"] = cosim
    report["fault_campaign"] = fault
    report["fault_campaign_numpy"] = numpy_fault
    report["obs_overhead"] = overhead
    report["probe_overhead"] = probe
    report["parallel_scaling"] = scaling
    report["yield_engine"] = yield_engine
    report["placement_quality"] = placement
    report["headline_speedup_p1_8_2"] = cosim[HEADLINE.name]["speedup"]
    report["headline_numpy_campaign"] = {
        "speedup_vs_interpreted": numpy_fault["speedup_vs_interpreted"],
        "speedup_vs_batched": numpy_fault["speedup_vs_batched"],
    }
    regression = _baseline_regression(out, overhead)
    if regression is not None:
        report["baseline_regression_pct"] = regression
        print(f"disabled rate vs checked-in baseline: {regression:+.2f}% "
              "(informational)")
    serial_ratio = _scaling_regression(out, scaling)
    if serial_ratio is not None:
        report["serial_regression_factor"] = serial_ratio
        print(f"serial (jobs=1) combined time vs baseline: x{serial_ratio:.2f}")
    numpy_drop = _numpy_regression(out, numpy_fault)
    if numpy_drop is not None:
        report["numpy_regression_pct"] = numpy_drop
        print(
            f"numpy headline vs checked-in baseline: {numpy_drop:+.2f}% drop"
        )

    if smoke:
        # The file stays untouched, but the measured ratios still feed
        # the cross-run ledger so `history check` accumulates baseline
        # even from smoke runs (no-op under REPRO_HISTORY=0).
        from repro.obs import history

        history.record_report(report)
        print("smoke mode: BENCH_sim.json left untouched")
    else:
        obs.write_run_report(out, report, compact=compact)
        print(
            f"\nheadline cosim speedup ({HEADLINE.name}): "
            f"{report['headline_speedup_p1_8_2']}x -> {out}"
        )

    if check and overhead["overhead_pct"] > OVERHEAD_BUDGET_PCT:
        print(
            f"FAIL: obs overhead {overhead['overhead_pct']}% exceeds the "
            f"{OVERHEAD_BUDGET_PCT}% budget",
            file=sys.stderr,
        )
        return 1
    if check and numpy_fault["speedup_vs_interpreted"] < NUMPY_VS_INTERPRETED_FLOOR:
        print(
            f"FAIL: numpy campaign speedup "
            f"{numpy_fault['speedup_vs_interpreted']}x vs interpreted is below "
            f"the {NUMPY_VS_INTERPRETED_FLOOR}x floor",
            file=sys.stderr,
        )
        return 1
    if check and numpy_fault["speedup_vs_batched"] < NUMPY_VS_BATCHED_FLOOR:
        print(
            f"FAIL: numpy campaign speedup "
            f"{numpy_fault['speedup_vs_batched']}x vs batched is below the "
            f"{NUMPY_VS_BATCHED_FLOOR}x floor",
            file=sys.stderr,
        )
        return 1
    if check and numpy_drop is not None and numpy_drop > NUMPY_REGRESSION_PCT:
        print(
            f"FAIL: numpy headline dropped {numpy_drop:.1f}% vs the recorded "
            f"baseline (tolerance {NUMPY_REGRESSION_PCT}%)",
            file=sys.stderr,
        )
        return 1
    if check and serial_ratio is not None and serial_ratio > SCALING_REGRESSION_FACTOR:
        print(
            f"FAIL: serial combined time regressed x{serial_ratio:.2f} vs the "
            f"baseline (tolerance x{SCALING_REGRESSION_FACTOR})",
            file=sys.stderr,
        )
        return 1
    cpus = scaling["cpu_count"] or 1
    if cpus == 1:
        # Parallel speedups cannot exceed 1 with a single CPU; the
        # section stays recorded but is not a gate on this machine.
        print(
            "parallel scaling check skipped: cpu_count == 1 "
            "(speedups are informational on a single-CPU machine)"
        )
    top = scaling["jobs"].get("4")
    if (
        check and not smoke and cpus >= 4
        and top and top["speedup"] < SCALING_FLOOR
    ):
        print(
            f"FAIL: jobs=4 speedup {top['speedup']}x below the "
            f"{SCALING_FLOOR}x floor on a {cpus}-core machine",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
