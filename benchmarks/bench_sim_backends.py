"""Benchmark: interpreted vs compiled gate-level simulation backends.

Times lock-step co-simulation (the hot loop behind every headline
result: Figure 7/8 verification, fault campaigns, measured-activity
power) on the standard sweep cores with both backends, plus a sampled
fault campaign with the interpreted, per-fault compiled, and
bit-parallel batched engines.  Results are written to
``BENCH_sim.json`` at the repository root so the speedup is tracked
across PRs.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_sim_backends.py
"""

from __future__ import annotations

import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.coregen.config import CoreConfig
from repro.coregen.cosim import CoSimHarness
from repro.coregen.fault_test import run_fault_campaign
from repro.programs import build_benchmark

#: Cores timed for co-simulation throughput (name -> config).
COSIM_CONFIGS = (
    CoreConfig(datawidth=4),
    CoreConfig(datawidth=8),
    CoreConfig(datawidth=8, pipeline_stages=3),
    CoreConfig(datawidth=16),
    CoreConfig(datawidth=32),
)

#: Wall-clock floor per measurement, seconds.
MIN_DURATION = 0.25


def _program_for(config: CoreConfig):
    kernel_width = max(8, config.datawidth)
    return build_benchmark("mult", kernel_width, config.datawidth)


def _cosim_rate(config: CoreConfig, backend: str) -> float:
    """Steady-state co-simulation throughput in cycles/second."""
    program = _program_for(config)
    harness = CoSimHarness(program, config, backend=backend)
    for _ in range(5):  # warm-up (and compile, for the compiled backend)
        harness.step()
    cycles = 0
    elapsed = 0.0
    chunk = 32
    while elapsed < MIN_DURATION:
        start = time.perf_counter()
        for _ in range(chunk):
            harness.step()
        elapsed += time.perf_counter() - start
        cycles += chunk
        chunk = min(4 * chunk, 4096)
    return cycles / elapsed


def bench_cosim() -> dict:
    """Per-core interpreted vs compiled cycles/second and speedup."""
    results = {}
    for config in COSIM_CONFIGS:
        interpreted = _cosim_rate(config, "interpreted")
        compiled = _cosim_rate(config, "compiled")
        results[config.name] = {
            "interpreted_cycles_per_s": round(interpreted, 1),
            "compiled_cycles_per_s": round(compiled, 1),
            "speedup": round(compiled / interpreted, 2),
        }
        print(
            f"cosim {config.name:>9}: interpreted {interpreted:8.0f} c/s, "
            f"compiled {compiled:8.0f} c/s, speedup {compiled / interpreted:5.1f}x"
        )
    return results


def bench_fault_campaign() -> dict:
    """Sampled stuck-at campaign wall time per backend (identical results)."""
    program = build_benchmark("mult", 8, 8)
    results = {}
    reference = None
    for backend in ("interpreted", "compiled", "batched"):
        start = time.perf_counter()
        campaign = run_fault_campaign(
            program, stride=24, max_faults=40, backend=backend
        )
        elapsed = time.perf_counter() - start
        outcome = (campaign.total, campaign.detected, campaign.undetected_sites)
        if reference is None:
            reference = outcome
        elif outcome != reference:
            raise AssertionError(f"{backend} campaign diverged from interpreted")
        results[backend] = {
            "seconds": round(elapsed, 3),
            "faults": campaign.total,
            "detected": campaign.detected,
        }
        print(
            f"fault campaign [{backend:>11}]: {campaign.total} faults in "
            f"{elapsed:6.2f}s ({campaign.detected} detected)"
        )
    for backend in ("compiled", "batched"):
        results[backend]["speedup"] = round(
            results["interpreted"]["seconds"] / max(1e-9, results[backend]["seconds"]), 2
        )
    return results


def main() -> int:
    """Run both benchmarks and write ``BENCH_sim.json``."""
    report = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
        "cosim": bench_cosim(),
        "fault_campaign": bench_fault_campaign(),
    }
    headline = report["cosim"]["p1_8_2"]["speedup"]
    report["headline_speedup_p1_8_2"] = headline
    out = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nheadline cosim speedup (p1_8_2): {headline}x -> {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
