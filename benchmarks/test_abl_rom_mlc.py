"""Ablation: multi-level-cell depth of the crosspoint instruction ROM.

Sweeps 1/2/4-bit cells across program sizes, exposing the crossover
the paper's Section 6 implies: MLC density only pays once the array is
large enough to amortize the per-sub-block ADCs (Table 6: a 2-bit ADC
costs 3.76 mm² -- 75 one-bit cells)."""

from conftest import emit

from repro.eval.report import render_table
from repro.memory.rom import CrosspointRom
from repro.units import to_mm2


def run_sweep():
    rows = []
    for words in (16, 64, 256):
        areas = {}
        for depth in (1, 2, 4):
            rom = CrosspointRom(words=words, bits_per_word=24, bits_per_cell=depth)
            areas[depth] = rom.area
        rows.append((
            words,
            to_mm2(areas[1]),
            to_mm2(areas[2]),
            to_mm2(areas[4]),
            min(areas, key=areas.get),
        ))
    return rows


def test_mlc_depth_ablation(benchmark):
    rows = benchmark(run_sweep)
    emit(render_table(
        "Ablation: crosspoint ROM area vs MLC depth (24-bit words)",
        ("Words", "1-bit mm2", "2-bit mm2", "4-bit mm2", "Best depth"),
        rows,
    ))
    by_words = {row[0]: row for row in rows}
    # Small programs: ADCs dominate, single-level wins.
    assert by_words[16][4] == 1
    # The paper's 256-word dTree: 2-bit wins (the dTree-ROMopt result).
    assert by_words[256][4] == 2
    # 2-bit beats 1-bit by ~30% at 256 words.
    saving = 1 - by_words[256][2] / by_words[256][1]
    assert 0.2 < saving < 0.35
    # 4-bit never wins at these sizes: its ADC is ~7x the 2-bit one.
    assert all(row[4] != 4 for row in rows)
