"""Section 8: benchmark-level infeasibility of the legacy cores in
inkjet-printed EGFET."""

from conftest import emit

from repro.baselines.kernels import run_baseline
from repro.eval.report import render_table
from repro.eval.system import evaluate_system
from repro.power.battery import REFERENCE_BUDGET_J
from repro.programs import build_benchmark


def legacy_rows():
    rows = []
    for core in ("light8080", "Z80", "ZPU_small", "openMSP430"):
        for bench in ("mult", "inSort16"):
            run = run_baseline(core, bench)
            rows.append((
                core, bench,
                f"{run.time_seconds:.1f}",
                f"{run.core_energy_joules:.2f}",
                "yes" if run.core_energy_joules > REFERENCE_BUDGET_J else "no",
            ))
    return rows


def test_sec8_legacy_infeasible(benchmark):
    rows = benchmark(legacy_rows)
    emit(render_table(
        "Section 8: legacy cores at benchmark level (EGFET)",
        ("Core", "Benchmark", "Time s", "Core energy J", "Exceeds 30 mAh budget"),
        rows,
    ))

    mult = run_baseline("light8080", "mult")
    # Paper: 44.6 s / 3.66 J for light8080 8-bit multiply -- an order
    # of magnitude worse than the best TP-ISA core.
    tp = evaluate_system(build_benchmark("mult", 8, 8))
    assert mult.time_seconds > 5 * tp.total_time
    assert mult.core_energy_joules > 10 * tp.total_energy

    # Paper: 16-bit insertion sort exceeds 1000 s on all three 8-bit-
    # datapath machines; Z80 and ZPU blow the battery's 108 J.
    for core in ("light8080", "Z80", "ZPU_small"):
        run = run_baseline(core, "inSort16")
        assert run.time_seconds > 1000
    assert run_baseline("Z80", "inSort16").core_energy_joules > REFERENCE_BUDGET_J
    assert run_baseline("ZPU_small", "inSort16").core_energy_joules > REFERENCE_BUDGET_J
