"""Figure 4: lifetime vs duty cycle for EGFET legacy cores."""

from conftest import emit

from repro.eval.figures import fig4_lifetime
from repro.eval.report import render_table


def test_fig4(benchmark):
    series = benchmark(fig4_lifetime)
    rows = [
        (s.core, s.battery, f"{s.points[0][1]:.2f}", f"{s.points[-1][1]:.0f}")
        for s in series
    ]
    emit(render_table(
        "Figure 4: EGFET lifetime hours (duty 1.0 -> duty 0.001)",
        ("Core", "Battery", "Hours @ duty 1.0", "Hours @ duty 0.001"),
        rows,
    ))
    assert len(series) == 16  # 4 cores x 4 batteries

    for s in series:
        hours = [h for _, h in s.points]
        # Lifetime grows monotonically as duty shrinks...
        assert hours == sorted(hours)
        # ...and at full duty every pairing dies within a few hours.
        assert hours[0] < 4.0
    # The highest-power core (openMSP430) on the smallest battery
    # lasts only minutes.
    worst = min(s.points[0][1] for s in series)
    assert worst < 0.25
