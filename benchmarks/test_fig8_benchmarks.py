"""Figure 8: application-level area/energy/time across cores, with
program-specific systems and the dTree-ROMopt MLC variant."""

import pytest
from conftest import emit

from repro.eval.figures import fig8_benchmark, fig8_dtree_romopt
from repro.eval.report import render_table
from repro.units import to_cm2, to_mJ

BENCHMARK_WIDTHS = [
    ("mult", 8), ("mult", 16), ("mult", 32),
    ("div", 8),
    ("inSort", 8),
    ("intAvg", 8), ("intAvg", 32),
    ("tHold", 8),
    ("crc8", 8),
    ("dTree", 8),
]


def _render(name, width, results):
    rows = [
        (
            m.core_name,
            to_cm2(m.total_area),
            to_cm2(m.core_area),
            to_cm2(m.imem_area),
            to_cm2(m.dmem_area),
            to_mJ(m.total_energy),
            f"{m.total_time:.3f}",
        )
        for m in results
    ]
    return render_table(
        f"Figure 8: {name}{width} (EGFET, single-cycle cores; last row = PS)",
        ("Core", "Area cm2", "C+R cm2", "IM cm2", "DM cm2", "Energy mJ", "Time s"),
        rows,
    )


@pytest.mark.parametrize("name,width", BENCHMARK_WIDTHS)
def test_fig8_subplot(benchmark, name, width):
    results = benchmark(fig8_benchmark, name, width)
    emit(_render(name, width, results))
    assert len(results) >= 2

    program_specific = results[-1]
    standard = results[:-1]
    assert program_specific.program_specific

    # The PS system consumes the least energy of all cores...
    assert program_specific.total_energy == min(m.total_energy for m in results)
    # ...and the least area among cores of the same (native) datawidth.
    native = [
        m for m in standard
        if m.core_name.split("_")[1] == str(width)
    ]
    for metric in native:
        assert program_specific.total_area < metric.total_area

    # Among standard cores, the native-width core wins energy -- in
    # our model this is occasionally a near-tie with the half-width
    # coalescing core (loop control amortizes the extra word ops), so
    # assert native is within 20% of the best and clearly ahead of the
    # narrowest runnable core.
    best_standard = min(standard, key=lambda m: m.total_energy)
    best_native = min(
        (m for m in standard if m.core_name.split("_")[1] == str(width)),
        key=lambda m: m.total_energy,
    )
    assert best_native.total_energy < 1.2 * best_standard.total_energy
    narrowest = min(standard, key=lambda m: int(m.core_name.split("_")[1]))
    if narrowest.core_name.split("_")[1] != str(width):
        assert best_native.total_energy < narrowest.total_energy


def test_fig8_dtree_romopt(benchmark):
    base, optimized = benchmark(fig8_dtree_romopt)
    emit(render_table(
        "Figure 8 (dTree-ROMopt): 1-bit vs 2-bit MLC instruction ROM",
        ("System", "IM area cm2", "Total area cm2", "Energy mJ", "Time s"),
        [
            ("dTree", to_cm2(base.imem_area), to_cm2(base.total_area),
             to_mJ(base.total_energy), f"{base.total_time:.3f}"),
            ("dTree-ROMopt", to_cm2(optimized.imem_area), to_cm2(optimized.total_area),
             to_mJ(optimized.total_energy), f"{optimized.total_time:.3f}"),
        ],
    ))
    # ~30% instruction-memory area saving at marginal energy cost.
    reduction = 1 - optimized.imem_area / base.imem_area
    assert 0.2 < reduction < 0.35
    assert optimized.total_energy < 1.25 * base.total_energy
    assert optimized.total_time > base.total_time  # ADC adds latency
