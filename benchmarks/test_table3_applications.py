"""Table 3: example applications and their requirements."""

from conftest import emit

from repro.apps.requirements import APPLICATIONS
from repro.eval.report import render_table
from repro.eval.tables import table3_applications


def test_table3(benchmark):
    headers, rows = benchmark(table3_applications)
    emit(render_table("Table 3: application requirements", headers, rows))
    assert len(rows) == 17
    # The motivating envelope: modest sample rates and precisions --
    # every application fits a <=100 Hz, <=16-bit profile, which is
    # what makes few-Hz printed cores viable at low duty cycles.
    assert max(a.sample_rate_hz for a in APPLICATIONS) <= 100
    assert max(a.precision_bits for a in APPLICATIONS) <= 16
    assert any(a.precision_bits == 1 for a in APPLICATIONS)
