#!/usr/bin/env python3
"""TPC: write printed-processor firmware in a high-level language.

Compiles a realistic sensor-monitoring program -- exponential smoothing
plus hysteresis alarm over a sample window -- to TP-ISA, runs it, proves
the compiled binary on the gate-level core, shrinks it into a
program-specific processor, and prices the resulting printed system.

Run:  python examples/tpc_compiler.py
"""

from repro.coregen import CoreConfig, program_specific_config
from repro.coregen.cosim import cosim_verify
from repro.eval.system import evaluate_system
from repro.isa.analysis import analyze_program
from repro.lang import compile_tpc
from repro.sim import Machine
from repro.units import to_cm2, to_mJ

FIRMWARE = """
# Wound-temperature monitor: smooth samples, raise an alarm with
# hysteresis around the threshold.
var samples[16] = {98, 99, 97, 100, 104, 108, 111, 115,
                   117, 116, 113, 109, 105, 101, 99, 98}
var smooth = 98
var alarm = 0
var alarms = 0
var high = 110
var low = 104
var i = 0

while i < 16 {
    # smooth = smooth - smooth/4 + sample/4  (exponential filter)
    smooth = smooth - (smooth >> 2) + (samples[i] >> 2)
    if alarm == 0 {
        if smooth > high {
            alarm = 1
            alarms = alarms + 1
        }
    } else {
        if smooth < low { alarm = 0 }
    }
    i = i + 1
}
"""


def main() -> None:
    program = compile_tpc(FIRMWARE, name="monitor")
    print(f"compiled: {program.static_size} instructions, "
          f"{program.data_words_used()} initialized data words")

    machine = Machine(program)
    machine.run()
    print(f"run: smooth={machine.peek('smooth')}, "
          f"alarms={machine.peek('alarms')}, "
          f"{machine.stats.instructions} instructions executed")

    mismatches = cosim_verify(program)
    print(f"gate-level co-simulation: "
          f"{'EQUIVALENT' if not mismatches else mismatches[:3]}")

    analysis = analyze_program(program)
    config = program_specific_config(CoreConfig(datawidth=8), analysis)
    print(f"\nprogram-specific processor: {analysis.pc_bits}-bit PC, "
          f"{analysis.num_bars} BAR(s), {analysis.num_flags} flag(s), "
          f"{analysis.instruction_bits}-bit instructions")

    standard = evaluate_system(program)
    specific = evaluate_system(program, program_specific=True)
    print(f"\nprinted system (EGFET):          standard        program-specific")
    print(f"  total area      {to_cm2(standard.total_area):14.2f} cm2 "
          f"{to_cm2(specific.total_area):14.2f} cm2")
    print(f"  energy/run      {to_mJ(standard.total_energy):14.2f} mJ  "
          f"{to_mJ(specific.total_energy):14.2f} mJ")
    print(f"  time/run        {standard.total_time:14.2f} s   "
          f"{specific.total_time:14.2f} s")


if __name__ == "__main__":
    main()
