#!/usr/bin/env python3
"""Design-space exploration: regenerate the paper's Figure 7 study.

Sweeps the 24 TP-ISA core configurations (datawidth x pipeline depth x
BAR count) through synthesis-style analysis in both printed
technologies, prints the measurements, extracts the Pareto frontier,
and compares the winners against the four pre-existing cores.

Run:  python examples/design_space_exploration.py
"""

from repro.baselines.specs import BASELINE_SPECS
from repro.dse import pareto_front, sweep_design_space
from repro.units import to_cm2, to_mW


def main() -> None:
    for technology in ("EGFET", "CNT-TFT"):
        points = sweep_design_space(technology)
        print(f"\n=== {technology} design space (24 cores) ===")
        print(f"{'core':<10} {'fmax':>12} {'area cm2':>10} {'power mW':>10} "
              f"{'gates':>6} {'DFFs':>5}")
        for point in points:
            print(f"{point.name:<10} {point.fmax:>12.2f} "
                  f"{to_cm2(point.area):>10.3f} "
                  f"{to_mW(point.power_at_fmax):>10.3f} "
                  f"{point.gate_count:>6} {point.dff_count:>5}")

        front = pareto_front(
            points, lambda p: (p.area, p.power_at_fmax, 1.0 / p.fmax)
        )
        print(f"\nPareto-optimal cores: {', '.join(p.name for p in front)}")
        stages = {p.config.pipeline_stages for p in front}
        print(f"pipeline depths on the frontier: {sorted(stages)} "
              "(the paper's conclusion: single-stage wins)")

    print("\n=== versus the pre-existing cores (EGFET) ===")
    egfet = sweep_design_space("EGFET")
    best8 = min(
        (p for p in egfet if p.config.datawidth == 8), key=lambda p: p.area
    )
    light = BASELINE_SPECS["light8080"].egfet
    print(f"best 8-bit TP-ISA core: {best8.name}  "
          f"{to_cm2(best8.area):.2f} cm^2, "
          f"{to_mW(best8.power_at_fmax):.2f} mW, {best8.fmax:.1f} Hz")
    print(f"light8080 (smallest baseline): {to_cm2(light.area):.2f} cm^2, "
          f"{to_mW(light.power):.1f} mW, {light.fmax:.2f} Hz")
    print(f"advantage: {light.area / best8.area:.1f}x area, "
          f"{light.power / best8.power_at_fmax:.1f}x power")


if __name__ == "__main__":
    main()
