#!/usr/bin/env python3
"""Five ISAs, one benchmark: why printed cores want TP-ISA.

Runs the same multiply kernel on the TP-ISA system and on all four
baseline microprocessors in EGFET, comparing static code size,
execution time, and energy -- the Section 8 story in one table.  All
five implementations are functionally verified against each other.

Run:  python examples/isa_comparison.py
"""

from repro.baselines.kernels import BASELINE_CORES, run_baseline
from repro.eval.system import evaluate_system
from repro.programs import build_benchmark
from repro.programs.builder import unpack_words
from repro.sim import Machine


def main() -> None:
    # TP-ISA system (standard 8-bit single-cycle core + ROM + RAM).
    program = build_benchmark("mult", 8, 8)
    machine = Machine(program)
    machine.run()
    tp_product = machine.peek("product")
    tp = evaluate_system(program)

    print(f"benchmark: 8-bit multiply (product = {tp_product})\n")
    header = (f"{'core':<12} {'ISA':<18} {'code bytes':>10} "
              f"{'time s':>9} {'energy J':>10} {'result':>7}")
    print(header)
    print("-" * len(header))
    print(f"{'TP-ISA':<12} {'memory-memory':<18} "
          f"{program.static_size * 3:>10} {tp.total_time:>9.2f} "
          f"{tp.total_energy:>10.4f} {tp_product:>7}")

    for core in BASELINE_CORES:
        run = run_baseline(core, "mult")
        result = run.result["product"] & 0xFF
        agrees = "ok" if result == tp_product else "MISMATCH"
        isa = {
            "openMSP430": "register",
            "Z80": "enhanced 8080",
            "light8080": "accumulator",
            "ZPU_small": "stack",
        }[core]
        print(f"{core:<12} {isa:<18} {run.size_bytes:>10} "
              f"{run.time_seconds:>9.2f} {run.core_energy_joules:>10.4f} "
              f"{result:>7} {agrees}")

    best = min(
        (run_baseline(core, "mult") for core in BASELINE_CORES),
        key=lambda r: r.core_energy_joules,
    )
    print(f"\nTP-ISA advantage over the best baseline ({best.core}):")
    print(f"  {best.time_seconds / tp.total_time:.0f}x faster, "
          f"{best.core_energy_joules / tp.total_energy:.0f}x less energy")


if __name__ == "__main__":
    main()
