#!/usr/bin/env python3
"""Program-specific processors: print exactly the hardware one program
needs (the paper's Section 7).

Because an inkjet printer fabricates on demand, a processor can be
specialized to a single program at print time: the PC, BARs, flag
register, and instruction operand fields all shrink to what static
analysis proves the program uses.  This script runs that flow for each
benchmark: analyze -> shrink -> re-elaborate -> verify by gate-level
co-simulation -> compare area/power, and finally dumps the shrunken
core as structural Verilog.

Run:  python examples/program_specific_printing.py
"""

from repro.coregen import CoreConfig, generate_core, program_specific_config
from repro.coregen.cosim import cosim_verify
from repro.dse.sweep import evaluate_design
from repro.isa.analysis import analyze_program
from repro.netlist.verilog import dump_verilog
from repro.programs import BENCHMARKS, build_benchmark
from repro.units import to_cm2, to_mW


def main() -> None:
    base = CoreConfig(datawidth=8)
    base_point = evaluate_design(base, "EGFET")
    print(f"standard core {base.name}: {to_cm2(base_point.area):.2f} cm^2, "
          f"{to_mW(base_point.power_at_fmax):.2f} mW\n")

    print(f"{'benchmark':<8} {'pc':>3} {'bars':>4} {'flags':>5} {'instr':>6} "
          f"{'area gain':>10} {'power gain':>11} {'equivalent':>11}")
    for name in BENCHMARKS:
        program = build_benchmark(name, 8, 8)
        analysis = analyze_program(program)
        config = program_specific_config(base, analysis)
        point = evaluate_design(config, "EGFET")
        mismatches = cosim_verify(program, config)
        print(f"{name:<8} {analysis.pc_bits:>3} {analysis.num_bars:>4} "
              f"{analysis.num_flags:>5} {analysis.instruction_bits:>5}b "
              f"{base_point.area / point.area:>9.2f}x "
              f"{base_point.power_at_fmax / point.power_at_fmax:>10.2f}x "
              f"{'yes' if not mismatches else 'NO':>11}")

    # Emit the mult-specific core as synthesizable structural Verilog.
    program = build_benchmark("mult", 8, 8)
    config = program_specific_config(base, analyze_program(program))
    verilog = dump_verilog(generate_core(config))
    lines = verilog.count("\n")
    print(f"\nstructural Verilog for the mult-specific core: "
          f"{lines} lines; first ones:")
    print("\n".join(verilog.splitlines()[:6]))


if __name__ == "__main__":
    main()
