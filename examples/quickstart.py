#!/usr/bin/env python3
"""Quickstart: assemble, simulate, and print a TP-ISA microprocessor.

Walks the core flow end to end:

1. write a small TP-ISA program in assembly text,
2. run it on the instruction-set simulator,
3. elaborate a single-cycle core netlist in the EGFET library and
   report its area / power / fmax,
4. co-simulate the gate-level netlist against the ISS to prove the
   printed design computes the same thing.

Run:  python examples/quickstart.py
"""

from repro.coregen import CoreConfig, generate_core
from repro.coregen.cosim import cosim_verify
from repro.isa import assemble
from repro.netlist import area_report, power_report, timing_report
from repro.pdk import egfet_library
from repro.sim import Machine
from repro.units import to_cm2, to_mW

SOURCE = """
; sum the numbers 1..10 into `total`
.width 8
.word total 0
.word i 10
.word one 1

loop:
    ADD total, i        ; total += i
    SUB i, one          ; i -= 1
    BRN loop, Z         ; repeat while i != 0
    HALT
"""


def main() -> None:
    # 1. Assemble.
    program = assemble(SOURCE, name="sum10")
    print(f"assembled {program.static_size} instructions, "
          f"{program.data_words_used()} data words")

    # 2. Instruction-set simulation.
    machine = Machine(program)
    machine.run()
    print(f"ISS result: total = {machine.peek('total')} (expected 55)")
    print(f"dynamic instructions: {machine.stats.instructions}, "
          f"memory accesses: {machine.stats.memory_accesses}")

    # 3. Elaborate a printed core and measure it.
    config = CoreConfig(datawidth=8, pipeline_stages=1, num_bars=2)
    netlist = generate_core(config)
    library = egfet_library()
    area = area_report(netlist, library)
    power = power_report(netlist, library)
    timing = timing_report(netlist, library)
    print(f"\ncore {config.name} in {library.name}:")
    print(f"  {area.gate_count} cells ({area.dff_count} flip-flops)")
    print(f"  area  {to_cm2(area.total):.2f} cm^2")
    print(f"  fmax  {timing.fmax:.1f} Hz")
    print(f"  power {to_mW(power.power_at(timing.fmax)):.2f} mW at fmax")

    # 4. Prove the netlist executes the program identically.
    mismatches = cosim_verify(program, config)
    print(f"\ngate-level co-simulation: "
          f"{'EQUIVALENT' if not mismatches else mismatches}")


if __name__ == "__main__":
    main()
