#!/usr/bin/env python3
"""Smart bandage: a complete printed-system design study.

The paper's motivating scenario: a disposable wound-monitoring bandage
(Table 3: 8-bit precision, ~0.01 Hz sampling) that thresholds a wound-
oxygenation reading and counts alarm conditions.  This script sizes the
whole printed system -- program-specific TP-ISA core, crosspoint
instruction ROM, right-sized SRAM -- and picks a printed battery for a
multi-day service life.

Run:  python examples/smart_bandage.py
"""

from repro.apps.feasibility import assess
from repro.apps.requirements import application_by_name
from repro.eval.system import evaluate_system
from repro.power.battery import PRINTED_BATTERIES
from repro.power.lifetime import lifetime_hours
from repro.programs import build_benchmark
from repro.units import to_cm2, to_mJ, to_uW


def main() -> None:
    application = application_by_name("smart bandage")
    print(f"application: {application.name}")
    print(f"  sample rate {application.sample_rate_hz} Hz, "
          f"{application.precision_bits}-bit data, "
          f"duty class '{application.duty_cycle.value}'")

    # The monitoring kernel: threshold 16 sensor readings per wake-up.
    program = build_benchmark("tHold", 8, 8)
    system = evaluate_system(program, program_specific=True)
    print(f"\nprinted system ({system.core_name}, EGFET):")
    print(f"  total area {to_cm2(system.total_area):.2f} cm^2 "
          f"(core {to_cm2(system.core_area):.2f}, "
          f"ROM {to_cm2(system.imem_area):.2f}, "
          f"RAM {to_cm2(system.dmem_area):.2f})")
    print(f"  one monitoring pass: {to_mJ(system.total_energy):.2f} mJ "
          f"in {system.total_time:.2f} s")

    # One pass per 100 s sample period -> tiny duty fraction.
    duty = system.total_time * application.sample_rate_hz
    active_power = system.average_power
    print(f"  active power {to_uW(active_power):.0f} uW, "
          f"effective duty {duty:.4f}")

    print("\nbattery options:")
    for battery in PRINTED_BATTERIES:
        hours = lifetime_hours(battery, active_power, max(duty, 1e-4))
        verdict = assess(
            application,
            ips=system.cycles / system.total_time,
            datawidth=8,
            active_power=active_power,
            battery=battery,
        )
        status = "ok" if verdict.feasible else "too slow"
        print(f"  {battery.name:<22} {hours / 24:8.1f} days   [{status}]")


if __name__ == "__main__":
    main()
