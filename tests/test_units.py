"""Tests for unit conversion helpers."""

import pytest

from repro import units


@pytest.mark.parametrize(
    "forward,backward,value",
    [
        (units.mm2, units.to_mm2, 0.224),
        (units.cm2, units.to_cm2, 11.15),
        (units.nJ, units.to_nJ, 2360.0),
        (units.mJ, units.to_mJ, 3.5),
        (units.us, units.to_us, 6149.0),
        (units.ms, units.to_ms, 2.5),
        (units.mW, units.to_mW, 41.7),
        (units.uW, units.to_uW, 16.0),
    ],
)
def test_round_trip(forward, backward, value):
    assert backward(forward(value)) == pytest.approx(value)


def test_area_scales_consistent():
    assert units.cm2(1.0) == pytest.approx(units.mm2(100.0))
    assert units.mm2(1.0) == pytest.approx(units.um2(1e6))


def test_battery_energy_budget_matches_paper():
    """Section 4: a 30 mAh, 1 V battery stores 108 J."""
    assert units.mAh(30, voltage=1.0) == pytest.approx(108.0)


def test_hours_conversion():
    assert units.to_hours(7200.0) == pytest.approx(2.0)
