"""Fabric model: geometry, capacity, fit diagnostics, auto-sizing."""

import math

import pytest

from repro.coregen.config import config_from_name
from repro.coregen.generator import generate_core
from repro.errors import PlacementError
from repro.pdk import technology_library
from repro.place import (
    Fabric,
    LOGIC_KIND,
    SEQ_KIND,
    fabric_for,
    fit_report,
    named_fabric,
    slot_demand,
    slot_kind_for_cell,
)


class TestFabric:
    def test_named_fabrics(self):
        small = named_fabric("small")
        assert (small.rows, small.cols) == (24, 24)
        assert small.technology == "EGFET"
        assert named_fabric("large").rows == 96

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(PlacementError, match="small"):
            named_fabric("tiny")

    def test_capacity_partitions_the_grid(self):
        fabric = named_fabric("small")
        capacity = fabric.capacity()
        assert capacity[LOGIC_KIND] + capacity[SEQ_KIND] == 24 * 24
        assert capacity[SEQ_KIND] == 24 * (24 // 8)
        assert len(fabric.slots_of_kind(SEQ_KIND)) == capacity[SEQ_KIND]

    def test_slot_kind_matches_slots_of_kind(self):
        fabric = Fabric(name="t", technology="EGFET", rows=4, cols=9,
                        seq_every=3)
        for row, col in fabric.slots_of_kind(SEQ_KIND):
            assert fabric.slot_kind(row, col) == SEQ_KIND

    def test_pitch_is_largest_cell_side(self):
        for technology in ("EGFET", "CNT"):
            library = technology_library(technology)
            expected = math.sqrt(max(cell.area for cell in library))
            assert named_fabric("small", technology).pitch == expected

    def test_cnt_sheet_is_much_smaller(self):
        egfet = named_fabric("small", "EGFET")
        cnt = named_fabric("small", "CNT")
        assert egfet.die_area > 20 * cnt.die_area

    def test_bad_geometry_rejected(self):
        with pytest.raises(PlacementError):
            Fabric(name="z", technology="EGFET", rows=0, cols=4)
        with pytest.raises(PlacementError):
            Fabric(name="z", technology="EGFET", rows=4, cols=4, seq_every=1)

    def test_slot_kind_bounds_checked(self):
        with pytest.raises(PlacementError):
            named_fabric("small").slot_kind(24, 0)


class TestFit:
    def test_slot_kind_for_cell(self):
        assert slot_kind_for_cell("DFFX1") == SEQ_KIND
        assert slot_kind_for_cell("NAND2X1") == LOGIC_KIND

    def test_p1_8_2_fits_small(self):
        netlist = generate_core(config_from_name("p1_8_2"))
        fit = fit_report(netlist, named_fabric("small"))
        assert fit.fits
        assert fit.overflow == {LOGIC_KIND: 0, SEQ_KIND: 0}
        assert "fits" in fit.render()

    def test_p3_16_4_overflows_small_with_diagnostics(self):
        netlist = generate_core(config_from_name("p3_16_4"))
        fit = fit_report(netlist, named_fabric("small"))
        assert not fit.fits
        assert fit.overflow[LOGIC_KIND] > 0
        text = fit.render()
        assert "OVERFLOW" in text
        assert "slot(s) short" in text
        assert fit.to_dict()["fits"] is False

    def test_fabric_for_fits_every_sweep_config(self):
        for name in ("p1_4_2", "p3_16_4", "p3_32_4"):
            netlist = generate_core(config_from_name(name))
            fabric = fabric_for(netlist)
            fit = fit_report(netlist, fabric)
            assert fit.fits, fit.render()
            demand = slot_demand(netlist)
            # Auto-sizing honours the utilization headroom per kind.
            for kind, used in demand.items():
                assert used <= 0.8 * fabric.capacity()[kind]

    def test_medium_fits_every_sweep_config(self):
        from repro.coregen.config import standard_sweep

        fabric = named_fabric("medium")
        for config in standard_sweep():
            fit = fit_report(generate_core(config), fabric)
            assert fit.fits, fit.render()
