"""Wire-aware PPA: monotonicity vs the wire-blind mode, conservation.

Physics check: routed wire only ever *adds* load and delay, so the
wire-aware numbers must be >= the wire-blind (``rc=None``) numbers on
every design -- and the attribution conservation invariant must keep
holding bit-exactly with wire energy folded into the buckets.
"""

import pytest

from repro.coregen.config import CoreConfig, config_from_name
from repro.coregen.cosim import CoSimHarness
from repro.coregen.generator import generate_core
from repro.netlist.power import (
    attributed_power_report,
    measured_power_report,
    power_report,
)
from repro.netlist.sta import timing_report
from repro.pdk import technology_library
from repro.place import named_fabric, place, rc_annotation, wire_aware_ppa

#: A cross-section of the sweep (the full 24-config x 2-technology
#: grid is exercised by the placement-quality bench).
SWEEP = ("p1_4_2", "p1_8_2", "p2_8_2", "p1_16_2")


@pytest.mark.parametrize("name", SWEEP)
@pytest.mark.parametrize("technology", ("EGFET", "CNT"))
def test_wire_aware_is_strictly_worse_than_blind(name, technology):
    netlist = generate_core(config_from_name(name))
    fabric = named_fabric("medium", technology)
    placement = place(netlist, fabric, seed=0)
    library = technology_library(technology)
    ppa = wire_aware_ppa(netlist, placement, library)
    assert (
        ppa["wire_aware"]["critical_path_delay"]
        > ppa["wire_blind"]["critical_path_delay"]
    )
    assert (
        ppa["wire_aware"]["energy_per_cycle"]
        > ppa["wire_blind"]["energy_per_cycle"]
    )
    assert ppa["wire_aware"]["fmax"] < ppa["wire_blind"]["fmax"]
    assert ppa["delay_overhead_pct"] > 0.0
    assert ppa["energy_overhead_pct"] > 0.0


def test_wire_energy_is_reported_and_folded():
    netlist = generate_core(config_from_name("p1_8_2"))
    placement = place(netlist, named_fabric("small"), seed=0)
    library = technology_library("EGFET")
    rc = rc_annotation(netlist, placement, library)
    report = power_report(netlist, library, rc=rc)
    blind = power_report(netlist, library)
    assert report.wire_energy > 0.0
    assert report.energy_per_cycle == pytest.approx(
        blind.energy_per_cycle + report.wire_energy
    )
    # Wire terms live inside the comb/seq buckets, not beside them.
    assert report.energy_per_cycle == (
        report.combinational_energy + report.sequential_energy
    )


class TestMeasuredConservationWithWire:
    @pytest.fixture(scope="class")
    def measured(self):
        from repro.programs import build_benchmark

        config = CoreConfig(datawidth=8)
        program = build_benchmark("mult", 8, 8)
        harness = CoSimHarness(program, config)
        for _ in range(50):
            harness.step()
        netlist = harness.netlist
        placement = place(netlist, named_fabric("small"), seed=0)
        return netlist, placement, harness.sim.toggle_counts(), harness.sim.cycles

    @pytest.mark.parametrize("technology", ("EGFET", "CNT"))
    def test_conservation_stays_bit_exact_with_wire_energy(
        self, measured, technology
    ):
        netlist, placement, toggles, cycles = measured
        library = technology_library(technology)
        rc = rc_annotation(netlist, placement, library)
        report = attributed_power_report(
            netlist, library, toggles, cycles, rc=rc
        )
        assert report.conservation_error() == (0.0, 0.0)
        assert (
            sum(report.by_module.values()) == report.total.energy_per_cycle
        )
        assert sum(report.by_cell.values()) == report.total.energy_per_cycle
        direct = measured_power_report(netlist, library, toggles, cycles, rc=rc)
        assert report.total == direct
        # And the wire-aware measured total exceeds the blind one.
        blind = measured_power_report(netlist, library, toggles, cycles)
        assert direct.energy_per_cycle > blind.energy_per_cycle

    def test_rc_none_measured_total_unchanged(self, measured):
        netlist, _, toggles, cycles = measured
        library = technology_library("EGFET")
        with_kwarg = measured_power_report(
            netlist, library, toggles, cycles, rc=None
        )
        without = measured_power_report(netlist, library, toggles, cycles)
        assert with_kwarg == without


def test_rc_none_timing_identical_to_omitting_the_kwarg():
    netlist = generate_core(config_from_name("p1_8_2"))
    library = technology_library("EGFET")
    assert timing_report(netlist, library, rc=None) == timing_report(
        netlist, library
    )
