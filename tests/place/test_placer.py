"""Placer properties: determinism, HPWL improvement, overflow, RC."""

import pytest

from repro.coregen.config import config_from_name
from repro.coregen.generator import generate_core
from repro.errors import PlacementError
from repro.netlist.core import SEQUENTIAL_CELLS
from repro.pdk import technology_library
from repro.place import (
    dependency_levels,
    fabric_for,
    named_fabric,
    net_lengths,
    place,
    rc_annotation,
)
from repro.place.fabric import slot_kind_for_cell


@pytest.fixture(scope="module")
def placed():
    """One placed headline core, shared across the property tests."""
    netlist = generate_core(config_from_name("p1_8_2"))
    fabric = named_fabric("small")
    return netlist, fabric, place(netlist, fabric, seed=0)


class TestPlacement:
    def test_every_instance_gets_a_unique_compatible_slot(self, placed):
        netlist, fabric, placement = placed
        assert len(placement.locations) == len(netlist.instances)
        assert len(set(placement.locations)) == len(placement.locations)
        for instance, (row, col) in zip(
            netlist.instances, placement.locations
        ):
            assert fabric.slot_kind(row, col) == slot_kind_for_cell(
                instance.cell
            )

    def test_annealed_hpwl_never_worse_than_greedy(self, placed):
        _, _, placement = placed
        assert placement.hpwl <= placement.greedy_hpwl
        assert placement.improvement_pct >= 0.0

    def test_same_seed_is_byte_identical(self, placed):
        netlist, fabric, placement = placed
        again = place(netlist, fabric, seed=0)
        assert again.locations == placement.locations
        assert again.hpwl == placement.hpwl
        assert again.anneal_accepted == placement.anneal_accepted

    def test_different_seed_changes_the_anneal(self, placed):
        netlist, fabric, placement = placed
        other = place(netlist, fabric, seed=1)
        assert other.locations != placement.locations
        # Both still beat (or match) the same deterministic greedy seed.
        assert other.greedy_hpwl == placement.greedy_hpwl
        assert other.hpwl <= other.greedy_hpwl

    def test_overflow_raises_with_fit_diagnostics(self):
        netlist = generate_core(config_from_name("p3_16_4"))
        with pytest.raises(PlacementError) as err:
            place(netlist, named_fabric("small"))
        assert "OVERFLOW" in str(err.value)
        assert "slot(s) short" in str(err.value)

    def test_dependency_levels(self, placed):
        netlist, _, _ = placed
        levels = dependency_levels(netlist)
        driver_level = {
            inst.output: levels[i]
            for i, inst in enumerate(netlist.instances)
        }
        for i, instance in enumerate(netlist.instances):
            if instance.cell in SEQUENTIAL_CELLS:
                assert levels[i] == 0
            else:
                for net in instance.inputs:
                    if net in driver_level:
                        fed_by = netlist.instances[
                            [x.output for x in netlist.instances].index(net)
                        ]
                        if fed_by.cell not in SEQUENTIAL_CELLS:
                            assert levels[i] > driver_level[net]


class TestRcAnnotation:
    def test_net_lengths_are_positive_and_finite(self, placed):
        netlist, _, placement = placed
        lengths = net_lengths(netlist, placement)
        assert lengths
        assert all(length >= 0.0 for length in lengths.values())
        assert sum(lengths.values()) > 0.0

    def test_rc_scales_with_library_constants(self, placed):
        netlist, _, placement = placed
        library = technology_library("EGFET")
        rc = rc_annotation(netlist, placement, library)
        assert rc.source == "place:small:seed0"
        lengths = net_lengths(netlist, placement)
        for net, wire in rc.nets.items():
            assert wire.resistance == pytest.approx(
                library.wire_resistance * lengths[net]
            )
            assert wire.capacitance == pytest.approx(
                library.wire_capacitance * lengths[net]
            )

    def test_cnt_fabric_yields_shorter_wires(self):
        netlist = generate_core(config_from_name("p1_8_2"))
        egfet = place(netlist, named_fabric("small", "EGFET"), seed=0)
        cnt = place(netlist, named_fabric("small", "CNT"), seed=0)
        # Same slot grid, ~8x smaller pitch: the CNT sheet's wires are
        # physically shorter even though the placement problem is
        # identical.
        assert cnt.hpwl < egfet.hpwl / 5

    def test_auto_fabric_placement(self):
        netlist = generate_core(config_from_name("p1_4_2"))
        fabric = fabric_for(netlist)
        placement = place(netlist, fabric, seed=0)
        assert placement.hpwl <= placement.greedy_hpwl
