"""The ``python -m repro place`` subcommand.

Includes the PR's headline determinism guarantee: the same seed
produces **byte-identical** layout pages and identical placement
records whether configs are placed serially or fanned out across
worker processes (``--jobs 2``).
"""

import json

from repro.apps.place import place_main

CONFIGS = ["p1_4_2", "p1_8_2"]


def _run(tmp_path, tag, jobs):
    out = tmp_path / tag
    out.mkdir()
    report = out / "RUN_REPORT.json"
    code = place_main(
        CONFIGS
        + ["--fabric", "small", "--seed", "0", "--sweeps", "3",
           "--jobs", str(jobs), "--out", str(out),
           "--report", str(report)]
    )
    assert code == 0
    layouts = {
        path.name: path.read_bytes() for path in out.glob("layout*.html")
    }
    placements = json.loads(report.read_text())["placements"]
    return layouts, placements


class TestPlaceCli:
    def test_jobs_do_not_perturb_placement(self, tmp_path, capsys):
        serial_layouts, serial = _run(tmp_path, "serial", jobs=1)
        parallel_layouts, parallel = _run(tmp_path, "parallel", jobs=2)
        capsys.readouterr()
        assert sorted(serial_layouts) == [
            "layout_p1_4_2.html", "layout_p1_8_2.html",
        ]
        # Byte-identical pages, identical quality numbers.
        assert serial_layouts == parallel_layouts
        for design in ("p1_4_2", "p1_8_2"):
            assert serial[design]["hpwl_m"] == parallel[design]["hpwl_m"]
            assert serial[design]["seed"] == 0
            assert serial[design]["fit"]["fits"] is True
            ppa = serial[design]["ppa"]
            assert (
                ppa["wire_aware"]["critical_path_delay"]
                >= ppa["wire_blind"]["critical_path_delay"]
            )

    def test_single_config_writes_layout_html(self, tmp_path, capsys):
        code = place_main(
            ["p1_4_2", "--fabric", "small", "--sweeps", "2",
             "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert (tmp_path / "layout.html").exists()
        assert "wire-aware" in out
        assert "fits" in out

    def test_overflow_exits_nonzero_with_diagnostics(self, tmp_path, capsys):
        code = place_main(
            ["p3_16_4", "--fabric", "small", "--out", str(tmp_path)]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "OVERFLOW" in err
        assert "slot(s) short" in err

    def test_bad_usage(self, capsys):
        assert place_main([]) == 2
        assert place_main(["--bogus"]) == 2
        assert place_main(["p1_4_2", "--seed"]) == 2
        capsys.readouterr()

    def test_unknown_fabric_fails_cleanly(self, tmp_path, capsys):
        code = place_main(
            ["p1_4_2", "--fabric", "nope", "--out", str(tmp_path)]
        )
        assert code == 1
        assert "unknown fabric" in capsys.readouterr().err

    def test_help(self, capsys):
        assert place_main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out
