"""Verilog emission is valid for every sweep configuration."""

import re

import pytest

from repro.coregen.config import standard_sweep
from repro.coregen.generator import generate_core
from repro.netlist.verilog import dump_verilog


@pytest.mark.parametrize("config", standard_sweep(), ids=lambda c: c.name)
def test_verilog_emits_for_every_sweep_point(config):
    netlist = generate_core(config)
    text = dump_verilog(netlist)
    assert text.startswith(f"module {config.name} (")
    assert text.rstrip().endswith("endmodule")
    # Every placed instance appears exactly once.
    instance_lines = re.findall(r"^\s+[A-Z0-9]+X1 u\d+ \(", text, re.MULTILINE)
    assert len(instance_lines) == len(netlist.instances)
    # All instance names unique.
    names = re.findall(r" (u\d+) \(", text)
    assert len(names) == len(set(names))
    # Clock present (there are always flops).
    assert ".CK(clk)" in text
