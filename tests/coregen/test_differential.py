"""Differential verification: hypothesis-generated random TP-ISA
programs executed on the gate-level core vs the ISS.

This is the strongest equivalence evidence in the suite: the programs
are arbitrary instruction soup (all ALU operations, stores, SETBARs,
and forward branches -- guaranteed to halt), not hand-written kernels,
so systematic encode/decode/datapath disagreements cannot hide in
kernel idioms.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coregen.config import CoreConfig
from repro.coregen.cosim import cosim_verify
from repro.isa.program import Program
from repro.isa.spec import Instruction, MemOperand, Mnemonic

MEM_WORDS = 8  # small data space so operations collide interestingly

ALU_BINARY = [
    Mnemonic.ADD, Mnemonic.ADC, Mnemonic.SUB, Mnemonic.CMP, Mnemonic.SBB,
    Mnemonic.AND, Mnemonic.TEST, Mnemonic.OR, Mnemonic.XOR,
]
ALU_UNARY = [
    Mnemonic.NOT, Mnemonic.RL, Mnemonic.RLC, Mnemonic.RR, Mnemonic.RRC,
    Mnemonic.RRA,
]


def operand(draw, offsets):
    return MemOperand(offset=draw(offsets), bar=draw(st.integers(0, 1)))


@st.composite
def random_programs(draw, datawidth=8, length=12):
    offsets = st.integers(0, MEM_WORDS - 1)
    count = draw(st.integers(3, length))
    instructions = []
    for index in range(count):
        kind = draw(st.integers(0, 9))
        if kind <= 4:
            mnemonic = draw(st.sampled_from(ALU_BINARY))
            instructions.append(Instruction(
                mnemonic,
                dst=operand(draw, offsets),
                src=operand(draw, offsets),
            ))
        elif kind <= 6:
            mnemonic = draw(st.sampled_from(ALU_UNARY))
            instructions.append(Instruction(
                mnemonic,
                dst=operand(draw, offsets),
                src=operand(draw, offsets),
            ))
        elif kind == 7:
            # STORE's immediate field is architecturally 8 bits.
            instructions.append(Instruction(
                Mnemonic.STORE,
                dst=operand(draw, offsets),
                imm=draw(st.integers(0, min(255, (1 << datawidth) - 1))),
            ))
        elif kind == 8:
            instructions.append(Instruction(
                Mnemonic.SETBAR,
                bar_index=1,
                src=MemOperand(draw(offsets)),
            ))
        else:
            # Forward branch only: the program always terminates.
            target = draw(st.integers(index + 1, count))
            mnemonic = draw(st.sampled_from([Mnemonic.BR, Mnemonic.BRN]))
            instructions.append(Instruction(
                mnemonic, target=target, mask=draw(st.integers(0, 15))
            ))
    data = {
        address: draw(st.integers(0, (1 << datawidth) - 1))
        for address in range(MEM_WORDS)
    }
    return Program(
        name="fuzz",
        instructions=instructions,
        datawidth=datawidth,
        num_bars=2,
        data=data,
    )


@settings(max_examples=40, deadline=None)
@given(program=random_programs())
def test_random_programs_equivalent_single_stage(program):
    mismatches = cosim_verify(program, CoreConfig(datawidth=8))
    assert not mismatches, "; ".join(str(m) for m in mismatches[:5])


@settings(max_examples=15, deadline=None)
@given(program=random_programs(datawidth=16, length=8))
def test_random_programs_equivalent_16bit(program):
    mismatches = cosim_verify(program, CoreConfig(datawidth=16))
    assert not mismatches, "; ".join(str(m) for m in mismatches[:5])


@settings(max_examples=12, deadline=None)
@given(program=random_programs(length=8))
def test_random_programs_equivalent_three_stage(program):
    mismatches = cosim_verify(
        program, CoreConfig(datawidth=8, pipeline_stages=3)
    )
    assert not mismatches, "; ".join(str(m) for m in mismatches[:5])
