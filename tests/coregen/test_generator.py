"""Structural tests for the core generator across the design space."""

import pytest

from repro.netlist.sta import timing_report
from repro.netlist.stats import area_report
from repro.netlist.power import power_report
from repro.netlist.verilog import dump_verilog
from repro.pdk import cnt_tft_library, egfet_library
from repro.coregen.config import CoreConfig, standard_sweep
from repro.coregen.generator import generate_core


@pytest.fixture(scope="module")
def egfet():
    return egfet_library()


class TestElaboration:
    @pytest.mark.parametrize("config", standard_sweep(), ids=lambda c: c.name)
    def test_every_sweep_point_elaborates_and_validates(self, config):
        netlist = generate_core(config)  # validates internally
        assert netlist.instances
        for port in ("instr", "rdata_a", "rdata_b", "rst_n"):
            assert port in netlist.inputs
        for port in ("pc", "addr_a", "addr_b", "we", "waddr", "wdata"):
            assert port in netlist.outputs

    def test_port_widths_track_config(self):
        config = CoreConfig(datawidth=16, num_bars=4)
        netlist = generate_core(config)
        assert len(netlist.inputs["instr"]) == 24
        assert len(netlist.inputs["rdata_a"]) == 16
        assert len(netlist.outputs["wdata"]) == 16
        assert len(netlist.outputs["addr_a"]) == 8

    def test_verilog_dump_works(self):
        text = dump_verilog(generate_core(CoreConfig()))
        assert "module p1_8_2" in text
        assert "DFFNRX1" in text


class TestDesignSpaceShape(object):
    """The paper's Figure 7 trends must be emergent properties."""

    def test_area_grows_with_datawidth(self, egfet):
        areas = [
            area_report(generate_core(CoreConfig(datawidth=w)), egfet).total
            for w in (4, 8, 16, 32)
        ]
        assert areas == sorted(areas)

    def test_pipeline_registers_cost_area_and_power(self, egfet):
        by_stage = [
            generate_core(CoreConfig(datawidth=8, pipeline_stages=s))
            for s in (1, 2, 3)
        ]
        areas = [area_report(n, egfet).total for n in by_stage]
        energies = [power_report(n, egfet).energy_per_cycle for n in by_stage]
        dffs = [area_report(n, egfet).dff_count for n in by_stage]
        assert areas[0] < areas[1] < areas[2]
        assert energies[0] < energies[1] < energies[2]
        assert dffs[0] < dffs[1] < dffs[2]

    def test_pipelining_does_not_speed_up_printed_cores(self, egfet):
        """The key Figure 7 finding: the memory-bounded stage split
        plus expensive DFF clock-to-Q means multi-stage cores gain no
        clock frequency -- single-stage dominates."""
        fmaxes = [
            timing_report(
                generate_core(CoreConfig(datawidth=8, pipeline_stages=s)), egfet
            ).fmax
            for s in (1, 2, 3)
        ]
        assert fmaxes[0] >= fmaxes[1] >= fmaxes[2] * 0.95

    def test_more_bars_cost_area(self, egfet):
        two = area_report(generate_core(CoreConfig(num_bars=2)), egfet).total
        four = area_report(generate_core(CoreConfig(num_bars=4)), egfet).total
        assert four > two

    def test_wider_cores_are_slower(self, egfet):
        fmaxes = [
            timing_report(generate_core(CoreConfig(datawidth=w)), egfet).fmax
            for w in (4, 8, 16, 32)
        ]
        assert fmaxes == sorted(fmaxes, reverse=True)

    def test_cnt_cores_are_orders_of_magnitude_faster(self, egfet):
        netlist = generate_core(CoreConfig())
        egfet_fmax = timing_report(netlist, egfet).fmax
        cnt_fmax = timing_report(netlist, cnt_tft_library()).fmax
        assert cnt_fmax > 300 * egfet_fmax

    def test_smallest_tp_core_much_smaller_than_light8080(self, egfet):
        """Section 5.2: the smallest 8-bit TP-ISA core is ~5x smaller
        than the light8080 (11.15 cm^2 in EGFET)."""
        from repro.units import cm2

        smallest = area_report(generate_core(CoreConfig(datawidth=8)), egfet).total
        assert smallest < cm2(11.15) / 3.5


class TestProgramSpecificShrink:
    def test_ps_core_smaller_than_standard(self, egfet):
        from repro.isa.analysis import analyze_program
        from repro.programs import build_benchmark
        from repro.coregen.config import program_specific_config

        program = build_benchmark("mult", 8, 8)
        base = CoreConfig(datawidth=8)
        ps = program_specific_config(base, analyze_program(program))
        base_area = area_report(generate_core(base), egfet).total
        ps_area = area_report(generate_core(ps), egfet).total
        assert ps_area < base_area

    def test_barless_core_loses_address_adders(self, egfet):
        base = generate_core(CoreConfig(num_bars=2))
        barless = generate_core(
            CoreConfig(num_bars=1, bar_bits=0, operand1_bits=8, operand2_bits=8)
        )
        assert (
            area_report(barless, egfet).gate_count
            < area_report(base, egfet).gate_count
        )

    def test_flagless_core_loses_flag_registers(self, egfet):
        flagless = generate_core(CoreConfig(flags=()))
        names = [flagless.net_name(i.output) for i in flagless.instances]
        assert not any(name.startswith("flag_") for name in names)
