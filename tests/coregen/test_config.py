"""Tests for core configurations and program-specific shrinking."""

import pytest

from repro.errors import ConfigError
from repro.isa.analysis import analyze_program
from repro.isa.assembler import assemble
from repro.isa.spec import Flag
from repro.coregen.config import (
    ALL_FLAGS,
    CoreConfig,
    program_specific_config,
    standard_sweep,
)


class TestCoreConfig:
    def test_standard_instruction_width_is_24(self):
        assert CoreConfig().instruction_bits == 24

    def test_name_follows_paper_convention(self):
        config = CoreConfig(datawidth=16, pipeline_stages=3, num_bars=4)
        assert config.name == "p3_16_4"

    def test_bar_select_bits(self):
        assert CoreConfig(num_bars=2).bar_select_bits == 1
        assert CoreConfig(num_bars=4).bar_select_bits == 2
        assert CoreConfig(num_bars=1, bar_bits=0).bar_select_bits == 0

    def test_offset_bits_shrink_with_bars(self):
        assert CoreConfig(num_bars=2).offset1_bits == 7
        assert CoreConfig(num_bars=4).offset1_bits == 6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"datawidth": 12},
            {"pipeline_stages": 4},
            {"num_bars": 3},
            {"pc_bits": 9},
            {"num_bars": 2, "bar_bits": 0},
            {"operand1_bits": 1, "num_bars": 4},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            CoreConfig(**kwargs)

    def test_sweep_has_24_points(self):
        sweep = standard_sweep()
        assert len(sweep) == 24
        assert len({c.name for c in sweep}) == 24


class TestProgramSpecific:
    def test_barless_program_loses_bars_and_adder(self):
        program = assemble(".word x\n.word y\nADD x, y\nHALT\n")
        config = program_specific_config(CoreConfig(), analyze_program(program))
        assert config.num_bars == 1
        assert config.bar_bits == 0

    def test_flags_shrink_to_consumed_set(self):
        program = assemble(".word x\nloop:\nCMP x, x\nBR loop, Z\nHALT\n")
        config = program_specific_config(CoreConfig(), analyze_program(program))
        assert config.flags == (Flag.Z,)

    def test_straightline_program_keeps_no_flags(self):
        program = assemble(".word x\n.word y\nADD x, y\n")
        config = program_specific_config(CoreConfig(), analyze_program(program))
        assert config.flags == ()

    def test_pc_shrinks(self):
        program = assemble(".word x\nSTORE x, 1\nHALT\n")
        config = program_specific_config(CoreConfig(), analyze_program(program))
        assert config.pc_bits <= 2

    def test_instruction_narrower_than_standard(self):
        program = assemble(".word x\n.word y\nADD x, y\nHALT\n")
        config = program_specific_config(CoreConfig(), analyze_program(program))
        assert config.instruction_bits < 24

    def test_datawidth_and_pipeline_preserved(self):
        program = assemble(".width 16\n.word x\n.word y\nADD x, y\nHALT\n")
        base = CoreConfig(datawidth=16, pipeline_stages=1)
        config = program_specific_config(base, analyze_program(program))
        assert config.datawidth == 16
        assert config.pipeline_stages == 1
