"""Gate-level vs ISS co-simulation: the equivalence evidence.

Every benchmark kernel family is executed instruction-by-instruction on
a generated single-stage core netlist (with behavioural ROM/RAM) and
the final architectural state -- PC, flags, BARs, all of data memory --
is compared against the reference simulator.
"""

import pytest

from repro.errors import ConfigError
from repro.isa.analysis import analyze_program
from repro.isa.assembler import assemble
from repro.programs import build_benchmark
from repro.coregen.config import CoreConfig, program_specific_config
from repro.coregen.cosim import CoSimHarness, cosim_verify

# Kept quick: one representative kernel per family, plus the deep
# coalescing and dynamic-BAR configurations.
COSIM_MATRIX = [
    ("mult", 8, 8),
    ("mult", 16, 8),    # 2-word coalescing
    ("mult", 8, 4),     # 4-bit core, multi-word counter
    ("div", 8, 8),
    ("intAvg", 8, 8),
    ("intAvg", 16, 16),
    ("tHold", 8, 8),    # dynamic SETBAR loop
    ("crc8", 8, 8),     # rotate/carry interplay
    ("dTree", 8, 8),    # 256-word program, branch-heavy
]


@pytest.mark.parametrize("name,kernel_width,core_width", COSIM_MATRIX)
def test_gate_level_matches_iss(name, kernel_width, core_width):
    program = build_benchmark(name, kernel_width, core_width)
    mismatches = cosim_verify(program)
    assert not mismatches, "; ".join(str(m) for m in mismatches[:10])


@pytest.mark.slow
def test_insort_gate_level_matches_iss():
    """inSort is the longest-running kernel (~20k cycles); kept in its
    own test so quick runs can deselect it with -m 'not slow'."""
    program = build_benchmark("inSort", 8, 8)
    mismatches = cosim_verify(program)
    assert not mismatches, "; ".join(str(m) for m in mismatches[:10])


def test_four_bar_core_matches_iss():
    program = build_benchmark("tHold", 8, 8, num_bars=4)
    config = CoreConfig(datawidth=8, num_bars=4)
    mismatches = cosim_verify(program, config)
    assert not mismatches, "; ".join(str(m) for m in mismatches[:10])


def test_program_specific_core_matches_iss():
    """The shrunken Section 7 core still executes its program exactly."""
    program = build_benchmark("mult", 8, 8)
    config = program_specific_config(
        CoreConfig(datawidth=8), analyze_program(program)
    )
    mismatches = cosim_verify(program, config)
    assert not mismatches, "; ".join(str(m) for m in mismatches[:10])


def test_program_specific_dtree_matches_iss():
    program = build_benchmark("dTree", 8, 8)
    config = program_specific_config(
        CoreConfig(datawidth=8), analyze_program(program)
    )
    mismatches = cosim_verify(program, config)
    assert not mismatches, "; ".join(str(m) for m in mismatches[:10])


@pytest.mark.parametrize("stages", [2, 3])
@pytest.mark.parametrize("name", ["mult", "div", "tHold", "crc8"])
def test_multistage_core_matches_iss(stages, name):
    """The pipeline control (flush on taken branches, stall on memory
    RAW and SETBAR hazards) is verified at gate level too."""
    program = build_benchmark(name, 8, 8)
    config = CoreConfig(datawidth=8, pipeline_stages=stages)
    mismatches = cosim_verify(program, config)
    assert not mismatches, "; ".join(str(m) for m in mismatches[:10])


@pytest.mark.parametrize("stages", [2, 3])
def test_multistage_raw_hazard_chain(stages):
    """Back-to-back dependent memory ops: the worst case for the
    3-stage stall comparator."""
    source = (
        ".word a 1\n.word b 2\n.word c 3\n"
        "ADD a, b\nADD b, a\nADD c, b\nADD a, c\nCMP a, b\nBR done, Z\n"
        "ADD a, a\ndone:\nHALT\n"
    )
    program = assemble(source)
    mismatches = cosim_verify(program, CoreConfig(datawidth=8, pipeline_stages=stages))
    assert not mismatches, "; ".join(str(m) for m in mismatches[:10])


@pytest.mark.parametrize("stages", [2, 3])
def test_multistage_setbar_hazard(stages):
    """SETBAR followed immediately by a BAR-relative access must stall
    in the 3-stage core."""
    source = (
        ".array buf 4\n.word ptr 2\n"
        "SETBAR 1, ptr\nSTORE b1:1, 77\nHALT\n"
    )
    program = assemble(source)
    mismatches = cosim_verify(program, CoreConfig(datawidth=8, pipeline_stages=stages))
    assert not mismatches, "; ".join(str(m) for m in mismatches[:10])


def test_harness_exposes_architectural_state():
    source = ".word x 3\n.word y 4\nADD x, y\nHALT\n"
    harness = CoSimHarness(assemble(source))
    harness.step()  # ADD
    assert harness.memory[0] == 7
    harness.step()  # HALT (branch to self)
    assert harness.pc == 1
