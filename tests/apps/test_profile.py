"""End-to-end tests for the profile-design driver and CLI."""

import json

import pytest

from repro.coregen.config import CoreConfig
from repro.apps.profile import (
    PROFILE_SCHEMA,
    _suffixed,
    profile_design,
    profile_designs,
    profile_main,
    render_profile,
)


@pytest.fixture(scope="module")
def crc8_profile(tmp_path_factory):
    """One full crc8 run on the headline core, shared across tests."""
    out = tmp_path_factory.mktemp("profile") / "crc8.vcd"
    profile = profile_design(
        CoreConfig(datawidth=8), program_name="crc8", vcd_path=out, top=5
    )
    return profile, out


class TestProfileDesign:
    def test_profile_shape(self, crc8_profile):
        profile, _ = crc8_profile
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["design"] == "p1_8_2"
        assert profile["program"].startswith("crc8")
        assert profile["cycles"] > 0
        # The reset tick precedes probe attachment, so the trace
        # covers every *profiled* cycle: sim cycles minus reset.
        assert profile["trace"]["recorded"] == profile["cycles"] - 1
        assert json.loads(json.dumps(profile)) == profile

    def test_energy_conservation(self, crc8_profile):
        profile, _ = crc8_profile
        total = profile["energy_per_cycle"]
        assert total > 0
        assert sum(profile["by_module"].values()) == total
        assert sum(profile["by_cell"].values()) == total

    def test_instruction_histogram(self, crc8_profile):
        profile, _ = crc8_profile
        assert 0 < len(profile["instructions"]) <= 5
        for entry in profile["instructions"]:
            assert entry["cycles"] > 0
            assert entry["disasm"]
            assert 0 <= entry["share"] <= 1
        cycle_total = sum(e["cycles"] for e in profile["instructions"])
        assert cycle_total <= profile["cycles"]

    def test_vcd_parses_with_architectural_nets(self, crc8_profile):
        profile, path = crc8_profile
        assert profile["vcd"] == str(path)
        text = path.read_text()
        assert "$timescale" in text
        assert "$enddefinitions $end" in text
        variables = [
            line for line in text.splitlines() if line.startswith("$var")
        ]
        declared = " ".join(variables)
        assert " pc [7:0]" in declared
        assert " flag_C" in declared
        assert " instr [23:0]" in declared
        assert " wdata [7:0]" in declared
        # Every value-change time marker is strictly increasing.
        times = [
            int(line[1:]) for line in text.splitlines()
            if line.startswith("#")
        ]
        assert times == sorted(set(times))
        assert len(times) > 10

    def test_render_is_textual(self, crc8_profile):
        profile, _ = crc8_profile
        text = render_profile(profile)
        assert "Energy by module" in text
        assert "Hottest instructions" in text
        assert profile["design"] in text

    def test_backends_agree_on_the_histograms(self):
        config = CoreConfig(datawidth=4)
        kw = dict(program_name="mult", top=3)
        compiled = profile_design(config, backend="compiled", **kw)
        interpreted = profile_design(config, backend="interpreted", **kw)
        for key in ("cycles", "by_module", "by_cell", "instructions",
                    "energy_per_cycle", "total_energy"):
            assert compiled[key] == interpreted[key]

    def test_trace_window_bounds_memory_not_energy(self):
        bounded = profile_design(
            CoreConfig(datawidth=4), program_name="mult", trace_maxlen=8
        )
        assert bounded["trace"]["dropped"] > 0
        assert bounded["trace"]["recorded"] == bounded["cycles"] - 1
        assert bounded["total_energy"] > 0

    def test_unknown_program_rejected(self):
        from repro.errors import ProgramError

        with pytest.raises(ProgramError, match="unknown benchmark"):
            profile_design(CoreConfig(datawidth=8), program_name="nope")


class TestProfileDesigns:
    def test_fan_out_preserves_order(self):
        configs = [CoreConfig(datawidth=4), CoreConfig(datawidth=8)]
        profiles = profile_designs(configs, program_name="mult", top=2)
        assert [p["design"] for p in profiles] == ["p1_4_2", "p1_8_2"]

    def test_override_length_mismatch_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="overrides"):
            profile_designs(
                [CoreConfig(datawidth=4)], per_config_options=[{}, {}]
            )


class TestSuffixed:
    def test_single_config_keeps_path(self):
        assert _suffixed("out.vcd", "p1_8_2", False) == "out.vcd"

    def test_multi_config_inserts_name(self):
        assert _suffixed("a/out.vcd", "p1_8_2", True) == "a/out.p1_8_2.vcd"


class TestCli:
    def test_end_to_end_with_artifacts(self, tmp_path, capsys):
        vcd = tmp_path / "out.vcd"
        energy = tmp_path / "energy.json"
        code = profile_main([
            "p1_8_2", "--program", "crc8", "--vcd", str(vcd),
            "--energy-report", str(energy), "--top", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Energy by module" in out
        assert vcd.exists()
        profile = json.loads(energy.read_text())
        assert profile["schema"] == PROFILE_SCHEMA
        assert sum(profile["by_module"].values()) == (
            profile["energy_per_cycle"]
        )

    def test_profiled_run_folds_into_run_report(self, tmp_path, capsys):
        from repro import obs

        report_path = tmp_path / "RUN_REPORT.json"
        try:
            code = profile_main([
                "p1_4_2", "--program", "mult", "--profile",
                "--report-out", str(report_path),
            ])
        finally:
            obs.disable()
            obs.reset()
        assert code == 0
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.obs.run_report/v3"
        assert len(report["design_profiles"]) == 1
        assert report["design_profiles"][0]["design"] == "p1_4_2"

    def test_bad_config_name_is_usage_error(self, capsys):
        assert profile_main(["q9"]) == 2

    def test_unknown_option_is_usage_error(self, capsys):
        assert profile_main(["--frobnicate"]) == 2

    def test_missing_argument_is_usage_error(self, capsys):
        assert profile_main(["p1_8_2", "--top"]) == 2

    def test_unsupported_program_exits_nonzero(self, capsys):
        # crc8 is 8-bit only; a 4-bit core cannot run it.
        assert profile_main(["p1_4_2", "--program", "crc8"]) == 1
