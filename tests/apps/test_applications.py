"""Tests for the application catalogue and feasibility matching."""

import pytest

from repro.apps.feasibility import assess, coalescing_penalty, feasible_applications
from repro.apps.requirements import APPLICATIONS, DutyCycle, application_by_name
from repro.power.battery import battery_by_name
from repro.units import mW


class TestCatalogue:
    def test_seventeen_applications(self):
        assert len(APPLICATIONS) == 17

    def test_lookup(self):
        app = application_by_name("smart bandage")
        assert app.precision_bits == 8
        with pytest.raises(KeyError):
            application_by_name("toaster")

    def test_precisions_within_32_bits(self):
        """The design-space sweep's widest core covers every app."""
        assert all(a.precision_bits <= 32 for a in APPLICATIONS)

    def test_duty_fractions_ordered(self):
        assert (
            DutyCycle.CONTINUOUS.typical_fraction
            > DutyCycle.SECONDS.typical_fraction
            > DutyCycle.MINUTES.typical_fraction
            > DutyCycle.HOURS.typical_fraction
        )


class TestFeasibility:
    def test_coalescing_penalty(self):
        assert coalescing_penalty(8, 8) == 1
        assert coalescing_penalty(16, 8) == 2
        assert coalescing_penalty(32, 8) == 4
        assert coalescing_penalty(8, 32) == 1

    def test_slow_core_fails_fast_applications(self):
        app = application_by_name("blood pressure")  # needs ~1000 IPS
        battery = battery_by_name("Blue Spark 30")
        verdict = assess(app, ips=20.0, datawidth=8, active_power=mW(5), battery=battery)
        assert not verdict.throughput_ok

    def test_fast_core_serves_slow_applications(self):
        app = application_by_name("smart bandage")  # 0.01 Hz
        battery = battery_by_name("Blue Spark 30")
        verdict = assess(app, ips=20.0, datawidth=8, active_power=mW(5), battery=battery)
        assert verdict.feasible
        assert verdict.lifetime_hours > 1.0

    def test_egfet_tp_core_serves_several_table3_apps(self):
        """Section 4/8 claim: EGFET cores feasibly target low-rate,
        low-duty applications."""
        battery = battery_by_name("Molex")
        feasible = feasible_applications(
            APPLICATIONS, ips=20.0, datawidth=8, active_power=mW(4), battery=battery
        )
        names = {verdict.application for verdict in feasible}
        assert "Smart Bandage" in names
        assert "Body Temperature Sensor" in names
        assert len(names) >= 4

    def test_cnt_core_serves_everything_throughput_wise(self):
        """Section 4: CNT-TFT cores meet every application's
        performance requirement."""
        battery = battery_by_name("Molex")
        for app in APPLICATIONS:
            verdict = assess(
                app, ips=25000.0, datawidth=16, active_power=mW(900), battery=battery
            )
            assert verdict.throughput_ok
