"""The ``python -m repro campaign`` subcommand."""

from repro.apps.campaign import campaign_main


class TestCampaignCli:
    def test_numpy_campaign(self, capsys):
        code = campaign_main(
            ["--program", "mult", "--width", "8", "--backend", "numpy",
             "--stride", "16"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "numpy" in out
        assert "coverage" in out
        assert "faults/s" in out

    def test_config_by_name(self, capsys):
        code = campaign_main(
            ["--config", "p1_8_2", "--backend", "batched", "--stride", "32"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "p1_8_2" in out

    def test_max_faults_and_lanes(self, capsys):
        code = campaign_main(
            ["--backend", "numpy", "--stride", "8", "--max-faults", "10",
             "--lanes", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "/10 faults" in out

    def test_unknown_backend_rejected(self, capsys):
        assert campaign_main(["--backend", "jit"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_unknown_option_rejected(self, capsys):
        assert campaign_main(["--frobnicate"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_missing_value_rejected(self, capsys):
        assert campaign_main(["--stride"]) == 2

    def test_verify_suite_needs_lane_backend(self, capsys):
        assert campaign_main(["--verify-suite", "--backend", "compiled"]) == 2
        assert "lane backend" in capsys.readouterr().err

    def test_help(self, capsys):
        assert campaign_main(["--help"]) == 0
        assert "usage" in capsys.readouterr().out
