"""Tests for the process-pool engine: jobs policy, determinism, obs."""

import pytest

from repro import obs
from repro.coregen import fault_test
from repro.coregen.fault_test import run_fault_campaign
from repro.dse.sweep import sweep_design_space, sweep_design_spaces
from repro.errors import ConfigError
from repro.eval.suite import evaluate_suite
from repro.exec import map_in_chunks, parallel_map, resolve_jobs, set_default_jobs
from repro.exec import engine
from repro.programs import build_benchmark


def _square(value):
    """Module-level worker: picklable for the process pool."""
    return value * value


def _boom(value):
    """Module-level worker that always fails."""
    raise ValueError(f"boom on {value}")


def _traced_square(value):
    """Worker that emits a span and a counter (obs-shipping probe)."""
    with obs.span("worker_item", item=value):
        obs.counter("test.worker_items").inc()
    return value * value


# Probe state for the warm-worker initializer tests: ``_mark_warm``
# flips the flag inside a worker process; items read it back.
_WARM_FLAG = {"warmed": False}


def _mark_warm():
    _WARM_FLAG["warmed"] = True


def _warm_boom():
    raise RuntimeError("warm-up failed")


def _read_warm(value):
    return (value, _WARM_FLAG["warmed"])


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(3) == 3

    def test_default_jobs_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        set_default_jobs(2)
        try:
            assert resolve_jobs() == 2
        finally:
            set_default_jobs(None)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError):
            resolve_jobs()

    def test_invalid_explicit_raises(self):
        with pytest.raises(ConfigError):
            resolve_jobs(0)
        with pytest.raises(ConfigError):
            set_default_jobs(0)

    def test_workers_never_nest(self, monkeypatch):
        monkeypatch.setattr(engine, "_IN_WORKER", True)
        assert resolve_jobs(8) == 1


class TestParallelMap:
    def test_serial_parallel_identical(self):
        items = list(range(23))
        assert parallel_map(_square, items, jobs=2) == [_square(i) for i in items]

    def test_chunk_size_override(self):
        items = list(range(10))
        assert parallel_map(_square, items, jobs=2, chunk_size=3) == [
            _square(i) for i in items
        ]

    def test_map_in_chunks_flattens(self):
        items = list(range(11))

        def double_all(batch):
            return [2 * value for value in batch]

        assert map_in_chunks(double_all, items, chunk_size=4) == [
            2 * value for value in items
        ]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2, 3], jobs=2)

    def test_empty_and_single(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [7], jobs=4) == [49]

    def test_warm_runs_in_every_worker_before_items(self):
        results = parallel_map(_read_warm, list(range(6)), jobs=2, warm=_mark_warm)
        assert [value for value, _ in results] == list(range(6))
        assert all(warmed for _, warmed in results)
        # The parent process is never warmed -- only pool workers.
        assert _WARM_FLAG["warmed"] is False

    def test_warm_ignored_for_serial_runs(self):
        assert parallel_map(_read_warm, [7], jobs=1, warm=_mark_warm) == [
            (7, False)
        ]
        assert _WARM_FLAG["warmed"] is False

    def test_warm_failure_is_swallowed(self):
        items = list(range(4))
        assert parallel_map(_square, items, jobs=2, warm=_warm_boom) == [
            _square(value) for value in items
        ]

    def test_worker_obs_ships_to_parent(self, obs_enabled):
        with obs.span("campaign"):
            results = parallel_map(_traced_square, list(range(8)), jobs=2)
        assert results == [i * i for i in range(8)]
        snapshot = obs.snapshot()
        assert snapshot["test.worker_items"] == 8
        assert snapshot["exec.parallel_runs"] == 1
        assert snapshot["exec.tasks_executed"] == 8
        # Worker spans are re-rooted under the parent's live span.
        worker_paths = [
            event.path for event in obs.TRACER.events()
            if event.name == "worker_item"
        ]
        assert worker_paths and all(
            path.startswith("campaign/") for path in worker_paths
        )

    def test_worker_telemetry_populated(self, obs_enabled):
        """A parallel run leaves per-worker chunk timings behind:
        wait vs compute histograms, pool utilization, straggler ratio."""
        results = parallel_map(_square, list(range(16)), jobs=2)
        assert results == [i * i for i in range(16)]
        snapshot = obs.snapshot()
        assert snapshot["exec.worker.chunk_compute_s"]["count"] >= 1
        assert snapshot["exec.worker.chunk_wait_s"]["count"] >= 1
        assert snapshot["exec.worker.chunk_wait_s"]["min"] >= 0.0
        assert 0.0 < snapshot["exec.worker.utilization"] <= 1.0
        assert snapshot["exec.worker.straggler_ratio"] >= 1.0

    def test_worker_telemetry_absent_for_serial(self, obs_enabled):
        parallel_map(_square, list(range(4)), jobs=1)
        snapshot = obs.snapshot()
        assert snapshot["exec.worker.chunk_compute_s"]["count"] == 0
        assert snapshot["exec.worker.utilization"] == 0


class TestPipelineDeterminism:
    def test_sweep_both_technologies(self, cache_dir):
        for technology in ("EGFET", "CNT"):
            serial = sweep_design_space(technology)
            parallel = sweep_design_space(technology, jobs=2)
            assert serial == parallel

    def test_multi_technology_sweep(self, cache_dir):
        both = sweep_design_spaces(("EGFET", "CNT"), jobs=2)
        assert both["EGFET"] == sweep_design_space("EGFET")
        assert both["CNT"] == sweep_design_space("CNT")

    def test_fault_campaign_batched(self, cache_dir):
        program = build_benchmark("mult", 8, 4)
        serial = run_fault_campaign(program, max_faults=96)
        parallel = run_fault_campaign(program, max_faults=96, jobs=2)
        assert serial == parallel

    def test_fault_campaign_numpy_parallel(self, cache_dir):
        program = build_benchmark("mult", 8, 4)
        serial = run_fault_campaign(
            program, max_faults=96, backend="numpy", lanes=48
        )
        parallel = run_fault_campaign(
            program, max_faults=96, backend="numpy", lanes=48, jobs=2
        )
        assert serial == parallel

    def test_fault_campaign_scalar_fallback(self, cache_dir, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("batched engine down")

        monkeypatch.setattr(fault_test, "_run_batched", explode)
        program = build_benchmark("mult", 8, 4)
        serial = run_fault_campaign(program, max_faults=24)
        parallel = run_fault_campaign(program, max_faults=24, jobs=2)
        assert serial == parallel
        assert serial.total == 24

    def test_fault_campaign_scalar_backend(self, cache_dir):
        program = build_benchmark("mult", 8, 4)
        serial = run_fault_campaign(program, max_faults=12, backend="compiled")
        parallel = run_fault_campaign(
            program, max_faults=12, backend="compiled", jobs=2
        )
        assert serial == parallel

    def test_evaluate_suite(self, cache_dir):
        serial = evaluate_suite(("EGFET",))
        parallel = evaluate_suite(("EGFET",), jobs=2)
        assert serial == parallel
        assert {result.program for result in serial} == {
            "mult", "div", "inSort", "intAvg", "tHold", "crc8", "dTree"
        }
