"""Tests for the process-parallel execution engine and artifact cache."""
