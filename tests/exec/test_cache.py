"""Tests for the on-disk artifact cache: keys, recovery, invalidation."""

import pickle
import threading

import pytest

from repro import obs
from repro.coregen.config import CoreConfig
from repro.coregen.generator import generate_core
from repro.exec import (
    CACHE_VERSION,
    cache_enabled,
    cache_root,
    clear_caches,
    load_artifact,
    source_digest,
    store_artifact,
    structural_hash,
)
from repro.exec import cache as cache_module
from repro.netlist.compile import compiled_netlist


class TestCacheBasics:
    def test_roundtrip(self, cache_dir):
        assert load_artifact("thing", "key") is None
        assert store_artifact("thing", "key", {"answer": 42})
        assert load_artifact("thing", "key") == {"answer": 42}

    def test_root_is_versioned(self, cache_dir):
        assert cache_root() == cache_dir / f"v{CACHE_VERSION}"

    def test_version_bump_orphans_entries(self, cache_dir, monkeypatch):
        store_artifact("thing", "key", "old-generation")
        monkeypatch.setattr(cache_module, "CACHE_VERSION", CACHE_VERSION + 1)
        assert load_artifact("thing", "key") is None
        store_artifact("thing", "key", "new-generation")
        assert load_artifact("thing", "key") == "new-generation"

    def test_disabled_by_env(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not cache_enabled()
        assert not store_artifact("thing", "key", 1)
        assert load_artifact("thing", "key") is None
        assert not list(cache_dir.rglob("*.pkl"))

    def test_corrupt_entry_recovers(self, cache_dir, obs_enabled):
        store_artifact("thing", "key", "good")
        path = cache_module.artifact_path("thing", "key")
        path.write_bytes(b"not a pickle")
        assert load_artifact("thing", "key") is None
        assert not path.exists()
        assert obs.snapshot()["exec.cache_corrupt"] == 1
        # The recomputed artifact takes the slot back.
        store_artifact("thing", "key", "recomputed")
        assert load_artifact("thing", "key") == "recomputed"

    def test_concurrent_writers_leave_one_clean_entry(self, cache_dir):
        def write(value):
            store_artifact("thing", "key", value)

        threads = [
            threading.Thread(target=write, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert load_artifact("thing", "key") in range(8)
        # Atomic replace: exactly one entry, no leftover temp files.
        entries = list((cache_root() / "thing").iterdir())
        assert len(entries) == 1 and entries[0].suffix == ".pkl"


class TestCacheKeys:
    def test_source_digest_stable(self):
        first = source_digest("repro.netlist.compile")
        assert first == source_digest("repro.netlist.compile")
        assert first != source_digest("repro.coregen.generator")

    def test_structural_hash_ignores_name(self, cache_dir):
        a = generate_core(CoreConfig(datawidth=4))
        clear_caches()
        b = generate_core(CoreConfig(datawidth=4))
        assert a is not b
        assert structural_hash(a) == structural_hash(b)
        wider = generate_core(CoreConfig(datawidth=8))
        assert structural_hash(a) != structural_hash(wider)


class TestWarmStart:
    def test_netlist_and_compile_artifacts_written(self, cache_dir, obs_enabled):
        netlist = generate_core(CoreConfig(datawidth=4))
        compiled_netlist(netlist)
        assert list((cache_root() / "netlist").glob("*.pkl"))
        assert list((cache_root() / "compiled-sim").glob("*.pkl"))
        assert obs.snapshot()["exec.cache_writes"] >= 2

    def test_warm_start_skips_elaboration_and_codegen(
        self, cache_dir, obs_enabled
    ):
        config = CoreConfig(datawidth=4)
        compiled_netlist(generate_core(config))
        clear_caches()
        obs.reset()
        compiled_netlist(generate_core(config))
        snapshot = obs.snapshot()
        assert snapshot["coregen.disk_hits"] == 1
        assert snapshot["compile.disk_hits"] == 1
        # Nothing was recomputed or rewritten: no elaboration or
        # compile spans ran, and no new artifacts were stored.
        names = {event.name for event in obs.TRACER.events()}
        assert "compile" not in names and "generate_core" not in names
        assert snapshot.get("exec.cache_writes", 0) == 0

    def test_netlist_pickles_without_compiled_state(self, cache_dir):
        netlist = generate_core(CoreConfig(datawidth=4))
        sim = compiled_netlist(netlist)
        clone = pickle.loads(pickle.dumps(netlist))
        assert not hasattr(clone, "_compiled_sim") or clone._compiled_sim is None
        assert compiled_netlist(clone).source == sim.source
