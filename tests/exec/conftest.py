"""Shared fixtures: isolated cache directory and a clean obs layer."""

import pytest

from repro import obs
from repro.exec import clear_caches


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the artifact cache at a private directory for one test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    clear_caches()
    try:
        yield tmp_path
    finally:
        clear_caches()


@pytest.fixture
def obs_enabled():
    """Enable tracing/metrics for one test, then disable and wipe."""
    obs.reset()
    obs.enable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.reset()
