"""Tests for the 8080/Z80 simulator and its benchmark kernels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.i8080 import (
    A, B, C, D, E, H, L, BC, DE, HL,
    Asm8080, I8080, FLAG_CY, FLAG_Z,
)
from repro.baselines import kernels_i8080 as kernels
from repro.errors import SimulationError
from repro.programs import crc8 as crc8_kernel
from repro.programs import dtree as dtree_kernel


def run_asm(build, **kwargs):
    asm = Asm8080(**kwargs)
    build(asm)
    cpu = I8080(asm.assemble())
    cpu.run()
    return cpu


class TestCore:
    def test_mvi_mov(self):
        def build(asm):
            asm.mvi(B, 42)
            asm.mov(A, B)
            asm.hlt()

        cpu = run_asm(build)
        assert cpu.regs[A] == 42

    @settings(max_examples=25)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_add_sets_carry(self, a, b):
        def build(asm):
            asm.mvi(A, a)
            asm.mvi(B, b)
            asm.add(B)
            asm.hlt()

        cpu = run_asm(build)
        assert cpu.regs[A] == (a + b) & 0xFF
        assert bool(cpu.flags & FLAG_CY) == (a + b > 0xFF)

    @settings(max_examples=25)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_sub_borrow(self, a, b):
        def build(asm):
            asm.mvi(A, a)
            asm.mvi(B, b)
            asm.sub(B)
            asm.hlt()

        cpu = run_asm(build)
        assert cpu.regs[A] == (a - b) & 0xFF
        assert bool(cpu.flags & FLAG_CY) == (a < b)

    def test_memory_via_hl(self):
        from repro.baselines.i8080 import M

        def build(asm):
            asm.lxi(HL, 0x200)
            asm.mvi(M, 99)   # MVI M: store immediate at (HL)
            asm.mov(A, M)
            asm.hlt()

        cpu = run_asm(build)
        assert cpu.memory[0x200] == 99
        assert cpu.regs[A] == 99

    def test_loop_with_dcr_jnz(self):
        def build(asm):
            asm.mvi(B, 5)
            asm.mvi(A, 0)
            asm.label("loop")
            asm.adi(3)
            asm.dcr(B)
            asm.jnz("loop")
            asm.hlt()

        cpu = run_asm(build)
        assert cpu.regs[A] == 15

    def test_rotates(self):
        def build(asm):
            asm.mvi(A, 0b10000001)
            asm.rrc()
            asm.hlt()

        cpu = run_asm(build)
        assert cpu.regs[A] == 0b11000000
        assert cpu.flags & FLAG_CY

    def test_t_state_accounting(self):
        def build(asm):
            asm.mvi(A, 1)  # 7 T
            asm.hlt()      # 7 T

        cpu = run_asm(build)
        assert cpu.stats.t_states == 14

    def test_z80_djnz(self):
        asm = Asm8080(z80=True)
        asm.mvi(B, 4)
        asm.mvi(A, 0)
        asm.label("loop")
        asm.adi(1)
        asm.djnz("loop")
        asm.hlt()
        cpu = I8080(asm.assemble(), z80_timing=True)
        cpu.run()
        assert cpu.regs[A] == 4

    def test_unknown_opcode_raises(self):
        cpu = I8080(bytes([0xED]))  # Z80 prefix, unimplemented
        with pytest.raises(SimulationError, match="unimplemented"):
            cpu.run()

    def test_runaway_raises(self):
        asm = Asm8080()
        asm.label("loop")
        asm.jmp("loop")
        cpu = I8080(asm.assemble())
        with pytest.raises(SimulationError, match="halt"):
            cpu.run(max_steps=50)


class TestKernels:
    @settings(max_examples=15, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_mult(self, a, b):
        _, result = kernels.mult8(a, b).execute()
        assert result["product"] == (a * b) & 0xFF

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(0, 255), d=st.integers(1, 255))
    def test_div(self, n, d):
        _, result = kernels.div8(n, d).execute()
        assert result["quotient"] == n // d
        assert result["remainder"] == n % d

    @settings(max_examples=10, deadline=None)
    @given(values=st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_insort(self, values):
        _, result = kernels.insort8(values).execute()
        assert result["sorted"] == sorted(values)

    @settings(max_examples=10, deadline=None)
    @given(values=st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16))
    def test_insort16(self, values):
        _, result = kernels.insort16(values).execute()
        assert result["sorted"] == sorted(values)

    def test_intavg(self):
        values = list(range(16))
        _, result = kernels.intavg8(values).execute()
        assert result["avg"] == sum(values) // 16

    @settings(max_examples=10, deadline=None)
    @given(
        values=st.lists(st.integers(0, 255), min_size=16, max_size=16),
        threshold=st.integers(0, 255),
    )
    def test_thold(self, values, threshold):
        _, result = kernels.thold8(values, threshold).execute()
        assert result["count"] == sum(1 for v in values if v >= threshold)

    @settings(max_examples=8, deadline=None)
    @given(stream=st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_crc8(self, stream):
        _, result = kernels.crc8_16(stream).execute()
        assert result["crc"] == crc8_kernel.reference(stream)

    @settings(max_examples=10, deadline=None)
    @given(inputs=st.lists(st.integers(0, 255), min_size=8, max_size=8))
    def test_dtree_matches_tp_isa_tree(self, inputs):
        _, result = kernels.dtree8(inputs).execute()
        assert result["result"] == dtree_kernel.reference(inputs)

    def test_sizes_in_table5_ballpark(self):
        """Table 5 Z80 column implies ~30-40 byte loop kernels and a
        ~800-byte decision tree."""
        assert 20 <= kernels.mult8().size_bytes <= 45
        assert 20 <= kernels.insort8().size_bytes <= 50
        assert 700 <= kernels.dtree8().size_bytes <= 900
