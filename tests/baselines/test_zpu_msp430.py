"""Tests for the ZPU and MSP430 simulators and kernels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import kernels_msp430 as msp_kernels
from repro.baselines import kernels_zpu as zpu_kernels
from repro.baselines.msp430 import (
    AsmMsp430, Msp430, R4, R5, absolute, imm, indirect, reg,
)
from repro.baselines.zpu import AsmZpu, Zpu, CPI
from repro.errors import SimulationError
from repro.programs import crc8 as crc8_kernel
from repro.programs import dtree as dtree_kernel


class TestZpuCore:
    def run_zpu(self, build):
        asm = AsmZpu()
        build(asm)
        cpu = Zpu(asm.assemble())
        cpu.run()
        return cpu

    @settings(max_examples=30)
    @given(value=st.integers(0, 0xFFFFFFFF))
    def test_im_chains_encode_any_constant(self, value):
        def build(asm):
            asm.im(value)
            asm.im(0x400)
            asm.store()
            asm.halt()

        cpu = self.run_zpu(build)
        assert int.from_bytes(cpu.memory[0x400:0x404], "big") == value

    def test_consecutive_ims_do_not_chain(self):
        def build(asm):
            asm.im(1)
            asm.im(2)   # must push a second value, not extend the first
            asm.add()
            asm.im(0x400)
            asm.store()
            asm.halt()

        cpu = self.run_zpu(build)
        assert int.from_bytes(cpu.memory[0x400:0x404], "big") == 3

    @settings(max_examples=20)
    @given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
    def test_stack_arithmetic(self, a, b):
        def build(asm):
            asm.im(a)
            asm.im(b)
            asm.sub()      # a - b
            asm.im(0x400)
            asm.store()
            asm.halt()

        cpu = self.run_zpu(build)
        assert int.from_bytes(cpu.memory[0x400:0x404], "big") == (a - b) & 0xFFFFFFFF

    def test_neqbranch_taken_and_not(self):
        def build(asm):
            asm.im(1)
            asm.neqbranch("set")   # taken
            asm.im(0x400)          # skipped
            asm.im(99)
            asm.store()
            asm.label("set")
            asm.im(7)
            asm.im(0x404)
            asm.store()
            asm.halt()

        cpu = self.run_zpu(build)
        assert int.from_bytes(cpu.memory[0x404:0x408], "big") == 7
        assert int.from_bytes(cpu.memory[0x400:0x404], "big") == 0

    def test_emulate_costs_charged(self):
        def build(asm):
            asm.im(3)
            asm.im(4)
            asm.sub()   # EMULATE vector
            asm.halt()

        cpu = self.run_zpu(build)
        assert cpu.stats.emulated == 1
        assert cpu.stats.effective_instructions > cpu.stats.instructions
        assert cpu.stats.cycles == cpu.stats.effective_instructions * CPI

    def test_runaway_raises(self):
        asm = AsmZpu()
        asm.label("loop")
        asm.branch("loop")
        cpu = Zpu(asm.assemble())
        with pytest.raises(SimulationError):
            cpu.run(max_steps=100)


class TestZpuKernels:
    @settings(max_examples=10, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_mult(self, a, b):
        _, result = zpu_kernels.mult8(a, b).execute()
        assert result["product"] == (a * b) & 0xFF

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(0, 255), d=st.integers(1, 255))
    def test_div(self, n, d):
        _, result = zpu_kernels.div8(n, d).execute()
        assert (result["quotient"], result["remainder"]) == (n // d, n % d)

    @settings(max_examples=6, deadline=None)
    @given(values=st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16))
    def test_insort(self, values):
        _, result = zpu_kernels.insort(values).execute()
        assert result["sorted"] == sorted(values)

    @settings(max_examples=6, deadline=None)
    @given(stream=st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_crc8(self, stream):
        _, result = zpu_kernels.crc8_16(stream).execute()
        assert result["crc"] == crc8_kernel.reference(stream)

    @settings(max_examples=8, deadline=None)
    @given(inputs=st.lists(st.integers(0, 255), min_size=8, max_size=8))
    def test_dtree(self, inputs):
        _, result = zpu_kernels.dtree(inputs).execute()
        assert result["result"] == dtree_kernel.reference(inputs)

    def test_stack_traffic_dominates(self):
        """The paper's argument against stack ISAs: every operation is
        memory traffic, so the ZPU's access count dwarfs the 8080's."""
        from repro.baselines.kernels_i8080 import mult8 as i8080_mult

        zpu_stats, _ = zpu_kernels.mult8().execute()
        i8080_stats, _ = i8080_mult().execute()
        zpu_traffic = zpu_stats.memory_reads + zpu_stats.memory_writes
        i8080_traffic = i8080_stats.memory_reads + i8080_stats.memory_writes
        assert zpu_traffic > 3 * i8080_traffic


class TestMsp430Core:
    def run_msp(self, build):
        asm = AsmMsp430()
        build(asm)
        program, labels = asm.finish()
        cpu = Msp430(program, labels)
        cpu.run()
        return cpu

    @settings(max_examples=20)
    @given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
    def test_add_and_store(self, a, b):
        def build(asm):
            asm.mov(imm(a), reg(R4))
            asm.add(imm(b), reg(R4))
            asm.mov(reg(R4), absolute(0x400))
            asm.halt()

        cpu = self.run_msp(build)
        assert cpu.read_word(0x400) == (a + b) & 0xFFFF

    def test_autoincrement(self):
        def build(asm):
            asm.mov(imm(0x400), reg(R4))
            asm.mov(indirect(R4, autoincrement=True), reg(R5))
            asm.add(indirect(R4, autoincrement=True), reg(R5))
            asm.mov(reg(R5), absolute(0x410))
            asm.halt()

        asm = AsmMsp430()
        build(asm)
        program, labels = asm.finish()
        cpu = Msp430(program, labels)
        cpu.write_word(0x400, 30)
        cpu.write_word(0x402, 12)
        cpu.run()
        assert cpu.read_word(0x410) == 42

    def test_constant_generator_saves_words(self):
        asm = AsmMsp430()
        asm.add(imm(1), reg(R4))     # CG constant: 1 word
        asm.add(imm(77), reg(R4))    # real immediate: 2 words
        assert asm.program[0].words == 1
        assert asm.program[1].words == 2

    def test_jump_cycles_flat_two(self):
        asm = AsmMsp430()
        asm.label("x")
        asm.jmp("x")
        assert asm.program[0].cycles == 2


class TestMsp430Kernels:
    @settings(max_examples=10, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_mult(self, a, b):
        _, result = msp_kernels.mult16(a, b).execute()
        assert result["product"] == (a * b) & 0xFFFF

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(0, 0xFFFF), d=st.integers(1, 0xFFFF))
    def test_div(self, n, d):
        _, result = msp_kernels.div16(n, d).execute()
        assert (result["quotient"], result["remainder"]) == (n // d, n % d)

    @settings(max_examples=6, deadline=None)
    @given(values=st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16))
    def test_insort(self, values):
        _, result = msp_kernels.insort16(values).execute()
        assert result["sorted"] == sorted(values)

    @settings(max_examples=6, deadline=None)
    @given(stream=st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_crc8(self, stream):
        _, result = msp_kernels.crc8_16(stream).execute()
        assert result["crc"] == crc8_kernel.reference(stream)

    @settings(max_examples=8, deadline=None)
    @given(inputs=st.lists(st.integers(0, 255), min_size=8, max_size=8))
    def test_dtree(self, inputs):
        _, result = msp_kernels.dtree16(inputs).execute()
        assert result["result"] == dtree_kernel.reference(inputs)


class TestBaselineRuns:
    def test_section8_light8080_mult_anchor(self):
        """Section 8: light8080 needs ~tens of seconds and joules for
        an 8-bit multiply in EGFET (paper: 44.6 s, 3.66 J)."""
        from repro.baselines.kernels import run_baseline

        run = run_baseline("light8080", "mult")
        assert 15 < run.time_seconds < 90
        assert 0.5 < run.core_energy_joules < 8

    def test_section8_insort16_exceeds_battery(self):
        """Section 8: 16-bit insertion sort takes the 8-bit baselines
        over 1000 s, and Z80/ZPU past a 108 J battery budget."""
        from repro.baselines.kernels import run_baseline
        from repro.power.battery import REFERENCE_BUDGET_J

        for core in ("light8080", "Z80", "ZPU_small"):
            run = run_baseline(core, "inSort16")
            assert run.time_seconds > 1000
            if core in ("Z80", "ZPU_small"):
                assert run.core_energy_joules > REFERENCE_BUDGET_J

    def test_all_pairings_run(self):
        from repro.baselines.kernels import (
            BASELINE_CORES, BENCHMARK_NAMES, run_baseline,
        )

        for core in BASELINE_CORES:
            for benchmark in BENCHMARK_NAMES:
                run = run_baseline(core, benchmark)
                assert run.size_bytes > 0
                assert run.cycles > 0
