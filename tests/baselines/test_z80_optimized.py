"""Tests for the natively-targeted Z80 kernel variant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.kernels_i8080 import mult8, mult8_z80_optimized


@settings(max_examples=15, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_optimized_variant_still_correct(a, b):
    _, result = mult8_z80_optimized(a, b).execute()
    assert result["product"] == (a * b) & 0xFF


def test_djnz_saves_code_and_cycles():
    """DJNZ replaces DCR+JNZ (4 bytes -> 2) and short-circuits the
    loop bookkeeping -- native Z80 targeting beats 8080-subset code
    on both size and T-states."""
    shared = mult8(z80=True)
    native = mult8_z80_optimized()
    assert native.size_bytes < shared.size_bytes
    shared_stats, shared_result = shared.execute()
    native_stats, native_result = native.execute()
    assert native_result == shared_result
    assert native_stats.t_states < shared_stats.t_states
