"""Fleet campaign engine: shard invariance, report sanity, CLI."""

import json

import pytest

from repro.coregen.config import CoreConfig
from repro.mc.engine import YieldSpec, run_yield_campaign
from repro.mc.sketch import QuantileSketch

SPEC = YieldSpec(
    config=CoreConfig(datawidth=4),
    device_yield=0.9995,
    sigma=0.2,
    seed=13,
    block=256,  # several shards even for small fleets
)
INSTANCES = 1200


@pytest.fixture(scope="module")
def serial_report():
    return run_yield_campaign(SPEC, INSTANCES, jobs=1)


#: Report fields that may legitimately differ between runs (timing).
_VOLATILE = {"wall_seconds", "instances_per_second", "jobs"}


def _stable(report) -> dict:
    return {
        k: v for k, v in report.to_dict().items() if k not in _VOLATILE
    }


def test_jobs_invariance(serial_report):
    """jobs=1 == jobs=2: bit-exact sketches, tallies, and quantiles."""
    parallel = run_yield_campaign(SPEC, INSTANCES, jobs=2)
    assert _stable(parallel) == _stable(serial_report)


def test_shards_follow_block_not_jobs(serial_report):
    assert serial_report.shards == -(-INSTANCES // SPEC.block)


def test_report_internal_consistency(serial_report):
    r = serial_report
    working = (r.instances - r.defective) + r.working_defective
    assert r.functional_yield == working / r.instances
    assert r.analytic_yield == pytest.approx(
        r.device_yield**r.devices
    )
    assert r.functional_yield >= r.analytic_yield - 1e-12
    lo, hi = r.yield_ci
    assert 0.0 <= lo <= r.functional_yield <= hi <= 1.0
    assert r.cost_per_working_unit == r.area / r.functional_yield
    # fmax quantiles decrease as the covered fraction grows; nominal
    # (variation-free) sits inside the fleet spread.
    assert r.fmax_quantiles[0.05] < r.fmax_quantiles[0.5] < r.fmax_quantiles[0.95]
    assert r.fmax_quantiles[0.05] < r.nominal_fmax < r.fmax_quantiles[0.95]
    # Lifetime is linear in delay: quantiles increase together.
    assert r.lifetime_quantiles[0.05] < r.lifetime_quantiles[0.95]
    sketch = QuantileSketch.from_dict(r.delay_sketch)
    assert sketch.count == r.instances
    assert r.mean_delay == sketch.mean


def test_report_round_trips_to_json(serial_report):
    payload = json.loads(json.dumps(serial_report.to_dict()))
    assert payload["design"] == "p1_4_2"
    assert payload["instances"] == INSTANCES


def test_seed_changes_fleet(serial_report):
    other = run_yield_campaign(
        YieldSpec(
            config=SPEC.config,
            device_yield=SPEC.device_yield,
            sigma=SPEC.sigma,
            seed=14,
            block=SPEC.block,
        ),
        INSTANCES,
        jobs=1,
    )
    assert other.delay_sketch != serial_report.delay_sketch


def test_rejects_empty_fleet():
    with pytest.raises(ValueError):
        run_yield_campaign(SPEC, 0)


def test_cli_smoke(tmp_path, capsys):
    from repro.apps.yieldcli import yield_main

    report_path = tmp_path / "yield-report.json"
    code = yield_main(
        [
            "p1_4_2",
            "--instances", "400",
            "--jobs", "2",
            "--seed", "13",
            "--block", "128",
            "--report", str(report_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "yield[p1_4_2" in out
    payload = json.loads(report_path.read_text())
    campaign = payload["yield_campaigns"]["p1_4_2"]
    assert campaign["instances"] == 400
    assert 0.0 < campaign["functional_yield"] <= 1.0


def test_cli_rejects_bad_usage(capsys):
    from repro.apps.yieldcli import yield_main

    assert yield_main([]) == 2
    assert yield_main(["--bogus"]) == 2
    assert yield_main(["p1_4_2", "--instances"]) == 2
