"""Quantile sketch: accuracy, bit-exact merging, serialization."""

import numpy as np
import pytest

from repro.mc.sketch import QuantileSketch


def _filled(values, alpha=0.005):
    sketch = QuantileSketch(alpha=alpha)
    sketch.add_array(np.asarray(values, dtype=np.float64))
    return sketch


def test_quantiles_within_relative_error():
    rows = np.linspace(0.001, 10.0, 10_001)
    sketch = _filled(rows)
    for q in (0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99):
        exact = float(np.quantile(rows, q))
        assert abs(sketch.quantile(q) - exact) <= 0.011 * exact


def test_extremes_are_exact():
    rows = np.array([3.0, 1.5, 9.0, 2.5])
    sketch = _filled(rows)
    assert sketch.quantile(0.0) == 1.5
    assert sketch.quantile(1.0) == 9.0
    assert sketch.min == 1.5
    assert sketch.max == 9.0


def test_mean_and_count_exact():
    rows = np.array([1.0, 2.0, 3.0, 4.0])
    sketch = _filled(rows)
    assert sketch.count == 4
    assert sketch.mean == 2.5


def test_merge_is_bit_exact_for_any_split():
    rows = np.exp(np.linspace(-3, 3, 5000))
    whole = _filled(rows)
    for cut in (1, 137, 2500, 4999):
        left = _filled(rows[:cut])
        right = _filled(rows[cut:])
        merged = left.merge(right)
        assert merged.buckets == whole.buckets
        assert merged.count == whole.count
        assert merged.min == whole.min
        assert merged.max == whole.max
        # Float totals match bit-exactly too when block boundaries
        # match add_array boundaries (the engine's shard contract);
        # across arbitrary cuts they match to accumulation order.
        assert merged.total == pytest.approx(whole.total, rel=1e-12)


def test_merge_order_does_not_change_buckets():
    a = _filled(np.linspace(0.1, 1.0, 100))
    b = _filled(np.linspace(1.0, 10.0, 100))
    ab = _filled(np.linspace(0.1, 1.0, 100)).merge(b)
    ba = _filled(np.linspace(1.0, 10.0, 100)).merge(a)
    assert ab.buckets == ba.buckets
    assert ab.count == ba.count


def test_merge_rejects_mismatched_alpha():
    with pytest.raises(ValueError):
        QuantileSketch(alpha=0.005).merge(QuantileSketch(alpha=0.01))


def test_zero_and_negative_values_bucket_separately():
    sketch = _filled([0.0, 0.0, 1.0, 2.0])
    assert sketch.zeros == 2
    assert sketch.count == 4
    assert sketch.quantile(0.25) == 0.0
    assert sketch.quantile(1.0) == 2.0


def test_empty_sketch():
    sketch = QuantileSketch()
    assert sketch.count == 0
    assert sketch.mean == 0.0
    assert sketch.quantile(0.5) == 0.0


def test_round_trip_serialization():
    rows = np.exp(np.linspace(-2, 2, 333))
    sketch = _filled(rows)
    clone = QuantileSketch.from_dict(sketch.to_dict())
    assert clone.buckets == sketch.buckets
    assert clone.count == sketch.count
    assert clone.total == sketch.total
    assert clone.min == sketch.min
    assert clone.max == sketch.max
    for q in (0.1, 0.5, 0.9):
        assert clone.quantile(q) == sketch.quantile(q)


def test_alpha_validation():
    with pytest.raises(ValueError):
        QuantileSketch(alpha=0.0)
    with pytest.raises(ValueError):
        QuantileSketch(alpha=1.0)
    with pytest.raises(ValueError):
        QuantileSketch().quantile(1.5)
