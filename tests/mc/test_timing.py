"""Vectorized fleet timing vs the scalar reference walk: bit-exact."""

import numpy as np
import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.generator import generate_core
from repro.errors import PDKError
from repro.mc.timing import nominal_delay, sample_delays, timing_kernel
from repro.pdk import technology_library
from repro.pdk.variation import monte_carlo_timing

#: >= 4 sweep configurations, both printed technologies (satellite 3).
SWEEP = (
    CoreConfig(datawidth=4),
    CoreConfig(datawidth=8),
    CoreConfig(datawidth=8, pipeline_stages=3),
    CoreConfig(datawidth=16),
)
TECHNOLOGIES = ("EGFET", "CNT")


@pytest.mark.parametrize("config", SWEEP, ids=lambda c: c.name)
@pytest.mark.parametrize("technology", TECHNOLOGIES)
def test_vectorized_matches_scalar_reference(config, technology):
    netlist = generate_core(config)
    library = technology_library(technology)
    trials = 12
    dist = monte_carlo_timing(
        netlist, library, sigma=0.2, trials=trials, seed=0xBEEF
    )
    vec = sample_delays(netlist, library, 0.2, 0, trials, 0xBEEF)
    assert np.array_equal(np.array(dist.samples), vec)


def test_sub_range_is_bit_exact():
    """Unit index addresses the sample: sharding cannot change it."""
    netlist = generate_core(CoreConfig(datawidth=4))
    library = technology_library("EGFET")
    whole = sample_delays(netlist, library, 0.2, 0, 64, seed=7)
    for lo, hi in ((0, 16), (16, 48), (48, 64), (13, 21)):
        part = sample_delays(netlist, library, 0.2, lo, hi, seed=7)
        assert np.array_equal(part, whole[lo:hi])


def test_block_size_does_not_change_samples():
    netlist = generate_core(CoreConfig(datawidth=4))
    library = technology_library("EGFET")
    a = sample_delays(netlist, library, 0.2, 0, 50, seed=3, block=7)
    b = sample_delays(netlist, library, 0.2, 0, 50, seed=3, block=2048)
    assert np.array_equal(a, b)


def test_nominal_matches_sigma_zero():
    netlist = generate_core(CoreConfig(datawidth=4))
    library = technology_library("EGFET")
    nominal = nominal_delay(netlist, library)
    assert nominal > 0
    zeros = sample_delays(netlist, library, 0.0, 0, 4, seed=1)
    assert np.array_equal(zeros, np.full(4, nominal))


def test_kernel_memoized_per_library():
    netlist = generate_core(CoreConfig(datawidth=4))
    egfet = technology_library("EGFET")
    cnt = technology_library("CNT")
    assert timing_kernel(netlist, egfet) is timing_kernel(netlist, egfet)
    assert timing_kernel(netlist, egfet) is not timing_kernel(netlist, cnt)


def test_validation():
    netlist = generate_core(CoreConfig(datawidth=4))
    library = technology_library("EGFET")
    with pytest.raises(PDKError):
        sample_delays(netlist, library, -0.1, 0, 4, seed=0)
    with pytest.raises(PDKError):
        sample_delays(netlist, library, 0.2, 4, 0, seed=0)
