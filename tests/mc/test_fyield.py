"""Defect sampling and lane-packed functional yield vs scalar refs."""

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.fault_test import _run, golden_signature, lane_signatures
from repro.coregen.generator import generate_core
from repro.errors import PDKError
from repro.mc.fyield import (
    WEDGED,
    defect_probabilities,
    sample_defects,
    safe_signatures,
    unit_defects,
)
from repro.netlist.faults import StuckAtFault
from repro.netlist.lanes import LanePlan
from repro.pdk import technology_library
from repro.programs import build_benchmark
from repro.sim.machine import Machine

CONFIG = CoreConfig(datawidth=4)
DEVICE_YIELD = 0.999  # low on purpose: plenty of multi-defect units


@pytest.fixture(scope="module")
def core():
    netlist = generate_core(CONFIG)
    library = technology_library("EGFET")
    program = build_benchmark("mult", 8, 4)
    machine = Machine(program, num_bars=CONFIG.num_bars)
    machine.run()
    cycles = machine.stats.instructions
    return netlist, library, program, cycles


def test_defect_probabilities(core):
    netlist, library, _, _ = core
    p = defect_probabilities(netlist, library, DEVICE_YIELD)
    assert p.shape == (len(netlist.instances),)
    assert (p > 0).all() and (p < 1).all()
    # More devices in a cell, more likely to fail.
    sizes = [
        library.cell(i.cell).transistors + library.cell(i.cell).resistors
        for i in netlist.instances
    ]
    big = sizes.index(max(sizes))
    small = sizes.index(min(sizes))
    assert p[big] > p[small]
    with pytest.raises(PDKError):
        defect_probabilities(netlist, library, 0.0)


def test_scalar_reference_matches_vectorized(core):
    netlist, library, _, _ = core
    defects = sample_defects(netlist, library, DEVICE_YIELD, 0, 64, seed=9)
    for unit in range(64):
        assert unit_defects(netlist, library, DEVICE_YIELD, unit, 9) == (
            defects.get(unit, ())
        )


def test_sampling_is_shard_invariant(core):
    netlist, library, _, _ = core
    whole = sample_defects(netlist, library, DEVICE_YIELD, 0, 60, seed=4)
    parts = {}
    for lo, hi in ((0, 17), (17, 40), (40, 60)):
        parts.update(
            sample_defects(netlist, library, DEVICE_YIELD, lo, hi, seed=4)
        )
    assert parts == whole


def test_single_defect_units_match_faulty_simulator(core):
    """Lane-packed == one FaultySimulator run per unit (property test)."""
    netlist, library, program, cycles = core
    defects = sample_defects(netlist, library, DEVICE_YIELD, 0, 120, seed=2)
    singles = {u: f for u, f in defects.items() if len(f) == 1}
    assert singles, "expected some single-defect units at this yield"
    units = sorted(singles)
    packed = lane_signatures(
        program, CONFIG, cycles, [singles[u] for u in units]
    )
    for unit, signature in zip(units, packed):
        scalar = _run(
            program, CONFIG, cycles, fault=singles[unit][0], backend="compiled"
        )
        assert signature == scalar


def test_multi_defect_lanes_match_single_lane_runs(core):
    """Packing many units per pass never changes any unit's outcome."""
    netlist, library, program, cycles = core
    defects = sample_defects(netlist, library, 0.995, 0, 40, seed=11)
    multi = [f for f in defects.values() if len(f) > 1]
    assert multi, "expected multi-defect units at this yield"
    fault_sets = sorted(defects.values(), key=lambda fs: fs[0].instance_index)
    packed = lane_signatures(program, CONFIG, cycles, fault_sets)
    for fault_set, signature in zip(fault_sets, packed):
        alone = lane_signatures(program, CONFIG, cycles, [fault_set])
        assert alone == [signature]


def test_healthy_lane_matches_golden(core):
    _, _, program, cycles = core
    golden = golden_signature(program, CONFIG, cycles)
    assert lane_signatures(program, CONFIG, cycles, [None]) == [golden]


def test_lane_plan_flattens_multi_fault_entries(core):
    netlist, _, _, _ = core
    f0 = StuckAtFault(instance_index=0, stuck_value=0)
    f1 = StuckAtFault(instance_index=1, stuck_value=1)
    plan = LanePlan.for_faults([None, (f0, f1), f1])
    assert plan.has_forces
    forced = plan.forced_bits(netlist)
    assert forced[netlist.instances[0].output] == [(1, 0)]
    assert forced[netlist.instances[1].output] == [(1, 1), (2, 1)]
    assert not LanePlan.for_faults([None, ()]).has_forces


def test_safe_signatures_isolates_wedged_lanes(core, monkeypatch):
    _, _, program, cycles = core
    poison = object()

    def runner(prog, config, cyc, fault_sets, context=None):
        if poison in fault_sets:
            raise RuntimeError("wedged batch")
        return lane_signatures(prog, config, cyc, fault_sets, context)

    monkeypatch.setattr("repro.mc.fyield.lane_signatures", runner)
    golden = golden_signature(program, CONFIG, cycles)
    out = safe_signatures(program, CONFIG, cycles, [None, poison, None])
    assert out == [golden, WEDGED, golden]
