"""Stream-split counter sampling: determinism, independence, parity."""

import numpy as np
import pytest

from repro import obs
from repro.mc.sampling import (
    _KEY_CACHE_HITS,
    _KEY_CACHE_MISSES,
    SubstreamSampler,
    clear_key_cache,
    stream_keys,
)


def test_scalar_matches_vectorized_uniforms():
    sampler = SubstreamSampler(seed=123, streams=7, domain="timing")
    block = sampler.uniforms(0, 40)
    for stream in range(7):
        for index in range(0, 40, 7):
            assert sampler.uniform(stream, index) == block[stream, index]


def test_scalar_matches_vectorized_normals():
    sampler = SubstreamSampler(seed=99, streams=5, domain="timing")
    block = sampler.normals(0, 32)
    for stream in range(5):
        for index in (0, 1, 7, 31):
            assert sampler.normal(stream, index) == block[stream, index]


def test_scalar_matches_vectorized_bits():
    sampler = SubstreamSampler(seed=7, streams=4, domain="defects")
    block = sampler.bits(0, 64)
    for stream in range(4):
        for index in range(0, 64, 13):
            assert sampler.bit(stream, index) == block[stream, index]


def test_offset_independence():
    """Draw index, not call order, addresses a sample (shardability)."""
    sampler = SubstreamSampler(seed=5, streams=3, domain="timing")
    whole = sampler.normals(0, 100)
    for lo, hi in ((0, 10), (10, 64), (64, 100), (37, 41)):
        assert np.array_equal(sampler.normals(lo, hi), whole[:, lo:hi])


def test_same_seed_reproduces():
    a = SubstreamSampler(seed=42, streams=6, domain="timing").normals(0, 16)
    b = SubstreamSampler(seed=42, streams=6, domain="timing").normals(0, 16)
    assert np.array_equal(a, b)


def test_seeds_and_domains_decorrelate():
    base = SubstreamSampler(seed=1, streams=4, domain="timing").uniforms(0, 32)
    other_seed = SubstreamSampler(seed=2, streams=4, domain="timing").uniforms(0, 32)
    other_domain = SubstreamSampler(seed=1, streams=4, domain="defects").uniforms(0, 32)
    assert not np.array_equal(base, other_seed)
    assert not np.array_equal(base, other_domain)


def test_streams_decorrelate():
    block = SubstreamSampler(seed=3, streams=8, domain="timing").uniforms(0, 64)
    for row in range(1, 8):
        assert not np.array_equal(block[0], block[row])


def test_uniforms_in_open_interval():
    block = SubstreamSampler(seed=11, streams=16, domain="timing").uniforms(0, 256)
    assert block.min() > 0.0
    assert block.max() < 1.0


def test_normals_roughly_standard():
    block = SubstreamSampler(seed=17, streams=64, domain="timing").normals(0, 256)
    flat = block.ravel()
    assert abs(float(flat.mean())) < 0.02
    assert abs(float(flat.std()) - 1.0) < 0.02


def test_key_cache_counters():
    clear_key_cache()
    was_enabled = obs.enabled()
    obs.STATE.enabled = True
    try:
        misses = _KEY_CACHE_MISSES.value
        hits = _KEY_CACHE_HITS.value
        stream_keys(1234, 5, "timing")
        stream_keys(1234, 5, "timing")
        assert _KEY_CACHE_MISSES.value == misses + 1
        assert _KEY_CACHE_HITS.value == hits + 1
    finally:
        obs.STATE.enabled = was_enabled


def test_keys_are_read_only():
    keys = stream_keys(1, 4, "timing")
    with pytest.raises(ValueError):
        keys[0] = 0
