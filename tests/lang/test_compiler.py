"""Tests for the TPC compiler: compiled programs vs Python semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import compile_tpc
from repro.lang.compiler import CompileError
from repro.sim import Machine


def run(source, datawidth=8, **pokes):
    program = compile_tpc(source, datawidth=datawidth)
    machine = Machine(program)
    for symbol, value in pokes.items():
        machine.load(symbol, value)
    machine.run()
    return machine


class TestExpressions:
    @settings(max_examples=30)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_arithmetic_wraps_at_width(self, a, b):
        machine = run("var a\nvar b\nvar r\nr = a + b\n", a=a, b=b)
        assert machine.peek("r") == (a + b) & 0xFF

    @settings(max_examples=30)
    @given(a=st.integers(0, 255), b=st.integers(0, 255), c=st.integers(0, 255))
    def test_left_associativity(self, a, b, c):
        machine = run("var a\nvar b\nvar c\nvar r\nr = a - b ^ c\n", a=a, b=b, c=c)
        assert machine.peek("r") == (((a - b) & 0xFF) ^ c) & 0xFF

    @settings(max_examples=30)
    @given(a=st.integers(0, 255), k=st.integers(0, 7))
    def test_shifts_are_logical(self, a, k):
        machine = run(f"var a\nvar l\nvar r\nl = a << {k}\nr = a >> {k}\n", a=a)
        assert machine.peek("l") == (a << k) & 0xFF
        assert machine.peek("r") == a >> k

    @settings(max_examples=20)
    @given(a=st.integers(0, 255))
    def test_bitwise_not(self, a):
        machine = run("var a\nvar r\nr = ~a\n", a=a)
        assert machine.peek("r") == (~a) & 0xFF

    def test_constants_pooled_in_data(self):
        program = compile_tpc("var x\nx = 5 + 5 + 5\n")
        # One pooled slot for 5, not three.
        fives = [a for a, v in program.data.items() if v == 5]
        assert len(fives) == 1

    def test_aliasing_safe(self):
        machine = run("var x\nx = x + x\n", x=7)
        assert machine.peek("x") == 14

    def test_self_assignment_is_identity(self):
        """Fuzzer-found regression: `c = c` must not zero c (the
        XOR/OR copy idiom is destructive on self-copies)."""
        machine = run("var c = 1\nc = c\n")
        assert machine.peek("c") == 1

    def test_program_too_large_rejected(self):
        source = "var x\n" + "x = x + 1\n" * 90  # 3 instrs each > 256
        with pytest.raises(CompileError, match="8-bit PC"):
            compile_tpc(source)

    @settings(max_examples=15)
    @given(a=st.integers(0, 65535), b=st.integers(0, 65535))
    def test_sixteen_bit_width(self, a, b):
        machine = run("var a\nvar b\nvar r\nr = a ^ b\n", datawidth=16, a=a, b=b)
        assert machine.peek("r") == a ^ b


class TestControlFlow:
    @settings(max_examples=25)
    @given(a=st.integers(0, 255), b=st.integers(0, 255),
           op=st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
    def test_all_relations(self, a, b, op):
        source = f"var a\nvar b\nvar r\nif a {op} b {{ r = 1 }} else {{ r = 2 }}\n"
        machine = run(source, a=a, b=b)
        expected = {
            "==": a == b, "!=": a != b, "<": a < b,
            "<=": a <= b, ">": a > b, ">=": a >= b,
        }[op]
        assert machine.peek("r") == (1 if expected else 2)

    @settings(max_examples=15)
    @given(n=st.integers(0, 30))
    def test_while_loop(self, n):
        source = (
            "var n\nvar total = 0\n"
            "while n != 0 { total = total + n n = n - 1 }\n"
        )
        machine = run(source, n=n)
        assert machine.peek("total") == (n * (n + 1) // 2) & 0xFF

    def test_nested_control(self):
        source = """
        var i = 0
        var evens = 0
        var odds = 0
        while i < 10 {
            if (i & 1) == 0 { evens = evens + 1 } else { odds = odds + 1 }
            i = i + 1
        }
        """
        machine = run(source)
        assert machine.peek("evens") == 5
        assert machine.peek("odds") == 5


class TestArrays:
    def test_read_write_dynamic_index(self):
        source = """
        var a[8]
        var i = 0
        while i < 8 { a[i] = i << 1 i = i + 1 }
        var x
        x = a[3] + a[7]
        """
        machine = run(source)
        assert machine.peek("x") == 6 + 14

    def test_bubble_sort_compiles_and_sorts(self):
        source = """
        var a[8] = {9, 3, 7, 1, 8, 2, 6, 4}
        var i = 0
        var j = 0
        var t = 0
        while i < 8 {
            j = 0
            while j < 7 {
                if a[j] > a[j + 1] {
                    t = a[j]
                    a[j] = a[j + 1]
                    a[j + 1] = t
                }
                j = j + 1
            }
            i = i + 1
        }
        """
        program = compile_tpc(source, name="bubble")
        machine = Machine(program)
        machine.run()
        base = program.address_of("a")
        assert [machine.peek(base + k) for k in range(8)] == [1, 2, 3, 4, 6, 7, 8, 9]

    def test_array_without_index_rejected(self):
        with pytest.raises(CompileError, match="without an index"):
            compile_tpc("var a[4]\nvar x\nx = a\n")

    def test_indexing_scalar_rejected(self):
        with pytest.raises(CompileError, match="not an array"):
            compile_tpc("var x\nvar y\ny = x[0]\n")


class TestErrors:
    def test_undeclared_variable(self):
        with pytest.raises(CompileError, match="undeclared"):
            compile_tpc("x = 1\nvar x\n" if False else "x = 1\n")

    def test_duplicate_variable(self):
        with pytest.raises(CompileError, match="duplicate"):
            compile_tpc("var x\nvar x\n")

    def test_constant_too_wide(self):
        with pytest.raises(CompileError, match="exceeds"):
            compile_tpc("var x\nx = 300\n")

    def test_data_memory_overflow(self):
        with pytest.raises(CompileError, match="256-word"):
            compile_tpc("var a[200]\nvar b[100]\n")


class TestIntegration:
    def test_compiled_program_cosimulates(self):
        """A compiled TPC program is a first-class citizen: it runs on
        the gate-level core identically to the ISS."""
        from repro.coregen.cosim import cosim_verify

        program = compile_tpc(
            "var n = 9\nvar total = 0\n"
            "while n != 0 { total = total + n n = n - 1 }\n",
            name="tpc_sum",
        )
        assert cosim_verify(program) == []

    def test_compiled_program_shrinks_program_specific(self):
        from repro.isa.analysis import analyze_program

        program = compile_tpc("var x = 1\nx = x + 1\n")
        analysis = analyze_program(program)
        assert analysis.instruction_bits < 24

    def test_compiled_program_evaluates_as_system(self):
        from repro.eval.system import evaluate_system

        program = compile_tpc(
            "var n = 5\nvar f = 1\n"
            "while n != 0 { f = f + f n = n - 1 }\n",
            name="tpc_pow2",
        )
        metrics = evaluate_system(program)
        assert metrics.total_energy > 0
