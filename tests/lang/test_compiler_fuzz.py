"""Differential fuzzing of the TPC compiler.

Hypothesis generates random (but well-formed, always-terminating) TPC
modules; each is executed twice -- compiled to TP-ISA and run on the
ISS, and directly interpreted over the AST in Python -- and the final
variable states must agree.  This catches codegen bugs (temp clobbers,
flag misuse, pointer arithmetic) that example-based tests miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.compiler import compile_tpc
from repro.lang.parser import (
    Assign, Binary, Condition, If, Index, Module, Name, Number, Unary,
    VarDecl, While,
)
from repro.sim import Machine

WIDTH = 8
MASK = 0xFF
SCALARS = ("a", "b", "c", "d")
#: Loop counters: only ever incremented, so every generated loop
#: terminates (generated assignments never target these).
LOOPVARS = ("l0", "l1")
ARRAY = "arr"
ARRAY_LEN = 4


# -- AST generation -----------------------------------------------------------


@st.composite
def expressions(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 3 else 1))
    if choice == 0:
        return Number(draw(st.integers(0, MASK)))
    if choice == 1:
        return Name(draw(st.sampled_from(SCALARS + LOOPVARS)))
    if choice == 2:
        return Unary(draw(expressions(depth=depth + 1)))
    if choice == 3:
        # Index kept in range via masking at generation time.
        return Index(ARRAY, Number(draw(st.integers(0, ARRAY_LEN - 1))))
    op = draw(st.sampled_from(["+", "-", "&", "|", "^"]))
    return Binary(
        op, draw(expressions(depth=depth + 1)), draw(expressions(depth=depth + 1))
    )


@st.composite
def conditions(draw):
    op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
    return Condition(op, draw(expressions()), draw(expressions()))


@st.composite
def statements(draw, depth=0):
    choice = draw(st.integers(0, 2 if depth < 2 else 0))
    if choice == 0:
        if draw(st.booleans()):
            target = Name(draw(st.sampled_from(SCALARS)))
        else:
            target = Index(ARRAY, Number(draw(st.integers(0, ARRAY_LEN - 1))))
        return Assign(target, draw(expressions()))
    if choice == 1:
        then_body = tuple(
            draw(statements(depth=depth + 1))
            for _ in range(draw(st.integers(1, 2)))
        )
        else_body = tuple(
            draw(statements(depth=depth + 1))
            for _ in range(draw(st.integers(0, 2)))
        )
        return If(draw(conditions()), then_body, else_body)
    # Bounded counted loop: always terminates (counters are monotone).
    counter = draw(st.sampled_from(LOOPVARS))
    iterations = draw(st.integers(1, 4))
    body = tuple(
        draw(statements(depth=depth + 1)) for _ in range(draw(st.integers(1, 2)))
    )
    return While(
        Condition("<", Name(counter), Number(iterations)),
        body + (Assign(Name(counter), Binary("+", Name(counter), Number(1))),),
    )


@st.composite
def modules(draw):
    declarations = tuple(
        [VarDecl(name, init=(draw(st.integers(0, MASK)),)) for name in SCALARS]
        + [VarDecl(name, init=(0,)) for name in LOOPVARS]
        + [VarDecl(
            ARRAY,
            length=ARRAY_LEN,
            init=tuple(draw(st.integers(0, MASK)) for _ in range(ARRAY_LEN)),
            is_array=True,
        )]
    )
    body = tuple(draw(statements()) for _ in range(draw(st.integers(1, 5))))
    return Module(declarations, body)


# -- reference interpreter --------------------------------------------------------


def interpret(module: Module) -> dict:
    """Execute the AST directly with Python integers (mod 2^8)."""
    env: dict = {}
    for decl in module.declarations:
        if decl.is_array:
            env[decl.name] = list(decl.init) + [0] * (decl.length - len(decl.init))
        else:
            env[decl.name] = decl.init[0] if decl.init else 0

    def expr(node) -> int:
        if isinstance(node, Number):
            return node.value & MASK
        if isinstance(node, Name):
            return env[node.name]
        if isinstance(node, Index):
            return env[node.name][expr(node.index) % ARRAY_LEN]
        if isinstance(node, Unary):
            return (~expr(node.operand)) & MASK
        left, right = expr(node.left), expr(node.right)
        return {
            "+": (left + right) & MASK,
            "-": (left - right) & MASK,
            "&": left & right,
            "|": left | right,
            "^": left ^ right,
        }[node.op]

    def condition(node) -> bool:
        left, right = expr(node.left), expr(node.right)
        return {
            "==": left == right, "!=": left != right,
            "<": left < right, "<=": left <= right,
            ">": left > right, ">=": left >= right,
        }[node.op]

    def run(node) -> None:
        if isinstance(node, Assign):
            value = expr(node.value)
            if isinstance(node.target, Name):
                env[node.target.name] = value
            else:
                env[node.target.name][expr(node.target.index) % ARRAY_LEN] = value
        elif isinstance(node, If):
            body = node.then_body if condition(node.condition) else node.else_body
            for statement in body:
                run(statement)
        elif isinstance(node, While):
            for _ in range(10_000):
                if not condition(node.condition):
                    return
                for statement in node.body:
                    run(statement)

    for statement in module.statements:
        run(statement)
    return env


def render(module: Module) -> str:
    """Serialize the AST back to TPC source text."""
    def expr(node) -> str:
        if isinstance(node, Number):
            return str(node.value)
        if isinstance(node, Name):
            return node.name
        if isinstance(node, Index):
            return f"{node.name}[{expr(node.index)}]"
        if isinstance(node, Unary):
            return f"~({expr(node.operand)})"
        return f"({expr(node.left)} {node.op} {expr(node.right)})"

    lines = []
    for decl in module.declarations:
        if decl.is_array:
            init = ", ".join(str(v) for v in decl.init)
            lines.append(f"var {decl.name}[{decl.length}] = {{{init}}}")
        else:
            lines.append(f"var {decl.name} = {decl.init[0]}")

    def stmt(node, indent: str) -> None:
        if isinstance(node, Assign):
            if isinstance(node.target, Name):
                lines.append(f"{indent}{node.target.name} = {expr(node.value)}")
            else:
                lines.append(
                    f"{indent}{node.target.name}[{expr(node.target.index)}] = "
                    f"{expr(node.value)}"
                )
        elif isinstance(node, If):
            cond = f"{expr(node.condition.left)} {node.condition.op} {expr(node.condition.right)}"
            lines.append(f"{indent}if {cond} {{")
            for inner in node.then_body:
                stmt(inner, indent + "  ")
            if node.else_body:
                lines.append(f"{indent}}} else {{")
                for inner in node.else_body:
                    stmt(inner, indent + "  ")
            lines.append(f"{indent}}}")
        else:
            cond = f"{expr(node.condition.left)} {node.condition.op} {expr(node.condition.right)}"
            lines.append(f"{indent}while {cond} {{")
            for inner in node.body:
                stmt(inner, indent + "  ")
            lines.append(f"{indent}}}")

    for node in module.statements:
        stmt(node, "")
    return "\n".join(lines) + "\n"


@settings(max_examples=80, deadline=None)
@given(module=modules())
def test_compiled_matches_interpreter(module):
    from hypothesis import assume

    from repro.lang.compiler import CompileError

    source = render(module)
    try:
        program = compile_tpc(source, name="fuzz")
    except CompileError:
        # Generated program legitimately exceeded a machine limit
        # (instruction or data space) -- rejected, not miscompiled.
        assume(False)
    machine = Machine(program)
    machine.run(max_steps=500_000)
    expected = interpret(module)

    for name in SCALARS + LOOPVARS:
        assert machine.peek(name) == expected[name], (name, source)
    base = program.address_of(ARRAY)
    for k in range(ARRAY_LEN):
        assert machine.peek(base + k) == expected[ARRAY][k], (k, source)
