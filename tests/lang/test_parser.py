"""Tests for the TPC tokenizer and parser."""

import pytest

from repro.lang.parser import (
    Assign, Binary, Condition, If, Index, Name, Number, ParseError, Unary,
    VarDecl, While, parse, tokenize,
)


class TestTokenizer:
    def test_numbers_in_three_bases(self):
        tokens = tokenize("10 0x1F 0b101")
        assert [t.text for t in tokens[:-1]] == ["10", "0x1F", "0b101"]

    def test_comments_and_whitespace_skipped(self):
        tokens = tokenize("a = 1 # set a\nb = 2\n")
        assert [t.text for t in tokens[:-1]] == ["a", "=", "1", "b", "=", "2"]

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_two_char_operators(self):
        tokens = tokenize("a << 1 <= == != >>")
        texts = [t.text for t in tokens[:-1]]
        assert "<<" in texts and "<=" in texts and "==" in texts

    def test_stray_character_rejected(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a = $")


class TestDeclarations:
    def test_scalar_with_init(self):
        module = parse("var x = 7\n")
        assert module.declarations == (VarDecl("x", init=(7,)),)

    def test_array_with_initializers(self):
        module = parse("var a[4] = {1, 2, 3}\n")
        [decl] = module.declarations
        assert decl.is_array and decl.length == 4 and decl.init == (1, 2, 3)

    def test_too_many_initializers_rejected(self):
        with pytest.raises(ParseError, match="initializers"):
            parse("var a[2] = {1, 2, 3}\n")


class TestStatements:
    def test_assignment_tree(self):
        module = parse("var x\nvar y\nx = y + 2 & 3\n")
        [assign] = module.statements
        assert isinstance(assign, Assign)
        # Left associative, no precedence: (y + 2) & 3.
        assert assign.value == Binary("&", Binary("+", Name("y"), Number(2)), Number(3))

    def test_parentheses_override(self):
        module = parse("var x\nx = 1 + (2 & 3)\n")
        [assign] = module.statements
        assert assign.value == Binary("+", Number(1), Binary("&", Number(2), Number(3)))

    def test_if_else(self):
        module = parse("var x\nif x < 3 { x = 1 } else { x = 2 }\n")
        [node] = module.statements
        assert isinstance(node, If)
        assert node.condition == Condition("<", Name("x"), Number(3))
        assert len(node.then_body) == 1 and len(node.else_body) == 1

    def test_while_with_array(self):
        module = parse("var a[4]\nvar i\nwhile i != 4 { a[i] = i i = i + 1 }\n")
        [loop] = module.statements
        assert isinstance(loop, While)
        assert isinstance(loop.body[0].target, Index)

    def test_unary_not(self):
        module = parse("var x\nx = ~x\n")
        assert module.statements[0].value == Unary(Name("x"))

    def test_shift_amount_must_be_constant(self):
        with pytest.raises(ParseError, match="constant"):
            parse("var x\nvar y\nx = x << y\n")

    def test_condition_requires_comparison(self):
        with pytest.raises(ParseError, match="comparison"):
            parse("var x\nif x { x = 1 }\n")

    def test_unterminated_block(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse("var x\nwhile x != 0 { x = x - 1\n")
