"""Functional verification of every benchmark kernel at every
supported (kernel width, core width) configuration, against Python
golden models.  These tests are the ground truth that the paper's
energy/latency numbers are computed over *correct* programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProgramError
from repro.programs import build_benchmark, runnable_configurations
from repro.programs import crc8, div, dtree, insort, intavg, mult, thold
from repro.programs.builder import read_value, unpack_words
from repro.sim.machine import Machine


def run(program):
    machine = Machine(program, num_bars=max(2, program.num_bars))
    machine.run()
    return machine


def read_multiword(machine, program, symbol, words):
    base = program.address_of(symbol)
    return unpack_words(
        [machine.peek(base + i) for i in range(words)], machine.width
    )


def words_per_value(kernel_width, core_width):
    return max(1, kernel_width // core_width)


class TestMult:
    @pytest.mark.parametrize("kernel_width,core_width", runnable_configurations("mult"))
    def test_default_inputs_all_configs(self, kernel_width, core_width):
        a, b = mult.DEFAULT_INPUTS[kernel_width]
        program = mult.build(kernel_width, core_width)
        machine = run(program)
        wpv = words_per_value(kernel_width, core_width)
        result = read_multiword(machine, program, "product", wpv)
        mask = (1 << kernel_width) - 1
        assert result & mask == mult.reference(a, b, kernel_width)

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 0xFFFF), b=st.integers(0, 0xFFFF))
    def test_random_16bit_on_8bit_core(self, a, b):
        program = mult.build(16, 8, a=a, b=b)
        machine = run(program)
        result = read_multiword(machine, program, "product", 2)
        assert result == mult.reference(a, b, 16)

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_random_8bit_on_4bit_core(self, a, b):
        """Deep coalescing plus a multi-word loop counter."""
        program = mult.build(8, 4, a=a, b=b)
        machine = run(program)
        result = read_multiword(machine, program, "product", 2)
        assert result == mult.reference(a, b, 8)


class TestDiv:
    @pytest.mark.parametrize("kernel_width,core_width", runnable_configurations("div"))
    def test_default_inputs_all_configs(self, kernel_width, core_width):
        dividend, divisor = div.DEFAULT_INPUTS[kernel_width]
        program = div.build(kernel_width, core_width)
        machine = run(program)
        wpv = words_per_value(kernel_width, core_width)
        quotient = read_multiword(machine, program, "quotient", wpv)
        remainder = read_multiword(machine, program, "remainder", wpv)
        assert (quotient, remainder) == div.reference(dividend, divisor, kernel_width)

    @settings(max_examples=25, deadline=None)
    @given(dividend=st.integers(0, 0xFFFF), divisor=st.integers(1, 0xFFFF))
    def test_random_16bit_on_8bit_core(self, dividend, divisor):
        program = div.build(16, 8, dividend=dividend, divisor=divisor)
        machine = run(program)
        quotient = read_multiword(machine, program, "quotient", 2)
        remainder = read_multiword(machine, program, "remainder", 2)
        assert (quotient, remainder) == div.reference(dividend, divisor, 16)

    @settings(max_examples=15, deadline=None)
    @given(dividend=st.integers(0, 255), divisor=st.integers(1, 255))
    def test_random_8bit_on_32bit_core(self, dividend, divisor):
        """Wider-than-kernel core runs the kernel directly."""
        program = div.build(8, 32, dividend=dividend, divisor=divisor)
        machine = run(program)
        quotient = read_multiword(machine, program, "quotient", 1)
        remainder = read_multiword(machine, program, "remainder", 1)
        assert (quotient, remainder) == div.reference(dividend, divisor, 8)


class TestInsort:
    @pytest.mark.parametrize("kernel_width,core_width", runnable_configurations("inSort"))
    def test_default_inputs_all_configs(self, kernel_width, core_width):
        values = insort.default_inputs(kernel_width)
        program = insort.build(kernel_width, core_width)
        machine = run(program)
        wpv = words_per_value(kernel_width, core_width)
        base = program.address_of("arr")
        sorted_values = [
            unpack_words(
                [machine.peek(base + e * wpv + w) for w in range(wpv)],
                machine.width,
            )
            for e in range(len(values))
        ]
        assert sorted_values == insort.reference(values)

    @settings(max_examples=15, deadline=None)
    @given(values=st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_random_8bit(self, values):
        program = insort.build(8, 8, values=values)
        machine = run(program)
        base = program.address_of("arr")
        result = [machine.peek(base + i) for i in range(16)]
        assert result == sorted(values)

    @settings(max_examples=10, deadline=None)
    @given(values=st.lists(st.integers(0, 0xFFFF), min_size=16, max_size=16))
    def test_random_16bit_on_8bit_core(self, values):
        """Multi-word comparisons through the borrow chain."""
        program = insort.build(16, 8, values=values)
        machine = run(program)
        base = program.address_of("arr")
        result = [
            machine.peek(base + 2 * i) | (machine.peek(base + 2 * i + 1) << 8)
            for i in range(16)
        ]
        assert result == sorted(values)

    def test_requires_settable_bar(self):
        with pytest.raises(ProgramError):
            insort.build(8, 8, num_bars=1)


class TestIntAvg:
    @pytest.mark.parametrize("kernel_width,core_width", runnable_configurations("intAvg"))
    def test_default_inputs_all_configs(self, kernel_width, core_width):
        values = intavg.default_inputs(kernel_width)
        program = intavg.build(kernel_width, core_width)
        machine = run(program)
        wpv = words_per_value(kernel_width, core_width)
        result = read_multiword(machine, program, "avg", wpv)
        # Default inputs never wrap, so the truncated mean is exact.
        assert result == sum(values) // len(values)

    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_wrapping_semantics_native_8bit(self, values):
        program = intavg.build(8, 8, values=values)
        machine = run(program)
        assert machine.peek(program.address_of("avg")) == intavg.reference_truncated(values, 8)


class TestThold:
    @pytest.mark.parametrize("kernel_width,core_width", runnable_configurations("tHold"))
    def test_default_inputs_all_configs(self, kernel_width, core_width):
        values, threshold = thold.default_inputs(kernel_width)
        program = thold.build(kernel_width, core_width)
        machine = run(program)
        assert machine.peek(program.address_of("count")) == thold.reference(values, threshold)

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(st.integers(0, 255), min_size=16, max_size=16),
        threshold=st.integers(0, 255),
    )
    def test_random_8bit(self, values, threshold):
        program = thold.build(8, 8, values=values, threshold=threshold)
        machine = run(program)
        assert machine.peek(program.address_of("count")) == thold.reference(values, threshold)

    @settings(max_examples=10, deadline=None)
    @given(
        values=st.lists(st.integers(0, 0xFFFFFFFF), min_size=16, max_size=16),
        threshold=st.integers(0, 0xFFFFFFFF),
    )
    def test_random_32bit_on_8bit_core(self, values, threshold):
        program = thold.build(32, 8, values=values, threshold=threshold)
        machine = run(program)
        assert machine.peek(program.address_of("count")) == thold.reference(values, threshold)


class TestCrc8:
    def test_default_stream(self):
        stream = crc8.default_inputs()
        program = crc8.build()
        machine = run(program)
        assert machine.peek(program.address_of("crc")) == crc8.reference(stream)

    @settings(max_examples=20, deadline=None)
    @given(stream=st.lists(st.integers(0, 255), min_size=16, max_size=16))
    def test_random_streams(self, stream):
        program = crc8.build(stream=stream)
        machine = run(program)
        assert machine.peek(program.address_of("crc")) == crc8.reference(stream)

    def test_known_vector(self):
        """CRC-8/ATM of '123456789' is 0xF4 (standard check value)."""
        stream = [ord(c) for c in "123456789"] + [0] * 7
        # Pad changes the value; check the 9-byte prefix via reference
        # only -- the kernel always processes 16 bytes.
        program = crc8.build(stream=stream)
        machine = run(program)
        assert machine.peek(program.address_of("crc")) == crc8.reference(stream)
        assert crc8.reference([ord(c) for c in "123456789"]) == 0xF4

    def test_rejects_other_widths(self):
        with pytest.raises(ProgramError):
            crc8.build(16, 16)


class TestDtree:
    @pytest.mark.parametrize("width", [8, 16, 32])
    def test_default_inputs(self, width):
        inputs = dtree.default_inputs(width)
        program = dtree.build(width, width)
        machine = run(program)
        assert machine.peek(program.address_of("result")) == dtree.reference(inputs)

    def test_uses_exactly_256_words(self):
        """The paper designed dTree to fill all 256 instruction words."""
        assert dtree.build(8, 8).static_size == 256

    @settings(max_examples=25, deadline=None)
    @given(inputs=st.lists(st.integers(0, 255), min_size=8, max_size=8))
    def test_random_inputs_follow_reference_path(self, inputs):
        program = dtree.build(8, 8, inputs=inputs)
        machine = run(program)
        assert machine.peek(program.address_of("result")) == dtree.reference(inputs)

    def test_rejects_coalescing(self):
        with pytest.raises(ProgramError, match="coalescing"):
            dtree.build(32, 16)

    def test_thresholds_not_in_data_memory(self):
        """Thresholds live in STORE immediates, not the data image."""
        program = dtree.build(8, 8)
        data_addresses = set(program.data)
        assert data_addresses <= set(range(dtree.NUM_INPUTS + 2))


class TestRegistry:
    def test_all_benchmarks_registered(self):
        from repro.programs import BENCHMARKS

        assert set(BENCHMARKS) == {"mult", "div", "inSort", "intAvg", "tHold", "crc8", "dTree"}

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ProgramError):
            build_benchmark("sha256", 8, 8)

    def test_unsupported_configuration_rejected(self):
        with pytest.raises(ProgramError):
            build_benchmark("dTree", 32, 16)

    def test_every_config_builds_and_fits_architecture(self):
        from repro.programs import BENCHMARKS

        for name in BENCHMARKS:
            for kernel_width, core_width in runnable_configurations(name):
                program = build_benchmark(name, kernel_width, core_width)
                assert program.static_size <= 256
                assert all(0 <= a < 256 for a in program.data)
