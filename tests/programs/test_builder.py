"""Unit tests for the kernel code-generation infrastructure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProgramError
from repro.isa.spec import Mnemonic
from repro.programs.builder import (
    KernelBuilder,
    pack_value,
    read_value,
    unpack_words,
    write_value,
)
from repro.sim.machine import Machine


class TestAllocation:
    def test_values_span_words_per_value(self):
        builder = KernelBuilder("t", kernel_width=32, core_width=8)
        assert builder.words_per_value == 4
        var = builder.alloc("x", init=0x12345678)
        assert builder.data == {0: 0x78, 1: 0x56, 2: 0x34, 3: 0x12}
        assert var.words == 4

    def test_scalars_are_one_word(self):
        builder = KernelBuilder("t", 32, 8)
        counter = builder.alloc("i", scalar=True, init=3)
        assert counter.words == 1

    def test_wide_core_narrow_kernel(self):
        builder = KernelBuilder("t", kernel_width=8, core_width=32)
        assert builder.words_per_value == 1
        assert builder.value_bits == 32

    def test_incompatible_widths_rejected(self):
        with pytest.raises(ProgramError):
            KernelBuilder("t", kernel_width=24, core_width=16)

    def test_duplicate_names_rejected(self):
        builder = KernelBuilder("t", 8, 8)
        builder.alloc("x")
        with pytest.raises(ProgramError):
            builder.alloc("x")

    def test_oversized_init_rejected(self):
        builder = KernelBuilder("t", 8, 8)
        with pytest.raises(ProgramError):
            builder.alloc("x", init=256)

    def test_counter_width_tracks_value(self):
        narrow = KernelBuilder("t", 8, 4)
        assert narrow.alloc_counter("c8", 8).words == 1   # 8 fits 4 bits? no: needs 4 bits -> 1 word
        wide = KernelBuilder("t2", 32, 4)
        assert wide.alloc_counter("c32", 32).words == 2   # 32 needs 6 bits


class TestLabels:
    def test_forward_fixups_resolve(self):
        builder = KernelBuilder("t", 8, 8)
        x = builder.alloc("x", init=1)
        builder.branch(Mnemonic.BRN, "end", mask=0)
        builder.op(Mnemonic.ADD, x.word(0), x.word(0))
        builder.label("end")
        builder.halt()
        program = builder.finish()
        assert program.instructions[0].target == 2

    def test_undefined_label_rejected(self):
        builder = KernelBuilder("t", 8, 8)
        builder.jump("nowhere")
        with pytest.raises(ProgramError, match="undefined label"):
            builder.finish()

    def test_duplicate_label_rejected(self):
        builder = KernelBuilder("t", 8, 8)
        builder.label("a")
        with pytest.raises(ProgramError):
            builder.label("a")


class TestMultiWordMacros:
    def run_builder(self, builder):
        machine = Machine(builder.finish())
        machine.run()
        return machine

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(0, 0xFFFFFFFF), b=st.integers(0, 0xFFFFFFFF))
    def test_mw_add_32_on_8(self, a, b):
        builder = KernelBuilder("t", 32, 8)
        va = builder.alloc("a", init=a)
        vb = builder.alloc("b", init=b)
        builder.mw_add(va, vb)
        builder.halt()
        machine = self.run_builder(builder)
        assert read_value(machine, va) == (a + b) & 0xFFFFFFFF

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(0, 0xFFFF))
    def test_mw_shifts_roundtrip(self, a):
        builder = KernelBuilder("t", 16, 8)
        var = builder.alloc("v", init=a)
        builder.mw_shift_left(var)
        builder.mw_shift_right(var)
        builder.halt()
        machine = self.run_builder(builder)
        # Left then right shift clears the MSB (it fell off the top).
        assert read_value(machine, var) == (a << 1 & 0xFFFF) >> 1

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(0, 0xFFFF))
    def test_mw_copy_and_zero(self, a):
        builder = KernelBuilder("t", 16, 8)
        src = builder.alloc("s", init=a)
        dst = builder.alloc("d", init=0xBEEF)
        builder.mw_copy(dst, src)
        builder.mw_zero(src)
        builder.halt()
        machine = self.run_builder(builder)
        assert read_value(machine, dst) == a
        assert read_value(machine, src) == 0

    def test_dec_and_branch_multiword_counter(self):
        """A 4-bit core counting down from 32: two-word borrow chain."""
        builder = KernelBuilder("t", 32, 4)
        count = builder.alloc_counter("count", 20)
        tally = builder.alloc("tally", init=0, scalar=True)
        one = builder.one
        builder.label("loop")
        builder.op(Mnemonic.ADD, tally.word(0), one.word(0))
        builder.dec_and_branch_nonzero(count, "loop")
        builder.halt()
        machine = self.run_builder(builder)
        # tally wraps at 4 bits: 20 mod 16 = 4.
        assert machine.peek(tally.base) == 20 % 16


class TestPacking:
    @settings(max_examples=30)
    @given(value=st.integers(0, 0xFFFFFFFF), width=st.sampled_from([4, 8, 16]))
    def test_pack_unpack_roundtrip(self, value, width):
        words = pack_value(value, 32 // width, width)
        assert unpack_words(words, width) == value

    def test_write_read_value(self):
        builder = KernelBuilder("t", 16, 8)
        var = builder.alloc("v", init=0)
        builder.halt()
        machine = Machine(builder.finish())
        write_value(machine, var, 0xABCD)
        assert read_value(machine, var) == 0xABCD
