"""Repository-wide quality invariants: documentation coverage and the
exception-hierarchy contract."""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors


def _walk_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module_info.name.endswith("__main__"):
            continue
        yield importlib.import_module(module_info.name)


ALL_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_every_module_documented(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module.__name__}: {undocumented}"


def test_exception_hierarchy_rooted():
    """Every library exception derives from ReproError so callers can
    catch failures with one handler."""
    for name, obj in vars(errors).items():
        if inspect.isclass(obj) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError) or obj is errors.ReproError


def test_library_never_raises_bare_exceptions():
    """Spot-check: representative invalid calls raise typed errors."""
    from repro.isa.assembler import assemble
    from repro.memory.rom import CrosspointRom
    from repro.coregen.config import CoreConfig

    with pytest.raises(errors.ReproError):
        assemble("FROB x, y\n")
    with pytest.raises(errors.ReproError):
        CrosspointRom(words=0, bits_per_word=1)
    with pytest.raises(errors.ReproError):
        CoreConfig(datawidth=7)
