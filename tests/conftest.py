"""Suite-wide isolation for cross-run state.

Every ``write_run_report`` (and the CLIs the tests drive) appends one
record to the cross-run history ledger.  The suite must never pollute
the developer's real ledger under ``~/.cache/repro/history`` — or read
baselines out of it — so the whole session runs against a throwaway
ledger directory.  Individual history tests still override
``REPRO_HISTORY_DIR``/``REPRO_HISTORY`` per test via ``monkeypatch``.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_history_ledger(tmp_path_factory):
    """Point the history ledger at a session-private directory."""
    previous = os.environ.get("REPRO_HISTORY_DIR")
    os.environ["REPRO_HISTORY_DIR"] = str(
        tmp_path_factory.mktemp("history-ledger")
    )
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_HISTORY_DIR", None)
        else:
            os.environ["REPRO_HISTORY_DIR"] = previous
