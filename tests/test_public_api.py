"""Tests for the top-level package API and the CLI."""

import pytest

import repro
from repro.__main__ import TARGETS, main


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_flow_through_public_names(self):
        program = repro.assemble(
            ".word x 2\n.word y 3\nADD x, y\nHALT\n", name="api"
        )
        machine = repro.Machine(program)
        machine.run()
        assert machine.peek("x") == 5

        config = repro.CoreConfig(datawidth=8)
        netlist = repro.generate_core(config)
        assert netlist.instances

        metrics = repro.evaluate_system(program, config)
        assert metrics.total_energy > 0

        assert repro.egfet_library().vdd == 1.0
        assert repro.cnt_tft_library().vdd == 3.0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        assert "table8" in capsys.readouterr().out

    def test_single_table(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "1-bit ROM" in out

    def test_multiple_targets(self, capsys):
        assert main(["table1", "table3"]) == 0
        out = capsys.readouterr().out
        assert "EGFET" in out and "Smart Bandage" in out

    def test_unknown_target(self, capsys):
        assert main(["table99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_every_target_runs(self, capsys):
        for target in TARGETS:
            assert main([target]) == 0
        assert capsys.readouterr().out
