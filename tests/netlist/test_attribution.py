"""Conservation tests for per-module/per-cell energy attribution.

The invariant under test is the strong one the report documents:
summing either attribution dict's values in iteration order reproduces
the matching ``measured_power_report`` total *bit-exactly*, across
sweep configurations and both technologies, with real toggle data from
gate-level co-simulation.
"""

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.cosim import CoSimHarness
from repro.netlist.power import (
    attributed_power_report,
    measured_power_report,
)
from repro.netlist.probe import module_map
from repro.pdk import technology_library
from repro.programs import build_benchmark

#: A cross-section of the paper's sweep: narrow, headline, deep, wide.
SWEEP_CONFIGS = (
    CoreConfig(datawidth=4),
    CoreConfig(datawidth=8),
    CoreConfig(datawidth=8, pipeline_stages=2),
    CoreConfig(datawidth=16),
)

TECHNOLOGIES = ("EGFET", "CNT-TFT")


@pytest.fixture(scope="module")
def measured():
    """Real per-config toggle data from a short gate-level run."""
    data = {}
    for config in SWEEP_CONFIGS:
        program = build_benchmark("mult", max(8, config.datawidth),
                                  config.datawidth)
        harness = CoSimHarness(program, config)
        for _ in range(50):
            harness.step()
        data[config.name] = (
            harness.netlist,
            harness.sim.toggle_counts(),
            harness.sim.cycles,
        )
    return data


@pytest.mark.parametrize("config", SWEEP_CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("technology", TECHNOLOGIES)
class TestConservation:
    def test_module_and_cell_sums_are_bit_exact(
        self, measured, config, technology
    ):
        netlist, toggles, cycles = measured[config.name]
        library = technology_library(technology)
        report = attributed_power_report(netlist, library, toggles, cycles)
        assert report.conservation_error() == (0.0, 0.0)
        assert sum(report.by_module.values()) == report.total.energy_per_cycle
        assert sum(report.by_cell.values()) == report.total.energy_per_cycle

    def test_total_matches_measured_report(
        self, measured, config, technology
    ):
        netlist, toggles, cycles = measured[config.name]
        library = technology_library(technology)
        attributed = attributed_power_report(netlist, library, toggles, cycles)
        direct = measured_power_report(netlist, library, toggles, cycles)
        assert attributed.total == direct

    def test_toggles_conserved_exactly(self, measured, config, technology):
        netlist, toggles, cycles = measured[config.name]
        library = technology_library(technology)
        report = attributed_power_report(netlist, library, toggles, cycles)
        assert sum(report.toggles_by_module.values()) == sum(toggles.values())

    def test_static_only_cells_match(self, measured, config, technology):
        netlist, toggles, cycles = measured[config.name]
        library = technology_library(technology)
        report = attributed_power_report(netlist, library, toggles, cycles)
        absent = sum(
            1 for i in range(len(netlist.instances)) if not toggles.get(i)
        )
        assert report.static_only_cells == absent
        assert report.total.static_only_cells == absent


class TestAttributionShape:
    def test_explicit_modules_override_the_default_map(self):
        config = CoreConfig(datawidth=4)
        program = build_benchmark("mult", 8, 4)
        harness = CoSimHarness(program, config)
        for _ in range(20):
            harness.step()
        netlist = harness.netlist
        toggles = harness.sim.toggle_counts()
        library = technology_library("EGFET")
        one_bucket = attributed_power_report(
            netlist, library, toggles, harness.sim.cycles,
            modules=["everything"] * len(netlist.instances),
        )
        assert list(one_bucket.by_module) == ["everything"]
        assert one_bucket.by_module["everything"] == (
            one_bucket.total.energy_per_cycle
        )

    def test_default_map_matches_module_map(self):
        config = CoreConfig(datawidth=4)
        program = build_benchmark("mult", 8, 4)
        harness = CoSimHarness(program, config)
        for _ in range(20):
            harness.step()
        netlist = harness.netlist
        toggles = harness.sim.toggle_counts()
        library = technology_library("EGFET")
        implicit = attributed_power_report(
            netlist, library, toggles, harness.sim.cycles
        )
        explicit = attributed_power_report(
            netlist, library, toggles, harness.sim.cycles,
            modules=module_map(netlist),
        )
        assert implicit.by_module == explicit.by_module
