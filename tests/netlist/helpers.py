"""Shared helpers for netlist tests: build and evaluate small circuits."""

from __future__ import annotations

from repro.netlist.core import Netlist
from repro.netlist.sim import CycleSimulator


def evaluate(netlist: Netlist, **input_values: int) -> dict[str, int]:
    """Settle a combinational netlist and return all output bus values."""
    simulator = CycleSimulator(netlist)
    for name, value in input_values.items():
        simulator.set_input(name, value)
    simulator.settle()
    return {name: simulator.read_output(name) for name in netlist.outputs}
