"""Tests for static timing analysis."""

import pytest

from repro.errors import TimingError
from repro.netlist.components import ripple_adder
from repro.netlist.core import Netlist
from repro.netlist.sta import timing_report
from repro.pdk import cnt_tft_library, egfet_library


def inverter_chain(length):
    n = Netlist("chain")
    a = n.input_bus("a", 1)[0]
    net = a
    for _ in range(length):
        net = n.add_instance("INVX1", (net,))
    n.output_bus("y", [net])
    return n


class TestCriticalPath:
    def test_chain_delay_alternates_rise_and_fall(self):
        """Polarity-aware STA: consecutive inverters alternate the slow
        rising and fast falling transitions, so a 5-deep chain is far
        cheaper than five worst-case delays."""
        library = egfet_library()
        report = timing_report(inverter_chain(5), library, fanout_slope=0.0)
        inv = library.cell("INVX1")
        # Worst endpoint: rise,fall,rise,fall,rise = 3 rises + 2 falls.
        expected = 3 * inv.rise_delay + 2 * inv.fall_delay
        assert report.critical_path_delay == pytest.approx(expected)
        assert report.levels == 5
        assert set(report.critical_path) == {"INVX1"}

    def test_pessimistic_mode_sums_worst_delays(self):
        library = egfet_library()
        report = timing_report(
            inverter_chain(5), library, fanout_slope=0.0, pessimistic=True
        )
        inv = library.cell("INVX1")
        assert report.critical_path_delay == pytest.approx(5 * inv.worst_delay)

    def test_fmax_is_reciprocal(self):
        library = egfet_library()
        report = timing_report(inverter_chain(3), library, fanout_slope=0.0)
        assert report.fmax == pytest.approx(1.0 / report.critical_path_delay)

    def test_longer_adder_is_slower(self):
        library = egfet_library()
        delays = []
        for width in (4, 8, 16):
            n = Netlist("adder")
            a = n.input_bus("a", width)
            b = n.input_bus("b", width)
            total, cout = ripple_adder(n, a.nets, b.nets)
            n.output_bus("sum", total.nets)
            n.output_bus("cout", [cout])
            delays.append(timing_report(n, library).critical_path_delay)
        assert delays[0] < delays[1] < delays[2]

    def test_cnt_is_orders_of_magnitude_faster(self):
        n = inverter_chain(10)
        egfet = timing_report(n, egfet_library()).fmax
        cnt = timing_report(n, cnt_tft_library()).fmax
        assert cnt > 50 * egfet


class TestSequentialPaths:
    def test_register_to_register_path(self):
        library = egfet_library()
        n = Netlist("r2r")
        d = n.input_bus("d", 1)[0]
        q1 = n.dff_r(d)
        inverted = n.not_(q1)
        n.dff_r(inverted)
        report = timing_report(n, library, fanout_slope=0.0)
        dff = library.cell("DFFNRX1")
        inv = library.cell("INVX1")
        # Worst endpoint arrival: the inverter's rise follows the
        # flop's falling Q edge (polarity-aware propagation).
        expected = max(
            dff.fall_delay + inv.rise_delay, dff.rise_delay + inv.fall_delay
        )
        assert report.critical_path_delay == pytest.approx(expected)
        assert report.critical_path[0] == "DFFNRX1"

    def test_pipeline_register_adds_clk_to_q_overhead(self):
        """Splitting a chain in two does not double fmax: the DFF's own
        delay is paid once per stage -- the effect behind the paper's
        single-stage-pipeline conclusion."""
        library = egfet_library()
        flat = timing_report(inverter_chain(4), library, fanout_slope=0.0)

        n = Netlist("piped")
        a = n.input_bus("a", 1)[0]
        net = a
        for _ in range(2):
            net = n.add_instance("INVX1", (net,))
        net = n.dff_r(net)
        for _ in range(2):
            net = n.add_instance("INVX1", (net,))
        n.output_bus("y", [net])
        piped = timing_report(n, library, fanout_slope=0.0)
        assert piped.fmax < 2 * flat.fmax

    def test_input_arrival_extends_path(self):
        library = egfet_library()
        base = timing_report(inverter_chain(2), library, fanout_slope=0.0)
        late = timing_report(
            inverter_chain(2), library,
            input_arrivals={"a": 1.0}, fanout_slope=0.0,
        )
        assert late.critical_path_delay == pytest.approx(base.critical_path_delay + 1.0)


class TestRobustness:
    def test_combinational_loop_detected(self):
        n = Netlist("loop")
        a = n.input_bus("a", 1)[0]
        loop_net = n.net("loop")
        inner = n.add_instance("AND2X1", (a, loop_net))
        n.add_instance("INVX1", (inner,), loop_net)
        with pytest.raises(TimingError, match="loop"):
            timing_report(n, egfet_library())

    def test_empty_netlist_has_infinite_fmax(self):
        n = Netlist("empty")
        a = n.input_bus("a", 1)
        n.output_bus("y", [a[0]])
        report = timing_report(n, egfet_library())
        assert report.fmax == float("inf")

    def test_fanout_derate_slows_paths(self):
        library = egfet_library()
        n = Netlist("fanout")
        a = n.input_bus("a", 1)[0]
        stem = n.add_instance("INVX1", (a,))
        leaves = [n.add_instance("INVX1", (stem,)) for _ in range(8)]
        n.output_bus("y", leaves)
        flat = timing_report(n, library, fanout_slope=0.0)
        derated = timing_report(n, library, fanout_slope=0.1)
        assert derated.critical_path_delay > flat.critical_path_delay
