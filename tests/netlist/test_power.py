"""Tests for activity-based power estimation."""

import pytest

from repro.netlist.core import Netlist
from repro.netlist.power import (
    PAPER_ACTIVITY_FACTOR,
    measured_power_report,
    power_report,
)
from repro.pdk import egfet_library


def small_design():
    n = Netlist("t")
    a = n.input_bus("a", 1)[0]
    b = n.input_bus("b", 1)[0]
    gate = n.and_(a, b)
    n.dff_r(gate)
    n.output_bus("y", [gate])
    return n


class TestFlatActivity:
    def test_energy_is_activity_scaled_cell_sum(self):
        library = egfet_library()
        n = small_design()
        report = power_report(n, library, activity=1.0)
        expected = (
            library.cell("AND2X1").energy + library.cell("DFFNRX1").energy
        )
        assert report.energy_per_cycle == pytest.approx(expected)

    def test_default_activity_matches_paper(self):
        report = power_report(small_design(), egfet_library())
        assert report.activity == PAPER_ACTIVITY_FACTOR

    def test_power_scales_with_frequency(self):
        report = power_report(small_design(), egfet_library())
        assert report.power_at(20.0) == pytest.approx(2 * report.power_at(10.0))

    def test_sequential_split(self):
        library = egfet_library()
        report = power_report(small_design(), library, activity=1.0)
        assert report.sequential_energy == pytest.approx(library.cell("DFFNRX1").energy)
        assert 0 < report.sequential_fraction < 1

    def test_empty_netlist_zero_power(self):
        n = Netlist("empty")
        a = n.input_bus("a", 1)
        n.output_bus("y", [a[0]])
        report = power_report(n, egfet_library())
        assert report.energy_per_cycle == 0.0
        assert report.sequential_fraction == 0.0


class TestMeasuredActivity:
    def test_measured_counts_scale_energy(self):
        library = egfet_library()
        n = small_design()
        # Instance 0 is the AND gate, instance 1 the flop.
        toggles = {0: 5, 1: 10}
        report = measured_power_report(n, library, toggles, cycles=10)
        expected = (
            library.cell("AND2X1").energy * 0.5
            + library.cell("DFFNRX1").energy * 1.0
        )
        assert report.energy_per_cycle == pytest.approx(expected)

    def test_no_toggles_means_no_energy(self):
        report = measured_power_report(small_design(), egfet_library(), {}, cycles=100)
        assert report.energy_per_cycle == 0.0
