"""Shared net-load model: unit semantics and pinned rc=None numbers.

Two guarantees under test.  First, the unit behaviour of
:mod:`repro.netlist.load`: one fanout/wire load model shared by STA
and power, with wire capacitance entering as extra gate-equivalent
fanout and ``rc=None`` collapsing to the historical arithmetic.
Second -- the contract the whole PR rests on -- the **pinned table**:
with ``rc=None``, critical-path delay and energy per cycle are
bit-exact with the pre-placement flow on every one of the paper's 24
sweep configurations in both technologies.  Any drift here is a silent
PPA change and must fail loudly.
"""

import pytest

from repro.coregen.config import standard_sweep
from repro.coregen.generator import generate_core
from repro.netlist.load import (
    DEFAULT_FANOUT_SLOPE,
    RCAnnotation,
    WireRC,
    fanout_counts,
    fanout_derate,
    net_derate,
)
from repro.netlist.power import power_report
from repro.netlist.sta import timing_report
from repro.pdk import technology_library

# (critical_path_delay s, energy_per_cycle J) with rc=None, recorded
# before placement-derived RC existed.  These are exact float
# comparisons on purpose: rc=None must stay the wire-blind flow
# bit-for-bit, not merely "close".
PINNED_WIRE_BLIND = {
    ("p1_4_2", "EGFET"): (0.038716400000000005, 0.00017099165599999898),
    ("p1_4_4", "EGFET"): (0.038716400000000005, 0.00023191484799999876),
    ("p2_4_2", "EGFET"): (0.04701755000000001, 0.00022636759199999899),
    ("p2_4_4", "EGFET"): (0.04701755000000001, 0.00028831879999999873),
    ("p3_4_2", "EGFET"): (0.06552270000000003, 0.0003610222000000002),
    ("p3_4_4", "EGFET"): (0.07109165000000002, 0.00042297340799999993),
    ("p1_8_2", "EGFET"): (0.04990930000000002, 0.00019639734399999864),
    ("p1_8_4", "EGFET"): (0.04990930000000002, 0.0002534640239999983),
    ("p2_8_2", "EGFET"): (0.059440250000000014, 0.0002517732799999986),
    ("p2_8_4", "EGFET"): (0.059440250000000014, 0.0003098679759999983),
    ("p3_8_2", "EGFET"): (0.06600750000000002, 0.00040715435199999985),
    ("p3_8_4", "EGFET"): (0.07157645000000003, 0.00046524904799999953),
    ("p1_16_2", "EGFET"): (0.07298260000000002, 0.00025442199200000266),
    ("p1_16_4", "EGFET"): (0.07298260000000002, 0.000311488672000003),
    ("p2_16_2", "EGFET"): (0.08497315000000004, 0.0003097979280000027),
    ("p2_16_4", "EGFET"): (0.08497315000000004, 0.0003678926240000031),
    ("p3_16_2", "EGFET"): (0.08497315000000004, 0.0005066319280000039),
    ("p3_16_4", "EGFET"): (0.08497315000000004, 0.0005647266240000042),
    ("p1_32_2", "EGFET"): (0.11562569999999997, 0.0003709710400000046),
    ("p1_32_4", "EGFET"): (0.11562569999999997, 0.0004280377200000039),
    ("p2_32_2", "EGFET"): (0.1325354499999999, 0.00042634697600000453),
    ("p2_32_4", "EGFET"): (0.1325354499999999, 0.0004844416720000038),
    ("p3_32_2", "EGFET"): (0.1325354499999999, 0.0007060868320000039),
    ("p3_32_4", "EGFET"): (0.1325354499999999, 0.0007641815280000033),
    ("p1_4_2", "CNT"): (9.088230000000002e-05, 5.442380240000019e-06),
    ("p1_4_4", "CNT"): (9.088230000000002e-05, 7.3242074400000474e-06),
    ("p2_4_2", "CNT"): (9.088230000000002e-05, 6.4281500800000185e-06),
    ("p2_4_4", "CNT"): (9.088230000000002e-05, 8.34227328000005e-06),
    ("p3_4_2", "CNT"): (0.00013857620000000005, 1.024172424000009e-05),
    ("p3_4_4", "CNT"): (0.00014582440000000002, 1.2155847440000107e-05),
    ("p1_8_2", "CNT"): (0.00012484770000000003, 7.043814800000075e-06),
    ("p1_8_4", "CNT"): (0.00012484770000000003, 9.007869200000135e-06),
    ("p2_8_2", "CNT"): (0.00012507390000000002, 8.029584640000075e-06),
    ("p2_8_4", "CNT"): (0.00012507390000000002, 1.0025935040000136e-05),
    ("p3_8_2", "CNT"): (0.00013859940000000005, 1.2264502800000106e-05),
    ("p3_8_4", "CNT"): (0.00014584760000000002, 1.4260853200000162e-05),
    ("p1_16_2", "CNT"): (0.0002007103000000001, 1.007466152000015e-05),
    ("p1_16_4", "CNT"): (0.0002007103000000001, 1.2038715920000175e-05),
    ("p2_16_2", "CNT"): (0.00020261250000000008, 1.1060431360000146e-05),
    ("p2_16_4", "CNT"): (0.00020261250000000008, 1.3056781760000173e-05),
    ("p3_16_2", "CNT"): (0.00020261250000000008, 1.6138037520000162e-05),
    ("p3_16_4", "CNT"): (0.00020261250000000008, 1.8134387920000192e-05),
    ("p1_32_2", "CNT"): (0.00033640569999999993, 1.6143922960000295e-05),
    ("p1_32_4", "CNT"): (0.00033640569999999993, 1.8107977360000313e-05),
    ("p2_32_2", "CNT"): (0.00034165989999999994, 1.712969280000029e-05),
    ("p2_32_4", "CNT"): (0.00034165989999999994, 1.9126043200000312e-05),
    ("p3_32_2", "CNT"): (0.00034165989999999994, 2.3892674960000262e-05),
    ("p3_32_4", "CNT"): (0.00034165989999999994, 2.588902536000029e-05),
}


class TestLoadModel:
    def test_fanout_derate_baseline(self):
        assert fanout_derate(1, DEFAULT_FANOUT_SLOPE) == 1.0
        assert fanout_derate(0, DEFAULT_FANOUT_SLOPE) == 1.0
        assert fanout_derate(3, 0.05) == pytest.approx(1.1)

    def test_net_derate_without_wire_matches_fanout_derate(self):
        for fanout in range(0, 6):
            assert net_derate(fanout, 0.0, 5e-9) == fanout_derate(
                fanout, DEFAULT_FANOUT_SLOPE
            )

    def test_net_derate_counts_wire_as_gate_equivalents(self):
        # One extra input-capacitance worth of wire == one more sink.
        cin = 5e-9
        assert net_derate(2, cin, cin) == pytest.approx(net_derate(3, 0.0, cin))

    def test_wire_rc_delay_and_energy(self):
        wire = WireRC(resistance=1000.0, capacitance=1e-7, length=0.1)
        assert wire.delay == pytest.approx(0.5 * 1000.0 * 1e-7)
        assert wire.switch_energy(1.0) == pytest.approx(0.5 * 1e-7)

    def test_annotation_lookup_and_totals(self):
        rc = RCAnnotation(
            source="test",
            nets={
                7: WireRC(10.0, 2e-9, 0.01),
                9: WireRC(20.0, 4e-9, 0.02),
            },
        )
        assert rc.wire_delay(7) == pytest.approx(0.5 * 10.0 * 2e-9)
        assert rc.capacitance(9) == 4e-9
        # Unannotated nets are free (local ties).
        assert rc.wire_delay(1234) == 0.0
        assert rc.capacitance(1234) == 0.0
        assert rc.switch_energy(1234, 1.0) == 0.0
        assert rc.total_wirelength == pytest.approx(0.03)
        assert rc.total_capacitance == pytest.approx(6e-9)

    def test_sta_and_power_share_fanout_counts(self):
        from repro.netlist import power, sta

        assert sta.fanout_counts is fanout_counts
        assert power.fanout_counts is fanout_counts


@pytest.mark.parametrize("technology", ("EGFET", "CNT"))
def test_wire_blind_ppa_is_pinned_bit_exact(technology):
    """rc=None reproduces the pre-placement sweep numbers exactly."""
    library = technology_library(technology)
    for config in standard_sweep():
        netlist = generate_core(config)
        timing = timing_report(netlist, library, rc=None)
        power = power_report(netlist, library, rc=None)
        expected = PINNED_WIRE_BLIND[(config.name, technology)]
        assert (timing.critical_path_delay, power.energy_per_cycle) == expected
