"""Tests for net probing, waveform capture, and module attribution."""

import math

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.cosim import CoSimHarness
from repro.coregen.generator import generate_core
from repro.errors import SimulationError
from repro.netlist.compile import make_capture
from repro.netlist.core import SEQUENTIAL_CELLS
from repro.netlist.probe import (
    ARCH_GROUPS,
    UNATTRIBUTED,
    InstructionEnergyProfiler,
    WaveProbe,
    module_map,
    named_buses,
    resolve_probes,
)
from repro.netlist.sim import CycleSimulator
from repro.pdk import egfet_library
from repro.programs import build_benchmark


@pytest.fixture(scope="module")
def core():
    return generate_core(CoreConfig(datawidth=8))


class TestNamedBuses:
    def test_architectural_buses_present(self, core):
        buses = named_buses(core)
        assert len(buses["pc"]) == 8
        assert len(buses["instr"]) == 24
        assert len(buses["flag_C"]) == 1
        assert len(buses["bar1"]) == 8

    def test_ports_win_collisions(self, core):
        buses = named_buses(core)
        assert buses["pc"] == tuple(core.outputs["pc"].nets)


class TestResolveProbes:
    def test_groups_cover_architectural_state(self, core):
        signals = resolve_probes(core, groups=ARCH_GROUPS)
        names = {s.name for s in signals}
        assert "pc" in names
        assert "flag_C" in names and "flag_Z" in names
        assert "bar1" in names
        assert {"instr", "we", "waddr", "wdata"} <= names

    def test_scopes_follow_name_conventions(self, core):
        by_name = {s.name: s for s in resolve_probes(core, groups=ARCH_GROUPS)}
        assert by_name["flag_Z"].scope == ("flags",)
        assert by_name["bar1"].scope == ("bars",)
        assert by_name["pc"].scope == ()

    def test_explicit_bit_select(self, core):
        (signal,) = resolve_probes(core, names=["pc[3]"])
        assert signal.width == 1
        assert signal.nets == (named_buses(core)["pc"][3],)

    def test_regex_selection_sorted(self, core):
        signals = resolve_probes(core, regex=r"flag_.*")
        assert [s.name for s in signals] == sorted(s.name for s in signals)
        assert all(s.name.startswith("flag_") for s in signals)

    def test_deduplicates_across_modes(self, core):
        signals = resolve_probes(core, names=["pc"], groups=("pc",))
        assert len(signals) == 1

    def test_unknown_group_rejected(self, core):
        with pytest.raises(SimulationError, match="unknown probe group"):
            resolve_probes(core, groups=("nope",))

    def test_unknown_name_rejected(self, core):
        with pytest.raises(SimulationError, match="no bus named"):
            resolve_probes(core, names=["unobtainium"])

    def test_out_of_range_bit_rejected(self, core):
        with pytest.raises(SimulationError, match="no net named"):
            resolve_probes(core, names=["pc[99]"])

    def test_empty_regex_match_rejected(self, core):
        with pytest.raises(SimulationError, match="matches no bus"):
            resolve_probes(core, regex=r"zzz.*")


class TestModuleMap:
    def test_covers_every_instance(self, core):
        labels = module_map(core)
        assert len(labels) == len(core.instances)
        assert all(labels)

    def test_flops_take_their_net_name_prefix(self, core):
        labels = module_map(core)
        names = core.named_nets()
        for index, inst in enumerate(core.instances):
            if inst.cell in SEQUENTIAL_CELLS and inst.output in names:
                assert labels[index] == names[inst.output].partition("[")[0]

    def test_unattributed_is_the_only_fallback(self, core):
        labels = module_map(core)
        modules = set(labels) - {UNATTRIBUTED}
        assert len(modules) > 3  # pc, flags, write port, ...


class TestMakeCapture:
    def test_reads_selected_nets(self, core):
        sim = CycleSimulator(core, backend="compiled")
        sim.reset()
        sim.settle()
        nets = named_buses(core)["pc"]
        capture = make_capture(core, nets)
        assert capture(sim._values) == tuple(sim._values[n] for n in nets)

    def test_empty_selection(self, core):
        assert make_capture(core, ())([1, 2, 3]) == ()

    def test_unknown_net_rejected(self, core):
        with pytest.raises(SimulationError, match="unknown net"):
            make_capture(core, (core.net_count,))


def _run_probed(backend: str, cycles: int = 80):
    program = build_benchmark("mult", 8, 8)
    harness = CoSimHarness(program, CoreConfig(datawidth=8), backend=backend)
    signals = resolve_probes(harness.netlist, groups=ARCH_GROUPS)
    probe = WaveProbe(harness.netlist, signals)
    harness.sim.attach_probe(probe)
    for _ in range(cycles):
        harness.step()
    return probe


class TestWaveProbe:
    def test_backends_produce_identical_dumps(self):
        interpreted = _run_probed("interpreted")
        compiled = _run_probed("compiled")
        assert interpreted.render() == compiled.render()
        assert compiled.samples == interpreted.samples

    def test_compiled_probe_uses_generated_capture(self):
        probe = _run_probed("compiled", cycles=2)
        assert probe._capture.__name__ == "capture"

    def test_needs_signals(self, core):
        with pytest.raises(SimulationError, match="at least one signal"):
            WaveProbe(core, [])

    def test_detach_unknown_probe_rejected(self, core):
        sim = CycleSimulator(core)
        probe = WaveProbe(core, resolve_probes(core, groups=("pc",)))
        with pytest.raises(SimulationError, match="not attached"):
            sim.detach_probe(probe)

    def test_attach_detach_round_trip(self):
        program = build_benchmark("mult", 8, 8)
        harness = CoSimHarness(program, CoreConfig(datawidth=8))
        probe = WaveProbe(
            harness.netlist, resolve_probes(harness.netlist, groups=("pc",))
        )
        harness.sim.attach_probe(probe)
        harness.step()
        harness.sim.detach_probe(probe)
        harness.step()
        assert probe.samples == 1


class TestInstructionEnergyProfiler:
    def test_energy_conserved_against_toggle_counts(self):
        library = egfet_library()
        program = build_benchmark("mult", 8, 8)
        harness = CoSimHarness(program, CoreConfig(datawidth=8))
        netlist = harness.netlist
        pc_nets = named_buses(netlist)["pc"]
        profiler = InstructionEnergyProfiler(netlist, library, pc_nets)
        harness.sim.attach_probe(profiler)
        for _ in range(60):
            harness.step()
        expected = sum(
            library.cell(netlist.instances[i].cell).energy * count
            for i, count in harness.sim.toggle_counts().items()
        )
        assert profiler.total_energy == pytest.approx(expected, rel=1e-9)
        assert math.isclose(
            sum(profiler.energy_by_pc.values()), profiler.total_energy,
            rel_tol=1e-9,
        )

    def test_cycle_histogram_covers_every_cycle(self):
        program = build_benchmark("mult", 8, 8)
        harness = CoSimHarness(program, CoreConfig(datawidth=8))
        profiler = InstructionEnergyProfiler(
            harness.netlist, egfet_library(),
            named_buses(harness.netlist)["pc"],
        )
        harness.sim.attach_probe(profiler)
        for _ in range(25):
            harness.step()
        assert sum(profiler.cycles_by_pc.values()) == 25
        assert profiler.trace.recorded == 25

    def test_ranking_orders_by_energy(self):
        program = build_benchmark("mult", 8, 8)
        harness = CoSimHarness(program, CoreConfig(datawidth=8))
        profiler = InstructionEnergyProfiler(
            harness.netlist, egfet_library(),
            named_buses(harness.netlist)["pc"],
        )
        harness.sim.attach_probe(profiler)
        for _ in range(40):
            harness.step()
        ranking = profiler.energy_ranking(top=3)
        assert len(ranking) <= 3
        energies = [e for _, e in ranking]
        assert energies == sorted(energies, reverse=True)

    def test_needs_pc_nets(self, core):
        with pytest.raises(SimulationError, match="at least one pc net"):
            InstructionEnergyProfiler(core, egfet_library(), ())
