"""Tests for stuck-at fault injection and functional test campaigns."""

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.fault_test import run_fault_campaign
from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.netlist.core import Netlist
from repro.netlist.faults import (
    FaultCampaign,
    FaultySimulator,
    StuckAtFault,
    enumerate_fault_sites,
)


def xor_netlist():
    n = Netlist("t")
    a = n.input_bus("a", 1)[0]
    b = n.input_bus("b", 1)[0]
    n.output_bus("y", [n.xor_(a, b)])
    return n


class TestFaultySimulator:
    @pytest.mark.parametrize("stuck", [0, 1])
    def test_output_forced(self, stuck):
        n = xor_netlist()
        sim = FaultySimulator(n, StuckAtFault(0, stuck))
        for a in (0, 1):
            for b in (0, 1):
                sim.set_input("a", a)
                sim.set_input("b", b)
                sim.settle()
                assert sim.read_output("y") == stuck

    def test_fault_propagates_downstream(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        b = n.input_bus("b", 1)[0]
        first = n.nand(a, b)    # instance 0
        second = n.not_(first)  # instance 1 (AND via NAND+INV)
        n.output_bus("y", [second])
        sim = FaultySimulator(n, StuckAtFault(0, 0))
        sim.set_input("a", 0)   # healthy: nand(0,1)=1 -> y=0
        sim.set_input("b", 1)
        sim.settle()
        assert sim.read_output("y") == 1  # stuck nand=0 -> y=1

    def test_stuck_flop_stays_stuck(self):
        n = Netlist("t")
        d = n.input_bus("d", 1)[0]
        q = n.dff_r(d)
        n.output_bus("q", [q])
        flop_index = 0
        sim = FaultySimulator(n, StuckAtFault(flop_index, 1))
        sim.set_input("rst_n", 1)
        sim.set_input("d", 0)
        sim.settle()
        sim.tick()
        sim.settle()
        assert sim.read_output("q") == 1

    def test_invalid_fault_rejected(self):
        with pytest.raises(SimulationError):
            StuckAtFault(0, 2)
        with pytest.raises(SimulationError):
            FaultySimulator(xor_netlist(), StuckAtFault(99, 0))


class TestEnumeration:
    def test_two_polarities_per_site(self):
        sites = enumerate_fault_sites(xor_netlist())
        assert len(sites) == 2
        assert {s.stuck_value for s in sites} == {0, 1}

    def test_stride_samples(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        net = a
        for _ in range(10):
            net = n.not_(net)
        # Double inversion folds: builder collapses NOT(NOT(x)); count
        # the real instances.
        sites = enumerate_fault_sites(n, stride=2)
        assert len(sites) == 2 * ((len(n.instances) + 1) // 2)


class TestCampaign:
    def test_small_program_campaign(self):
        program = assemble(
            ".word x 3\n.word y 5\nADD x, y\nSTORE y, 1\nHALT\n", name="tiny"
        )
        campaign = run_fault_campaign(program, stride=24)
        assert isinstance(campaign, FaultCampaign)
        assert campaign.total > 0
        # The program exercises the adder and store paths, so a
        # meaningful share of faults must be caught...
        assert campaign.coverage > 0.2
        # ...but idle subsystems (rotates, branches-taken path) hide
        # faults: coverage below 100% is the expected, honest result.
        assert campaign.coverage < 1.0
        assert len(campaign.undetected_sites) == campaign.total - campaign.detected

    def test_richer_program_catches_more(self):
        simple = assemble(".word x 1\nSTORE x, 2\nHALT\n", name="simple")
        busy = assemble(
            ".word x 3\n.word y 5\n"
            "loop:\nADD x, y\nRLC x, x\nCMP x, y\nBR loop, V\n"
            "XOR y, x\nHALT\n",
            name="busy",
        )
        config = CoreConfig(datawidth=8)
        simple_cov = run_fault_campaign(simple, config, stride=20).coverage
        busy_cov = run_fault_campaign(busy, config, stride=20).coverage
        assert busy_cov > simple_cov
