"""Unit tests for the netlist builder: folding, CSE, validation."""

import pytest

from repro.errors import MappingError, NetlistError
from repro.netlist.core import CONST0, CONST1, Netlist, constant_bus
from tests.netlist.helpers import evaluate


class TestConstantFolding:
    def test_not_of_constants(self):
        n = Netlist("t")
        assert n.not_(CONST0) == CONST1
        assert n.not_(CONST1) == CONST0
        assert not n.instances

    def test_double_inversion_cancels(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        assert n.not_(n.not_(a)) == a
        assert len(n.instances) == 1  # only the inner inverter

    @pytest.mark.parametrize(
        "op,identity,absorber",
        [("and_", CONST1, CONST0), ("or_", CONST0, CONST1)],
    )
    def test_identity_and_absorbing_elements(self, op, identity, absorber):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        assert getattr(n, op)(a, identity) == a
        assert getattr(n, op)(a, absorber) == absorber
        assert not n.instances

    def test_xor_folds(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        assert n.xor_(a, a) == CONST0
        assert n.xor_(a, CONST0) == a
        # XOR with 1 becomes an inverter.
        inverted = n.xor_(a, CONST1)
        assert n.driver_of(inverted).cell == "INVX1"

    def test_idempotent_inputs(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        assert n.and_(a, a) == a
        assert n.or_(a, a) == a

    def test_mux_folding(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        b = n.input_bus("b", 1)[0]
        s = n.input_bus("s", 1)[0]
        assert n.mux(CONST0, a, b) == a
        assert n.mux(CONST1, a, b) == b
        assert n.mux(s, a, a) == a
        assert n.mux(s, CONST0, CONST1) == s


class TestCommonSubexpressionElimination:
    def test_identical_gates_shared(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        b = n.input_bus("b", 1)[0]
        first = n.and_(a, b)
        second = n.and_(b, a)  # symmetric: same gate
        assert first == second
        assert len(n.instances) == 1

    def test_distinct_gates_not_shared(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        b = n.input_bus("b", 1)[0]
        assert n.and_(a, b) != n.or_(a, b)
        assert len(n.instances) == 2


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_two_input_gates_truth_tables(self, a, b):
        n = Netlist("t")
        ab = n.input_bus("a", 1)
        bb = n.input_bus("b", 1)
        n.output_bus("and_", [n.and_(ab[0], bb[0])])
        n.output_bus("or_", [n.or_(ab[0], bb[0])])
        n.output_bus("xor_", [n.xor_(ab[0], bb[0])])
        n.output_bus("nand", [n.nand(ab[0], bb[0])])
        n.output_bus("nor", [n.nor(ab[0], bb[0])])
        n.output_bus("xnor", [n.xnor(ab[0], bb[0])])
        out = evaluate(n, a=a, b=b)
        assert out["and_"] == (a & b)
        assert out["or_"] == (a | b)
        assert out["xor_"] == (a ^ b)
        assert out["nand"] == 1 - (a & b)
        assert out["nor"] == 1 - (a | b)
        assert out["xnor"] == 1 - (a ^ b)

    @pytest.mark.parametrize("s", [0, 1])
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_mux_semantics(self, s, a, b):
        n = Netlist("t")
        sb = n.input_bus("s", 1)
        ab = n.input_bus("a", 1)
        bb = n.input_bus("b", 1)
        n.output_bus("y", [n.mux(sb[0], ab[0], bb[0])])
        assert evaluate(n, s=s, a=a, b=b)["y"] == (b if s else a)

    def test_reductions(self):
        n = Netlist("t")
        bus = n.input_bus("a", 5)
        n.output_bus("all", [n.and_many(bus.nets)])
        n.output_bus("any", [n.or_many(bus.nets)])
        n.output_bus("parity", [n.xor_many(bus.nets)])
        assert evaluate(n, a=0b11111) == {"all": 1, "any": 1, "parity": 1}
        assert evaluate(n, a=0b00000) == {"all": 0, "any": 0, "parity": 0}
        assert evaluate(n, a=0b10110)["parity"] == 1


class TestStructure:
    def test_duplicate_input_bus_rejected(self):
        n = Netlist("t")
        n.input_bus("a", 2)
        with pytest.raises(NetlistError):
            n.input_bus("a", 2)

    def test_two_drivers_rejected(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        out = n.net("y")
        n.add_instance("INVX1", (a,), out)
        with pytest.raises(NetlistError):
            n.add_instance("INVX1", (a,), out)

    def test_validate_catches_floating_input(self):
        n = Netlist("t")
        floating = n.net("floating")
        n.add_instance("INVX1", (floating,))
        with pytest.raises(NetlistError, match="floating"):
            n.validate()

    def test_validate_catches_bad_arity(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)[0]
        n.add_instance("NAND2X1", (a,))
        with pytest.raises(NetlistError, match="expects 2"):
            n.validate()

    def test_constant_bus_encoding(self):
        n = Netlist("t")
        bus = constant_bus(n, 0b1010, 4)
        assert bus.nets == [CONST0, CONST1, CONST0, CONST1]

    def test_constant_bus_overflow_rejected(self):
        n = Netlist("t")
        with pytest.raises(MappingError):
            constant_bus(n, 16, 4)

    def test_registers_use_reset_flops(self):
        n = Netlist("t")
        d = n.input_bus("d", 4)
        q = n.register(d.nets, name="r")
        assert len(q) == 4
        assert all(n.driver_of(net).cell == "DFFNRX1" for net in q)
        assert "rst_n" in n.inputs
