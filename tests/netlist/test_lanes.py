"""LanePlan packing semantics and numpy bit-slice backend surfaces.

The LanePlan is the contract both lane backends build their force
state from, so its validation and ordering rules are load-bearing:
a divergence here would let the bigint and numpy backends drift apart
silently.
"""

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.generator import generate_core
from repro.errors import SimulationError
from repro.netlist.compile import BitParallelSimulator
from repro.netlist.core import Netlist
from repro.netlist.faults import StuckAtFault
from repro.netlist.lanes import LanePlan
from repro.netlist.nsim import NumpySimulator, compile_numpy_netlist


class TestLanePlan:
    def test_rejects_zero_lanes(self):
        with pytest.raises(SimulationError, match="at least one lane"):
            LanePlan(lanes=0)

    def test_rejects_fault_count_mismatch(self):
        with pytest.raises(SimulationError, match="3 faults for 2 lanes"):
            LanePlan(lanes=2, faults=(None, None, None))

    def test_rejects_memory_count_mismatch(self):
        with pytest.raises(SimulationError, match="memory images"):
            LanePlan(lanes=3, memories=((0,), (0,)))

    def test_for_faults_one_lane_per_entry(self):
        faults = (StuckAtFault(0, 1), None, StuckAtFault(2, 0))
        plan = LanePlan.for_faults(faults)
        assert plan.lanes == 3
        assert plan.faults == faults
        assert plan.has_forces

    def test_all_healthy_lanes_have_no_forces(self):
        plan = LanePlan.for_faults((None, None))
        assert not plan.has_forces
        assert plan.forced_bits(generate_core(CoreConfig(datawidth=4))) == {}

    def test_forced_bits_orders_by_first_lane_appearance(self):
        netlist = generate_core(CoreConfig(datawidth=4))
        plan = LanePlan.for_faults((
            StuckAtFault(5, 1),
            StuckAtFault(2, 0),
            StuckAtFault(5, 0),  # same net as lane 0, opposite value
        ))
        forced = plan.forced_bits(netlist)
        nets = list(forced)
        assert nets == [netlist.instances[5].output, netlist.instances[2].output]
        assert forced[netlist.instances[5].output] == [(0, 1), (2, 0)]
        assert forced[netlist.instances[2].output] == [(1, 0)]

    def test_forced_bits_validates_instance_index(self):
        netlist = generate_core(CoreConfig(datawidth=4))
        plan = LanePlan.for_faults((StuckAtFault(10**6, 1),))
        with pytest.raises(SimulationError, match="no instance"):
            plan.forced_bits(netlist)

    def test_memory_images_default_to_base(self):
        plan = LanePlan(lanes=3, memories=(None, (7, 8), None))
        images = plan.memory_images((1, 2))
        assert images == [[1, 2], [7, 8], [1, 2]]
        images[0][0] = 99  # mutable copies, not aliases
        assert plan.memory_images((1, 2))[0] == [1, 2]

    @pytest.mark.parametrize(
        "simulator", [BitParallelSimulator, NumpySimulator],
        ids=lambda s: s.__name__,
    )
    def test_simulators_accept_explicit_plan(self, simulator):
        netlist = generate_core(CoreConfig(datawidth=4))
        plan = LanePlan.for_faults((StuckAtFault(3, 1), None))
        sim = simulator(netlist, plan=plan)
        assert sim.lanes == 2
        assert sim.plan is plan
        sim.reset()
        sim.settle()
        # Lane 0 must see the forced net stuck high; lane 1 must not
        # be forced (it tracks whatever the logic computes).
        net = netlist.instances[3].output
        assert sim.read_nets([net])[0] == 1

    @pytest.mark.parametrize(
        "simulator", [BitParallelSimulator, NumpySimulator],
        ids=lambda s: s.__name__,
    )
    def test_simulators_reject_lane_fault_mismatch(self, simulator):
        netlist = generate_core(CoreConfig(datawidth=4))
        with pytest.raises(SimulationError, match="faults for"):
            simulator(netlist, 3, faults=[StuckAtFault(0, 1)] * 2)


class TestNumpySimulatorSurfaces:
    def test_rejects_unknown_input_and_output(self):
        netlist = generate_core(CoreConfig(datawidth=4))
        sim = NumpySimulator(netlist, 2)
        with pytest.raises(SimulationError, match="no input bus"):
            sim.set_input("bogus", 0)
        with pytest.raises(SimulationError, match="no output bus"):
            sim.read_output("bogus")

    def test_rejects_out_of_range_values(self):
        netlist = generate_core(CoreConfig(datawidth=4))
        sim = NumpySimulator(netlist, 2)
        width = len(netlist.inputs["instr"])
        with pytest.raises(SimulationError, match="does not fit input"):
            sim.set_input("instr", 1 << width)
        with pytest.raises(SimulationError, match="does not fit input"):
            sim.set_input("instr", [0, 1 << width])
        with pytest.raises(SimulationError, match="values for 2 lanes"):
            sim.set_input("instr", [0, 0, 0])

    def test_rejects_latches(self):
        netlist = Netlist("latchy")
        data = netlist.input_bus("d", 1)
        gate = netlist.input_bus("g", 1)
        out = netlist.net("q")
        netlist.add_instance("LATCHX1", (data.nets[0], gate.nets[0]), out)
        netlist.output_bus("q", [out])
        with pytest.raises(SimulationError, match="latches"):
            compile_numpy_netlist(netlist)

    def test_read_nets_beyond_64_nets(self):
        """>64-net collections recombine chunked uint64 gathers into
        bigints (parity with the bigint backend)."""
        netlist = generate_core(CoreConfig(datawidth=8))
        sim = NumpySimulator(netlist, 3)
        bigint = BitParallelSimulator(netlist, 3)
        for s in (sim, bigint):
            s.reset()
            s.set_input("instr", 0)
            s.settle()
        nets = [inst.output for inst in netlist.instances[:100]]
        assert sim.read_nets(nets) == bigint.read_nets(nets)
