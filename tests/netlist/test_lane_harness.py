"""The shared LaneMemoryHarness behind both lane-packed consumers.

The fault campaign and the differential verifier used to each carry a
private copy of the behavioural ROM/RAM loop; these tests pin the
unified harness against the scalar :class:`CoSimHarness` reference on
both backends (bigint list path, numpy array path) and against each
other, for shared- and per-lane-ROM packings.
"""

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.cosim import CoSimHarness
from repro.coregen.fault_test import halt_word_encoder
from repro.coregen.generator import generate_core
from repro.coregen.isa_map import encode_program_for_core
from repro.errors import SimulationError
from repro.netlist.compile import BitParallelSimulator
from repro.netlist.lanes import LaneMemoryHarness
from repro.netlist.nsim import NumpySimulator
from repro.programs import build_benchmark

CYCLES = 40


@pytest.fixture(scope="module")
def setup():
    config = CoreConfig(datawidth=8)
    netlist = generate_core(config)
    programs = [build_benchmark("mult", 8, 8), build_benchmark("crc8", 8, 8)]
    roms = [encode_program_for_core(p, config) for p in programs]
    mask = (1 << config.datawidth) - 1
    memories = []
    for program in programs:
        memory = [0] * config.data_memory_words()
        for address, value in program.data.items():
            memory[address] = value & mask
        memories.append(memory)
    return config, netlist, programs, roms, memories


def _scalar_reference(program, config):
    harness = CoSimHarness(program, config)
    for _ in range(CYCLES):
        harness.step()
    return list(harness.memory), harness.pc


def _lane_state(harness):
    return harness.memory_rows(), harness.sim.read_output("pc")


class TestLaneMemoryHarness:
    def test_list_path_matches_scalar_reference(self, setup):
        config, netlist, programs, roms, memories = setup
        sim = BitParallelSimulator(netlist, len(programs))
        harness = LaneMemoryHarness(
            sim, lanes=len(programs), roms=roms, memories=memories,
            halt_word=halt_word_encoder(config),
        )
        assert not harness.array_mode
        harness.run(CYCLES)
        rows, pcs = _lane_state(harness)
        for lane, program in enumerate(programs):
            memory, pc = _scalar_reference(program, config)
            assert rows[lane] == memory
            assert pcs[lane] == pc

    def test_array_path_matches_list_path(self, setup):
        config, netlist, programs, roms, memories = setup
        lanes = len(programs)
        halt = halt_word_encoder(config)
        bigint = LaneMemoryHarness(
            BitParallelSimulator(netlist, lanes), lanes=lanes,
            roms=roms, memories=memories, halt_word=halt,
        )
        vector = LaneMemoryHarness(
            NumpySimulator(netlist, lanes), lanes=lanes,
            roms=roms, memories=memories, halt_word=halt,
            pc_bits=len(netlist.outputs["pc"].nets),
        )
        assert vector.array_mode
        bigint.run(CYCLES)
        vector.run(CYCLES)
        assert _lane_state(bigint) == _lane_state(vector)

    def test_shared_rom_matches_per_lane_rom(self, setup):
        config, netlist, programs, roms, memories = setup
        halt = halt_word_encoder(config)
        shared = LaneMemoryHarness(
            BitParallelSimulator(netlist, 2), lanes=2,
            rom=roms[0], base_memory=memories[0], halt_word=halt,
        )
        per_lane = LaneMemoryHarness(
            BitParallelSimulator(netlist, 2), lanes=2,
            roms=[roms[0], roms[0]],
            memories=[memories[0], memories[0]], halt_word=halt,
        )
        shared.run(CYCLES)
        per_lane.run(CYCLES)
        assert _lane_state(shared) == _lane_state(per_lane)

    def test_halt_word_memo_is_shared(self, setup):
        config, netlist, programs, roms, memories = setup
        memo = {}
        harness = LaneMemoryHarness(
            NumpySimulator(netlist, 1), lanes=1,
            rom=roms[0], base_memory=memories[0],
            halt_word=halt_word_encoder(config), halt_words=memo,
            pc_bits=len(netlist.outputs["pc"].nets),
        )
        # Building the fetch table fills the memo for padded PCs.
        assert memo
        assert set(memo) == set(
            range(len(roms[0]), 1 << len(netlist.outputs["pc"].nets))
        )

    def test_constructor_validation(self, setup):
        config, netlist, programs, roms, memories = setup
        halt = halt_word_encoder(config)
        sim = BitParallelSimulator(netlist, 2)
        with pytest.raises(SimulationError):
            LaneMemoryHarness(sim, lanes=2, halt_word=halt,
                              base_memory=memories[0])
        with pytest.raises(SimulationError):
            LaneMemoryHarness(sim, lanes=2, rom=roms[0], roms=roms,
                              base_memory=memories[0], halt_word=halt)
        with pytest.raises(SimulationError):
            LaneMemoryHarness(sim, lanes=3, roms=roms,
                              memories=memories, halt_word=halt)
        with pytest.raises(SimulationError, match="pc_bits"):
            LaneMemoryHarness(
                NumpySimulator(netlist, 2), lanes=2, roms=roms,
                memories=memories, halt_word=halt,
            )
