"""Tests for structural Verilog emission."""

from repro.netlist.components import ripple_adder
from repro.netlist.core import Netlist
from repro.netlist.verilog import dump_verilog


def test_combinational_module_structure():
    n = Netlist("adder4")
    a = n.input_bus("a", 4)
    b = n.input_bus("b", 4)
    total, cout = ripple_adder(n, a.nets, b.nets)
    n.output_bus("sum", total.nets)
    n.output_bus("cout", [cout])
    text = dump_verilog(n)
    assert text.startswith("module adder4 (")
    assert "input wire [3:0] a;" in text
    assert "output wire [3:0] sum;" in text
    assert "XOR2X1" in text and "NAND2X1" in text
    assert text.rstrip().endswith("endmodule")
    # Every instance is uniquely named.
    names = [line.split()[1] for line in text.splitlines() if line.strip().startswith(("XOR", "NAND", "AND", "OR2", "INV"))]
    assert len(names) == len(set(names))


def test_sequential_module_gets_clock():
    n = Netlist("reg1")
    d = n.input_bus("d", 1)
    q = n.dff_r(d[0])
    n.output_bus("q", [q])
    text = dump_verilog(n)
    assert "input wire clk;" in text
    assert ".CK(clk)" in text
    assert "DFFNRX1" in text


def test_constants_rendered_as_literals():
    n = Netlist("consts")
    a = n.input_bus("a", 1)
    n.output_bus("y", [n.and_(a[0], a[0])])
    from repro.netlist.core import CONST1
    n.output_bus("one", [CONST1])
    text = dump_verilog(n)
    assert "1'b1" in text
