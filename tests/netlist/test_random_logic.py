"""Property test: random logic DAGs built through the mapped builder
evaluate identically to their Python reference -- across constant
folding, CSE, fast reduction trees, and NAND-mapped muxes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.core import CONST0, CONST1, Netlist
from tests.netlist.helpers import evaluate

#: Operation vocabulary: (name, arity).
OPS = [
    ("not", 1), ("and", 2), ("or", 2), ("xor", 2),
    ("nand", 2), ("nor", 2), ("xnor", 2), ("mux", 3),
]

node_strategy = st.lists(
    st.tuples(
        st.sampled_from(OPS),
        st.integers(0, 10_000),  # operand picks (mod available nodes)
        st.integers(0, 10_000),
        st.integers(0, 10_000),
    ),
    min_size=1,
    max_size=40,
)


def build_both(netlist, ops, input_nets, input_values):
    """Build the DAG in the netlist and as Python booleans in parallel."""
    nets = [CONST0, CONST1, *input_nets]
    values = [0, 1, *input_values]
    for (name, arity), pick_a, pick_b, pick_c in ops:
        a = pick_a % len(nets)
        b = pick_b % len(nets)
        c = pick_c % len(nets)
        if name == "not":
            nets.append(netlist.not_(nets[a]))
            values.append(values[a] ^ 1)
        elif name == "and":
            nets.append(netlist.and_(nets[a], nets[b]))
            values.append(values[a] & values[b])
        elif name == "or":
            nets.append(netlist.or_(nets[a], nets[b]))
            values.append(values[a] | values[b])
        elif name == "xor":
            nets.append(netlist.xor_(nets[a], nets[b]))
            values.append(values[a] ^ values[b])
        elif name == "nand":
            nets.append(netlist.nand(nets[a], nets[b]))
            values.append((values[a] & values[b]) ^ 1)
        elif name == "nor":
            nets.append(netlist.nor(nets[a], nets[b]))
            values.append((values[a] | values[b]) ^ 1)
        elif name == "xnor":
            nets.append(netlist.xnor(nets[a], nets[b]))
            values.append((values[a] ^ values[b]) ^ 1)
        else:  # mux
            nets.append(netlist.mux(nets[a], nets[b], nets[c]))
            values.append(values[c] if values[a] else values[b])
    return nets, values


@settings(max_examples=120, deadline=None)
@given(ops=node_strategy, inputs=st.integers(0, 15))
def test_random_dag_matches_python_eval(ops, inputs):
    netlist = Netlist("random")
    bus = netlist.input_bus("x", 4)
    input_values = [(inputs >> i) & 1 for i in range(4)]
    nets, values = build_both(netlist, ops, list(bus.nets), input_values)
    netlist.output_bus("y", nets[-8:])
    expected = 0
    for i, value in enumerate(values[-8:]):
        expected |= value << i
    assert evaluate(netlist, x=inputs)["y"] == expected


@settings(max_examples=60, deadline=None)
@given(
    bits=st.lists(st.integers(0, 1), min_size=1, max_size=12),
)
def test_fast_reductions_match_semantics(bits):
    netlist = Netlist("reduce")
    bus = netlist.input_bus("x", len(bits))
    netlist.output_bus("all", [netlist.and_many(bus.nets)])
    netlist.output_bus("any", [netlist.or_many(bus.nets)])
    value = sum(bit << i for i, bit in enumerate(bits))
    out = evaluate(netlist, x=value)
    assert out["all"] == int(all(bits))
    assert out["any"] == int(any(bits))
