"""Tests for the cycle-accurate gate-level simulator."""

import pytest

from repro.errors import SimulationError
from repro.netlist.components import incrementer
from repro.netlist.core import Netlist
from repro.netlist.sim import CycleSimulator


def counter(width=4):
    """A self-incrementing counter register (classic smoke design)."""
    n = Netlist("counter")
    # Feedback register: allocate the D nets first, create the flops,
    # then drive the D nets from the incremented Q values.
    d_nets = [n.net(f"d[{i}]") for i in range(width)]
    q = [n.dff_r(d, f"q[{i}]") for i, d in enumerate(d_nets)]
    inc = incrementer(n, q)
    for d_net, inc_net in zip(d_nets, inc.nets):
        n.add_instance("AND2X1", (inc_net, n.reset_input()), d_net)
    n.output_bus("count", q)
    return n


class TestSequentialBehaviour:
    def test_counter_counts(self):
        sim = CycleSimulator(counter())
        sim.reset()
        seen = []
        for _ in range(5):
            sim.settle()
            seen.append(sim.read_output("count"))
            sim.tick()
        sim.settle()
        assert seen == [0, 1, 2, 3, 4]

    def test_counter_wraps(self):
        sim = CycleSimulator(counter(width=2))
        sim.reset()
        for _ in range(4):
            sim.settle()
            sim.tick()
        sim.settle()
        assert sim.read_output("count") == 0

    def test_reset_clears_state(self):
        sim = CycleSimulator(counter())
        sim.reset()
        for _ in range(3):
            sim.settle()
            sim.tick()
        sim.reset()
        sim.settle()
        assert sim.read_output("count") == 0


class TestIo:
    def test_unknown_buses_rejected(self):
        sim = CycleSimulator(counter())
        with pytest.raises(SimulationError):
            sim.set_input("nope", 0)
        with pytest.raises(SimulationError):
            sim.read_output("nope")

    def test_oversized_input_rejected(self):
        n = Netlist("t")
        n.input_bus("a", 2)
        n.output_bus("y", [n.inputs["a"][0]])
        sim = CycleSimulator(n)
        with pytest.raises(SimulationError):
            sim.set_input("a", 4)

    def test_reset_requires_reset_net(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)
        n.output_bus("y", [n.not_(a[0])])
        sim = CycleSimulator(n)
        with pytest.raises(SimulationError):
            sim.reset()


class TestMemoryCallback:
    def test_step_with_memory_fixed_point(self):
        """A register fed through an external 'memory' that doubles."""
        n = Netlist("t")
        data_in = n.input_bus("mem_rdata", 4)
        q = n.register(data_in.nets, name="r")
        n.output_bus("mem_addr", q.nets)
        sim = CycleSimulator(n)
        sim.set_input("rst_n", 1)

        memory = {i: (2 * i) % 16 for i in range(16)}

        def provide(s):
            s.set_input("mem_rdata", memory[s.read_output("mem_addr")])

        sim.settle()
        values = []
        for _ in range(4):
            sim.step_with_memory(provide)
            values.append(sim.read_output("mem_addr"))
        assert values == [0, 0, 0, 0]  # address 0 maps to data 0
        # Seed a nonzero start: preload address 0 -> 3.
        memory[0] = 3
        sim.step_with_memory(provide)
        assert sim.read_output("mem_addr") == 3
        sim.step_with_memory(provide)
        assert sim.read_output("mem_addr") == 6

    def test_toggle_counts_accumulate(self):
        sim = CycleSimulator(counter())
        sim.reset()
        for _ in range(8):
            sim.settle()
            sim.tick()
        counts = sim.toggle_counts()
        assert sum(counts.values()) > 0

    def test_latch_rejected(self):
        n = Netlist("t")
        a = n.input_bus("a", 1)
        en = n.input_bus("en", 1)
        n.add_instance("LATCHX1", (a[0], en[0]))
        with pytest.raises(SimulationError, match="latch"):
            CycleSimulator(n)
