"""Property-based and unit tests for datapath components.

Every arithmetic component is compared against plain integer semantics
across hypothesis-generated operand values.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.netlist.components import (
    add_subtract,
    bitwise,
    decoder,
    equals_const,
    incrementer,
    is_zero,
    mux_bus,
    mux_tree,
    ripple_adder,
    rotate_left,
    rotate_right,
    zero_extend,
)
from repro.netlist.core import CONST0, CONST1, Netlist, constant_bus
from tests.netlist.helpers import evaluate

WIDTH = 8
MASK = (1 << WIDTH) - 1
values = st.integers(min_value=0, max_value=MASK)


def build_io(width=WIDTH):
    n = Netlist("t")
    a = n.input_bus("a", width)
    b = n.input_bus("b", width)
    return n, a, b


@settings(max_examples=60)
@given(a=values, b=values, cin=st.integers(0, 1))
def test_ripple_adder_matches_integer_addition(a, b, cin):
    n, abus, bbus = build_io()
    cin_net = n.input_bus("cin", 1)
    total, cout = ripple_adder(n, abus.nets, bbus.nets, cin_net[0])
    n.output_bus("sum", total.nets)
    n.output_bus("cout", [cout])
    out = evaluate(n, a=a, b=b, cin=cin)
    expected = a + b + cin
    assert out["sum"] == expected & MASK
    assert out["cout"] == expected >> WIDTH


@settings(max_examples=60)
@given(a=values, b=values)
def test_subtract_matches_twos_complement(a, b):
    n, abus, bbus = build_io()
    total, cout, _ = add_subtract(n, abus.nets, bbus.nets, subtract=CONST1)
    n.output_bus("diff", total.nets)
    n.output_bus("cout", [cout])
    out = evaluate(n, a=a, b=b)
    assert out["diff"] == (a - b) & MASK
    # Carry-out is the "no borrow" indicator.
    assert out["cout"] == (1 if a >= b else 0)


@settings(max_examples=60)
@given(a=values, b=values, carry=st.integers(0, 1))
def test_add_with_carry_chains_words(a, b, carry):
    """ADC semantics: the architectural carry feeds the chain."""
    n, abus, bbus = build_io()
    carry_net = n.input_bus("carry", 1)
    total, cout, _ = add_subtract(
        n, abus.nets, bbus.nets, subtract=CONST0,
        carry_in=carry_net[0], use_carry_in=CONST1,
    )
    n.output_bus("sum", total.nets)
    n.output_bus("cout", [cout])
    out = evaluate(n, a=a, b=b, carry=carry)
    expected = a + b + carry
    assert out["sum"] == expected & MASK
    assert out["cout"] == expected >> WIDTH


@settings(max_examples=40)
@given(a=values, b=values, carry=st.integers(0, 1))
def test_subtract_with_borrow(a, b, carry):
    """SBB semantics: carry flag = NOT borrow feeds the chain."""
    n, abus, bbus = build_io()
    carry_net = n.input_bus("carry", 1)
    total, cout, _ = add_subtract(
        n, abus.nets, bbus.nets, subtract=CONST1,
        carry_in=carry_net[0], use_carry_in=CONST1,
    )
    n.output_bus("diff", total.nets)
    out = evaluate(n, a=a, b=b, carry=carry)
    borrow = 1 - carry
    assert out["diff"] == (a - b - borrow) & MASK


def test_signed_overflow_flag():
    n, abus, bbus = build_io()
    total, _, overflow = add_subtract(n, abus.nets, bbus.nets, subtract=CONST0)
    n.output_bus("sum", total.nets)
    n.output_bus("v", [overflow])
    # 0x7F + 0x01 overflows signed 8-bit.
    assert evaluate(n, a=0x7F, b=0x01)["v"] == 1
    # 0x10 + 0x10 does not.
    assert evaluate(n, a=0x10, b=0x10)["v"] == 0
    # -128 + -1 overflows.
    assert evaluate(n, a=0x80, b=0xFF)["v"] == 1


@settings(max_examples=40)
@given(a=values)
def test_incrementer(a):
    n = Netlist("t")
    abus = n.input_bus("a", WIDTH)
    n.output_bus("inc", incrementer(n, abus.nets).nets)
    assert evaluate(n, a=a)["inc"] == (a + 1) & MASK


@settings(max_examples=40)
@given(a=values, b=values, op=st.sampled_from(["and", "or", "xor"]))
def test_bitwise_ops(a, b, op):
    n, abus, bbus = build_io()
    n.output_bus("y", bitwise(n, op, abus.nets, bbus.nets).nets)
    expected = {"and": a & b, "or": a | b, "xor": a ^ b}[op]
    assert evaluate(n, a=a, b=b)["y"] == expected


def test_bitwise_rejects_unknown_op():
    n, abus, bbus = build_io()
    with pytest.raises(MappingError):
        bitwise(n, "nandify", abus.nets, bbus.nets)


@settings(max_examples=40)
@given(a=values)
def test_rotates_are_pure_wiring(a):
    n = Netlist("t")
    abus = n.input_bus("a", WIDTH)
    n.output_bus("rl", rotate_left(abus.nets))
    n.output_bus("rr", rotate_right(abus.nets))
    before = len(n.instances)
    out = evaluate(n, a=a)
    assert len(n.instances) == before == 0
    assert out["rl"] == ((a << 1) | (a >> (WIDTH - 1))) & MASK
    assert out["rr"] == ((a >> 1) | ((a & 1) << (WIDTH - 1))) & MASK


@settings(max_examples=30)
@given(a=values)
def test_is_zero_and_equals_const(a):
    n = Netlist("t")
    abus = n.input_bus("a", WIDTH)
    n.output_bus("z", [is_zero(n, abus.nets)])
    n.output_bus("is42", [equals_const(n, abus.nets, 42)])
    out = evaluate(n, a=a)
    assert out["z"] == (1 if a == 0 else 0)
    assert out["is42"] == (1 if a == 42 else 0)


@settings(max_examples=30)
@given(s=st.integers(0, 1), a=values, b=values)
def test_mux_bus(s, a, b):
    n, abus, bbus = build_io()
    sbus = n.input_bus("s", 1)
    n.output_bus("y", mux_bus(n, sbus[0], abus.nets, bbus.nets).nets)
    assert evaluate(n, s=s, a=a, b=b)["y"] == (b if s else a)


@settings(max_examples=30)
@given(select=st.integers(0, 3), data=st.lists(values, min_size=4, max_size=4))
def test_mux_tree_power_of_two(select, data):
    n = Netlist("t")
    sbus = n.input_bus("s", 2)
    choices = [constant_bus(n, v, WIDTH) for v in data]
    n.output_bus("y", mux_tree(n, sbus.nets, [c.nets for c in choices]).nets)
    assert evaluate(n, s=select)["y"] == data[select]


@settings(max_examples=30)
@given(select=st.integers(0, 2), data=st.lists(values, min_size=3, max_size=3))
def test_mux_tree_non_power_of_two_reads_zero_beyond(select, data):
    n = Netlist("t")
    sbus = n.input_bus("s", 2)
    choices = [constant_bus(n, v, WIDTH) for v in data]
    n.output_bus("y", mux_tree(n, sbus.nets, [c.nets for c in choices]).nets)
    assert evaluate(n, s=select)["y"] == data[select]
    assert evaluate(n, s=3)["y"] == 0


@settings(max_examples=20)
@given(value=st.integers(0, 15))
def test_decoder_one_hot(value):
    n = Netlist("t")
    sbus = n.input_bus("s", 4)
    n.output_bus("onehot", decoder(n, sbus.nets).nets)
    assert evaluate(n, s=value)["onehot"] == 1 << value


def test_decoder_partial_outputs():
    n = Netlist("t")
    sbus = n.input_bus("s", 3)
    hot = decoder(n, sbus.nets, count=5)
    assert len(hot) == 5
    n.output_bus("onehot", hot.nets)
    assert evaluate(n, s=4)["onehot"] == 0b10000
    assert evaluate(n, s=6)["onehot"] == 0


def test_zero_extend_pads_with_constants():
    n = Netlist("t")
    abus = n.input_bus("a", 3)
    padded = zero_extend(abus.nets, 6)
    assert len(padded) == 6
    assert padded[3:] == [CONST0] * 3
    with pytest.raises(MappingError):
        zero_extend(abus.nets, 2)


def test_width_mismatches_rejected():
    n = Netlist("t")
    a = n.input_bus("a", 4)
    b = n.input_bus("b", 5)
    with pytest.raises(MappingError):
        ripple_adder(n, a.nets, b.nets)
    with pytest.raises(MappingError):
        mux_bus(n, CONST0, a.nets, b.nets)
