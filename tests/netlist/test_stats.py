"""Tests for area and composition statistics."""

import pytest

from repro.netlist.core import Netlist
from repro.netlist.stats import area_report, cell_histogram
from repro.pdk import cnt_tft_library, egfet_library


def mixed_design():
    n = Netlist("t")
    a = n.input_bus("a", 1)[0]
    b = n.input_bus("b", 1)[0]
    gate = n.xor_(a, b)
    n.dff_r(gate)
    n.dff_r(n.and_(a, b))
    n.output_bus("y", [gate])
    return n


def test_histogram_counts_cells():
    histogram = cell_histogram(mixed_design())
    assert histogram["XOR2X1"] == 1
    assert histogram["AND2X1"] == 1
    assert histogram["DFFNRX1"] == 2


def test_area_report_sums_library_areas():
    library = egfet_library()
    report = area_report(mixed_design(), library)
    expected = (
        library.cell("XOR2X1").area
        + library.cell("AND2X1").area
        + 2 * library.cell("DFFNRX1").area
    )
    assert report.total == pytest.approx(expected)
    assert report.gate_count == 4
    assert report.dff_count == 2
    assert report.sequential + report.combinational == pytest.approx(report.total)


def test_sequential_fraction_dominated_by_dffs_in_egfet():
    report = area_report(mixed_design(), egfet_library())
    assert report.sequential_fraction > 0.5


def test_device_counts_positive_for_egfet():
    report = area_report(mixed_design(), egfet_library())
    assert report.transistors > 0
    assert report.resistors > 0


def test_cnt_design_has_no_resistors():
    report = area_report(mixed_design(), cnt_tft_library())
    assert report.resistors == 0
