"""Tests for the Figure 7 design-space sweep and Pareto analysis."""

import pytest

from repro.baselines.specs import BASELINE_SPECS
from repro.dse.pareto import dominates, pareto_front
from repro.dse.sweep import evaluate_design, sweep_design_space
from repro.coregen.config import CoreConfig


@pytest.fixture(scope="module")
def egfet_sweep():
    return sweep_design_space("EGFET")


class TestSweep:
    def test_24_points(self, egfet_sweep):
        assert len(egfet_sweep) == 24
        assert len({p.name for p in egfet_sweep}) == 24

    def test_fastest_core_is_p1_4_x(self, egfet_sweep):
        """Section 5.2: the fastest TP-ISA core is p1_4_4, over 38%
        faster than the fastest pre-existing core (light8080)."""
        fastest = max(egfet_sweep, key=lambda p: p.fmax)
        assert fastest.config.pipeline_stages == 1
        assert fastest.config.datawidth == 4
        light8080_fmax = BASELINE_SPECS["light8080"].egfet.fmax
        assert fastest.fmax > 1.3 * light8080_fmax

    def test_slowest_core_still_beats_z80_and_msp430(self, egfet_sweep):
        slowest = min(egfet_sweep, key=lambda p: p.fmax)
        assert slowest.fmax > BASELINE_SPECS["Z80"].egfet.fmax
        assert slowest.fmax > BASELINE_SPECS["openMSP430"].egfet.fmax

    def test_largest_tp_core_smaller_than_smallest_baseline(self, egfet_sweep):
        """Section 5.2: even p3_32_4 is smaller than the light8080."""
        largest = max(egfet_sweep, key=lambda p: p.area)
        assert largest.area < BASELINE_SPECS["light8080"].egfet.area

    def test_order_of_magnitude_power_and_area_vs_baselines(self, egfet_sweep):
        """The headline claim: best cores beat pre-existing ones by at
        least 10x in area and power at comparable width."""
        best8 = min(
            (p for p in egfet_sweep if p.config.datawidth == 8),
            key=lambda p: p.area,
        )
        light = BASELINE_SPECS["light8080"].egfet
        assert light.area / best8.area > 3.5
        assert light.power / best8.power_at_fmax > 8

    def test_single_stage_dominates_at_every_width(self, egfet_sweep):
        """Figure 7's key architectural insight."""
        for width in (4, 8, 16, 32):
            points = [p for p in egfet_sweep if p.config.datawidth == width]
            front = pareto_front(
                points, lambda p: (p.area, p.power_at_fmax, 1.0 / p.fmax)
            )
            assert all(p.config.pipeline_stages == 1 for p in front), [
                p.name for p in front
            ]

    def test_registers_significant_fraction_of_area_and_power(self, egfet_sweep):
        """Section 5.2: 'registers consume a significant fraction of
        overall area and power'."""
        for point in egfet_sweep:
            assert point.sequential_area / point.area > 0.05
            if point.config.pipeline_stages > 1:
                assert point.sequential_area / point.area > 0.15

    def test_results_cached(self):
        first = evaluate_design(CoreConfig(), "EGFET")
        second = evaluate_design(CoreConfig(), "EGFET")
        assert first is second

    def test_technology_aliases_share_cache_entry(self):
        """"CNT-TFT" is an alias of "CNT": both names must hit one
        cache entry (a split would silently double evaluation work)."""
        first = evaluate_design(CoreConfig(), "CNT")
        second = evaluate_design(CoreConfig(), "CNT-TFT")
        assert first is second
        assert first.technology == "CNT"

    def test_unknown_technology_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            evaluate_design(CoreConfig(), "TTL")

    @pytest.mark.slow
    def test_cnt_sweep_much_faster_same_shape(self, egfet_sweep):
        cnt = sweep_design_space("CNT-TFT")
        for egfet_point, cnt_point in zip(egfet_sweep, cnt):
            assert cnt_point.fmax > 100 * egfet_point.fmax
            assert cnt_point.area < egfet_point.area


class TestPareto:
    def test_dominates(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (2, 2))
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (2, 2))

    def test_front_extraction(self):
        items = [(1, 4), (2, 2), (4, 1), (3, 3), (4, 4)]
        front = pareto_front(items, lambda item: item)
        assert set(front) == {(1, 4), (2, 2), (4, 1)}
