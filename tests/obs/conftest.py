"""Shared fixtures: every obs test runs against a clean, enabled layer
and leaves the process-wide switch off afterwards so instrumentation
stays dormant for the rest of the suite."""

import pytest

from repro import obs


@pytest.fixture
def obs_enabled():
    """Enable tracing/metrics for one test, then disable and wipe."""
    obs.reset()
    obs.enable()
    try:
        yield obs
    finally:
        obs.disable()
        obs.reset()


@pytest.fixture
def obs_disabled():
    """Guarantee the switch is off (and clean) for disabled-path tests."""
    obs.disable()
    obs.reset()
    try:
        yield obs
    finally:
        obs.disable()
        obs.reset()
