"""Tests for the cross-run telemetry ledger and regression sentinel."""

import json
import os

import pytest

from repro import obs
from repro.exec import parallel_map
from repro.obs import history


@pytest.fixture
def ledger_dir(tmp_path, monkeypatch):
    """Private ledger directory for one test."""
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_HISTORY", raising=False)
    return tmp_path


def _bench_series(speedup: float, wall: float = 30.0) -> dict:
    return {
        "bench.fault_campaign_numpy.speedup_vs_batched": speedup,
        "wall_seconds": wall,
    }


def _seed_baseline(values, fingerprint=None, command=("bench",)):
    """Append one 'bench' record per baseline value; returns records."""
    records = []
    for i, speedup in enumerate(values):
        record = history.build_record(
            "bench",
            command,
            _bench_series(speedup),
            fingerprint=fingerprint,
            ts=f"2026-08-{i + 1:02d}T00:00:00+00:00",
        )
        history.append_record(record)
        records.append(record)
    return records


class TestLedgerBasics:
    def test_append_and_read_roundtrip(self, ledger_dir):
        record = history.build_record("bench", ["bench"], _bench_series(5.9))
        record_id = history.append_record(record)
        assert record_id == record["id"]
        loaded = history.read_ledger()
        assert len(loaded) == 1
        assert loaded[0]["id"] == record_id
        assert loaded[0]["schema"] == history.SCHEMA
        assert loaded[0]["series"]["wall_seconds"] == 30.0

    def test_id_is_content_addressed(self, ledger_dir):
        a = history.build_record(
            "bench", ["bench"], _bench_series(5.9), ts="2026-08-01T00:00:00")
        b = history.build_record(
            "bench", ["bench"], _bench_series(5.9), ts="2026-08-01T00:00:00")
        c = history.build_record(
            "bench", ["bench"], _bench_series(6.0), ts="2026-08-01T00:00:00")
        assert a["id"] == b["id"]
        assert a["id"] != c["id"]

    def test_opt_out_disables_appends(self, ledger_dir, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY", "0")
        assert not history.history_enabled()
        record = history.build_record("bench", ["bench"], _bench_series(5.9))
        assert history.append_record(record) is None
        assert history.record_report({"schema": "x", "command": []}) is None
        assert not (ledger_dir / history.LEDGER_NAME).exists()

    def test_missing_ledger_reads_empty(self, ledger_dir):
        assert history.read_ledger() == []

    def test_truncated_record_skipped_never_crashes(
        self, ledger_dir, obs_enabled, capsys
    ):
        _seed_baseline([5.8, 5.9])
        path = ledger_dir / history.LEDGER_NAME
        # A writer crashed mid-append: final line is a torn prefix.
        with open(path, "a") as handle:
            handle.write('{"schema": "repro.obs.history/v1", "ser')
        survivors = history.read_ledger()
        assert [r["series"]["bench.fault_campaign_numpy.speedup_vs_batched"]
                for r in survivors] == [5.8, 5.9]
        assert "skipped 1 corrupt record" in capsys.readouterr().err
        assert obs.snapshot()["history.corrupt_records"] == 1

    def test_garbled_middle_line_skipped(self, ledger_dir):
        _seed_baseline([5.8])
        path = ledger_dir / history.LEDGER_NAME
        with open(path, "a") as handle:
            handle.write("!!not json!!\n")
            handle.write('{"valid json": "but not a record"}\n')
        _seed_baseline([5.9])
        values = [
            r["series"]["bench.fault_campaign_numpy.speedup_vs_batched"]
            for r in history.read_ledger()
        ]
        assert values == [5.8, 5.9]


def _append_one(index: int) -> str | None:
    """Module-level worker fn (picklable): one ledger append."""
    record = history.build_record(
        "test", ["concurrency"], {"value": float(index)},
        ts="2026-08-08T00:00:00+00:00",
    )
    return history.append_record(record)


class TestLedgerConcurrency:
    def test_parallel_appends_from_exec_workers(self, ledger_dir):
        """32 appends from 4 pool workers interleave whole records."""
        ids = parallel_map(_append_one, range(32), jobs=4)
        assert all(ids)
        records = history.read_ledger()
        assert len(records) == 32
        # Every record parsed back whole: the full value set survived.
        assert {r["series"]["value"] for r in records} == set(
            float(i) for i in range(32)
        )

    def test_threaded_appends_interleave_whole_lines(self, ledger_dir):
        import threading

        def worker(base):
            for i in range(25):
                _append_one(base * 100 + i)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(history.read_ledger()) == 100


class TestExtractSeries:
    def test_run_report_series(self, obs_enabled, ledger_dir):
        with obs.span("stage_a"):
            obs.counter("compile.cache_hits").inc(3)
            obs.counter("compile.cache_misses").inc(1)
            obs.histogram("faults.per_second").observe(100.0)
        report = obs.build_run_report(["demo"], 2.5)
        series = history.extract_series(report)
        assert series["wall_seconds"] == 2.5
        assert "stage.stage_a.wall_s" in series
        assert series["metric.compile.cache_hits"] == 3
        assert series["compile.cache_hit_rate"] == 0.75
        assert series["metric.faults.per_second.mean"] == 100.0

    def test_bench_report_series(self):
        report = {
            "schema": "repro.obs.run_report/v3+bench",
            "command": ["bench_sim_backends"],
            "wall_seconds": 100.0,
            "cosim": {"p1_8_2": {"speedup": 9.1}},
            "fault_campaign_numpy": {
                "speedup_vs_interpreted": 470.0,
                "speedup_vs_batched": 5.9,
                "numpy": {"faults_per_s": 26000.0, "seconds": 0.04},
            },
            "obs_overhead": {"overhead_pct": 0.08},
            "parallel_scaling": {
                "jobs": {"1": {"combined_s": 30.0},
                         "4": {"speedup": 2.8, "combined_s": 10.7}},
            },
        }
        series = history.extract_series(report)
        assert series["bench.cosim.p1_8_2.speedup"] == 9.1
        assert series["bench.fault_campaign_numpy.speedup_vs_batched"] == 5.9
        assert (
            series["bench.fault_campaign_numpy.numpy.faults_per_s"] == 26000.0
        )
        assert series["bench.obs_overhead.overhead_pct"] == 0.08
        assert series["bench.parallel_scaling.jobs4.speedup"] == 2.8
        record = history.record_from_report(report)
        assert record["kind"] == "bench"
        assert record["fingerprint"]["cpu_count"] == (os.cpu_count() or 1)


class TestSentinel:
    def test_flags_20pct_regression_against_5_record_baseline(
        self, ledger_dir
    ):
        """Acceptance pin: a synthetic 20% throughput drop is caught."""
        _seed_baseline([5.8, 5.9, 6.0, 5.95, 5.85])
        median = 5.9
        regressed = history.build_record(
            "bench", ["bench"], _bench_series(round(median * 0.8, 3)),
            ts="2026-08-09T00:00:00+00:00",
        )
        history.append_record(regressed)
        result = history.check_latest()
        assert result is not None
        assert not result.ok
        names = [c.name for c in result.regressions]
        assert names == ["bench.fault_campaign_numpy.speedup_vs_batched"]
        assert "FAIL" in result.render()

    def test_passes_on_jittered_but_stable_records(self, ledger_dir):
        """Acceptance pin: ±4% jitter around a flat level never fails."""
        jitter = [5.78, 6.05, 5.92, 5.85, 6.1]
        _seed_baseline(jitter)
        stable = history.build_record(
            "bench", ["bench"], _bench_series(5.95),
            ts="2026-08-09T00:00:00+00:00",
        )
        history.append_record(stable)
        result = history.check_latest()
        assert result is not None
        assert result.ok
        assert "PASS" in result.render()

    def test_lower_is_better_series_gates_rises(self, ledger_dir):
        _seed_baseline([5.9] * 5)  # wall_seconds rides along at 30.0
        slow = history.build_record(
            "bench", ["bench"], _bench_series(5.9, wall=30.0 * 1.25),
            ts="2026-08-09T00:00:00+00:00",
        )
        history.append_record(slow)
        result = history.check_latest()
        assert [c.name for c in result.regressions] == ["wall_seconds"]

    def test_cold_start_is_informational_pass(self, ledger_dir):
        _seed_baseline([5.9])  # 1 record, below min_baseline for itself
        result = history.check_latest()
        assert result is not None
        assert result.ok
        statuses = {c.name: c.status for c in result.checks}
        assert statuses["wall_seconds"] == "no_baseline"
        assert "cold start" in result.render()

    def test_empty_ledger_returns_none(self, ledger_dir):
        assert history.check_latest() is None

    def test_fingerprint_mismatch_excluded_from_baseline(self, ledger_dir):
        """A 1-CPU container never baselines against a 64-core box."""
        other = dict(history.env_fingerprint(), cpu_count=64)
        _seed_baseline([50.0] * 5, fingerprint=other)
        mine = history.build_record(
            "bench", ["bench"], _bench_series(5.9),
            ts="2026-08-09T00:00:00+00:00",
        )
        history.append_record(mine)
        result = history.check_latest()
        # 5.9 vs a 50.0 baseline would be a blatant regression; the
        # mismatched fingerprints make it a cold start instead.
        assert result.ok
        statuses = {c.name: c.status for c in result.checks}
        assert (
            statuses["bench.fault_campaign_numpy.speedup_vs_batched"]
            == "no_baseline"
        )

    def test_command_mismatch_excluded_from_baseline(self, ledger_dir):
        _seed_baseline([50.0] * 5, command=("bench", "--smoke"))
        mine = history.build_record(
            "bench", ["bench"], _bench_series(5.9),
            ts="2026-08-09T00:00:00+00:00",
        )
        history.append_record(mine)
        result = history.check_latest(command=["bench"])
        assert result.ok

    def test_directions(self):
        assert history.series_direction("bench.cosim.p1_8_2.speedup") == "higher"
        assert (
            history.series_direction(
                "bench.fault_campaign_numpy.speedup_vs_batched"
            )
            == "higher"
        )
        assert history.series_direction("compile.cache_hit_rate") == "higher"
        assert history.series_direction("metric.faults.per_second.mean") == "higher"
        assert history.series_direction("wall_seconds") == "lower"
        assert history.series_direction("stage.sweep.wall_s") == "lower"
        assert history.series_direction("bench.obs_overhead.overhead_pct") == "lower"
        assert history.series_direction("metric.dse.evaluations") is None


class TestReportIntegration:
    def test_write_run_report_feeds_ledger_and_sets_ref(
        self, obs_enabled, ledger_dir, tmp_path
    ):
        report = obs.build_run_report(["demo"], 1.0)
        path = tmp_path / "RUN_REPORT.json"
        obs.write_run_report(path, report)
        assert "history_ref" in report
        loaded = json.loads(path.read_text())
        assert loaded["history_ref"] == report["history_ref"]
        assert loaded["fingerprint"]["cpu_count"] == (os.cpu_count() or 1)
        assert loaded["fingerprint"]["python"]
        records = history.read_ledger()
        assert len(records) == 1
        assert records[0]["id"] == report["history_ref"]
        assert records[0]["kind"] == "run_report"

    def test_write_run_report_opt_out_leaves_no_trace(
        self, obs_enabled, ledger_dir, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_HISTORY", "0")
        report = obs.build_run_report(["demo"], 1.0)
        obs.write_run_report(tmp_path / "r.json", report)
        assert "history_ref" not in report
        assert not (ledger_dir / history.LEDGER_NAME).exists()


class TestCli:
    def _seed(self, values):
        _seed_baseline(values)

    def test_check_passes_and_fails_by_exit_code(self, ledger_dir, capsys):
        from repro.__main__ import main

        self._seed([5.8, 5.9, 6.0, 5.95, 5.85, 5.9])
        assert main(["history", "check"]) == 0
        assert "PASS" in capsys.readouterr().out
        regressed = history.build_record(
            "bench", ["bench"], _bench_series(4.0),
            ts="2026-08-09T00:00:00+00:00",
        )
        history.append_record(regressed)
        assert main(["history", "check"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_empty_ledger_passes(self, ledger_dir, capsys):
        from repro.__main__ import main

        assert main(["history", "check"]) == 0
        assert "informational pass" in capsys.readouterr().out

    def test_show_lists_records(self, ledger_dir, capsys):
        from repro.__main__ import main

        self._seed([5.9, 6.0])
        assert main(["history", "show"]) == 0
        out = capsys.readouterr().out
        assert "bench" in out
        assert "2 records" in out

    def test_append_report_file(self, ledger_dir, tmp_path, capsys):
        from repro.__main__ import main

        report = obs.build_run_report(["ci-run"], 3.0)
        report_path = tmp_path / "RUN_REPORT.json"
        report_path.write_text(json.dumps(report))
        assert main(["history", "append", "--report", str(report_path)]) == 0
        assert "appended" in capsys.readouterr().out
        records = history.read_ledger()
        assert records[-1]["command"] == ["ci-run"]

    def test_bad_usage_exits_2(self, ledger_dir, capsys):
        from repro.__main__ import main

        assert main(["history", "bogus-verb"]) == 2
        assert main(["history", "check", "--bogus"]) == 2
        assert main(["history", "append"]) == 2
