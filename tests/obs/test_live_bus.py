"""The live telemetry bus: pub/sub, bounds, taps, snapshot deltas."""

import threading

import pytest

from repro import obs
from repro.obs import live


@pytest.fixture
def bus():
    installed = live.activate(live.LiveBus(buffer=16))
    try:
        yield installed
    finally:
        live.deactivate()


class TestLiveBus:
    def test_publish_stamps_seq_ts_kind(self, bus):
        sub = bus.subscribe()
        bus.publish("job", {"id": "job-0001"})
        bus.publish("job", {"id": "job-0002"})
        events = sub.get(timeout=0.1)
        assert [e["seq"] for e in events] == [1, 2]
        assert all(e["kind"] == "job" for e in events)
        assert events[0]["data"] == {"id": "job-0001"}
        assert events[0]["ts"] > 0

    def test_module_publish_is_noop_without_active_bus(self):
        live.deactivate()
        live.publish("job", {"id": "x"})  # must not raise

    def test_ring_buffer_bounds_recent(self, bus):
        for i in range(40):
            bus.publish("span", {"i": i})
        recent = bus.recent()
        assert len(recent) == 16  # buffer=16
        assert recent[-1]["data"]["i"] == 39
        assert bus.recent(kinds=["progress"]) == []

    def test_slow_subscriber_drops_oldest_never_blocks(self, bus, obs_enabled):
        sub = bus.subscribe(maxlen=4)
        for i in range(10):
            bus.publish("span", {"i": i})
        assert sub.dropped == 6
        events = sub.get(timeout=0)
        assert [e["data"]["i"] for e in events] == [6, 7, 8, 9]
        assert obs.REGISTRY.counter("live.events_dropped").value >= 6

    def test_failing_tap_is_swallowed(self, bus):
        seen = []

        def bad(event):
            raise RuntimeError("tap bug")

        bus.add_tap(bad)
        bus.add_tap(seen.append)
        bus.publish("job", {"id": "j"})
        assert len(seen) == 1
        bus.remove_tap(bad)

    def test_close_all_wakes_subscribers(self, bus):
        sub = bus.subscribe()
        waiter = threading.Thread(target=lambda: sub.get(timeout=5))
        waiter.start()
        bus.close_all()
        waiter.join(timeout=2)
        assert not waiter.is_alive()
        assert sub.closed
        sub.put({"kind": "late"})  # refused after close
        assert sub.get(timeout=0) == []

    def test_span_hook_publishes_when_active(self, bus, obs_enabled):
        sub = bus.subscribe()
        with obs.span("stage_x", design="p1_8_2"):
            pass
        events = [e for e in sub.get(timeout=0.1) if e["kind"] == "span"]
        assert len(events) == 1
        assert events[0]["data"]["name"] == "stage_x"
        assert events[0]["data"]["pid"] > 0

    def test_span_hook_silent_when_inactive(self, obs_enabled):
        live.deactivate()
        with obs.span("quiet"):
            pass  # no bus, no error


class TestSnapshotTicker:
    def test_tick_publishes_only_changed_series(self, bus, obs_enabled):
        sub = bus.subscribe()
        ticker = live.SnapshotTicker(bus, interval=60)
        counter = obs.counter("live_test.ticks")
        counter.inc(3)
        event = ticker.tick()
        assert event is not None
        assert event["data"]["delta"]["live_test.ticks"] == 3
        assert ticker.tick() is None  # nothing changed: no event
        counter.inc()
        event = ticker.tick()
        assert event["data"]["delta"] == {"live_test.ticks": 4}
        assert len([e for e in sub.get(timeout=0) if e["kind"] == "metrics"]) == 2

    def test_start_stop_thread(self, bus):
        ticker = live.SnapshotTicker(bus, interval=0.05)
        ticker.start()
        ticker.stop()
        assert ticker._thread is None
