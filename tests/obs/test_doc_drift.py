"""Doc-drift guard: docs/OBSERVABILITY.md vs the metrics registry.

Every dotted metric name the doc mentions in backticks must exist in
the process-wide registry once the instrumented modules are imported;
a renamed or deleted metric fails here instead of silently rotting in
the documentation.
"""

import importlib
import re
from pathlib import Path

DOC = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"

#: Modules that register metrics at import time (the doc's name list
#: spans all of these subsystems).
INSTRUMENTED_MODULES = (
    "repro.netlist.sim",
    "repro.netlist.compile",
    "repro.netlist.sta",
    "repro.netlist.power",
    "repro.coregen.generator",
    "repro.coregen.cosim",
    "repro.coregen.fault_test",
    "repro.dse.sweep",
    "repro.exec.engine",
    "repro.sim.machine",
    "repro.apps.profile",
    "repro.verify.differential",
    "repro.verify.lint",
    "repro.obs.history",
    "repro.mc.sampling",
    "repro.mc.timing",
    "repro.mc.engine",
    "repro.place.placer",
    "repro.apps.place",
)

#: A backticked span counts as a metric name when it is all-lowercase
#: dotted words; module paths (``repro.*``) and filenames are not.
_METRIC = re.compile(r"[a-z][a-z_]*(?:\.[a-z_]+)+")
_NOT_METRICS = (".py", ".md", ".json", ".jsonl", ".vcd")

#: The doc's naming-convention placeholder, not a real metric.
_PLACEHOLDER = "subsystem.quantity"

#: History-ledger *series* namespaces (see the "Run history" section):
#: derived per-record numbers, not registry metrics.  ``place.<design>``
#: series (``place.p1_8_2.hpwl_m``) are written generically in the doc
#: as ``place.<design>.*`` placeholders, which the metric regex already
#: skips (angle brackets are not ``[a-z_.]``).
_SERIES_PREFIXES = ("bench.", "stage.", "metric.", "campaign.")


def documented_metric_names() -> set[str]:
    """Dotted metric names mentioned in the observability doc."""
    # Drop fenced code blocks first: their ``` markers would otherwise
    # break the inline-backtick pairing below.
    text = re.sub(r"```.*?```", "", DOC.read_text(), flags=re.S)
    names = set()
    for span in re.findall(r"`([^`]+)`", text):
        if _METRIC.fullmatch(span) is None:
            continue
        if span.startswith("repro.") or span.endswith(_NOT_METRICS):
            continue
        if span == _PLACEHOLDER or span.startswith(_SERIES_PREFIXES):
            continue
        names.add(span)
    return names


class TestDocDrift:
    def test_doc_mentions_a_real_name_list(self):
        names = documented_metric_names()
        assert len(names) >= 10  # the doc enumerates the conventions
        assert "sim.cycles_simulated" in names
        assert "power.attributed_reports" in names
        assert "profile.design_runs" in names

    def test_every_documented_metric_is_registered(self):
        from repro.obs.metrics import REGISTRY

        for module in INSTRUMENTED_MODULES:
            importlib.import_module(module)
        registered = set(REGISTRY.snapshot())
        missing = documented_metric_names() - registered
        assert not missing, (
            f"docs/OBSERVABILITY.md mentions unregistered metrics: "
            f"{sorted(missing)}"
        )
