"""Doc-drift guard: the observability docs vs the metrics registry.

Every dotted metric name docs/OBSERVABILITY.md or docs/SERVE.md
mentions in backticks must exist in the process-wide registry once the
instrumented modules are imported; a renamed or deleted metric fails
here instead of silently rotting in the documentation.  SERVE.md's
Prometheus names (``repro_*``) must additionally match what the
exposition layer actually renders for a registered metric.
"""

import importlib
import re
from pathlib import Path

DOC = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"
SERVE_DOC = DOC.parent / "SERVE.md"

#: Modules that register metrics at import time (the doc's name list
#: spans all of these subsystems).
INSTRUMENTED_MODULES = (
    "repro.netlist.sim",
    "repro.netlist.compile",
    "repro.netlist.sta",
    "repro.netlist.power",
    "repro.coregen.generator",
    "repro.coregen.cosim",
    "repro.coregen.fault_test",
    "repro.dse.sweep",
    "repro.exec.engine",
    "repro.sim.machine",
    "repro.apps.profile",
    "repro.verify.differential",
    "repro.verify.lint",
    "repro.obs.history",
    "repro.mc.sampling",
    "repro.mc.timing",
    "repro.mc.engine",
    "repro.place.placer",
    "repro.apps.place",
    "repro.obs.live",
    "repro.serve.jobs",
    "repro.serve.sse",
    "repro.serve.server",
)

#: A backticked span counts as a metric name when it is all-lowercase
#: dotted words; module paths (``repro.*``) and filenames are not.
_METRIC = re.compile(r"[a-z][a-z_]*(?:\.[a-z_]+)+")
_NOT_METRICS = (".py", ".md", ".json", ".jsonl", ".vcd")

#: The doc's naming-convention placeholder, not a real metric.
_PLACEHOLDER = "subsystem.quantity"

#: History-ledger *series* namespaces (see the "Run history" section):
#: derived per-record numbers, not registry metrics.  ``place.<design>``
#: series (``place.p1_8_2.hpwl_m``) are written generically in the doc
#: as ``place.<design>.*`` placeholders, which the metric regex already
#: skips (angle brackets are not ``[a-z_.]``).
_SERIES_PREFIXES = ("bench.", "stage.", "metric.", "campaign.")


#: Backticked dotted spans in SERVE.md that are not registry metrics:
#: Chrome-trace field paths and per-kind ledger series examples.
_SERVE_NON_METRICS = ("args.trace_id", "serve.sweep.wall_s")


def documented_metric_names(doc: Path = DOC) -> set[str]:
    """Dotted metric names mentioned in one observability doc."""
    # Drop fenced code blocks first: their ``` markers would otherwise
    # break the inline-backtick pairing below.
    text = re.sub(r"```.*?```", "", doc.read_text(), flags=re.S)
    names = set()
    for span in re.findall(r"`([^`]+)`", text):
        if _METRIC.fullmatch(span) is None:
            continue
        if span.startswith("repro.") or span.endswith(_NOT_METRICS):
            continue
        if span == _PLACEHOLDER or span.startswith(_SERIES_PREFIXES):
            continue
        if span in _SERVE_NON_METRICS:
            continue
        names.add(span)
    return names


class TestDocDrift:
    def test_doc_mentions_a_real_name_list(self):
        names = documented_metric_names()
        assert len(names) >= 10  # the doc enumerates the conventions
        assert "sim.cycles_simulated" in names
        assert "power.attributed_reports" in names
        assert "profile.design_runs" in names

    def test_every_documented_metric_is_registered(self):
        from repro.obs.metrics import REGISTRY

        for module in INSTRUMENTED_MODULES:
            importlib.import_module(module)
        registered = set(REGISTRY.snapshot())
        missing = documented_metric_names() - registered
        assert not missing, (
            f"docs/OBSERVABILITY.md mentions unregistered metrics: "
            f"{sorted(missing)}"
        )


class TestServeDocDrift:
    """docs/SERVE.md vs the serve layer's registry and exposition."""

    def _registered(self):
        from repro.obs.metrics import REGISTRY

        for module in INSTRUMENTED_MODULES:
            importlib.import_module(module)
        return REGISTRY

    def test_serve_doc_names_a_real_metric_list(self):
        names = documented_metric_names(SERVE_DOC)
        assert "serve.dedup_hits" in names
        assert "serve.queue_wait_s" in names
        assert "serve.sse.dropped" in names
        assert "live.events_published" in names

    def test_every_serve_documented_metric_is_registered(self):
        registry = self._registered()
        missing = documented_metric_names(SERVE_DOC) - set(registry.snapshot())
        assert not missing, (
            f"docs/SERVE.md mentions unregistered metrics: {sorted(missing)}"
        )

    def test_documented_prometheus_names_match_exposition(self):
        from repro.obs.metrics import Histogram
        from repro.obs.promtext import sanitize_name

        registry = self._registered()
        exported = set()
        for name, metric in registry.metrics().items():
            flat = sanitize_name(name)
            exported.add(flat)
            if isinstance(metric, Histogram):
                exported.update(
                    f"{flat}{suffix}"
                    for suffix in ("_count", "_sum", "_min", "_max")
                )
        documented = set(re.findall(r"`(repro_[a-z0-9_]+)`",
                                    SERVE_DOC.read_text()))
        assert documented, "SERVE.md documents no Prometheus names"
        missing = documented - exported
        assert not missing, (
            f"docs/SERVE.md documents Prometheus names the exposition "
            f"never renders: {sorted(missing)}"
        )

    def test_serve_ledger_series_gate_lower(self):
        from repro.obs.history import series_direction

        for series in ("serve.sweep.wall_s", "serve.queue_wait_s"):
            assert series_direction(series) == "lower"
