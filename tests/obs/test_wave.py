"""Tests for the VCD waveform writer."""

import pytest

from repro.obs.wave import VcdWriter, format_value, _id_code


class TestIdCodes:
    def test_codes_are_printable_and_unique(self):
        codes = [_id_code(i) for i in range(2000)]
        assert len(set(codes)) == len(codes)
        for code in codes:
            assert all(33 <= ord(ch) <= 126 for ch in code)

    def test_first_code_is_bang(self):
        assert _id_code(0) == "!"

    def test_codes_widen_past_the_printable_range(self):
        assert len(_id_code(93)) == 1
        assert len(_id_code(94)) == 2


class TestFormatValue:
    def test_scalar(self):
        assert format_value(1, 1, "!") == "1!"
        assert format_value(0, 1, "!") == "0!"

    def test_vector_is_zero_padded_binary(self):
        assert format_value(5, 4, "#") == "b0101 #"

    def test_scalar_masks_to_one_bit(self):
        assert format_value(3, 1, "!") == "1!"


class TestHeader:
    def test_scopes_nest_and_close(self):
        w = VcdWriter("core")
        w.declare("pc", 8)
        w.declare("Z", 1, scope=("flags",))
        text = w.render()
        assert "$timescale 1 us $end" in text
        assert "$scope module core $end" in text
        assert "$scope module flags $end" in text
        assert text.count("$scope module") == text.count("$upscope $end")
        assert "$var wire 8 ! pc [7:0] $end" in text
        assert "$enddefinitions $end" in text

    def test_no_date_by_default(self):
        assert "$date" not in VcdWriter("core").render()
        assert "$date" in VcdWriter("core", date="today").render()

    def test_deterministic_output(self):
        def build():
            w = VcdWriter("core")
            a = w.declare("a", 2)
            w.start({a: 0})
            w.sample(1, {a: 3})
            return w.render()

        assert build() == build()


class TestSampling:
    def _writer(self):
        w = VcdWriter("core")
        a = w.declare("a", 4)
        b = w.declare("b", 1)
        w.start({a: 0, b: 1})
        return w, a, b

    def test_dumpvars_carries_initial_values(self):
        w, a, b = self._writer()
        text = w.render()
        assert "$dumpvars" in text
        assert "b0000 !" in text
        assert '1"' in text

    def test_unchanged_values_elided(self):
        w, a, b = self._writer()
        assert w.sample(1, {a: 0, b: 1}) == 0
        assert "#1" not in w.render()

    def test_changes_emit_time_marker_once(self):
        w, a, b = self._writer()
        assert w.sample(3, {a: 9, b: 0}) == 2
        text = w.render()
        assert text.count("#3") == 1
        assert "b1001 !" in text

    def test_time_must_increase(self):
        w, a, b = self._writer()
        w.sample(2, {a: 1})
        with pytest.raises(ValueError, match="not after"):
            w.sample(2, {a: 2})

    def test_declare_after_start_rejected(self):
        w, a, b = self._writer()
        with pytest.raises(ValueError, match="after start"):
            w.declare("c", 1)

    def test_start_twice_rejected(self):
        w, a, b = self._writer()
        with pytest.raises(ValueError, match="twice"):
            w.start({a: 0, b: 0})

    def test_missing_initial_value_rejected(self):
        w = VcdWriter("core")
        a = w.declare("a", 1)
        w.declare("b", 1)
        with pytest.raises(ValueError, match="missing initial"):
            w.start({a: 0})

    def test_sample_before_start_rejected(self):
        w = VcdWriter("core")
        a = w.declare("a", 1)
        with pytest.raises(ValueError, match="before start"):
            w.sample(1, {a: 0})

    def test_write_creates_parent_directories(self, tmp_path):
        w, a, b = self._writer()
        path = w.write(tmp_path / "deep" / "dir" / "out.vcd")
        assert path.read_text() == w.render()
