"""Prometheus text exposition: grammar, types, and a strict round-trip.

``parse_prometheus`` below is deliberately strict — unknown line
shapes, bad names, or samples outside their family fail the parse —
so ``GET /metrics`` output is guaranteed consumable by real scrapers.
"""

import re

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import PREFIX, render_prometheus, sanitize_name

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*) (\S+)$")


def parse_prometheus(text: str) -> dict:
    """Strict parser: {family: {"type": ..., "samples": {name: float}}}."""
    families: dict = {}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name = rest.split(" ", 1)[0]
            assert _NAME.match(name), f"bad family name {name!r}"
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.split(" ", 1)
            assert _NAME.match(name), f"bad family name {name!r}"
            assert kind in ("counter", "gauge", "summary", "histogram", "untyped")
            current = name
            families[name] = {"type": kind, "samples": {}}
            continue
        assert not line.startswith("#"), f"unknown comment line {line!r}"
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line {line!r}"
        sample, value = match.group(1), float(match.group(2))
        assert current is not None, f"sample {sample!r} before any # TYPE"
        if families[current]["type"] == "summary":
            assert sample in (f"{current}_count", f"{current}_sum"), (
                f"sample {sample!r} outside summary family {current!r}"
            )
        else:
            assert sample == current, (
                f"sample {sample!r} outside family {current!r}"
            )
        families[current]["samples"][sample] = value
    return families


class TestSanitizeName:
    def test_dots_become_underscores_with_prefix(self):
        assert sanitize_name("serve.jobs.completed") == (
            "repro_serve_jobs_completed"
        )

    def test_arbitrary_junk_is_flattened(self):
        flat = sanitize_name("a-b c.d/e")
        assert flat.startswith(PREFIX)
        assert _NAME.match(flat)

    def test_leading_digit_gets_underscore(self):
        assert _NAME.match(sanitize_name("1wire.count", prefix=""))


class TestRenderPrometheus:
    def test_round_trips_strict_parser(self, obs_enabled):
        registry = MetricsRegistry()
        registry.counter("serve.requests").value = 7
        registry.gauge("serve.queue_depth").value = 2.5
        hist = registry.histogram("serve.job.wall_s")
        hist.observe(0.5)
        hist.observe(1.5)
        families = parse_prometheus(render_prometheus(registry))
        assert families["repro_serve_requests"]["type"] == "counter"
        assert families["repro_serve_requests"]["samples"][
            "repro_serve_requests"
        ] == 7
        assert families["repro_serve_queue_depth"]["type"] == "gauge"
        wall = families["repro_serve_job_wall_s"]
        assert wall["type"] == "summary"
        assert wall["samples"]["repro_serve_job_wall_s_count"] == 2
        assert wall["samples"]["repro_serve_job_wall_s_sum"] == 2.0
        assert families["repro_serve_job_wall_s_min"]["samples"][
            "repro_serve_job_wall_s_min"
        ] == 0.5
        assert families["repro_serve_job_wall_s_max"]["samples"][
            "repro_serve_job_wall_s_max"
        ] == 1.5

    def test_untouched_histogram_renders_zero_summary(self):
        registry = MetricsRegistry()
        registry.histogram("cold.hist")
        families = parse_prometheus(render_prometheus(registry))
        samples = families["repro_cold_hist"]["samples"]
        assert samples["repro_cold_hist_count"] == 0
        assert samples["repro_cold_hist_sum"] == 0.0
        assert "repro_cold_hist_min" not in families

    def test_process_registry_parses(self, obs_enabled):
        # The real registry (every instrumented module imported by the
        # suite so far) must round-trip too — names from the wild.
        families = parse_prometheus(render_prometheus())
        assert len(families) > 10

    def test_deterministic_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.two")
        registry.counter("a.one")
        text = render_prometheus(registry)
        assert text == render_prometheus(registry)
        assert text.index("repro_a_one") < text.index("repro_b_two")

    def test_output_ends_with_newline(self):
        assert render_prometheus(MetricsRegistry()).endswith("\n")


@pytest.mark.parametrize(
    "bad",
    ["repro_a b extra", "no_type_sample 1"],
)
def test_parser_is_actually_strict(bad):
    with pytest.raises(AssertionError):
        parse_prometheus(bad)
