"""Tests for tracing spans: nesting, exception safety, export."""

import threading

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, Tracer, load_jsonl


class TestSpanNesting:
    def test_paths_and_depths(self, obs_enabled):
        with obs.span("sweep"):
            with obs.span("evaluate_design"):
                with obs.span("sta"):
                    pass
            with obs.span("power"):
                pass
        by_name = {e.name: e for e in obs.TRACER.events()}
        assert by_name["sweep"].depth == 0
        assert by_name["sweep"].path == "sweep"
        assert by_name["evaluate_design"].path == "sweep/evaluate_design"
        assert by_name["sta"].path == "sweep/evaluate_design/sta"
        assert by_name["sta"].depth == 2
        assert by_name["power"].path == "sweep/power"
        assert by_name["power"].depth == 1

    def test_events_complete_innermost_first(self, obs_enabled):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        assert [e.name for e in obs.TRACER.events()] == ["inner", "outer"]

    def test_sequential_spans_are_both_top_level(self, obs_enabled):
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        assert [e.depth for e in obs.TRACER.events()] == [0, 0]

    def test_nesting_is_per_thread(self, obs_enabled):
        recorded = threading.Event()

        def worker():
            with obs.span("worker_span"):
                pass
            recorded.set()

        with obs.span("main_span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert recorded.wait(1)
        by_name = {e.name: e for e in obs.TRACER.events()}
        # The other thread's span must not inherit this thread's stack.
        assert by_name["worker_span"].depth == 0
        assert by_name["worker_span"].path == "worker_span"


class TestSpanSemantics:
    def test_timings_and_attrs_recorded(self, obs_enabled):
        with obs.span("stage", design="p1_8_2") as sp:
            sp.note(fmax=12.5)
        (event,) = obs.TRACER.events()
        assert event.wall_s >= 0
        assert event.cpu_s >= 0
        assert event.start_us > 0
        assert event.attrs == {"design": "p1_8_2", "fmax": 12.5}
        assert event.error is None

    def test_exception_recorded_and_propagated(self, obs_enabled):
        with pytest.raises(ValueError, match="boom"):
            with obs.span("failing"):
                raise ValueError("boom")
        (event,) = obs.TRACER.events()
        assert event.error == "ValueError"

    def test_exception_unwinds_nesting_stack(self, obs_enabled):
        with pytest.raises(RuntimeError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise RuntimeError
        with obs.span("after"):
            pass
        by_name = {e.name: e for e in obs.TRACER.events()}
        assert by_name["after"].depth == 0

    def test_summaries_and_call_counts(self, obs_enabled):
        for _ in range(3):
            with obs.span("sta"):
                pass
        with obs.span("outer"):
            with obs.span("sta"):
                pass
        counts = obs.TRACER.call_counts()
        assert counts["sta"] == 4
        top = {s.name: s for s in obs.TRACER.summaries(depth=0)}
        assert top["sta"].count == 3
        everything = {s.name: s for s in obs.TRACER.summaries()}
        assert everything["sta"].count == 4


class TestDisabledMode:
    def test_span_is_shared_null_singleton(self, obs_disabled):
        sp = obs.span("anything", key="value")
        assert sp is NULL_SPAN
        with sp as inner:
            inner.note(extra=1)  # accepted and ignored
        assert len(obs.TRACER) == 0

    def test_null_span_does_not_swallow_exceptions(self, obs_disabled):
        with pytest.raises(KeyError):
            with obs.span("anything"):
                raise KeyError("x")


class TestJsonlExport:
    def test_round_trip(self, obs_enabled, tmp_path):
        with obs.span("cosim", program="mult8"):
            pass
        with obs.span("sta"):
            pass
        path = tmp_path / "trace.jsonl"
        assert obs.export_trace_jsonl(path) == 2
        events = load_jsonl(path)
        assert len(events) == 2
        chrome = {e["name"]: e for e in events}
        cosim = chrome["cosim"]
        # Chrome-trace complete-event fields.
        assert cosim["ph"] == "X"
        assert cosim["ts"] > 0
        assert cosim["dur"] >= 0
        assert isinstance(cosim["pid"], int)
        assert isinstance(cosim["tid"], int)
        assert cosim["args"]["program"] == "mult8"
        assert cosim["args"]["path"] == "cosim"

    def test_error_span_exports_error_arg(self, obs_enabled, tmp_path):
        with pytest.raises(ValueError):
            with obs.span("bad"):
                raise ValueError
        path = tmp_path / "trace.jsonl"
        obs.export_trace_jsonl(path)
        (event,) = load_jsonl(path)
        assert event["args"]["error"] == "ValueError"


class TestTracerIsolation:
    def test_private_tracer_does_not_touch_global(self, obs_enabled):
        tracer = Tracer()
        with tracer.span("private"):
            pass
        assert tracer.call_counts() == {"private": 1}
        assert "private" not in obs.TRACER.call_counts()
