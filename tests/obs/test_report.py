"""Tests for progress logging and machine-readable run reports."""

import io
import json

from repro import obs
from repro.obs.report import MAX_REPORT_SPANS, SCHEMA, build_run_report
from repro.coregen.config import CoreConfig
from repro.dse.sweep import evaluate_design


class TestProgress:
    def test_passthrough_when_disabled(self, obs_disabled):
        stream = io.StringIO()
        items = list(obs.progress(range(5), "loop", every=1, stream=stream))
        assert items == [0, 1, 2, 3, 4]
        assert stream.getvalue() == ""

    def test_logs_every_n_with_total_and_final_line(self, obs_enabled):
        stream = io.StringIO()
        items = list(obs.progress(range(10), "loop", every=4, stream=stream))
        assert items == list(range(10))
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[obs] loop: 4/10 (40%)")
        assert "eta" in lines[0]
        assert lines[1].startswith("[obs] loop: 8/10 (80%)")
        assert lines[-1].startswith("[obs] loop: 10/10 (100%)")
        assert "in " in lines[-1]

    def test_unsized_iterable_logs_rate_only(self, obs_enabled):
        stream = io.StringIO()
        list(obs.progress(iter(range(6)), "gen", every=3, stream=stream))
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[obs] gen: 3 ")
        assert "eta" not in lines[0]

    def test_empty_iterable_logs_nothing(self, obs_enabled):
        stream = io.StringIO()
        assert list(obs.progress([], "none", stream=stream)) == []
        assert stream.getvalue() == ""

    def test_heartbeat_flushes_between_count_milestones(self, obs_enabled):
        """Non-tty streams get wall-clock lines even when ``every`` is
        far away — a tiny heartbeat makes every item emit."""
        stream = io.StringIO()
        list(obs.progress(
            range(5), "slow", every=1000, stream=stream, heartbeat=1e-9,
        ))
        lines = stream.getvalue().splitlines()
        # 4 heartbeat lines (not the final item) plus the final line.
        assert len(lines) == 5
        assert "elapsed" in lines[0]
        assert lines[-1].startswith("[obs] slow: 5/5 (100%)")

    def test_heartbeat_env_override(self, obs_enabled, monkeypatch):
        from repro.obs.progress import _resolve_heartbeat

        stream = io.StringIO()  # isatty() is False
        assert _resolve_heartbeat(None, stream) == 30.0
        monkeypatch.setenv("REPRO_PROGRESS_HEARTBEAT", "5")
        assert _resolve_heartbeat(None, stream) == 5.0
        assert _resolve_heartbeat(2.0, stream) == 2.0  # explicit wins
        monkeypatch.setenv("REPRO_PROGRESS_HEARTBEAT", "0")
        assert _resolve_heartbeat(None, stream) == 0.0


class TestRunReport:
    def test_mini_sweep_report_schema(self, obs_enabled, tmp_path):
        """Integration: a 2-point mini-sweep produces a valid report."""
        from repro.dse.sweep import _evaluate_design

        _evaluate_design.cache_clear()  # force real (span-recording) work
        for width in (4, 8):
            with obs.span("sweep"):
                evaluate_design(CoreConfig(datawidth=width), "EGFET")
        report = build_run_report(["mini-sweep"], wall_seconds=1.0)
        path = tmp_path / "RUN_REPORT.json"
        obs.write_run_report(path, report)
        loaded = json.loads(path.read_text())

        assert loaded["schema"] == SCHEMA
        assert loaded["command"] == ["mini-sweep"]
        assert loaded["wall_seconds"] == 1.0
        stage_names = [s["name"] for s in loaded["stages"]]
        assert stage_names == ["sweep"]
        assert loaded["stages"][0]["count"] == 2
        assert 0.0 <= loaded["stage_coverage"]
        assert loaded["span_count"] == len(loaded["spans"])
        assert loaded["span_count"] >= 2
        # evaluate_design spans nest under the sweep stage.
        nested = [s for s in loaded["spans"] if s["name"] == "evaluate_design"]
        assert any(s["path"] == "sweep/evaluate_design" for s in nested)
        # Metrics flowed in from the instrumented pipeline.
        assert loaded["metrics"]["dse.evaluations"] >= 2
        assert loaded["environment"]["python"]
        assert isinstance(loaded["git"], dict)
        # v3 additions: env fingerprint block + ledger back-reference.
        assert set(loaded["fingerprint"]) == {
            "cpu_count", "platform", "machine", "python", "git_sha",
        }
        assert loaded["history_ref"]

    def test_schema_is_v3(self):
        assert SCHEMA.endswith("/v3")

    def test_compact_dump_elides_spans_sorts_keys(self, obs_enabled):
        with obs.span("stage"):
            pass
        report = build_run_report(["compact"], 1.0)
        full = obs.dump_report_json(report)
        compact = obs.dump_report_json(report, compact=True)
        assert len(compact) < len(full)
        assert json.loads(compact)["spans"] == []
        assert json.loads(compact)["span_count"] == report["span_count"]
        keys = list(json.loads(full))
        assert keys == sorted(keys)

    def test_span_detail_capped_but_aggregates_complete(self, obs_enabled):
        for _ in range(MAX_REPORT_SPANS + 10):
            with obs.span("tick"):
                pass
        report = build_run_report(["cap"], wall_seconds=0.5)
        assert len(report["spans"]) == MAX_REPORT_SPANS
        assert report["span_count"] == MAX_REPORT_SPANS + 10
        assert report["stages"][0]["count"] == MAX_REPORT_SPANS + 10

    def test_extra_keys_merged(self, obs_enabled):
        report = build_run_report(["x"], 1.0, extra={"custom": 7})
        assert report["custom"] == 7

    def test_render_is_plain_text(self, obs_enabled):
        obs.counter("test.rendered").inc()
        with obs.span("stage"):
            pass
        report = build_run_report(["render"], 1.0)
        text = obs.render_run_report(report)
        assert "stage" in text
        assert "test.rendered" in text


class TestCli:
    def test_profile_writes_run_report(self, obs_disabled, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "RUN_REPORT.json"
        assert main(["--profile", "--report-out", str(out), "table6"]) == 0
        report = json.loads(out.read_text())
        assert report["schema"] == SCHEMA
        assert report["command"] == ["table6"]
        assert [s["name"] for s in report["stages"]] == ["table6"]
        assert "Run report" in capsys.readouterr().out

    def test_stats_prints_nonzero_counters(self, obs_disabled, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "RUN_REPORT.json"
        assert main(["--report-out", str(out), "stats"]) == 0
        text = capsys.readouterr().out
        assert "sim.cycles_simulated" in text
        assert "compile.cache_hits" in text

    def test_unknown_flag_rejected(self, obs_disabled, capsys):
        from repro.__main__ import main

        assert main(["--bogus"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_trace_out_exports_jsonl(self, obs_disabled, tmp_path):
        from repro.__main__ import main
        from repro.obs.trace import load_jsonl

        trace = tmp_path / "trace.jsonl"
        report = tmp_path / "RUN_REPORT.json"
        assert main([
            "--profile", "--trace-out", str(trace),
            "--report-out", str(report), "table6",
        ]) == 0
        events = load_jsonl(trace)
        assert any(e["name"] == "table6" for e in events)
