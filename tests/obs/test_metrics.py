"""Tests for the metrics registry: counters, gauges, histograms."""

import json

import pytest

from repro import obs
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self, obs_enabled):
        c = obs.counter("test.hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instance(self, obs_enabled):
        assert obs.counter("test.hits") is obs.counter("test.hits")

    def test_disabled_is_noop(self, obs_disabled):
        c = obs.counter("test.hits")
        c.inc(100)
        assert c.value == 0


class TestGauge:
    def test_set_keeps_last_value(self, obs_enabled):
        g = obs.gauge("test.level")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5

    def test_disabled_is_noop(self, obs_disabled):
        g = obs.gauge("test.level")
        g.set(42)
        assert g.value == 0.0


class TestHistogram:
    def test_running_aggregates(self, obs_enabled):
        h = obs.histogram("test.samples")
        for value in (2.0, 8.0, 5.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0
        assert h.max == 8.0
        assert h.mean == 5.0

    def test_empty_mean_is_zero(self, obs_enabled):
        assert obs.histogram("test.empty").mean == 0.0

    def test_disabled_is_noop(self, obs_disabled):
        h = obs.histogram("test.samples")
        h.observe(1.0)
        assert h.count == 0
        assert h.min is None


class TestRegistry:
    def test_kind_conflict_raises(self, obs_enabled):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            registry.gauge("x")

    def test_snapshot_shape_and_serializability(self, obs_enabled):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(1.5)
        registry.histogram("c.hist").observe(3.0)
        snap = registry.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.hist"]  # sorted
        assert snap["b.count"] == 2
        assert snap["a.level"] == 1.5
        assert snap["c.hist"] == {
            "count": 1, "sum": 3.0, "min": 3.0, "max": 3.0, "mean": 3.0,
        }
        json.dumps(snap)  # must stay JSON-serializable for RUN_REPORT

    def test_reset_zeroes_but_keeps_instances(self, obs_enabled):
        registry = MetricsRegistry()
        c = registry.counter("x")
        g = registry.gauge("y")
        h = registry.histogram("z")
        c.inc(3)
        g.set(2)
        h.observe(1.0)
        registry.reset()
        assert registry.counter("x") is c
        assert (c.value, g.value, h.count, h.min) == (0, 0.0, 0, None)

    def test_module_level_snapshot_sees_global_registry(self, obs_enabled):
        obs.counter("test.global").inc()
        assert obs.snapshot()["test.global"] == 1


class TestMetricClasses:
    def test_plain_instances_respect_switch(self, obs_enabled):
        # Direct construction (as instrumentation sites do at import).
        c, g, h = Counter("c"), Gauge("g"), Histogram("h")
        c.inc()
        g.set(1)
        h.observe(1)
        obs.disable()
        c.inc()
        g.set(9)
        h.observe(9)
        assert (c.value, g.value, h.count) == (1, 1, 1)
