"""Pluggable progress sink: default lines byte-identical, sinks, bus."""

import io

from repro import obs
from repro.obs import live
from repro.obs.progress import ProgressEvent, format_progress_line, progress


def _legacy_line(label, done, total, elapsed, final=False, heartbeat=False):
    """The historical _emit format, reproduced verbatim as the oracle."""
    rate = done / elapsed if elapsed > 0 else 0.0
    parts = [f"[obs] {label}: {done}"]
    if total:
        parts[0] += f"/{total} ({100 * done // total}%)"
    parts.append(f"{rate:.1f}/s")
    if final:
        parts.append(f"in {elapsed:.2f}s")
    else:
        if total and rate > 0:
            parts.append(f"eta {(total - done) / rate:.1f}s")
        if heartbeat:
            parts.append(f"elapsed {elapsed:.0f}s")
    return " ".join(parts)


class TestFormatProgressLine:
    def test_byte_identical_to_legacy_format(self):
        cases = [
            dict(label="sweep", done=8, total=24, elapsed=3.8),
            dict(label="sweep", done=24, total=24, elapsed=11.4, final=True),
            dict(label="scan", done=3, total=None, elapsed=95.0, heartbeat=True),
            dict(label="scan", done=7, total=100, elapsed=70.0, heartbeat=True),
            dict(label="x", done=1, total=None, elapsed=0.0),
        ]
        for case in cases:
            final = case.get("final", False)
            heartbeat = case.get("heartbeat", False)
            rate = case["done"] / case["elapsed"] if case["elapsed"] > 0 else 0.0
            event = ProgressEvent(
                label=case["label"],
                done=case["done"],
                total=case["total"],
                elapsed_s=case["elapsed"],
                rate=rate,
                final=final,
                heartbeat=heartbeat,
            )
            assert format_progress_line(event) == _legacy_line(
                case["label"], case["done"], case["total"], case["elapsed"],
                final=final, heartbeat=heartbeat,
            )

    def test_percent_and_eta_properties(self):
        event = ProgressEvent(
            label="l", done=25, total=100, elapsed_s=5.0, rate=5.0
        )
        assert event.percent == 25
        assert event.eta_s == 15.0
        untotaled = ProgressEvent(
            label="l", done=3, total=None, elapsed_s=1.0, rate=3.0
        )
        assert untotaled.percent is None
        assert untotaled.eta_s is None


class TestProgressSink:
    def test_default_sink_writes_stream(self, obs_enabled):
        out = io.StringIO()
        list(progress(range(20), "loop", every=10, stream=out, heartbeat=0))
        lines = out.getvalue().splitlines()
        assert lines[0] == "[obs] loop: 10/20 (50%)" or lines[0].startswith(
            "[obs] loop: 10/20 (50%)"
        )
        assert lines[-1].startswith("[obs] loop: 20/20 (100%)")
        assert lines[-1].split(" in ")[0]  # final line format

    def test_custom_sink_replaces_stream_writes(self, obs_enabled):
        events = []
        obs.set_progress_sink(events.append)
        try:
            out = io.StringIO()
            list(progress(range(20), "loop", every=10, stream=out, heartbeat=0))
            assert out.getvalue() == ""  # nothing printed
        finally:
            obs.set_progress_sink(None)
        assert [e.done for e in events] == [10, 20]
        assert events[-1].final
        assert all(isinstance(e, ProgressEvent) for e in events)
        assert obs.progress_sink() is None

    def test_disabled_path_emits_nothing(self, obs_disabled):
        events = []
        obs.set_progress_sink(events.append)
        try:
            out = io.StringIO()
            assert list(progress(range(5), "loop", stream=out)) == list(range(5))
            assert out.getvalue() == ""
            assert events == []
        finally:
            obs.set_progress_sink(None)

    def test_bus_receives_progress_events(self, obs_enabled):
        bus = live.activate()
        sub = bus.subscribe()
        try:
            list(progress(range(20), "loop", every=10,
                          stream=io.StringIO(), heartbeat=0))
        finally:
            live.deactivate()
        events = [e for e in sub.get(timeout=0) if e["kind"] == "progress"]
        assert [e["data"]["done"] for e in events] == [10, 20]
        assert events[0]["data"]["percent"] == 50
        assert events[-1]["data"]["final"] is True
