"""Trace export formats, drain semantics, and pid/trace-id stamping."""

import json
import os

from repro import obs
from repro.obs.trace import SpanEvent, Tracer, load_jsonl


def _make_tracer(names):
    tracer = Tracer()
    for name in names:
        with tracer.span(name):
            pass
    return tracer


class TestExportJson:
    def test_json_array_loads_directly(self, tmp_path):
        tracer = _make_tracer(["a", "b", "c"])
        path = tmp_path / "trace.json"
        assert tracer.export_json(path) == 3
        events = json.loads(path.read_text())
        assert isinstance(events, list)
        assert [e["name"] for e in events] == ["a", "b", "c"]
        assert all(e["ph"] == "X" for e in events)

    def test_empty_tracer_exports_valid_empty_array(self, tmp_path):
        path = tmp_path / "trace.json"
        assert Tracer().export_json(path) == 0
        assert json.loads(path.read_text()) == []

    def test_jsonl_still_one_event_per_line(self, tmp_path):
        tracer = _make_tracer(["a", "b"])
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        lines = [l for l in path.read_text().splitlines() if l]
        assert len(lines) == 2
        assert all(json.loads(l)["ph"] == "X" for l in lines)
        assert [e["name"] for e in load_jsonl(path)] == ["a", "b"]

    def test_obs_export_trace_dispatches_on_suffix(self, tmp_path, obs_enabled):
        with obs.span("stage"):
            pass
        as_json = tmp_path / "t.json"
        as_jsonl = tmp_path / "t.jsonl"
        obs.export_trace(as_json)
        obs.export_trace(as_jsonl)
        assert isinstance(json.loads(as_json.read_text()), list)
        for line in as_jsonl.read_text().splitlines():
            if line:
                json.loads(line)  # every line standalone JSON


class TestSpanStamping:
    def test_chrome_event_carries_recording_pid(self):
        tracer = _make_tracer(["a"])
        event = tracer.events()[0]
        assert event.pid == os.getpid()
        assert event.to_chrome()["pid"] == os.getpid()

    def test_legacy_event_without_pid_falls_back(self):
        legacy = SpanEvent(
            name="old", path="old", depth=0, start_us=0.0,
            wall_s=0.1, cpu_s=0.1, thread_id=1,
        )
        assert legacy.pid == 0
        assert legacy.to_chrome()["pid"] == os.getpid()

    def test_trace_id_stamped_and_exported(self):
        obs.set_trace_id("job-trace-1")
        try:
            tracer = _make_tracer(["stage"])
        finally:
            obs.set_trace_id(None)
        event = tracer.events()[0]
        assert event.trace_id == "job-trace-1"
        assert event.to_chrome()["args"]["trace_id"] == "job-trace-1"
        # Cleared id: no args key at all.
        bare = _make_tracer(["stage"]).events()[0]
        assert bare.trace_id is None
        assert "trace_id" not in bare.to_chrome()["args"]

    def test_current_trace_id_roundtrip(self):
        assert obs.current_trace_id() is None
        obs.set_trace_id("abc")
        assert obs.current_trace_id() == "abc"
        obs.set_trace_id(None)
        assert obs.current_trace_id() is None


class TestDrain:
    def test_drain_removes_and_returns_matches(self):
        tracer = Tracer()
        obs.set_trace_id("keep-me")
        try:
            with tracer.span("mine"):
                pass
        finally:
            obs.set_trace_id(None)
        with tracer.span("other"):
            pass
        taken = tracer.drain(lambda e: e.trace_id == "keep-me")
        assert [e.name for e in taken] == ["mine"]
        assert [e.name for e in tracer.events()] == ["other"]
        assert tracer.drain(lambda e: e.trace_id == "keep-me") == []
