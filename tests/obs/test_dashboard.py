"""Tests for the self-contained HTML telemetry dashboard."""

import re

import pytest

from repro.obs import dashboard, history


@pytest.fixture
def ledger_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_HISTORY", raising=False)
    return tmp_path


def _seed(values):
    for i, speedup in enumerate(values):
        history.append_record(
            history.build_record(
                "bench",
                ["bench"],
                {
                    "bench.fault_campaign_numpy.speedup_vs_batched": speedup,
                    "wall_seconds": 30.0 + i,
                    "stage.sweep.wall_s": 10.0 + i,
                    "stage.campaign.wall_s": 5.0,
                },
                ts=f"2026-08-{i + 1:02d}T00:00:00+00:00",
            )
        )


class TestRender:
    def test_byte_deterministic_given_fixed_ledger(self, ledger_dir):
        """Acceptance pin: same ledger in, identical bytes out."""
        _seed([5.8, 5.9, 6.0])
        records = history.read_ledger()
        assert dashboard.render_dashboard(records) == (
            dashboard.render_dashboard(records)
        )
        # And through the file writer too.
        a = ledger_dir / "a.html"
        b = ledger_dir / "b.html"
        dashboard.write_dashboard(a)
        dashboard.write_dashboard(b)
        assert a.read_bytes() == b.read_bytes()

    def test_zero_external_references(self, ledger_dir):
        """Acceptance pin: no CDN scripts, stylesheets, fonts, images."""
        _seed([5.8, 5.9, 6.0])
        html = dashboard.render_dashboard(history.read_ledger())
        assert not re.search(r'\bsrc\s*=\s*["\']?(https?:)?//', html)
        assert not re.search(r'\bhref\s*=\s*["\']?(https?:)?//', html)
        assert "<script" not in html  # pure HTML+CSS+SVG, no JS at all
        assert "@import" not in html
        assert "url(" not in html

    def test_sparklines_and_table_present(self, ledger_dir):
        _seed([5.8, 5.9, 6.0, 5.95])
        html = dashboard.render_dashboard(history.read_ledger())
        assert "<svg" in html
        assert "spark-line" in html
        assert "<details" in html  # table view for accessibility
        assert "speedup_vs_batched" in html
        assert "prefers-color-scheme: dark" in html

    def test_empty_ledger_renders_placeholder(self, ledger_dir):
        html = dashboard.render_dashboard([])
        assert "<html" in html
        assert "The ledger is empty" in html

    def test_single_record_renders(self, ledger_dir):
        _seed([5.9])
        html = dashboard.render_dashboard(history.read_ledger())
        assert "<svg" in html

    def test_html_is_balanced(self, ledger_dir):
        from html.parser import HTMLParser

        _seed([5.8, 5.9, 6.0])
        html = dashboard.render_dashboard(history.read_ledger())

        class Balance(HTMLParser):
            VOID = {"br", "hr", "meta", "link", "img", "input", "circle",
                    "line", "rect", "path", "polyline", "stop"}

            def __init__(self):
                super().__init__(convert_charrefs=True)
                self.stack = []

            def handle_starttag(self, tag, attrs):
                if tag not in self.VOID:
                    self.stack.append(tag)

            def handle_endtag(self, tag):
                if tag in self.VOID:  # self-closed <polyline/> etc.
                    return
                assert self.stack and self.stack[-1] == tag, (
                    f"unbalanced </{tag}>, open: {self.stack[-5:]}"
                )
                self.stack.pop()

        parser = Balance()
        parser.feed(html)
        assert parser.stack == []


class TestCli:
    def test_dashboard_cli_writes_file(self, ledger_dir, tmp_path, capsys):
        from repro.__main__ import main

        _seed([5.8, 5.9, 6.0])
        out = tmp_path / "dash.html"
        assert main(["dashboard", "--out", str(out)]) == 0
        assert out.exists()
        assert "dashboard" in capsys.readouterr().out
        assert "<svg" in out.read_text()

    def test_dashboard_cli_bad_option(self, ledger_dir, capsys):
        from repro.__main__ import main

        assert main(["dashboard", "--bogus"]) == 2
