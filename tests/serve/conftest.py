"""Shared serve fixtures: probe drivers, a manager, a live HTTP server.

The probe job kinds registered here keep the service tests fast and
deterministic: ``echo`` finishes in microseconds (or sleeps/fails on
demand), ``fanout`` drives :func:`repro.exec.parallel_map` with real
worker processes so trace stitching across PIDs is exercised without
running a full pipeline driver.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs import live
from repro.serve import drivers
from repro.serve.jobs import JobManager
from repro.serve.server import ReproServer


def _run_echo(params):
    if params["sleep_s"]:
        time.sleep(params["sleep_s"])
    with obs.span("echo", value=params["value"]):
        if params["fail"]:
            raise ValueError("echo told to fail")
    return {"value": params["value"]}


def _fanout_item(index):
    import os

    with obs.span("fanout_item", index=index):
        time.sleep(0.05)
    return os.getpid()


def _run_fanout(params):
    from repro.exec import parallel_map

    pids = parallel_map(
        _fanout_item,
        range(params["items"]),
        jobs=params["jobs"],
        chunk_size=1,
        label="fanout",
    )
    return {"pids": sorted(set(pids))}


@pytest.fixture
def serve_obs():
    """Enabled obs + active live bus + probe drivers, torn down after."""
    obs.reset()
    obs.enable()
    bus = live.activate(live.LiveBus(buffer=64))
    drivers.register_driver(
        "echo", {"value": 0, "sleep_s": 0.0, "fail": False}, _run_echo
    )
    drivers.register_driver("fanout", {"items": 8, "jobs": 2}, _run_fanout)
    try:
        yield bus
    finally:
        drivers.DRIVERS.pop("echo", None)
        drivers.DRIVERS.pop("fanout", None)
        live.deactivate()
        obs.disable()
        obs.reset()


@pytest.fixture
def manager(serve_obs):
    mgr = JobManager(workers=1)
    serve_obs.add_tap(mgr.tap)
    mgr.start()
    try:
        yield mgr
    finally:
        mgr.stop()
        serve_obs.remove_tap(mgr.tap)


@pytest.fixture
def server(serve_obs, manager):
    """A live ReproServer on an ephemeral port; yields its base URL."""
    srv = ReproServer(
        ("127.0.0.1", 0), manager, serve_obs, heartbeat=0.2
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{srv.server_address[1]}"
    finally:
        srv.shutdown()
        srv.server_close()


# -- tiny stdlib HTTP helpers (shared by the serve tests) ------------------


def get(url, timeout=5.0):
    """(status, body_bytes, headers) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)


def get_json(url, timeout=5.0):
    status, body, _ = get(url, timeout=timeout)
    return status, json.loads(body)


def post_json(url, payload, timeout=5.0):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_until(predicate, timeout=10.0, interval=0.02):
    """Poll ``predicate`` until truthy; returns its final value."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"condition not met within {timeout}s")
