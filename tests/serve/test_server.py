"""End-to-end HTTP surface: endpoints, exposition, traces, dedup."""

import json

from repro import obs

from tests.obs.test_promtext import parse_prometheus
from tests.serve.conftest import get, get_json, post_json, wait_until


def _submit_and_wait(base, kind, params, timeout=30.0):
    status, job = post_json(f"{base}/jobs", {"kind": kind, "params": params})
    assert status == 202, job
    done = wait_until(
        lambda: (
            lambda j: j if j["status"] in ("done", "failed") else None
        )(get_json(f"{base}/jobs/{job['id']}")[1]),
        timeout=timeout,
    )
    return done


class TestHealthEndpoints:
    def test_healthz(self, server):
        status, body = get_json(f"{server}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_readyz_ready_then_draining(self, server, manager):
        assert get_json(f"{server}/readyz")[0] == 200
        manager.drain(timeout=1.0)
        status, body = get_json(f"{server}/readyz")
        assert status == 503
        assert body["status"] == "draining"
        status, _ = post_json(f"{server}/jobs", {"kind": "echo"})
        assert status == 503

    def test_unknown_route_404(self, server):
        assert get(f"{server}/nope")[0] == 404


class TestMetricsEndpoint:
    def test_round_trips_strict_parser(self, server):
        _submit_and_wait(server, "echo", {"value": 1})
        status, body, headers = get(f"{server}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        families = parse_prometheus(body.decode())
        assert families["repro_serve_jobs_submitted"]["samples"][
            "repro_serve_jobs_submitted"
        ] >= 1
        assert families["repro_serve_requests"]["type"] == "counter"
        assert families["repro_serve_job_wall_s"]["type"] == "summary"


class TestJobsEndpoint:
    def test_submit_poll_result_trace_report(self, server):
        done = _submit_and_wait(server, "echo", {"value": 3})
        assert done["status"] == "done"
        assert done["result"] == {"value": 3}
        assert done["queue_position"] is None
        status, trace = get_json(f"{server}/jobs/{done['id']}/trace")
        assert status == 200
        assert [e["name"] for e in trace] == ["echo"]
        assert trace[0]["args"]["trace_id"] == done["trace_id"]
        status, report = get_json(f"{server}/jobs/{done['id']}/report")
        assert status == 200
        assert report["job"]["id"] == done["id"]
        assert report["job"]["status"] == "done"
        assert report["command"] == ["serve", "echo"]

    def test_trace_stitches_multiple_worker_pids(self, server):
        done = _submit_and_wait(server, "fanout", {"items": 8, "jobs": 2})
        assert done["status"] == "done", done
        _, trace = get_json(f"{server}/jobs/{done['id']}/trace")
        assert all(
            e["args"]["trace_id"] == done["trace_id"] for e in trace
        )
        worker_pids = {
            e["pid"] for e in trace if e["name"] == "fanout_item"
        }
        assert len(worker_pids) >= 2, f"single worker pid: {worker_pids}"
        # The parent's fan-out span is stitched into the same trace.
        assert "fanout" in {e["name"] for e in trace}

    def test_back_to_back_submissions_dedup(self, server):
        status, first = post_json(
            f"{server}/jobs", {"kind": "echo", "params": {"value": 11}}
        )
        assert status == 202 and first["deduped"] is False
        status, second = post_json(
            f"{server}/jobs", {"kind": "echo", "params": {"value": 11}}
        )
        assert status == 202
        assert second["deduped"] is True
        assert second["id"] == first["id"]
        _, body, _ = get(f"{server}/metrics")
        families = parse_prometheus(body.decode())
        assert families["repro_serve_dedup_hits"]["samples"][
            "repro_serve_dedup_hits"
        ] >= 1

    def test_jobs_table_lists_submissions(self, server):
        done = _submit_and_wait(server, "echo", {"value": 21})
        status, body = get_json(f"{server}/jobs")
        assert status == 200
        assert body["stats"]["jobs"] >= 1
        assert done["id"] in {job["id"] for job in body["jobs"]}

    def test_error_statuses(self, server):
        assert get(f"{server}/jobs/job-9999")[0] == 404
        assert get(f"{server}/jobs/job-9999/trace")[0] == 404
        status, body = post_json(f"{server}/jobs", {"kind": "nonsense"})
        assert status == 400
        assert "unknown job kind" in body["error"]
        status, body = post_json(
            f"{server}/jobs", {"kind": "echo", "params": {"bogus": 1}}
        )
        assert status == 400
        status, _ = post_json(f"{server}/jobs", {"no_kind": True})
        assert status == 400

    def test_unfinished_job_trace_409(self, server):
        status, job = post_json(
            f"{server}/jobs", {"kind": "echo", "params": {"sleep_s": 0.5}}
        )
        assert status == 202
        status, _ = get_json(f"{server}/jobs/{job['id']}/trace")
        assert status == 409
        wait_until(
            lambda: get_json(f"{server}/jobs/{job['id']}")[1]["status"]
            == "done"
        )

    def test_oversized_body_413(self, server):
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{server}/jobs", data=b" " * (70 * 1024)
        )
        try:
            urllib.request.urlopen(request, timeout=5)
            raise AssertionError("expected HTTP 413")
        except urllib.error.HTTPError as exc:
            assert exc.code == 413


class TestStatusPage:
    def test_page_renders_jobs(self, server):
        done = _submit_and_wait(server, "echo", {"value": 5})
        status, body, headers = get(f"{server}/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        html = body.decode()
        assert done["id"] in html
        assert "EventSource" in html  # SSE auto-refresh wiring
