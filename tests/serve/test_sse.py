"""SSE streaming: framing, lifecycle sequences, bounded slow clients."""

import http.client
import json
import threading
import time
import urllib.parse

from repro import obs
from repro.obs import live
from repro.serve import sse

from tests.serve.conftest import post_json, wait_until


def _parse_frames(raw: bytes):
    """Split an SSE byte stream into (event, data_dict|None) frames."""
    frames = []
    for block in raw.decode().split("\n\n"):
        if not block.strip():
            continue
        event, data = None, None
        for line in block.splitlines():
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
            elif line.startswith(": "):
                event = event or f"comment:{line[2:].split(' ')[0]}"
        frames.append((event, data))
    return frames


class TestFraming:
    def test_format_event(self):
        chunk = sse.format_event(
            {"seq": 7, "ts": 1.0, "kind": "job", "data": {"id": "job-0001"}}
        )
        text = chunk.decode()
        assert text.startswith("event: job\n")
        assert "id: 7\n" in text
        assert text.endswith("\n\n")
        payload = [l for l in text.splitlines() if l.startswith("data: ")][0]
        assert json.loads(payload[len("data: "):])["data"]["id"] == "job-0001"

    def test_comment(self):
        assert sse.comment("keepalive") == b": keepalive\n\n"


class TestEventStream:
    def test_stream_opens_then_forwards_events(self, serve_obs):
        stream = sse.event_stream(serve_obs, heartbeat=0.1)
        assert next(stream) == b": connected\n\n"
        serve_obs.publish("job", {"id": "job-0001"})
        event, data = _parse_frames(next(stream))[0]
        assert event == "job"
        assert data["data"]["id"] == "job-0001"
        stream.close()

    def test_keepalive_on_silence(self, serve_obs):
        stream = sse.event_stream(serve_obs, heartbeat=0.05)
        next(stream)  # connected
        assert next(stream) == b": keepalive\n\n"
        stream.close()

    def test_kinds_filter(self, serve_obs):
        stream = sse.event_stream(serve_obs, heartbeat=0.1, kinds=["job"])
        next(stream)
        serve_obs.publish("span", {"name": "noise"})
        serve_obs.publish("job", {"id": "job-0002"})
        frames = _parse_frames(next(stream))
        assert [f[0] for f in frames] == ["job"]
        stream.close()

    def test_replay_serves_ring_to_late_joiner(self, serve_obs):
        for i in range(3):
            serve_obs.publish("job", {"i": i})
        stream = sse.event_stream(serve_obs, heartbeat=0.1, replay=True)
        next(stream)  # connected
        replayed = [_parse_frames(next(stream))[0] for _ in range(3)]
        assert [d["data"]["i"] for _, d in replayed] == [0, 1, 2]
        stream.close()

    def test_slow_client_drops_are_bounded_and_reported(self, serve_obs):
        dropped_before = obs.REGISTRY.counter("serve.sse.dropped").value
        stream = sse.event_stream(serve_obs, heartbeat=0.1, maxlen=4)
        next(stream)  # connected: subscription now exists
        # Publish far more than the client's bound before it reads.
        for i in range(20):
            serve_obs.publish("span", {"i": i})
        chunks = [next(stream)]
        assert chunks[0] == b": dropped 16\n\n"
        while True:
            chunk = next(stream)
            if chunk == b": keepalive\n\n":
                break
            chunks.append(chunk)
        frames = _parse_frames(b"".join(chunks))
        survivors = [d["data"]["i"] for _, d in frames if d is not None]
        assert survivors == [16, 17, 18, 19]  # newest kept, oldest dropped
        assert (
            obs.REGISTRY.counter("serve.sse.dropped").value
            == dropped_before + 16
        )
        stream.close()

    def test_bus_close_ends_stream(self, serve_obs):
        stream = sse.event_stream(serve_obs, heartbeat=5.0)
        next(stream)
        closer = threading.Timer(0.05, serve_obs.close_all)
        closer.start()
        assert list(stream) == []  # returns promptly, no keepalive spin
        closer.join()


class TestOverHttp:
    def _open_stream(self, base, path="/events?kinds=job"):
        parsed = urllib.parse.urlparse(base)
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=10
        )
        conn.request("GET", path)
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.headers["Content-Type"] == "text/event-stream"
        return conn, resp

    def test_client_sees_full_job_lifecycle(self, server):
        conn, resp = self._open_stream(server)
        assert resp.readline() == b": connected\n"
        status, job = post_json(
            f"{server}/jobs", {"kind": "echo", "params": {"value": 77}}
        )
        assert status == 202
        statuses = []
        deadline = time.monotonic() + 10
        buffer = b""
        while time.monotonic() < deadline and "done" not in statuses:
            buffer += resp.readline()
            if not buffer.endswith(b"\n\n"):
                continue
            for event, data in _parse_frames(buffer):
                if event == "job" and data and data["data"]["id"] == job["id"]:
                    statuses.append(data["data"]["status"])
            buffer = b""
        conn.close()
        assert statuses == ["queued", "running", "done"]

    def test_two_clients_both_receive(self, server):
        first = self._open_stream(server)
        second = self._open_stream(server)
        for _, resp in (first, second):
            assert resp.readline() == b": connected\n"
        status, job = post_json(f"{server}/jobs", {"kind": "echo"})
        assert status == 202
        for conn, resp in (first, second):
            line = resp.readline()
            while not line.startswith(b"event: job"):
                line = resp.readline()
            assert line == b"event: job\n"
            conn.close()

    def test_metrics_events_flow_from_ticker(self, serve_obs):
        ticker = live.SnapshotTicker(serve_obs, interval=60)
        sub = serve_obs.subscribe()
        obs.counter("serve_test.pulse").inc()
        assert ticker.tick() is not None
        kinds = {e["kind"] for e in sub.get(timeout=0.5)}
        assert "metrics" in kinds
