"""JobManager semantics: dedup, lifecycle, drain, eviction, ledger."""

import threading

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.obs.history import series_direction
from repro.serve.drivers import canonical_params, job_kinds
from repro.serve.jobs import JobManager, job_key

from tests.serve.conftest import wait_until


class TestCanonicalParams:
    def test_defaults_filled_and_coerced(self, serve_obs):
        assert canonical_params("echo", {"value": "7"}) == {
            "value": 7,
            "sleep_s": 0.0,
            "fail": False,
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown job kind"):
            canonical_params("nonsense", {})

    def test_unknown_param_rejected(self, serve_obs):
        with pytest.raises(ConfigError, match="unknown echo parameter"):
            canonical_params("echo", {"vlaue": 1})

    def test_builtin_kinds_registered(self):
        for kind in ("sweep", "yield", "campaign", "verify", "profile", "place"):
            assert kind in job_kinds()

    def test_key_is_canonical_form_stable(self, serve_obs):
        key_a = job_key("echo", canonical_params("echo", {"value": "7"}))
        key_b = job_key("echo", canonical_params("echo", {"value": 7}))
        assert key_a == key_b
        assert key_a != job_key("echo", canonical_params("echo", {"value": 8}))


class TestJobLifecycle:
    def test_submit_runs_to_done(self, manager):
        job, deduped = manager.submit("echo", {"value": 7})
        assert not deduped
        assert job.id == "job-0001"
        assert len(job.trace_id) == 16
        wait_until(lambda: job.finished)
        assert job.status == "done"
        assert job.result == {"value": 7}
        assert job.queue_wait_s >= 0
        assert job.wall_s >= 0
        assert job.report is not None
        assert [e.name for e in job.spans] == ["echo"]
        assert all(e.trace_id == job.trace_id for e in job.spans)

    def test_failure_becomes_job_state(self, manager):
        job, _ = manager.submit("echo", {"fail": True})
        wait_until(lambda: job.finished)
        assert job.status == "failed"
        assert "echo told to fail" in job.error
        assert obs.REGISTRY.counter("serve.jobs.failed").value >= 1

    def test_job_to_dict_shapes(self, manager):
        job, _ = manager.submit("echo", {"value": 1})
        wait_until(lambda: job.finished)
        out = job.to_dict()
        assert "result" not in out
        assert job.to_dict(include_result=True)["result"] == {"value": 1}
        assert out["status"] == "done"
        assert out["span_count"] == 1

    def test_progress_tap_folds_into_running_job(self, manager, serve_obs):
        job, _ = manager.submit("echo", {"sleep_s": 0.5})
        wait_until(lambda: job.status == "running")
        serve_obs.publish(
            "progress",
            {
                "label": "probe",
                "done": 5,
                "total": 10,
                "percent": 50,
                "rate": 1.0,
                "eta_s": 5.0,
                "trace_id": job.trace_id,
            },
        )
        wait_until(lambda: job.progress is not None)
        assert job.progress["percent"] == 50
        wait_until(lambda: job.finished)


class TestDedup:
    def test_concurrent_identical_submissions_coalesce(self, manager):
        # A blocker pins the single worker so the probes stay queued.
        blocker, _ = manager.submit("echo", {"sleep_s": 0.3, "value": -1})
        n = 8
        barrier = threading.Barrier(n)
        results = []

        def submit():
            barrier.wait()
            results.append(manager.submit("echo", {"value": 42}))

        threads = [threading.Thread(target=submit) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        jobs = {job.id for job, _ in results}
        assert len(jobs) == 1
        (the_job,) = {job for job, _ in results}
        assert sum(1 for _, deduped in results if deduped) == n - 1
        assert the_job.dedup_hits == n - 1
        assert obs.REGISTRY.counter("serve.dedup_hits").value == n - 1
        wait_until(lambda: the_job.finished and blocker.finished)

    def test_dedup_hits_finished_job_too(self, manager):
        first, _ = manager.submit("echo", {"value": 9})
        wait_until(lambda: first.finished)
        again, deduped = manager.submit("echo", {"value": 9})
        assert deduped and again is first

    def test_failed_job_never_dedups(self, manager):
        first, _ = manager.submit("echo", {"fail": True})
        wait_until(lambda: first.finished)
        retry, deduped = manager.submit("echo", {"fail": True})
        assert not deduped
        assert retry.id != first.id

    def test_string_params_coalesce_with_typed(self, manager):
        first, _ = manager.submit("echo", {"value": 3})
        _, deduped = manager.submit("echo", {"value": "3"})
        assert deduped
        wait_until(lambda: first.finished)


class TestQueueAndDrain:
    def test_queue_position(self, manager):
        blocker, _ = manager.submit("echo", {"sleep_s": 0.3})
        second, _ = manager.submit("echo", {"value": 1})
        third, _ = manager.submit("echo", {"value": 2})
        wait_until(lambda: blocker.status == "running")
        assert manager.queue_position(second) == 0
        assert manager.queue_position(third) == 1
        wait_until(lambda: third.finished)
        assert manager.queue_position(third) is None

    def test_drain_refuses_new_work_and_empties(self, manager):
        job, _ = manager.submit("echo", {"sleep_s": 0.2})
        assert manager.drain(timeout=5.0)
        assert job.finished
        with pytest.raises(RuntimeError, match="draining"):
            manager.submit("echo", {"value": 1})
        assert manager.stats()["draining"] is True

    def test_drain_times_out_on_stuck_job(self, serve_obs):
        mgr = JobManager(workers=1)
        mgr.start()
        try:
            mgr.submit("echo", {"sleep_s": 2.0})
            assert mgr.drain(timeout=0.1) is False
        finally:
            mgr.stop()

    def test_eviction_drops_oldest_finished(self, serve_obs):
        mgr = JobManager(workers=1, max_jobs=2)
        mgr.start()
        try:
            jobs = [mgr.submit("echo", {"value": i})[0] for i in range(3)]
            wait_until(lambda: all(j.finished for j in jobs))
            mgr.submit("echo", {"value": 99})
            assert len(mgr.jobs()) <= 3  # table bounded near max_jobs
            assert mgr.job(jobs[0].id) is None  # oldest finished evicted
        finally:
            mgr.stop()


class TestLedger:
    def test_queue_wait_series_gates_lower(self):
        assert series_direction("serve.queue_wait_s") == "lower"
        assert series_direction("serve.echo.wall_s") == "lower"

    def test_completed_job_appends_serve_record(self, manager, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path))
        job, _ = manager.submit("echo", {"value": 5})
        wait_until(lambda: job.finished)
        ledger = tmp_path / "ledger.jsonl"
        wait_until(lambda: ledger.exists())
        import json

        records = [
            json.loads(line)
            for line in ledger.read_text().splitlines()
            if line
        ]
        serve_records = [r for r in records if r["kind"] == "serve"]
        assert serve_records
        series = serve_records[-1]["series"]
        assert "serve.echo.wall_s" in series
        assert "serve.queue_wait_s" in series
        assert series["serve.jobs.completed"] >= 1
