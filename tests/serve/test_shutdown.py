"""Graceful-shutdown regression: a real ``python -m repro serve``
subprocess must drain on SIGTERM, emit the final SSE ``shutdown``
event, and exit 0."""

import http.client
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from tests.serve.conftest import get_json, post_json, wait_until

_REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


@pytest.fixture
def serve_process(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src")
    env["REPRO_HISTORY_DIR"] = str(tmp_path / "history")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--heartbeat", "1", "--tick", "0.5", "--drain-timeout", "10"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=_REPO,
    )
    try:
        line = proc.stdout.readline().strip()
        assert line.startswith("serving on http://"), line
        base = line[len("serving on "):]
        yield proc, base
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10)


def _collect_sse(base, events, stop):
    host, port = base[len("http://"):].split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    conn.request("GET", "/events")
    resp = conn.getresponse()
    try:
        while not stop.is_set():
            line = resp.readline()
            if not line:
                break
            if line.startswith(b"event: "):
                events.append(line[len(b"event: "):].strip().decode())
    finally:
        conn.close()


class TestSigtermShutdown:
    def test_drains_and_exits_zero(self, serve_process):
        proc, base = serve_process
        status, health = get_json(f"{base}/healthz")
        assert status == 200 and health["status"] == "ok"
        assert get_json(f"{base}/readyz")[0] == 200

        events: list[str] = []
        stop = threading.Event()
        collector = threading.Thread(
            target=_collect_sse, args=(base, events, stop), daemon=True
        )
        collector.start()

        status, job = post_json(
            f"{base}/jobs",
            {"kind": "campaign", "params": {"stride": 64}},
        )
        assert status == 202, job
        wait_until(
            lambda: get_json(f"{base}/jobs/{job['id']}")[1]["status"]
            in ("done", "failed"),
            timeout=60,
        )
        assert get_json(f"{base}/jobs/{job['id']}")[1]["status"] == "done"

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
        stdout = proc.stdout.read()
        assert "shutdown complete" in stdout
        collector.join(timeout=5)
        stop.set()
        assert "shutdown" in events  # final SSE event reached the client
        assert "job" in events  # lifecycle events flowed while alive

    def test_sigterm_while_idle_exits_zero(self, serve_process):
        proc, base = serve_process
        assert get_json(f"{base}/healthz")[0] == 200
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=20) == 0
        assert "shutdown complete" in proc.stdout.read()
