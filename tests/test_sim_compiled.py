"""Equivalence suite: compiled simulation backends vs the interpreter.

The compiled backend, its bit-parallel lane mode, and the vectorized
numpy bit-slice backend must be bit-exact with the reference
interpreter -- same output values, same flop state, same fixed-point
behaviour -- on every configuration of the paper's Figure 7 sweep,
under randomized stimulus.  Fault injection and fault campaigns must
agree across all four backends as well, fault for fault.
"""

import random

import pytest

from repro.coregen.config import CoreConfig, standard_sweep
from repro.coregen.cosim import cosim_verify
from repro.coregen.fault_test import run_fault_campaign
from repro.coregen.generator import generate_core
from repro.errors import SimulationError, UnsupportedInLaneMode
from repro.isa.assembler import assemble
from repro.netlist.compile import BitParallelSimulator, compiled_netlist
from repro.netlist.core import Netlist
from repro.netlist.faults import FaultySimulator, StuckAtFault, enumerate_fault_sites
from repro.netlist.nsim import NumpySimulator
from repro.netlist.sim import CycleSimulator


def random_stimulus(netlist, rng, cycle):
    """One random input assignment; reset pulsed on a few cycles."""
    stimulus = {
        name: rng.randrange(1 << len(bus)) for name, bus in netlist.inputs.items()
    }
    if "rst_n" in netlist.inputs:
        stimulus["rst_n"] = 0 if cycle % 11 == 0 else 1
    return stimulus


def drive_lockstep(netlist, sims, cycles, seed):
    """Drive identical random vectors; compare outputs every cycle."""
    rng = random.Random(seed)
    for cycle in range(cycles):
        stimulus = random_stimulus(netlist, rng, cycle)
        for sim in sims:
            for name, value in stimulus.items():
                sim.set_input(name, value)
            sim.settle()
        reference = sims[0]
        for sim in sims[1:]:
            for name in netlist.outputs:
                assert sim.read_output(name) == reference.read_output(name), (
                    f"cycle {cycle}, output {name}"
                )
        for sim in sims:
            sim.tick()


@pytest.mark.parametrize("config", standard_sweep(), ids=lambda c: c.name)
def test_compiled_matches_interpreter_on_sweep(config):
    """Values, flop state, and toggle counts agree on all 24 cores."""
    netlist = generate_core(config)
    interpreted = CycleSimulator(netlist, backend="interpreted")
    compiled = CycleSimulator(netlist, backend="compiled")
    drive_lockstep(netlist, [interpreted, compiled], cycles=20, seed=config.name)
    assert interpreted._values == compiled._values
    assert interpreted.toggle_counts() == compiled.toggle_counts()
    assert interpreted.cycles == compiled.cycles


@pytest.mark.parametrize(
    "config",
    [CoreConfig(datawidth=8), CoreConfig(datawidth=16, pipeline_stages=2)],
    ids=lambda c: c.name,
)
def test_bit_parallel_matches_scalar_lanes(config):
    """Each bigint lane behaves exactly like one scalar compiled sim,
    including per-lane asynchronous reset."""
    netlist = generate_core(config)
    lanes = 9
    parallel = BitParallelSimulator(netlist, lanes)
    scalars = [CycleSimulator(netlist, backend="compiled") for _ in range(lanes)]
    rng = random.Random(3)
    for cycle in range(25):
        for name, bus in netlist.inputs.items():
            if name == "rst_n":
                values = [0 if (cycle + lane) % 9 == 0 else 1 for lane in range(lanes)]
            else:
                values = [rng.randrange(1 << len(bus)) for _ in range(lanes)]
            parallel.set_input(name, values)
            for lane, sim in enumerate(scalars):
                sim.set_input(name, values[lane])
        parallel.settle()
        for sim in scalars:
            sim.settle()
        for name in netlist.outputs:
            assert parallel.read_output(name) == [
                sim.read_output(name) for sim in scalars
            ], f"cycle {cycle}, output {name}"
        parallel.tick()
        for sim in scalars:
            sim.tick()


@pytest.mark.parametrize("config", standard_sweep(), ids=lambda c: c.name)
def test_numpy_matches_interpreter_on_sweep(config):
    """Outputs, cycle counts, and architectural flop state agree on
    all 24 cores, with every lane of the bit-slice matrix carrying the
    same stimulus as the scalar reference."""
    netlist = generate_core(config)
    reference = CycleSimulator(netlist, backend="interpreted")
    lanes = 3
    vector = NumpySimulator(netlist, lanes)
    rng = random.Random(config.name)
    for cycle in range(20):
        stimulus = random_stimulus(netlist, rng, cycle)
        for name, value in stimulus.items():
            reference.set_input(name, value)
            vector.set_input(name, value)  # int broadcasts to all lanes
        reference.settle()
        vector.settle()
        for name in netlist.outputs:
            expected = reference.read_output(name)
            assert vector.read_output(name) == [expected] * lanes, (
                f"cycle {cycle}, output {name}"
            )
        reference.tick()
        vector.tick()
    assert vector.cycles == reference.cycles
    # Architectural state: every flop output net agrees in every lane
    # (>64 flops on the wide cores exercises chunked read_nets).
    flop_nets = [
        inst.output for inst in netlist.instances if inst.cell.startswith("DFF")
    ]
    expected = 0
    for i, net in enumerate(flop_nets):
        expected |= (reference._values[net] & 1) << i
    assert vector.read_nets(flop_nets) == [expected] * lanes


def test_numpy_lanes_match_bigint_lanes_across_word_boundary():
    """70 lanes (two uint64 words, partial second word) are bit-exact
    with the bigint lane backend under per-lane stimulus and reset."""
    netlist = generate_core(CoreConfig(datawidth=8))
    lanes = 70
    vector = NumpySimulator(netlist, lanes)
    parallel = BitParallelSimulator(netlist, lanes)
    rng = random.Random(5)
    for cycle in range(15):
        for name, bus in netlist.inputs.items():
            if name == "rst_n":
                values = [
                    0 if (cycle + lane) % 7 == 0 else 1 for lane in range(lanes)
                ]
            else:
                values = [rng.randrange(1 << len(bus)) for _ in range(lanes)]
            vector.set_input(name, values)
            parallel.set_input(name, values)
        vector.settle()
        parallel.settle()
        for name in netlist.outputs:
            assert vector.read_output(name) == parallel.read_output(name), (
                f"cycle {cycle}, output {name}"
            )
        vector.tick()
        parallel.tick()


def test_faulty_compiled_matches_interpreter():
    """Forced-settle fault injection is bit-exact, toggles included."""
    netlist = generate_core(CoreConfig(datawidth=8))
    for fault in enumerate_fault_sites(netlist, stride=131):
        interpreted = FaultySimulator(netlist, fault, backend="interpreted")
        compiled = FaultySimulator(netlist, fault, backend="compiled")
        drive_lockstep(
            netlist, [interpreted, compiled], cycles=12, seed=fault.instance_index
        )
        assert interpreted._values == compiled._values, fault
        assert interpreted.toggle_counts() == compiled.toggle_counts(), fault


def test_bit_parallel_fault_lanes_match_scalar_faults():
    """A lane with a stuck-at fault equals the scalar FaultySimulator."""
    netlist = generate_core(CoreConfig(datawidth=8))
    faults = enumerate_fault_sites(netlist, stride=211)
    lanes = len(faults)
    parallel = BitParallelSimulator(netlist, lanes, faults=faults)
    scalars = [
        FaultySimulator(netlist, fault, backend="compiled") for fault in faults
    ]
    rng = random.Random(17)
    for cycle in range(15):
        stimulus = random_stimulus(netlist, rng, cycle)
        for name, value in stimulus.items():
            parallel.set_input(name, value)
            for sim in scalars:
                sim.set_input(name, value)
        parallel.settle()
        for sim in scalars:
            sim.settle()
        for name in netlist.outputs:
            assert parallel.read_output(name) == [
                sim.read_output(name) for sim in scalars
            ], f"cycle {cycle}, output {name}"
        parallel.tick()
        for sim in scalars:
            sim.tick()


def test_numpy_fault_lanes_match_scalar_faults():
    """A numpy lane with a stuck-at fault equals the scalar
    FaultySimulator, fault for fault."""
    netlist = generate_core(CoreConfig(datawidth=8))
    faults = enumerate_fault_sites(netlist, stride=211)
    lanes = len(faults)
    vector = NumpySimulator(netlist, lanes, faults=faults)
    scalars = [
        FaultySimulator(netlist, fault, backend="compiled") for fault in faults
    ]
    rng = random.Random(17)
    for cycle in range(15):
        stimulus = random_stimulus(netlist, rng, cycle)
        for name, value in stimulus.items():
            vector.set_input(name, value)
            for sim in scalars:
                sim.set_input(name, value)
        vector.settle()
        for sim in scalars:
            sim.settle()
        for name in netlist.outputs:
            assert vector.read_output(name) == [
                sim.read_output(name) for sim in scalars
            ], f"cycle {cycle}, output {name}"
        vector.tick()
        for sim in scalars:
            sim.tick()


class TestLaneModeGuards:
    @pytest.mark.parametrize(
        "simulator", [BitParallelSimulator, NumpySimulator],
        ids=lambda s: s.__name__,
    )
    def test_toggle_counts_raise_in_lane_mode(self, simulator):
        """Lane backends must refuse toggle/power queries loudly
        instead of silently returning nothing."""
        netlist = generate_core(CoreConfig(datawidth=4))
        sim = simulator(netlist, 4)
        sim.reset()
        sim.settle()
        with pytest.raises(UnsupportedInLaneMode, match="lane mode"):
            sim.toggle_counts()


class TestFixedPointBehaviour:
    def feedback_netlist(self):
        netlist = Netlist("fixture")
        data_in = netlist.input_bus("mem_rdata", 4)
        register = netlist.register(data_in.nets, name="r")
        netlist.output_bus("mem_addr", register.nets)
        return netlist

    @pytest.mark.parametrize("backend", ["interpreted", "compiled"])
    def test_step_with_memory_converges(self, backend):
        netlist = self.feedback_netlist()
        sim = CycleSimulator(netlist, backend=backend)
        sim.set_input("rst_n", 1)
        memory = {i: (3 * i) % 16 for i in range(16)}
        memory[0] = 5

        def provide(s):
            s.set_input("mem_rdata", memory[s.read_output("mem_addr")])

        sim.settle()
        sim.step_with_memory(provide)
        assert sim.read_output("mem_addr") == 5
        sim.step_with_memory(provide)
        assert sim.read_output("mem_addr") == 15

    @pytest.mark.parametrize("backend", ["interpreted", "compiled"])
    def test_unstable_feedback_detected(self, backend):
        # Output depends combinationally on the read data, so a memory
        # model that keeps changing its answer can never settle.
        netlist = Netlist("unstable")
        data_in = netlist.input_bus("mem_rdata", 4)
        netlist.output_bus("mem_addr", [netlist.not_(n) for n in data_in.nets])
        sim = CycleSimulator(netlist, backend=backend)
        feed = iter(range(10))

        def unstable(s):
            s.set_input("mem_rdata", next(feed))

        with pytest.raises(SimulationError, match="fixed point"):
            sim.step_with_memory(unstable)


class TestCampaignEquivalence:
    def test_all_backends_agree(self):
        program = assemble(
            ".word x 3\n.word y 5\nADD x, y\nSTORE y, 1\nHALT\n", name="tiny"
        )
        campaigns = {
            backend: run_fault_campaign(program, stride=31, backend=backend)
            for backend in ("interpreted", "compiled", "batched", "numpy")
        }
        reference = campaigns["interpreted"]
        for backend, campaign in campaigns.items():
            assert campaign.total == reference.total, backend
            assert campaign.detected == reference.detected, backend
            assert campaign.undetected_sites == reference.undetected_sites, backend

    def test_batched_partial_final_batch(self):
        """A site count that does not divide the lane width still
        covers every fault exactly once."""
        program = assemble(".word x 1\nSTORE x, 2\nHALT\n", name="simple")
        campaign = run_fault_campaign(program, stride=40, backend="batched", lanes=7)
        assert campaign.total == campaign.detected + len(campaign.undetected_sites)
        assert campaign.total > 7

    def test_numpy_packed_campaign_equals_scalar_runs(self):
        """An N-fault packed numpy campaign detects exactly the same
        faults as N independent scalar compiled runs -- the lane
        packing property, checked fault for fault (lanes=5 forces
        several partial batches)."""
        program = assemble(
            ".word x 3\n.word y 5\nADD x, y\nSTORE y, 1\nHALT\n", name="tiny"
        )
        scalar = run_fault_campaign(program, stride=13, backend="compiled")
        packed = run_fault_campaign(program, stride=13, backend="numpy", lanes=5)
        assert packed.total == scalar.total
        assert packed.detected == scalar.detected
        assert packed.undetected_sites == scalar.undetected_sites


class TestCompiledCosim:
    # One kernel per core datawidth, verified gate-level with the
    # compiled backend (4-bit cores run coalesced 8-bit kernels).
    MATRIX = [("mult", 8, 4), ("mult", 8, 8), ("intAvg", 16, 16), ("mult", 32, 32)]

    @pytest.mark.parametrize("name,kernel_width,core_width", MATRIX)
    def test_kernel_verifies_compiled(self, name, kernel_width, core_width):
        from repro.programs import build_benchmark

        program = build_benchmark(name, kernel_width, core_width)
        mismatches = cosim_verify(program, backend="compiled")
        assert not mismatches, "; ".join(str(m) for m in mismatches[:10])


class TestCaching:
    def test_generate_core_is_memoized(self):
        config = CoreConfig(datawidth=8, num_bars=4)
        assert generate_core(config) is generate_core(CoreConfig(datawidth=8, num_bars=4))

    def test_compiled_code_cached_on_netlist(self):
        netlist = generate_core(CoreConfig(datawidth=8))
        assert compiled_netlist(netlist) is compiled_netlist(netlist)

    def test_numpy_code_cached_on_netlist(self):
        from repro.netlist.nsim import numpy_netlist

        netlist = generate_core(CoreConfig(datawidth=8))
        assert numpy_netlist(netlist) is numpy_netlist(netlist)

    def test_numpy_cache_dropped_on_pickle(self):
        import pickle

        from repro.netlist.nsim import numpy_netlist

        netlist = generate_core(CoreConfig(datawidth=4))
        numpy_netlist(netlist)
        clone = pickle.loads(pickle.dumps(netlist))
        assert not hasattr(clone, "_numpy_sim")
        # And the clone recompiles to working kernels.
        sim = NumpySimulator(clone, 2)
        sim.reset()
        sim.settle()

    def test_unknown_backend_rejected(self):
        netlist = generate_core(CoreConfig(datawidth=8))
        with pytest.raises(SimulationError, match="backend"):
            CycleSimulator(netlist, backend="jit")
