"""Toolchain round-trip tests: disassemble -> reassemble -> identical
binaries, over every generated benchmark kernel."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble_program
from repro.isa.encoding import encode_program
from repro.programs import BENCHMARKS, build_benchmark, runnable_configurations


def reassemble(program):
    """Feed the disassembly listing back through the assembler."""
    lines = []
    for line in disassemble_program(program).splitlines():
        if line.startswith(";"):
            continue
        if ":" in line and line.lstrip()[0].isdigit():
            # Strip the "  12:  " address prefix; keep directives.
            line = line.split(":", 1)[1]
        lines.append(line.strip())
    return assemble("\n".join(lines), name=program.name)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_disassembly_reassembles_identically(name):
    kernel_width, core_width = runnable_configurations(name)[0]
    program = build_benchmark(name, kernel_width, core_width)
    rebuilt = reassemble(program)
    assert rebuilt.datawidth == program.datawidth
    assert rebuilt.num_bars == program.num_bars
    assert encode_program(rebuilt.instructions, program.num_bars) == \
        encode_program(program.instructions, program.num_bars)


def test_roundtrip_preserves_every_mnemonic():
    source = (
        ".width 8\n.bars 2\n.word x 1\n.word y 2\n.word p 0\n"
        "start:\n"
        "ADD x, y\nADC x, y\nSUB x, y\nCMP x, y\nSBB x, y\n"
        "AND x, y\nTEST x, y\nOR x, y\nXOR x, y\nNOT x, y\n"
        "RL x, x\nRLC x, x\nRR x, x\nRRC x, x\nRRA x, x\n"
        "STORE x, 42\nSETBAR 1, p\n"
        "BR start, SZCV\nBRN 18, 0\n"
    )
    program = assemble(source, name="all_ops")
    rebuilt = reassemble(program)
    assert encode_program(rebuilt.instructions) == encode_program(program.instructions)
