"""Round-trip and format tests for the 24-bit TP-ISA encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.encoding import (
    INSTRUCTION_BITS,
    decode,
    decode_operand,
    encode,
    encode_operand,
    encode_program,
)
from repro.isa.spec import Instruction, MemOperand, Mnemonic, OP_TABLE, UNARY_OPS


def m_type_instructions(num_bars):
    offset_bits = 8 - (num_bars - 1).bit_length()
    mnemonics = [m for m, s in OP_TABLE.items() if s.fmt == "M"]
    operand = st.builds(
        MemOperand,
        offset=st.integers(0, (1 << offset_bits) - 1),
        bar=st.integers(0, num_bars - 1),
    )
    return st.builds(
        Instruction,
        mnemonic=st.sampled_from(mnemonics),
        dst=operand,
        src=operand,
    )


class TestOperandField:
    def test_two_bar_split(self):
        field = encode_operand(MemOperand(offset=5, bar=1), num_bars=2)
        assert field == 0x80 | 5
        assert decode_operand(field, num_bars=2) == MemOperand(offset=5, bar=1)

    def test_four_bar_split(self):
        field = encode_operand(MemOperand(offset=5, bar=3), num_bars=4)
        assert field == (3 << 6) | 5
        assert decode_operand(field, num_bars=4) == MemOperand(offset=5, bar=3)

    def test_single_bar_uses_whole_byte(self):
        field = encode_operand(MemOperand(offset=200), num_bars=1)
        assert field == 200

    def test_offset_overflow_rejected(self):
        with pytest.raises(IsaError):
            encode_operand(MemOperand(offset=128), num_bars=2)

    def test_bar_overflow_rejected(self):
        with pytest.raises(IsaError):
            encode_operand(MemOperand(offset=0, bar=2), num_bars=2)

    def test_non_power_of_two_bars_rejected(self):
        with pytest.raises(IsaError):
            encode_operand(MemOperand(offset=0), num_bars=3)


class TestRoundTrip:
    @settings(max_examples=150)
    @given(instruction=m_type_instructions(2))
    def test_m_type_round_trip_2bar(self, instruction):
        word = encode(instruction, num_bars=2)
        assert 0 <= word < (1 << INSTRUCTION_BITS)
        assert decode(word, num_bars=2) == instruction

    @settings(max_examples=150)
    @given(instruction=m_type_instructions(4))
    def test_m_type_round_trip_4bar(self, instruction):
        word = encode(instruction, num_bars=4)
        assert decode(word, num_bars=4) == instruction

    @settings(max_examples=60)
    @given(offset=st.integers(0, 127), imm=st.integers(0, 255))
    def test_store_round_trip(self, offset, imm):
        instruction = Instruction(Mnemonic.STORE, dst=MemOperand(offset), imm=imm)
        assert decode(encode(instruction)) == instruction

    @settings(max_examples=60)
    @given(bar=st.integers(1, 3), pointer=st.integers(0, 255))
    def test_setbar_round_trip(self, bar, pointer):
        instruction = Instruction(
            Mnemonic.SETBAR, bar_index=bar, src=MemOperand(pointer)
        )
        assert decode(encode(instruction, num_bars=4), num_bars=4) == instruction

    @settings(max_examples=60)
    @given(
        target=st.integers(0, 255),
        mask=st.integers(0, 15),
        mnemonic=st.sampled_from([Mnemonic.BR, Mnemonic.BRN]),
    )
    def test_branch_round_trip(self, target, mask, mnemonic):
        instruction = Instruction(mnemonic, target=target, mask=mask)
        assert decode(encode(instruction)) == instruction


def _corrupt(instruction, **fields):
    """A copy of ``instruction`` with validation-bypassing raw fields.

    ``Instruction.__post_init__`` already rejects most out-of-range
    values at construction; encode() must still hold the line against
    images built by other means (deserialization, field poking).
    """
    for name, value in fields.items():
        object.__setattr__(instruction, name, value)
    return instruction


class TestEncodeRangeChecks:
    def test_setbar_pointer_overflow_rejected(self):
        # The one hole Instruction itself never closed: a SETBAR
        # pointer >= 256 used to bleed into the control-bit byte.
        instruction = Instruction(
            Mnemonic.SETBAR, bar_index=1, src=MemOperand(offset=300)
        )
        with pytest.raises(IsaError):
            encode(instruction)

    def test_store_immediate_overflow_rejected(self):
        instruction = _corrupt(
            Instruction(Mnemonic.STORE, dst=MemOperand(0), imm=1), imm=300
        )
        with pytest.raises(IsaError):
            encode(instruction)

    def test_branch_target_overflow_rejected(self):
        instruction = _corrupt(
            Instruction(Mnemonic.BRN, target=0, mask=0), target=256
        )
        with pytest.raises(IsaError):
            encode(instruction)

    def test_branch_mask_overflow_rejected(self):
        instruction = _corrupt(
            Instruction(Mnemonic.BR, target=0, mask=1), mask=0x1F
        )
        with pytest.raises(IsaError):
            encode(instruction)

    def test_negative_immediate_rejected(self):
        instruction = _corrupt(
            Instruction(Mnemonic.STORE, dst=MemOperand(0), imm=1), imm=-1
        )
        with pytest.raises(IsaError):
            encode(instruction)

    def test_in_range_setbar_pointer_still_encodes(self):
        instruction = Instruction(
            Mnemonic.SETBAR, bar_index=1, src=MemOperand(offset=255)
        )
        assert decode(encode(instruction)) == instruction


def valid_instructions(num_bars):
    """Strategy over every instruction format, valid for ``num_bars``."""
    offset_bits = 8 - (num_bars - 1).bit_length()
    operand = st.builds(
        MemOperand,
        offset=st.integers(0, (1 << offset_bits) - 1),
        bar=st.integers(0, num_bars - 1),
    )
    m_type = st.builds(
        Instruction,
        mnemonic=st.sampled_from([m for m, s in OP_TABLE.items() if s.fmt == "M"]),
        dst=operand,
        src=operand,
    )
    store = st.builds(
        Instruction,
        mnemonic=st.just(Mnemonic.STORE),
        dst=operand,
        imm=st.integers(0, 255),
    )
    setbar = st.builds(
        Instruction,
        mnemonic=st.just(Mnemonic.SETBAR),
        bar_index=st.integers(1, 255),
        src=st.builds(MemOperand, offset=st.integers(0, 255)),
    )
    branch = st.builds(
        Instruction,
        mnemonic=st.sampled_from([Mnemonic.BR, Mnemonic.BRN]),
        target=st.integers(0, 255),
        mask=st.integers(0, 15),
    )
    return st.one_of(m_type, store, setbar, branch)


class TestAllFormatsRoundTrip:
    @settings(max_examples=250)
    @given(instruction=valid_instructions(2))
    def test_round_trip_2bar(self, instruction):
        word = encode(instruction, num_bars=2)
        assert 0 <= word < (1 << INSTRUCTION_BITS)
        assert decode(word, num_bars=2) == instruction

    @settings(max_examples=250)
    @given(instruction=valid_instructions(4))
    def test_round_trip_4bar(self, instruction):
        word = encode(instruction, num_bars=4)
        assert 0 <= word < (1 << INSTRUCTION_BITS)
        assert decode(word, num_bars=4) == instruction


class TestFormat:
    def test_opcode_in_top_nibble(self):
        add = Instruction(Mnemonic.ADD, dst=MemOperand(0), src=MemOperand(0))
        assert (encode(add) >> 20) == OP_TABLE[Mnemonic.ADD].opcode

    def test_add_family_shares_opcode(self):
        specs = [OP_TABLE[m] for m in (Mnemonic.ADD, Mnemonic.ADC, Mnemonic.SUB, Mnemonic.CMP, Mnemonic.SBB)]
        assert len({s.opcode for s in specs}) == 1
        assert len({s.control_bits for s in specs}) == 5

    def test_undefined_word_rejected(self):
        with pytest.raises(IsaError):
            decode(0xF00000)  # opcode 15 undefined

    def test_out_of_range_word_rejected(self):
        with pytest.raises(IsaError):
            decode(1 << 24)

    def test_encode_program_produces_24bit_words(self):
        instructions = [
            Instruction(Mnemonic.STORE, dst=MemOperand(0), imm=1),
            Instruction(Mnemonic.ADD, dst=MemOperand(0), src=MemOperand(0)),
            Instruction(Mnemonic.BRN, target=2, mask=0),
        ]
        words = encode_program(instructions)
        assert len(words) == 3
        assert all(0 <= w < (1 << 24) for w in words)
