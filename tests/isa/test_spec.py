"""Tests for the TP-ISA specification tables."""

import pytest

from repro.errors import IsaError
from repro.isa.spec import (
    CARRY_CONSUMERS,
    Flag,
    Instruction,
    MemOperand,
    Mnemonic,
    OP_TABLE,
    UNARY_OPS,
)


class TestOpTable:
    def test_all_nineteen_instructions_present(self):
        assert len(OP_TABLE) == 19
        assert set(OP_TABLE) == set(Mnemonic)

    def test_opcode_control_pairs_unique(self):
        pairs = [(s.opcode, s.control_bits) for s in OP_TABLE.values()]
        assert len(pairs) == len(set(pairs))

    def test_writeback_bit_matches_memory_write(self):
        for mnemonic, spec in OP_TABLE.items():
            if spec.fmt == "M" or mnemonic is Mnemonic.STORE:
                assert spec.writes == bool(spec.w)

    def test_compare_and_test_do_not_write(self):
        assert not OP_TABLE[Mnemonic.CMP].writes
        assert not OP_TABLE[Mnemonic.TEST].writes

    def test_branches_flagged(self):
        assert OP_TABLE[Mnemonic.BR].b == 1
        assert OP_TABLE[Mnemonic.BRN].b == 1
        assert all(
            spec.b == 0
            for m, spec in OP_TABLE.items()
            if m not in (Mnemonic.BR, Mnemonic.BRN)
        )

    def test_carry_consumers_have_c_bit(self):
        for mnemonic in CARRY_CONSUMERS:
            assert OP_TABLE[mnemonic].c == 1

    def test_subset_relation_to_light8080_msp430(self):
        """Section 5.1: arithmetic/logic ops are a strict subset of the
        baselines' -- i.e. nothing exotic like popcount or barrel
        shifts appears in the table."""
        names = {m.value for m in Mnemonic}
        assert "POPCNT" not in names
        assert "SHL" not in names and "SHR" not in names


class TestInstructionValidation:
    def test_m_type_requires_both_operands(self):
        with pytest.raises(IsaError):
            Instruction(Mnemonic.ADD, dst=MemOperand(0))

    def test_store_requires_immediate(self):
        with pytest.raises(IsaError):
            Instruction(Mnemonic.STORE, dst=MemOperand(0))
        with pytest.raises(IsaError):
            Instruction(Mnemonic.STORE, dst=MemOperand(0), imm=300)

    def test_setbar_zero_rejected(self):
        """BAR[0] is hardwired to zero (Section 5.2)."""
        with pytest.raises(IsaError, match="hardwired"):
            Instruction(Mnemonic.SETBAR, bar_index=0, src=MemOperand(5))

    def test_setbar_pointer_must_be_absolute(self):
        with pytest.raises(IsaError, match="absolute"):
            Instruction(Mnemonic.SETBAR, bar_index=1, src=MemOperand(5, bar=1))

    def test_setbar_reads_its_pointer(self):
        setbar = Instruction(Mnemonic.SETBAR, bar_index=1, src=MemOperand(5))
        assert setbar.memory_reads() == [MemOperand(5)]
        assert setbar.memory_write() is None

    def test_branch_ranges(self):
        with pytest.raises(IsaError):
            Instruction(Mnemonic.BR, target=256, mask=0)
        with pytest.raises(IsaError):
            Instruction(Mnemonic.BR, target=0, mask=16)

    def test_negative_operand_rejected(self):
        with pytest.raises(IsaError):
            MemOperand(-1)

    def test_memory_reads_binary_vs_unary(self):
        binary = Instruction(Mnemonic.ADD, dst=MemOperand(1), src=MemOperand(2))
        unary = Instruction(Mnemonic.NOT, dst=MemOperand(1), src=MemOperand(2))
        assert len(binary.memory_reads()) == 2
        assert len(unary.memory_reads()) == 1
        assert unary.memory_reads()[0].offset == 2

    def test_memory_write_only_when_w(self):
        compare = Instruction(Mnemonic.CMP, dst=MemOperand(1), src=MemOperand(2))
        add = Instruction(Mnemonic.ADD, dst=MemOperand(1), src=MemOperand(2))
        assert compare.memory_write() is None
        assert add.memory_write().offset == 1


def test_flag_positions():
    assert int(Flag.V) == 1
    assert int(Flag.C) == 2
    assert int(Flag.Z) == 4
    assert int(Flag.S) == 8


def test_unary_ops_are_rotates_and_not():
    assert UNARY_OPS == {
        Mnemonic.NOT,
        Mnemonic.RL,
        Mnemonic.RLC,
        Mnemonic.RR,
        Mnemonic.RRC,
        Mnemonic.RRA,
    }
