"""Tests for the two-pass assembler and disassembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.spec import Flag, MemOperand, Mnemonic


class TestDirectives:
    def test_width_and_bars(self):
        program = assemble(".width 16\n.bars 4\nHALT\n")
        assert program.datawidth == 16
        assert program.num_bars == 4

    def test_word_allocation_sequential(self):
        program = assemble(".word a 3\n.word b\n.word c 9\nHALT\n")
        assert program.symbols == {"a": 0, "b": 1, "c": 2}
        assert program.data == {0: 3, 2: 9}

    def test_array_allocation_with_init(self):
        program = assemble(".array buf 4 10 20\n.word after\nHALT\n")
        assert program.symbols == {"buf": 0, "after": 4}
        assert program.data == {0: 10, 1: 20}

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblerError, match="unknown directive"):
            assemble(".bogus 1\n")

    def test_duplicate_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate data symbol"):
            assemble(".word a\n.word a\n")


class TestInstructions:
    def test_basic_memory_memory(self):
        program = assemble(".word x\n.word y\nADD x, y\n")
        [add] = program.instructions
        assert add.mnemonic is Mnemonic.ADD
        assert add.dst == MemOperand(0)
        assert add.src == MemOperand(1)

    def test_bar_relative_operand(self):
        program = assemble("ADD b1:3, b1:4\n")
        [add] = program.instructions
        assert add.dst == MemOperand(offset=3, bar=1)

    def test_symbol_plus_offset(self):
        program = assemble(".array buf 8\nADD buf+2, buf+3\n")
        [add] = program.instructions
        assert add.dst.offset == 2

    def test_store_and_setbar(self):
        program = assemble(".word x\n.word ptr\nSTORE x, 0x1F\nSETBAR 1, ptr\n")
        store, setbar = program.instructions
        assert store.imm == 0x1F
        assert setbar.bar_index == 1
        assert setbar.src == MemOperand(1)  # ptr's address

    def test_branch_with_flag_letters(self):
        source = "loop:\nBR loop, CZ\nBRN loop, 0\n"
        program = assemble(source)
        br, brn = program.instructions
        assert br.target == 0
        assert br.mask == int(Flag.C | Flag.Z)
        assert brn.mask == 0

    def test_forward_label(self):
        program = assemble("BRN done, 0\nHALT\ndone:\nHALT\n")
        assert program.instructions[0].target == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("FROB x, y\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects 2 operands"):
            assemble(".word x\nADD x\n")

    def test_line_numbers_in_errors(self):
        with pytest.raises(AssemblerError) as excinfo:
            assemble("; comment\n\nFROB x, y\n")
        assert excinfo.value.line == 3


class TestPseudoInstructions:
    def test_halt_is_self_branch(self):
        program = assemble("HALT\n")
        [halt] = program.instructions
        assert halt.mnemonic is Mnemonic.BRN
        assert halt.target == 0
        assert halt.mask == 0

    def test_mov_expands_to_xor_or(self):
        program = assemble(".word a\n.word b\nMOV a, b\n")
        xor, or_ = program.instructions
        assert xor.mnemonic is Mnemonic.XOR
        assert xor.dst == xor.src == MemOperand(0)
        assert or_.mnemonic is Mnemonic.OR
        assert or_.src == MemOperand(1)

    def test_labels_account_for_pseudo_sizes(self):
        source = ".word a\n.word b\nMOV a, b\ntarget:\nHALT\nBRN target, 0\n"
        program = assemble(source)
        assert program.instructions[3].target == 2


class TestDisassembler:
    def test_round_trip_through_text(self):
        source = (
            ".width 8\n.bars 2\n.word x 1\n.word y 2\n"
            "loop:\nADD x, y\nADC b1:3, y\nCMP x, y\nBR loop, Z\n"
            "STORE x, 200\nSETBAR 1, y\nRRA x, x\nHALT\n"
        )
        program = assemble(source, name="rt")
        text = disassemble_program(program)
        for expected in ("ADD 0, 1", "ADC b1:3, 1", "BR 0, Z", "STORE 0, 200",
                         "SETBAR 1, 1", "RRA 0, 0", "BRN 7, 0"):
            assert expected in text

    def test_mask_letters(self):
        program = assemble("x:\nBR x, SZCV\n")
        assert disassemble(program.instructions[0]) == "BR 0, SZCV"
