"""Tests for the program-specific ISA static analysis (Section 7)."""

from repro.isa.analysis import analyze_program, flags_consumed
from repro.isa.assembler import assemble
from repro.isa.spec import Flag


class TestPcWidth:
    def test_small_program_small_pc(self):
        program = assemble(".word x\nSTORE x, 1\nHALT\n")
        assert analyze_program(program).pc_bits == 1

    def test_sixteen_instructions_need_four_bits(self):
        body = "\n".join(["STORE x, 1"] * 15) + "\nHALT\n"
        program = assemble(".word x\n" + body)
        assert analyze_program(program).pc_bits == 4

    def test_seventeen_instructions_need_five_bits(self):
        body = "\n".join(["STORE x, 1"] * 16) + "\nHALT\n"
        program = assemble(".word x\n" + body)
        assert analyze_program(program).pc_bits == 5


class TestBarInventory:
    def test_no_bars_when_only_absolute_addressing(self):
        program = assemble(".word x\n.word y\nADD x, y\nHALT\n")
        analysis = analyze_program(program)
        assert analysis.num_bars == 0
        assert analysis.bar_bits is None

    def test_bars_counted_when_used(self):
        program = assemble(".array buf 16\nSETBAR 1, 8\nADD b1:0, b1:1\nHALT\n")
        analysis = analyze_program(program)
        assert analysis.num_bars == 1
        assert analysis.bar_bits is not None

    def test_bar_bits_track_data_footprint(self):
        program = assemble("SETBAR 1, 0\nADD b1:0, b1:1\nHALT\n")
        small = analyze_program(program, data_words=4)
        large = analyze_program(program, data_words=200)
        assert small.bar_bits < large.bar_bits


class TestFlagInventory:
    def test_branch_masks_counted(self):
        program = assemble(".word x\nloop:\nCMP x, x\nBR loop, Z\nHALT\n")
        assert flags_consumed(program) == frozenset({Flag.Z})

    def test_carry_chain_counts_carry(self):
        program = assemble(".word x\n.word y\nADD x, y\nADC x, y\nHALT\n")
        assert Flag.C in flags_consumed(program)

    def test_setting_flags_alone_does_not_count(self):
        """ADD sets all four flags but consumes none."""
        program = assemble(".word x\n.word y\nADD x, y\n")
        assert flags_consumed(program) == frozenset()

    def test_straightline_no_flags(self):
        program = assemble(".word x\nSTORE x, 1\n")
        analysis = analyze_program(program)
        assert analysis.num_flags == 0


class TestInstructionShrink:
    def test_instruction_never_exceeds_24_bits(self):
        source = (
            ".width 8\n.bars 2\n.array buf 100\n"
            "SETBAR 1, 99\nADD b1:60, b1:61\nSTORE buf+90, 255\nHALT\n"
        )
        analysis = analyze_program(assemble(source))
        assert analysis.instruction_bits <= 24

    def test_tiny_program_shrinks_well_below_24(self):
        program = assemble(".word x\n.word y\nADD x, y\nHALT\n")
        analysis = analyze_program(program)
        assert analysis.instruction_bits < 16

    def test_larger_addresses_cost_operand_bits(self):
        small = analyze_program(assemble(".word x\n.word y\nADD x, y\nHALT\n"))
        wide_source = ".array buf 120\nADD buf+100, buf+110\nHALT\n"
        wide = analyze_program(assemble(wide_source))
        assert wide.operand1_bits > small.operand1_bits

    def test_halt_only_program(self):
        analysis = analyze_program(assemble("HALT\n"))
        assert analysis.pc_bits == 0
        assert analysis.instruction_bits >= 8  # opcode + control survive
