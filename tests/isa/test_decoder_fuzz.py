"""Decoder robustness: arbitrary 24-bit words either decode to a valid
instruction that re-encodes to the same word, or raise IsaError --
never crash, never round-trip lossily."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.encoding import decode, encode


@settings(max_examples=300)
@given(word=st.integers(0, (1 << 24) - 1), bars=st.sampled_from([1, 2, 4]))
def test_decode_total_function(word, bars):
    try:
        instruction = decode(word, num_bars=bars)
    except IsaError:
        return  # undefined encodings must be rejected, not guessed
    # Every accepted word round-trips exactly: decode rejects branch
    # words with junk above the 4-bit mask instead of masking it off.
    assert encode(instruction, num_bars=bars) == word


@settings(max_examples=100)
@given(
    target=st.integers(0, 255),
    mask=st.integers(0, 15),
    junk=st.integers(1, 15),
)
def test_branch_junk_mask_bits_rejected(target, mask, junk):
    word = (9 << 20) | (1 << 16) | (target << 8) | mask  # BR
    with pytest.raises(IsaError):
        decode(word | (junk << 4))


@settings(max_examples=100)
@given(word=st.integers(0, (1 << 24) - 1))
def test_undefined_opcodes_rejected(word):
    opcode = (word >> 20) & 0xF
    if opcode >= 10:
        with pytest.raises(IsaError):
            decode(word)
