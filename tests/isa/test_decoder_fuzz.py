"""Decoder robustness: arbitrary 24-bit words either decode to a valid
instruction that re-encodes to the same word, or raise IsaError --
never crash, never round-trip lossily."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.encoding import decode, encode


@settings(max_examples=300)
@given(word=st.integers(0, (1 << 24) - 1), bars=st.sampled_from([1, 2, 4]))
def test_decode_total_function(word, bars):
    try:
        instruction = decode(word, num_bars=bars)
    except IsaError:
        return  # undefined encodings must be rejected, not guessed
    # Branch words may carry junk in the unused high mask bits, which
    # the decoder masks off; everything else round-trips exactly.
    reencoded = encode(instruction, num_bars=bars)
    if instruction.is_branch:
        assert reencoded & ~0xF0 == word & ~0xF0
    else:
        assert reencoded == word


@settings(max_examples=100)
@given(word=st.integers(0, (1 << 24) - 1))
def test_undefined_opcodes_rejected(word):
    opcode = (word >> 20) & 0xF
    if opcode >= 10:
        with pytest.raises(IsaError):
            decode(word)
