"""Tests for the release-artifact exporter (`python -m repro export`)."""

from pathlib import Path

from repro.__main__ import export_artifacts, main
from repro.isa.hexfile import load_hex
from repro.pdk import load_liberty


def test_export_writes_expected_tree(tmp_path):
    files = export_artifacts(str(tmp_path))
    relative = {str(Path(f).relative_to(tmp_path)) for f in files}
    assert "lib/EGFET.lib" in relative
    assert "lib/CNT-TFT.lib" in relative
    assert "rtl/p1_8_2.v" in relative
    assert "rtl/p3_32_4.v" in relative
    assert "rom/mult8.hex" in relative
    assert "rom/dotmap_stats.txt" in relative
    # 2 libs + 24 cores + 7 hex + 1 stats
    assert len(files) == 34


def test_exported_liberty_loads_back(tmp_path):
    export_artifacts(str(tmp_path))
    library = load_liberty((tmp_path / "lib" / "EGFET.lib").read_text())
    assert library.name == "EGFET"
    assert "DFFX1" in library


def test_exported_hex_loads_back(tmp_path):
    export_artifacts(str(tmp_path))
    words = load_hex((tmp_path / "rom" / "dTree8.hex").read_text())
    assert len(words) == 256  # dTree fills the whole ROM


def test_exported_verilog_is_structural(tmp_path):
    export_artifacts(str(tmp_path))
    text = (tmp_path / "rtl" / "p1_8_2.v").read_text()
    assert text.startswith("module p1_8_2")
    assert "DFFNRX1" in text


def test_cli_export(tmp_path, capsys):
    assert main(["export", str(tmp_path / "out")]) == 0
    out = capsys.readouterr().out
    assert "34 artifacts" in out
    assert (tmp_path / "out" / "lib" / "EGFET.lib").exists()
