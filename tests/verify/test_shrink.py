"""Shrinker: minimal deterministic repros, target remapping, emission."""

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.generator import generate_core
from repro.isa.program import Program
from repro.isa.spec import Instruction, MemOperand, Mnemonic
from repro.verify.differential import fault_site_for_output
from repro.verify.generator import random_program
from repro.verify.shrink import (
    _remap_subset,
    emit_pytest_case,
    shrink,
)

CONFIG = CoreConfig(datawidth=8, pipeline_stages=1, num_bars=2)


@pytest.fixture(scope="module")
def wdata_fault():
    return fault_site_for_output(generate_core(CONFIG), "wdata", 0)


class TestShrink:
    def test_fault_repro_shrinks_small_and_deterministic(self, wdata_fault):
        # The satellite acceptance bar: a seeded divergence shrinks to
        # at most 5 instructions, identically on every run.
        program = random_program(1, 8, 2)
        first = shrink(program, CONFIG, executors=("compiled",), fault=wdata_fault)
        second = shrink(program, CONFIG, executors=("compiled",), fault=wdata_fault)
        assert first.size <= 5
        assert first.size < first.original_size
        assert first.program.instructions == second.program.instructions
        assert first.program.data == second.program.data

    def test_non_failing_program_is_rejected(self):
        program = random_program(0, 8, 2)
        with pytest.raises(ValueError):
            shrink(program, CONFIG, executors=("compiled",))

    def test_shrunk_program_still_fails(self, wdata_fault):
        from repro.verify.differential import differential_check

        result = shrink(
            random_program(2, 8, 2), CONFIG,
            executors=("compiled",), fault=wdata_fault,
        )
        assert differential_check(
            result.program, CONFIG, executors=("compiled",), fault=wdata_fault
        )
        # ... and agrees once the "defect" is gone.
        assert not differential_check(
            result.program, CONFIG, executors=("compiled",)
        )


class TestTargetRemap:
    def program(self, instructions):
        return Program(
            name="t", instructions=instructions, datawidth=8, num_bars=2,
            data={0: 1, 1: 2},
        )

    def test_branch_targets_follow_deletions(self):
        program = self.program([
            Instruction(Mnemonic.BR, target=3, mask=0xF),      # 0
            Instruction(Mnemonic.ADD, dst=MemOperand(0), src=MemOperand(1)),
            Instruction(Mnemonic.ADD, dst=MemOperand(0), src=MemOperand(1)),
            Instruction(Mnemonic.STORE, dst=MemOperand(0), imm=9),  # 3
        ])
        reduced = _remap_subset(program, [0, 3])
        assert reduced.instructions[0].target == 1

    def test_one_past_end_halt_target_survives(self):
        program = self.program([
            Instruction(Mnemonic.ADD, dst=MemOperand(0), src=MemOperand(1)),
            Instruction(Mnemonic.BRN, target=2, mask=0),
        ])
        reduced = _remap_subset(program, [1])
        assert reduced.instructions[0].target == 1


class TestEmission:
    def test_emitted_case_is_valid_python_and_rebuilds(self, wdata_fault):
        result = shrink(
            random_program(1, 8, 2), CONFIG,
            executors=("compiled",), fault=wdata_fault,
        )
        source = emit_pytest_case(
            result.program, CONFIG, seed=1, note="stuck-at-1 wdata[0]"
        )
        namespace = {}
        exec(compile(source, "<repro>", "exec"), namespace)
        rebuilt = namespace["build_program"]()
        assert rebuilt.instructions == result.program.instructions
        assert rebuilt.data == result.program.data
        assert namespace["CONFIG"] == CONFIG
        # The emitted test itself passes on the healthy netlist.
        namespace["test_differential_agreement"]()
