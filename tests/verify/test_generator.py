"""Generator invariants: well-formed, halting, confined, deterministic."""

import pytest

from repro.errors import ProgramError
from repro.isa.encoding import encode
from repro.isa.spec import Mnemonic
from repro.sim.machine import Machine
from repro.verify.generator import random_program

GRID = [(4, 2), (8, 2), (16, 4)]
SEEDS = range(40)
MEM_WORDS = 12


def reference_run(program):
    machine = Machine(program, mem_size=64, num_bars=program.num_bars)
    return machine, machine.run(max_steps=100_000)


class TestInvariants:
    @pytest.mark.parametrize("datawidth,num_bars", GRID)
    def test_halts_and_stays_confined(self, datawidth, num_bars):
        for seed in SEEDS:
            program = random_program(
                seed, datawidth=datawidth, num_bars=num_bars,
                mem_words=MEM_WORDS,
            )
            machine, result = reference_run(program)
            assert result.halted, f"seed {seed} did not halt"
            # Scratch sits directly above the data segment; nothing may
            # reach beyond it (that is what makes the same program safe
            # on a program-specific core with exactly-sized RAM).
            top = MEM_WORDS + 4
            assert all(
                address < top for address in machine.stats.touched_addresses
            ), f"seed {seed} escaped the data segment"

    def test_deterministic(self):
        for seed in range(10):
            a = random_program(seed, datawidth=8, num_bars=2)
            b = random_program(seed, datawidth=8, num_bars=2)
            assert a.instructions == b.instructions
            assert a.data == b.data

    def test_grid_points_get_distinct_streams(self):
        a = random_program(3, datawidth=8, num_bars=2)
        b = random_program(3, datawidth=8, num_bars=4)
        assert a.instructions != b.instructions

    def test_every_instruction_encodes(self):
        for seed in range(20):
            program = random_program(seed, datawidth=8, num_bars=4)
            for instruction in program.instructions:
                word = encode(instruction, num_bars=4)
                assert 0 <= word < (1 << 24)

    def test_setbar_always_paired_with_pointer_store(self):
        for seed in range(30):
            program = random_program(seed, datawidth=8, num_bars=4)
            for index, instruction in enumerate(program.instructions):
                if instruction.mnemonic is Mnemonic.SETBAR:
                    previous = program.instructions[index - 1]
                    assert previous.mnemonic is Mnemonic.STORE
                    assert previous.dst == instruction.src

    def test_rejects_unsatisfiable_parameters(self):
        with pytest.raises(ProgramError):
            random_program(0, mem_words=2)
        with pytest.raises(ProgramError):
            random_program(0, max_instructions=2)
        with pytest.raises(ProgramError):
            random_program(0, num_bars=4, mem_words=70)  # no scratch room
