"""Differential executor: agreement on clean cores, detection on
faulty ones, and the program-specific BAR renumbering."""

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.generator import generate_core
from repro.isa.program import Program
from repro.isa.spec import Instruction, MemOperand, Mnemonic
from repro.verify.differential import (
    bitparallel_verify,
    differential_check,
    fault_site_for_output,
    ps_isa_variant,
    remap_bars,
)
from repro.verify.generator import random_program


class TestAgreement:
    @pytest.mark.parametrize("config", [
        CoreConfig(datawidth=8, pipeline_stages=1, num_bars=2),
        CoreConfig(datawidth=4, pipeline_stages=2, num_bars=4),
    ], ids=lambda c: c.name)
    def test_all_executors_agree(self, config):
        for seed in range(3):
            program = random_program(
                seed, datawidth=config.datawidth, num_bars=config.num_bars
            )
            divergences = differential_check(program, config, seed=seed)
            assert not divergences, "; ".join(str(d) for d in divergences)

    def test_bitparallel_batches_lanes(self):
        config = CoreConfig(datawidth=8, pipeline_stages=1, num_bars=2)
        programs = [random_program(seed, 8, 2) for seed in range(6)]
        reports = bitparallel_verify(programs, config)
        assert len(reports) == len(programs)
        assert all(not lane for lane in reports)


class TestFaultDetection:
    def test_injected_fault_diverges(self):
        config = CoreConfig(datawidth=8, pipeline_stages=1, num_bars=2)
        fault = fault_site_for_output(generate_core(config), "wdata", 0)
        caught = sum(
            1 for seed in range(4)
            if differential_check(
                random_program(seed, 8, 2), config,
                executors=("compiled",), fault=fault, seed=seed,
            )
        )
        assert caught == 4

    def test_fault_site_rejects_unknown_bus(self):
        from repro.errors import ReproError

        netlist = generate_core(CoreConfig(datawidth=4))
        with pytest.raises(ReproError):
            fault_site_for_output(netlist, "no_such_bus")


class TestBarRemap:
    def sparse_bar_program(self):
        """Touches only BAR 2 of 4 -- the shrunken core keeps one BAR."""
        return Program(
            name="sparse_bars",
            instructions=[
                Instruction(Mnemonic.STORE, dst=MemOperand(0), imm=2),
                Instruction(Mnemonic.SETBAR, bar_index=2, src=MemOperand(0)),
                Instruction(
                    Mnemonic.ADD,
                    dst=MemOperand(offset=1, bar=2),
                    src=MemOperand(offset=1, bar=2),
                ),
            ],
            datawidth=8,
            num_bars=4,
            data={0: 0, 1: 7, 2: 0, 3: 9},
        )

    def test_remap_renumbers_densely(self):
        remapped = remap_bars(self.sparse_bar_program())
        setbar = remapped.instructions[1]
        assert setbar.bar_index == 1
        assert remapped.instructions[2].dst.bar == 1
        assert remapped.num_bars == 2

    def test_remap_is_identity_when_dense(self):
        program = random_program(0, datawidth=8, num_bars=2)
        assert remap_bars(program) is program

    def test_sparse_bar_program_verifies_on_ps_core(self):
        base = CoreConfig(datawidth=8, pipeline_stages=1, num_bars=4)
        program = self.sparse_bar_program()
        divergences = differential_check(
            program, base, executors=("ps-isa",)
        )
        assert not divergences, "; ".join(str(d) for d in divergences)

    def test_off_end_halt_gets_representable_pc(self):
        # 4 instructions halt at PC 4; a ceil(log2 4) = 2-bit PC would
        # wrap to 0 and re-run the program forever.
        program = Program(
            name="off_end",
            instructions=[
                Instruction(Mnemonic.STORE, dst=MemOperand(0), imm=1),
                Instruction(Mnemonic.ADD, dst=MemOperand(0), src=MemOperand(1)),
                Instruction(Mnemonic.ADD, dst=MemOperand(0), src=MemOperand(1)),
                Instruction(Mnemonic.ADD, dst=MemOperand(0), src=MemOperand(1)),
            ],
            datawidth=8,
            num_bars=2,
            data={0: 0, 1: 5},
        )
        base = CoreConfig(datawidth=8, pipeline_stages=1, num_bars=2)
        _, config = ps_isa_variant(program, base)
        assert config.pc_bits >= 3
        divergences = differential_check(program, base, executors=("ps-isa",))
        assert not divergences, "; ".join(str(d) for d in divergences)
