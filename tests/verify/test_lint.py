"""Lint rules: every generated core is clean; every defect class fires."""

import pytest

from repro.coregen.config import CoreConfig
from repro.netlist.core import CONST1, Instance, Netlist
from repro.verify.lint import lint_core, lint_netlist


def rules_of(report, severity=None):
    return {
        f.rule for f in report.findings
        if severity is None or f.severity == severity
    }


class TestGeneratedCoresAreClean:
    @pytest.mark.parametrize("config", [
        CoreConfig(datawidth=8, pipeline_stages=1, num_bars=2),
        CoreConfig(datawidth=4, pipeline_stages=2, num_bars=2),
        CoreConfig(datawidth=16, pipeline_stages=3, num_bars=4),
    ], ids=lambda c: c.name)
    def test_no_errors(self, config):
        report = lint_core(config)
        assert report.ok, report.summary() + "".join(
            f"\n  {f}" for f in report.errors
        )

    def test_multistage_datapath_flops_are_info_not_error(self):
        report = lint_core(CoreConfig(datawidth=8, pipeline_stages=2))
        unresettable = [
            f for f in report.findings if f.rule == "unresettable-flop"
        ]
        assert unresettable, "2-stage cores have reset-free datapath regs"
        assert all(f.severity == "info" for f in unresettable)


class TestDefectsFire:
    def test_combinational_loop(self):
        n = Netlist("loop", cse=False)
        n.input_bus("a", 1)
        q = n.net("x")
        inverted = n.add_instance("INVX1", (q,))
        n.add_instance("INVX1", (inverted,), q)
        n.output_bus("y", [q])
        report = lint_netlist(n)
        assert "comb-loop" in rules_of(report, "error")

    def test_sequential_cell_breaks_loop(self):
        n = Netlist("flop_loop", cse=False)
        q = n.net("state")
        inverted = n.add_instance("INVX1", (q,))
        n.add_instance("DFFNRX1", (inverted, n.reset_input()), q)
        n.output_bus("y", [q])
        report = lint_netlist(n)
        assert "comb-loop" not in rules_of(report)

    def test_multi_driven_net(self):
        n = Netlist("multi", cse=False)
        a = n.input_bus("a", 1)[0]
        out = n.add_instance("INVX1", (a,))
        n.instances.append(Instance("AND2X1", (a, a), out))
        n.output_bus("y", [out])
        report = lint_netlist(n)
        assert "multi-driven" in rules_of(report, "error")

    def test_instance_driving_primary_input(self):
        n = Netlist("drives_input", cse=False)
        a = n.input_bus("a", 1)[0]
        n.instances.append(Instance("INVX1", (a,), a))
        report = lint_netlist(n)
        assert "multi-driven" in rules_of(report, "error")

    def test_floating_input(self):
        n = Netlist("float_in", cse=False)
        a = n.input_bus("a", 1)[0]
        out = n.add_instance("AND2X1", (a, n.net("floating")))
        n.output_bus("y", [out])
        report = lint_netlist(n)
        assert "floating-input" in rules_of(report, "error")

    def test_floating_output(self):
        n = Netlist("float_out", cse=False)
        n.input_bus("a", 1)
        n.output_bus("y", [n.net("undriven")])
        report = lint_netlist(n)
        assert "floating-output" in rules_of(report, "error")

    def test_bad_pin_count(self):
        n = Netlist("pins", cse=False)
        a = n.input_bus("a", 1)[0]
        out = n.net("out")
        n.instances.append(Instance("NAND2X1", (a,), out))  # one of two pins
        n.output_bus("y", [out])
        report = lint_netlist(n)
        assert "bad-pin-count" in rules_of(report, "error")

    def test_unknown_cell(self):
        n = Netlist("odd", cse=False)
        a = n.input_bus("a", 1)[0]
        out = n.net("out")
        n.instances.append(Instance("MYSTERYX1", (a,), out))
        n.output_bus("y", [out])
        report = lint_netlist(n)
        assert "bad-pin-count" in rules_of(report, "error")

    def test_reset_tied_inactive(self):
        n = Netlist("tied", cse=False)
        a = n.input_bus("a", 1)[0]
        q = n.add_instance("DFFNRX1", (a, CONST1))
        n.output_bus("y", [q])
        report = lint_netlist(n)
        assert "unresettable-flop" in rules_of(report, "error")

    def test_control_flop_without_reset(self):
        n = Netlist("ctl", cse=False)
        a = n.input_bus("a", 1)[0]
        q = n.net("pc[0]")
        n.add_instance("DFFX1", (a,), q)
        n.output_bus("pc", [q])
        report = lint_netlist(n)
        assert "unresettable-flop" in rules_of(report, "error")

    def test_dangling_cell_is_warning(self):
        n = Netlist("dangle", cse=False)
        a = n.input_bus("a", 1)[0]
        n.add_instance("INVX1", (a,))
        n.output_bus("y", [a])
        report = lint_netlist(n)
        assert "dangling-cell" in rules_of(report, "warning")
        assert report.ok  # warnings alone do not fail a design
