"""CLI and campaign driver: fixed-seed smoke corpus, serial and parallel.

This is the test-suite twin of the CI ``verify-smoke`` job: small fixed
seed ranges so a regression in any executor or in the generator fails
deterministically.
"""

import pytest

from repro.__main__ import main
from repro.coregen.config import CoreConfig
from repro.verify.corpus import run_campaign
from repro.verify.differential import fault_site_for_output


SMOKE_CONFIG = CoreConfig(datawidth=8, pipeline_stages=1, num_bars=2)


class TestCampaign:
    def test_smoke_corpus_agrees(self):
        result = run_campaign(
            range(4), configs=(SMOKE_CONFIG,),
            executors=("compiled", "bitparallel"),
        )
        assert result.ok, result.summary()
        assert len(result.cases) == 4

    def test_parallel_matches_serial(self):
        kwargs = dict(
            configs=(SMOKE_CONFIG,), executors=("compiled",),
        )
        serial = run_campaign(range(6), jobs=1, **kwargs)
        parallel = run_campaign(range(6), jobs=2, **kwargs)
        assert serial.cases == parallel.cases

    def test_fault_campaign_shrinks_and_emits(self, tmp_path):
        from repro.coregen.generator import generate_core

        fault = fault_site_for_output(generate_core(SMOKE_CONFIG), "wdata", 0)
        result = run_campaign(
            range(2), configs=(SMOKE_CONFIG,), executors=("compiled",),
            fault=fault, out_dir=tmp_path,
        )
        assert not result.ok
        assert result.repro_paths
        for path in result.repro_paths:
            assert path.exists()
            assert "differential_check" in path.read_text()


class TestCli:
    def test_verify_subcommand(self, capsys):
        code = main([
            "verify", "--seed", "0", "--count", "2",
            "--configs", "p1_8_2", "--executors", "compiled",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "all agree" in out

    def test_lint_subcommand(self, capsys):
        assert main(["lint", "p1_4_2"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_bad_config_name(self):
        assert main(["lint", "nonsense"]) == 2

    def test_verify_unknown_option(self):
        assert main(["verify", "--frobnicate"]) == 2

    def test_inject_fault_is_caught(self, capsys, tmp_path):
        code = main([
            "verify", "--count", "2", "--configs", "p1_8_2",
            "--executors", "compiled", "--inject-fault", "wdata:0",
            "--shrink-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "injected fault was caught" in out
        assert list(tmp_path.glob("test_repro_*.py"))
