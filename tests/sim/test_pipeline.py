"""Tests for the pipeline cycle model."""

import pytest

from repro.errors import ConfigError
from repro.isa.assembler import assemble
from repro.sim.machine import ExecutionStats, Machine
from repro.sim.pipeline import cycles_for, pipeline_model, worst_case_cpi


def stats(instructions=0, taken=0, raw=0):
    s = ExecutionStats()
    s.instructions = instructions
    s.taken_branches = taken
    s.raw_hazards = raw
    return s


class TestCycleCounts:
    def test_single_stage_cpi_is_one(self):
        s = stats(instructions=100, taken=30, raw=20)
        assert cycles_for(s, 1) == 100
        assert pipeline_model(1).cpi(s) == pytest.approx(1.0)

    def test_two_stage_pays_branch_bubbles(self):
        s = stats(instructions=100, taken=30, raw=20)
        assert cycles_for(s, 2) == 100 + 1 + 30

    def test_three_stage_pays_branches_and_raw(self):
        s = stats(instructions=100, taken=30, raw=20)
        assert cycles_for(s, 3) == 100 + 2 + 60 + 20

    def test_worst_case_cpi_equals_stage_count(self):
        """Section 5.2: 'worst case CPI being equal to the number of
        pipeline stages'."""
        for stages in (1, 2, 3):
            assert worst_case_cpi(stages) == stages

    def test_unsupported_depth_rejected(self):
        with pytest.raises(ConfigError):
            pipeline_model(4)

    def test_empty_run_cpi_defined(self):
        assert pipeline_model(3).cpi(stats()) == 3.0


class TestAgainstSimulator:
    def test_memory_memory_code_stalls_deeper_pipelines(self):
        """Back-to-back dependent memory-memory ops are the common case
        in TP-ISA code, so 3-stage cores lose CPI to RAW stalls."""
        source = (
            ".word a\n.word b\n.word c\n"
            "ADD a, b\nADD c, a\nADD b, c\nADD a, b\nHALT\n"
        )
        machine = Machine(assemble(source))
        machine.run()
        s = machine.stats
        assert s.raw_hazards == 3
        assert cycles_for(s, 3) > cycles_for(s, 2) > cycles_for(s, 1)
