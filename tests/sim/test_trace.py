"""Tests for fetch tracing and its consumers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.sim import FetchTrace, Machine
from repro.sim.pipeline import cycles_for, pipeline_model


class TestFetchTrace:
    def test_trace_matches_fetch_count(self):
        source = ".word i 3\n.word one 1\nloop:\nSUB i, one\nBRN loop, Z\nHALT\n"
        trace = FetchTrace()
        machine = Machine(assemble(source), fetch_trace=trace)
        machine.run()
        assert len(trace) == machine.stats.fetches

    def test_trace_records_loop_structure(self):
        source = ".word i 2\n.word one 1\nloop:\nSUB i, one\nBRN loop, Z\nHALT\n"
        trace = FetchTrace()
        machine = Machine(assemble(source), fetch_trace=trace)
        machine.run()
        assert trace.addresses == [0, 1, 0, 1, 2]
        assert trace.unique_addresses() == 3

    def test_untraced_machine_unaffected(self):
        machine = Machine(assemble("HALT\n"))
        machine.run()
        assert machine.fetch_trace is None

    def test_bounded_trace_keeps_recent_window(self):
        trace = FetchTrace(maxlen=3)
        for pc in (0, 1, 2, 3, 4):
            trace.record(pc)
        assert list(trace.addresses) == [2, 3, 4]
        assert len(trace) == 3
        assert trace.recorded == 5
        assert trace.dropped == 2

    def test_unbounded_trace_drops_nothing(self):
        trace = FetchTrace()
        for pc in range(4):
            trace.record(pc)
        assert trace.dropped == 0
        assert trace.recorded == 4

    def test_invalid_maxlen_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FetchTrace(maxlen=0)

    def test_address_histogram_orders_by_count_then_address(self):
        trace = FetchTrace()
        for pc in (5, 1, 5, 1, 5, 9):
            trace.record(pc)
        assert trace.address_histogram() == [(5, 3), (1, 2), (9, 1)]
        assert trace.address_histogram(top=1) == [(5, 3)]

    def test_ties_break_by_lower_address(self):
        trace = FetchTrace()
        for pc in (7, 2, 7, 2):
            trace.record(pc)
        assert trace.address_histogram() == [(2, 2), (7, 2)]

    def test_unique_addresses_cache_invalidated_by_append(self):
        trace = FetchTrace()
        trace.record(0)
        assert trace.unique_addresses() == 1
        assert trace.unique_addresses() == 1  # served from the memo
        trace.record(1)
        assert trace.unique_addresses() == 2

    def test_bounded_unique_counts_retained_window_only(self):
        trace = FetchTrace(maxlen=2)
        for pc in (0, 1, 2):
            trace.record(pc)
        assert trace.unique_addresses() == 2


class TestTopN:
    def test_top_n_returns_hottest_first(self):
        trace = FetchTrace()
        for pc in (5, 1, 5, 1, 5, 9):
            trace.record(pc)
        assert trace.top_n(2) == [(5, 3), (1, 2)]
        assert trace.top_n(10) == trace.address_histogram()

    def test_top_n_rejects_nonpositive(self):
        trace = FetchTrace()
        trace.record(0)
        with pytest.raises(ValueError, match="positive"):
            trace.top_n(0)
        with pytest.raises(ValueError, match="positive"):
            trace.top_n(-3)

    def test_windowed_top_n_describes_the_tail(self):
        # The documented maxlen interaction: once fetches drop out of
        # the ring buffer, top_n ranks only the retained window.
        trace = FetchTrace(maxlen=3)
        for pc in (1, 1, 1, 2, 2, 3):
            trace.record(pc)
        assert trace.dropped == 3
        assert trace.top_n(1) == [(2, 2)]
        assert trace.recorded == 6


class TestPipelineProperties:
    @settings(max_examples=40)
    @given(
        instructions=st.integers(1, 10_000),
        taken=st.integers(0, 2_000),
        raw=st.integers(0, 2_000),
    )
    def test_cycles_monotone_in_depth(self, instructions, taken, raw):
        """Deeper pipelines never take fewer cycles for the same run."""
        from repro.sim.machine import ExecutionStats

        stats = ExecutionStats()
        stats.instructions = instructions
        stats.taken_branches = min(taken, instructions)
        stats.raw_hazards = min(raw, instructions)
        cycles = [cycles_for(stats, depth) for depth in (1, 2, 3)]
        assert cycles == sorted(cycles)

    @settings(max_examples=40)
    @given(instructions=st.integers(1, 10_000), taken=st.integers(0, 2_000))
    def test_cpi_bounded_by_stage_count(self, instructions, taken):
        from repro.sim.machine import ExecutionStats

        stats = ExecutionStats()
        stats.instructions = instructions
        # Branches and memory-reading (RAW-stalling) instructions are
        # disjoint sets, so their hazard counts share the instruction
        # budget -- this is what makes CPI <= stages hold.
        stats.taken_branches = min(taken, instructions)
        stats.raw_hazards = instructions - stats.taken_branches
        for depth in (1, 2, 3):
            cpi = pipeline_model(depth).cpi(stats)
            fill = (depth - 1) / instructions
            assert cpi <= depth + fill + 1e-9
