"""Directed ISS-vs-gate flag cross-checks at boundary values.

The rotate-through-carry ops and the SUB/SBB borrow and overflow flags
are where an ISS and a gate-level ALU most easily drift apart (carry
polarity, rotate direction, signed-overflow formula).  These tests pin
them against each other with directed operands at the width boundaries
-- 0, 1, all-ones, the sign bit -- with the incoming carry driven to
both states, across datawidths.  Any future divergence found by the
fuzzer in this area should be added here as a directed case.
"""

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.cosim import cosim_verify
from repro.isa.program import Program
from repro.isa.spec import Instruction, MemOperand, Mnemonic

#: Widths that get the full boundary matrix; 32-bit gets a subset to
#: keep the suite quick (its netlists are the biggest to simulate).
FULL_WIDTHS = (4, 8, 16)

A, B, CARRY_X, CARRY_Y = 0, 1, 2, 3  # data-cell layout


def boundary_values(width):
    mask = (1 << width) - 1
    msb = 1 << (width - 1)
    return {"zero": 0, "one": 1, "mask": mask, "msb": msb, "msb1": msb | 1}


def boundary_pairs(width):
    v = boundary_values(width)
    return [
        (v["zero"], v["zero"]),
        (v["zero"], v["one"]),      # borrow straight through
        (v["one"], v["mask"]),
        (v["mask"], v["mask"]),
        (v["msb"], v["one"]),       # signed overflow on subtract
        (v["msb"], v["msb"]),
        (v["mask"], v["msb"]),
        (v["msb1"], v["one"]),
    ]


def directed_program(mnemonic, a, b, width, carry_in=None):
    """STORE-free directed case: optional carry setup, then the op.

    Carry setup uses ``SUB`` on scratch cells: the ISS computes
    ``a + ~b + 1``, so C=1 (no borrow) when a >= b and C=0 otherwise
    -- both states reachable without touching the operands under test.
    """
    instructions = []
    data = {A: a, B: b, CARRY_X: 0, CARRY_Y: 0}
    if carry_in is not None:
        data[CARRY_X] = 1 if carry_in else 0
        data[CARRY_Y] = 0 if carry_in else 1
        instructions.append(Instruction(
            Mnemonic.SUB, dst=MemOperand(CARRY_X), src=MemOperand(CARRY_Y)
        ))
    if mnemonic in (Mnemonic.RL, Mnemonic.RLC, Mnemonic.RR, Mnemonic.RRC,
                    Mnemonic.RRA, Mnemonic.NOT):
        instructions.append(Instruction(
            mnemonic, dst=MemOperand(A), src=MemOperand(A)
        ))
    else:
        instructions.append(Instruction(
            mnemonic, dst=MemOperand(A), src=MemOperand(B)
        ))
    return Program(
        name=f"x_{mnemonic.name}_{a}_{b}_{carry_in}",
        instructions=instructions,
        datawidth=width,
        num_bars=2,
        data=data,
    )


def assert_agrees(program, width):
    config = CoreConfig(datawidth=width, pipeline_stages=1, num_bars=2)
    mismatches = cosim_verify(program, config)
    assert not mismatches, (
        f"{program.name} @ {width}-bit: "
        + "; ".join(str(m) for m in mismatches)
    )


@pytest.mark.parametrize("width", FULL_WIDTHS)
class TestSubtractFamily:
    @pytest.mark.parametrize("mnemonic", [Mnemonic.SUB, Mnemonic.CMP])
    def test_borrow_and_overflow(self, width, mnemonic):
        for a, b in boundary_pairs(width):
            assert_agrees(directed_program(mnemonic, a, b, width), width)

    def test_sbb_both_carry_states(self, width):
        for a, b in boundary_pairs(width):
            for carry_in in (0, 1):
                assert_agrees(
                    directed_program(Mnemonic.SBB, a, b, width, carry_in),
                    width,
                )

    def test_adc_both_carry_states(self, width):
        values = boundary_values(width)
        for a in (values["zero"], values["mask"], values["msb"]):
            for carry_in in (0, 1):
                assert_agrees(
                    directed_program(Mnemonic.ADC, a, values["one"], width,
                                     carry_in),
                    width,
                )


@pytest.mark.parametrize("width", FULL_WIDTHS)
class TestRotates:
    @pytest.mark.parametrize("mnemonic", [Mnemonic.RL, Mnemonic.RR,
                                          Mnemonic.RRA])
    def test_plain_rotates(self, width, mnemonic):
        for value in boundary_values(width).values():
            assert_agrees(
                directed_program(mnemonic, value, 0, width), width
            )

    @pytest.mark.parametrize("mnemonic", [Mnemonic.RLC, Mnemonic.RRC])
    def test_rotate_through_carry_both_states(self, width, mnemonic):
        for value in boundary_values(width).values():
            for carry_in in (0, 1):
                assert_agrees(
                    directed_program(mnemonic, value, 0, width, carry_in),
                    width,
                )


class TestWide32:
    """32-bit spot checks: the carry chain and rotate mux are widest
    here, so one representative of each family."""

    def test_sub_borrow_chain(self):
        mask = (1 << 32) - 1
        assert_agrees(
            directed_program(Mnemonic.SUB, 0, 1, 32), 32
        )
        assert_agrees(
            directed_program(Mnemonic.SUB, mask, 1 << 31, 32), 32
        )

    def test_sbb_with_carry(self):
        assert_agrees(
            directed_program(Mnemonic.SBB, 1 << 31, 1, 32, carry_in=0), 32
        )

    def test_rotate_through_carry(self):
        for carry_in in (0, 1):
            assert_agrees(
                directed_program(Mnemonic.RLC, 1 << 31, 0, 32, carry_in),
                32,
            )
            assert_agrees(
                directed_program(Mnemonic.RRC, 1, 0, 32, carry_in), 32
            )
