"""Tests for the TP-ISA instruction-set simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.isa.spec import Flag
from repro.sim.machine import Machine


def run_source(source, **pokes):
    machine = Machine(assemble(source))
    for symbol, value in pokes.items():
        machine.load(symbol, value)
    machine.run()
    return machine


class TestArithmetic:
    @settings(max_examples=40)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_add_sets_result_and_carry(self, a, b):
        machine = run_source(".word x\n.word y\nADD x, y\nHALT\n", x=a, y=b)
        assert machine.peek("x") == (a + b) & 0xFF
        assert machine.carry == (a + b) >> 8

    @settings(max_examples=40)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_sub_two_complement(self, a, b):
        machine = run_source(".word x\n.word y\nSUB x, y\nHALT\n", x=a, y=b)
        assert machine.peek("x") == (a - b) & 0xFF
        assert machine.carry == (1 if a >= b else 0)

    @settings(max_examples=40)
    @given(a=st.integers(0, 65535), b=st.integers(0, 65535))
    def test_multiword_add_via_adc(self, a, b):
        """Data coalescing: 16-bit add on an 8-bit machine."""
        source = (
            ".word alo\n.word ahi\n.word blo\n.word bhi\n"
            "ADD alo, blo\nADC ahi, bhi\nHALT\n"
        )
        machine = run_source(
            source, alo=a & 0xFF, ahi=a >> 8, blo=b & 0xFF, bhi=b >> 8
        )
        result = machine.peek("alo") | (machine.peek("ahi") << 8)
        assert result == (a + b) & 0xFFFF

    @settings(max_examples=40)
    @given(a=st.integers(0, 65535), b=st.integers(0, 65535))
    def test_multiword_subtract_via_sbb(self, a, b):
        source = (
            ".word alo\n.word ahi\n.word blo\n.word bhi\n"
            "SUB alo, blo\nSBB ahi, bhi\nHALT\n"
        )
        machine = run_source(
            source, alo=a & 0xFF, ahi=a >> 8, blo=b & 0xFF, bhi=b >> 8
        )
        result = machine.peek("alo") | (machine.peek("ahi") << 8)
        assert result == (a - b) & 0xFFFF

    def test_cmp_sets_flags_without_writing(self):
        machine = run_source(".word x\n.word y\nCMP x, y\nHALT\n", x=7, y=7)
        assert machine.peek("x") == 7
        assert machine.flags & Flag.Z

    def test_overflow_flag(self):
        machine = run_source(".word x\n.word y\nADD x, y\nHALT\n", x=0x7F, y=0x01)
        assert machine.flags & Flag.V
        assert machine.flags & Flag.S


class TestLogicAndRotates:
    @settings(max_examples=30)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_logic_ops(self, a, b):
        source = (
            ".word x\n.word y\n.word x2\n.word x3\n"
            "AND x, y\nHALT\n"
        )
        machine = run_source(source, x=a, y=b)
        assert machine.peek("x") == a & b

    def test_not_is_unary_from_src(self):
        machine = run_source(".word d\n.word s\nNOT d, s\nHALT\n", s=0b10101010)
        assert machine.peek("d") == 0b01010101

    @settings(max_examples=30)
    @given(a=st.integers(0, 255))
    def test_rl_rotate(self, a):
        machine = run_source(".word x\nRL x, x\nHALT\n", x=a)
        assert machine.peek("x") == ((a << 1) | (a >> 7)) & 0xFF
        assert machine.carry == a >> 7

    @settings(max_examples=30)
    @given(a=st.integers(0, 65535))
    def test_multiword_shift_left_via_rlc(self, a):
        """16-bit logical shift left by 1 on an 8-bit machine: clear
        carry (TEST), then RLC low, RLC high."""
        source = (
            ".word lo\n.word hi\n.word zero\n"
            "TEST zero, zero\nRLC lo, lo\nRLC hi, hi\nHALT\n"
        )
        machine = run_source(source, lo=a & 0xFF, hi=a >> 8)
        result = machine.peek("lo") | (machine.peek("hi") << 8)
        assert result == (a << 1) & 0xFFFF

    def test_rra_preserves_sign(self):
        machine = run_source(".word x\nRRA x, x\nHALT\n", x=0b10000010)
        assert machine.peek("x") == 0b11000001
        assert machine.carry == 0

    def test_rrc_injects_old_carry(self):
        source = ".word x\n.word y\nADD y, y\nRRC x, x\nHALT\n"
        # y = 0x80 -> ADD gives carry=1; RRC shifts it into the MSB.
        machine = run_source(source, x=0, y=0x80)
        assert machine.peek("x") == 0x80


class TestControlFlow:
    def test_loop_counts(self):
        source = (
            ".word i 5\n.word one 1\n.word acc 0\n"
            "loop:\nADD acc, one\nSUB i, one\nBRN loop, Z\nHALT\n"
        )
        machine = run_source(source)
        assert machine.peek("acc") == 5

    def test_unconditional_brn_jumps(self):
        source = ".word x\nBRN skip, 0\nSTORE x, 1\nskip:\nHALT\n"
        machine = run_source(source)
        assert machine.peek("x") == 0

    def test_br_taken_on_flag(self):
        source = (
            ".word x\n.word y\nCMP x, y\nBR skip, Z\nSTORE x, 9\nskip:\nHALT\n"
        )
        machine = run_source(source, x=4, y=4)
        assert machine.peek("x") == 4

    def test_fall_off_end_halts(self):
        machine = Machine(assemble(".word x\nSTORE x, 3\n"))
        result = machine.run()
        assert result.halted
        assert machine.peek("x") == 3

    def test_runaway_raises(self):
        source = "loop:\nBR loop, 0\nBRN loop, 0\n"  # BR never taken; BRN loops
        machine = Machine(assemble(source))
        with pytest.raises(SimulationError, match="no halt"):
            machine.run(max_steps=100)


class TestBars:
    def test_setbar_offsets_addressing(self):
        source = (
            ".array buf 8\n.word ptr 4\n"
            "SETBAR 1, ptr\n"
            "STORE b1:2, 99\n"
            "HALT\n"
        )
        machine = run_source(source)
        assert machine.peek(6) == 99

    def test_setbar_is_dynamic(self):
        """A BAR can follow a computed index -- the property that lets
        loop kernels index arrays without unrolling."""
        source = (
            ".array buf 4\n.word i 0\n.word one 1\n"
            "loop:\nSETBAR 1, i\nSTORE b1:0, 7\nADD i, one\n"
            "CMP i, one\nBR loop, S\nHALT\n"
        )
        # Loop while i < 4: CMP i-1... simpler: run two iterations by hand.
        machine = Machine(assemble(source))
        for _ in range(3):  # SETBAR, STORE, ADD of first iteration
            machine.step()
        assert machine.peek(0) == 7
        machine.step()  # CMP (i=1, one=1 -> Z, not S)
        machine.step()  # BR not taken
        machine.run()
        assert machine.peek(1) != 7  # loop exited before second pass

    def test_bar_out_of_range_rejected(self):
        source = ".word p 1\nSETBAR 3, p\nHALT\n"
        machine = Machine(assemble(source))  # default 2 BARs
        with pytest.raises(SimulationError, match="BARs"):
            machine.run()

    def test_effective_address_beyond_memory_rejected(self):
        machine = Machine(assemble(".word x\nSTORE b1:0, 1\nHALT\n"), mem_size=4)
        machine.bars[1] = 10
        with pytest.raises(SimulationError, match="exceeds memory"):
            machine.run()


class TestStats:
    def test_counts_accumulate(self):
        source = (
            ".word i 3\n.word one 1\n"
            "loop:\nSUB i, one\nBRN loop, Z\nHALT\n"
        )
        machine = run_source(source)
        stats = machine.stats
        assert stats.instructions == 3 + 3 + 1  # 3 SUB, 3 BRN, 1 HALT
        assert stats.branches == 4
        assert stats.taken_branches == 2 + 1  # two loop backedges + HALT
        assert stats.memory_reads == 6  # SUB reads two words, thrice
        assert stats.memory_writes == 3

    def test_raw_hazard_detection(self):
        source = ".word x\n.word y\nADD x, y\nADD y, x\nHALT\n"
        machine = run_source(source, x=1, y=2)
        # Second ADD reads x, which the first ADD wrote.
        assert machine.stats.raw_hazards == 1

    def test_touched_addresses(self):
        machine = run_source(".word x\n.word y\nADD x, y\nHALT\n")
        assert machine.stats.data_words_used() == 2

    def test_wide_datawidth(self):
        source = ".width 32\n.word x\n.word y\nADD x, y\nHALT\n"
        machine = Machine(assemble(source))
        machine.load("x", 0xFFFFFFFF)
        machine.load("y", 1)
        machine.run()
        assert machine.peek("x") == 0
        assert machine.carry == 1
