"""Exhaustive/property tests of the architectural flag semantics.

The flags are the contract between the ALU and the branch unit (and
between the ISS and the gate-level core), so each mnemonic's flag
behaviour is pinned against an independent reference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.spec import Flag
from repro.sim.machine import Machine

values = st.integers(0, 255)


def run(source, **pokes):
    machine = Machine(assemble(source))
    for symbol, value in pokes.items():
        machine.load(symbol, value)
    machine.run()
    return machine


def flags_of(machine):
    return {
        "S": bool(machine.flags & Flag.S),
        "Z": bool(machine.flags & Flag.Z),
        "C": bool(machine.flags & Flag.C),
        "V": bool(machine.flags & Flag.V),
    }


class TestAddFamilyFlags:
    @settings(max_examples=60)
    @given(a=values, b=values)
    def test_add_reference(self, a, b):
        machine = run(".word x\n.word y\nADD x, y\nHALT\n", x=a, y=b)
        total = a + b
        result = total & 0xFF
        signed = (a ^ 0x80) - 0x80, (b ^ 0x80) - 0x80
        signed_total = signed[0] + signed[1]
        assert flags_of(machine) == {
            "S": bool(result & 0x80),
            "Z": result == 0,
            "C": total > 0xFF,
            "V": not -128 <= signed_total <= 127,
        }

    @settings(max_examples=60)
    @given(a=values, b=values)
    def test_cmp_reference(self, a, b):
        machine = run(".word x\n.word y\nCMP x, y\nHALT\n", x=a, y=b)
        result = (a - b) & 0xFF
        signed_diff = ((a ^ 0x80) - 0x80) - ((b ^ 0x80) - 0x80)
        assert flags_of(machine) == {
            "S": bool(result & 0x80),
            "Z": a == b,
            "C": a >= b,  # carry = no borrow
            "V": not -128 <= signed_diff <= 127,
        }


class TestLogicAndRotateFlags:
    @settings(max_examples=40)
    @given(a=values, b=values)
    def test_logic_clears_carry_and_overflow(self, a, b):
        machine = run(".word x\n.word y\nXOR x, y\nHALT\n", x=a, y=b)
        result = a ^ b
        assert flags_of(machine) == {
            "S": bool(result & 0x80),
            "Z": result == 0,
            "C": False,
            "V": False,
        }

    @settings(max_examples=40)
    @given(a=values)
    def test_rl_carry_is_wrapped_msb(self, a):
        machine = run(".word x\nRL x, x\nHALT\n", x=a)
        assert flags_of(machine)["C"] == bool(a & 0x80)

    @settings(max_examples=40)
    @given(a=values)
    def test_rr_carry_is_dropped_lsb(self, a):
        machine = run(".word x\nRR x, x\nHALT\n", x=a)
        assert flags_of(machine)["C"] == bool(a & 1)


class TestFlagPreservation:
    @settings(max_examples=30)
    @given(a=values, b=values)
    def test_store_preserves_flags(self, a, b):
        source = ".word x\n.word y\n.word z\nADD x, y\nSTORE z, 1\nHALT\n"
        with_store = run(source, x=a, y=b)
        without = run(".word x\n.word y\nADD x, y\nHALT\n", x=a, y=b)
        assert flags_of(with_store) == flags_of(without)

    @settings(max_examples=30)
    @given(a=values, b=values)
    def test_setbar_preserves_flags(self, a, b):
        source = ".word x\n.word y\n.word p\nADD x, y\nSETBAR 1, p\nHALT\n"
        with_setbar = run(source, x=a, y=b)
        without = run(".word x\n.word y\nADD x, y\nHALT\n", x=a, y=b)
        assert flags_of(with_setbar) == flags_of(without)

    @settings(max_examples=30)
    @given(a=values, b=values)
    def test_branches_preserve_flags(self, a, b):
        source = ".word x\n.word y\nCMP x, y\nBR done, Z\ndone:\nHALT\n"
        branched = run(source, x=a, y=b)
        straight = run(".word x\n.word y\nCMP x, y\nHALT\n", x=a, y=b)
        assert flags_of(branched) == flags_of(straight)


class TestGateLevelFlagAgreement:
    @settings(max_examples=12, deadline=None)
    @given(a=values, b=values)
    def test_cosim_agrees_on_all_flags(self, a, b):
        """Flags after a full ALU sequence match between gate level and
        ISS -- randomized variant of the co-simulation suite."""
        from repro.coregen.cosim import cosim_verify

        source = (
            f".word x {a}\n.word y {b}\n"
            "ADD x, y\nRLC x, x\nSUB y, x\nRRA x, y\nCMP x, y\nHALT\n"
        )
        assert cosim_verify(assemble(source)) == []
