"""Tests for the extension studies (instruction cache, throttling)."""

import pytest

from repro.eval.extensions import (
    evaluate_with_icache,
    throttle_power,
    throttled_operating_point,
)
from repro.eval.system import evaluate_system
from repro.memory.icache import icache_cost, simulate_icache
from repro.errors import MemoryModelError
from repro.pdk import egfet_library
from repro.power.battery import battery_by_name
from repro.programs import build_benchmark
from repro.units import mW


class TestCacheSimulator:
    def test_loop_trace_hits_after_first_pass(self):
        trace = list(range(8)) * 10  # 8-instruction loop, 10 passes
        result = simulate_icache(trace, words=8)
        assert result.misses == 8
        assert result.hits == 72

    def test_too_small_cache_thrashes(self):
        trace = list(range(8)) * 10
        result = simulate_icache(trace, words=4)
        assert result.hit_rate == 0.0  # direct-mapped conflict misses

    def test_straightline_trace_never_hits(self):
        result = simulate_icache(range(100), words=16)
        assert result.hits == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(MemoryModelError):
            simulate_icache([0], words=3)

    def test_cost_scales_with_words(self):
        library = egfet_library()
        small = icache_cost(library, 8, 24)
        large = icache_cost(library, 64, 24)
        assert large.area > 4 * small.area


class TestICacheStudy:
    def test_cnt_loop_kernels_speed_up(self):
        """The paper's future-work hypothesis holds: a loop cache hides
        the 302 us CNT ROM latency for loop-dominated kernels."""
        study = evaluate_with_icache(build_benchmark("crc8", 8, 8), 32, "CNT-TFT")
        assert study.hit_rate > 0.9
        assert study.speedup > 1.1

    def test_straightline_dtree_does_not_benefit(self):
        study = evaluate_with_icache(build_benchmark("dTree", 8, 8), 32, "CNT-TFT")
        assert study.hit_rate == 0.0
        assert study.speedup < 1.0

    def test_egfet_never_benefits(self):
        """On EGFET the core cycle dominates and latch storage is
        ruinously expensive -- the cache is a strict loss."""
        study = evaluate_with_icache(build_benchmark("mult", 8, 8), 32, "EGFET")
        assert study.speedup < 1.0
        assert study.area_overhead > 0.5


class TestThrottling:
    def test_within_budget_unthrottled(self):
        battery = battery_by_name("Blue Spark 30")
        point = throttle_power(mW(5), 1.0, battery)
        assert not point.throttled
        assert point.throttled_time_per_iteration == 1.0

    def test_cnt_core_power_must_throttle(self):
        """Section 8: CNT cores at nominal frequency out-draw printed
        batteries and must be clocked down."""
        from repro.dse.sweep import evaluate_design
        from repro.coregen.config import CoreConfig

        battery = battery_by_name("Blue Spark 30")
        cnt = evaluate_design(CoreConfig(datawidth=8), "CNT-TFT")
        point = throttle_power(cnt.power_at_fmax, 1.0, battery)
        assert point.throttled
        assert point.throttled_time_per_iteration > 1.0

    def test_system_wrapper(self):
        metrics = evaluate_system(build_benchmark("mult", 8, 8))
        battery = battery_by_name("Molex")
        point = throttled_operating_point(metrics, battery)
        assert point.nominal_power == pytest.approx(metrics.average_power)
