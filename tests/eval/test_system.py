"""Tests for the full-system evaluator (Section 8 methodology)."""

import pytest

from repro.coregen.config import CoreConfig
from repro.eval.system import evaluate_system
from repro.programs import build_benchmark


@pytest.fixture(scope="module")
def mult8_metrics():
    return evaluate_system(build_benchmark("mult", 8, 8))


class TestComposition:
    def test_breakdowns_sum_to_totals(self, mult8_metrics):
        m = mult8_metrics
        assert m.total_area == pytest.approx(
            m.core_combinational_area + m.core_sequential_area
            + m.imem_area + m.dmem_area
        )
        assert m.total_time == pytest.approx(
            m.core_time + m.imem_time + m.dmem_time
        )
        assert m.total_energy == pytest.approx(
            m.core_combinational_energy + m.core_sequential_energy
            + m.imem_energy + m.dmem_energy
        )

    def test_memories_sized_to_program(self, mult8_metrics):
        program = build_benchmark("mult", 8, 8)
        assert mult8_metrics.static_instructions == program.static_size
        assert mult8_metrics.data_words <= 16

    def test_average_power_consistent(self, mult8_metrics):
        m = mult8_metrics
        assert m.average_power == pytest.approx(m.total_energy / m.total_time)


class TestPaperShapes:
    def test_native_width_core_fastest_and_lowest_energy(self):
        """Section 8: the core whose datawidth equals the data width
        wins energy and delay for that benchmark."""
        results = {}
        for core_width in (8, 16, 32):
            program = build_benchmark("mult", 16, core_width)
            config = CoreConfig(datawidth=core_width)
            results[core_width] = evaluate_system(program, config)
        assert results[16].total_energy < results[8].total_energy
        assert results[16].total_energy < results[32].total_energy
        # Delay: native wins outright against the wider core; against
        # the coalescing 8-bit core (whose clock is ~1.5x faster) it is
        # within a few percent -- the paper's claim holds as a
        # near-tie in our timing model.
        assert results[16].total_time < results[32].total_time
        assert results[16].total_time < 1.15 * results[8].total_time

    def test_narrow_core_smaller_but_close_in_energy(self):
        """Section 8: coalescing lets a smaller-than-optimal core stay
        'reasonably close' in energy at lower area."""
        narrow = evaluate_system(build_benchmark("mult", 16, 8), CoreConfig(datawidth=8))
        native = evaluate_system(build_benchmark("mult", 16, 16), CoreConfig(datawidth=16))
        assert narrow.core_area < native.core_area
        assert narrow.total_energy < 6 * native.total_energy

    def test_program_specific_always_wins_energy(self):
        """Section 8: 'the program-specific ISA core consumes less
        energy than all other cores' -- per benchmark."""
        for name in ("mult", "div", "intAvg", "tHold", "crc8", "dTree"):
            program = build_benchmark(name, 8, 8)
            standard = evaluate_system(program)
            specific = evaluate_system(program, program_specific=True)
            assert specific.total_energy < standard.total_energy, name
            assert specific.total_area < standard.total_area, name

    def test_ps_energy_gain_in_paper_band(self):
        """8-bit benchmarks gain 1.16x-2.59x in energy (Section 8)."""
        gains = []
        for name in ("mult", "div", "intAvg", "tHold", "inSort", "crc8", "dTree"):
            program = build_benchmark(name, 8, 8)
            standard = evaluate_system(program)
            specific = evaluate_system(program, program_specific=True)
            gains.append(standard.total_energy / specific.total_energy)
        assert min(gains) > 1.05
        assert max(gains) < 3.5

    def test_cnt_systems_orders_of_magnitude_faster(self):
        program = build_benchmark("mult", 8, 8)
        egfet = evaluate_system(program, technology="EGFET")
        cnt = evaluate_system(program, technology="CNT-TFT")
        # IM latency (302 us/fetch) bounds the CNT speedup well below
        # the raw logic-speed ratio -- exactly the paper's observation.
        assert cnt.total_time < egfet.total_time / 20

    def test_cnt_time_dominated_by_rom_latency(self):
        """Section 8: CNT execution times are dominated by the 302 us
        ROM access latency."""
        program = build_benchmark("mult", 8, 8)
        cnt = evaluate_system(program, technology="CNT-TFT")
        assert cnt.imem_time > cnt.core_time

    def test_mlc_rom_cuts_dtree_imem_area(self):
        """dTree-ROMopt: ~30% instruction-memory area reduction with
        marginal energy change."""
        program = build_benchmark("dTree", 8, 8)
        base = evaluate_system(program)
        optimized = evaluate_system(program, rom_bits_per_cell=2)
        reduction = 1 - optimized.imem_area / base.imem_area
        assert 0.2 < reduction < 0.35
        assert optimized.total_energy < 1.25 * base.total_energy

    def test_legacy_cores_an_order_of_magnitude_worse(self):
        """Section 8: light8080 takes >10x the time/energy of the best
        TP-ISA core on 8-bit multiply."""
        from repro.baselines.kernels import run_baseline

        tp = evaluate_system(build_benchmark("mult", 8, 8))
        legacy = run_baseline("light8080", "mult")
        assert legacy.time_seconds > 5 * tp.total_time
        assert legacy.core_energy_joules > 10 * tp.total_energy
