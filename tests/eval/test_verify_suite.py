"""Lane-packed suite verification (:func:`repro.eval.suite.verify_suite`)."""

import pytest

import repro.eval.suite as suite_mod
from repro.errors import SimulationError
from repro.eval.suite import evaluate_suite, verify_groups, verify_suite


def test_verify_groups_cover_native_widths():
    groups = verify_groups()
    widths = [config.datawidth for config, _, _ in groups]
    assert widths == [8, 16, 32]
    by_width = {
        config.datawidth: names for config, names, _ in groups
    }
    # crc8 exists only at 8 bits; everything else at 8/16/32.
    assert "crc88" in by_width[8]
    assert len(by_width[8]) == 7
    assert len(by_width[16]) == len(by_width[32]) == 6
    for config, names, programs in groups:
        assert len(names) == len(programs)
        assert config.pipeline_stages == 1


def test_verify_suite_rejects_unknown_backend():
    with pytest.raises(SimulationError, match="unknown lane backend"):
        verify_suite("jit")


def test_verify_suite_batched_full():
    verified = verify_suite("batched")
    assert verified == {"p1_8_2": 7, "p1_16_2": 6, "p1_32_2": 6}


def test_verify_suite_numpy_first_group(monkeypatch):
    """The numpy leg on the 8-bit group (the full sweep runs in CI)."""
    groups = verify_groups()[:1]
    monkeypatch.setattr(suite_mod, "verify_groups", lambda: groups)
    assert verify_suite("numpy") == {"p1_8_2": 7}


def test_evaluate_suite_with_verification(monkeypatch):
    """``verify_backend=`` gates evaluation on a clean verify pass."""
    calls = []
    monkeypatch.setattr(
        suite_mod, "verify_suite", lambda backend: calls.append(backend) or {}
    )
    results = evaluate_suite(("EGFET",), verify_backend="numpy")
    assert calls == ["numpy"]
    assert results
