"""Consistency tests for the table/figure regeneration layer."""

import pytest

from repro.eval import figures, tables
from repro.eval.report import render_table, render_series


class TestTables:
    @pytest.mark.parametrize(
        "table,expected_rows",
        [
            (tables.table1_technologies, 9),
            (tables.table2_standard_cells, 11),
            (tables.table3_applications, 17),
            (tables.table4_baseline_cores, 4),
            (tables.table6_memory_devices, 6),
            (tables.table7_program_specific, 7),
        ],
    )
    def test_row_counts_and_shape(self, table, expected_rows):
        headers, rows = table()
        assert len(rows) == expected_rows
        assert all(len(row) == len(headers) for row in rows)

    def test_table5_covers_all_cores_and_benchmarks(self):
        headers, rows = tables.table5_imem_overhead()
        assert len(rows) == 4
        assert len(headers) == 1 + 2 * len(tables.TABLE5_BENCHMARKS)

    def test_table8_structure(self):
        headers, rows = tables.table8_battery_iterations()
        assert len(rows) == 7
        assert headers[1:] == (
            "8-bit STD", "8-bit PS", "16-bit STD", "16-bit PS",
            "32-bit STD", "32-bit PS",
        )

    def test_rendering_is_aligned(self):
        text = render_table("T", ("a", "bee"), [(1, 2.5), (333, "x")])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:5]}) == 1

    def test_render_series(self):
        text = render_series("S", [(1.0, 2.0)], ("x", "y"))
        assert "S" in text and "x" in text


class TestFigures:
    def test_fig6_covers_all_instructions(self):
        rows = figures.fig6_isa_listing()
        assert len(rows) == 19
        mnemonics = {row[0] for row in rows}
        assert {"ADD", "SETBAR", "BRN", "RRA"} <= mnemonics

    def test_fig4_series_structure(self):
        series = figures.fig4_lifetime()
        assert len(series) == 16
        for s in series:
            assert len(s.points) == len(figures.DUTY_FRACTIONS)

    def test_fig8_core_roster_filters_by_support(self):
        # crc8 runs on the 8-bit cores only, plus its PS system.
        results = figures.fig8_benchmark("crc8", 8)
        names = [m.core_name for m in results]
        assert all(name.split("_")[1] == "8" for name in names)
        assert names[-1].endswith("_ps")

    def test_fig8_dtree_native_only(self):
        results = figures.fig8_benchmark("dTree", 16)
        assert all(m.core_name.split("_")[1] == "16" for m in results)
