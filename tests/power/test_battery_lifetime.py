"""Tests for printed batteries and the duty-cycle lifetime model."""

import pytest

from repro.errors import ConfigError
from repro.power.battery import (
    PRINTED_BATTERIES,
    PrintedBattery,
    REFERENCE_BUDGET_J,
    battery_by_name,
)
from repro.power.lifetime import (
    average_power,
    lifetime_curve,
    lifetime_hours,
    max_iterations,
)
from repro.units import mW


class TestBatteries:
    def test_catalogue_has_four_figure45_batteries(self):
        assert len(PRINTED_BATTERIES) == 4
        names = " ".join(b.name for b in PRINTED_BATTERIES)
        for expected in ("Molex", "Blue Spark 30", "Zinergy", "Blue Spark 10"):
            assert expected in names

    def test_reference_budget_is_108_joules(self):
        """Section 4: 30 mA x 3.6 ks x 1 V."""
        assert REFERENCE_BUDGET_J == pytest.approx(108.0)

    def test_lookup_by_partial_name(self):
        assert battery_by_name("zinergy").capacity_mah == 12.0
        with pytest.raises(ConfigError):
            battery_by_name("duracell")

    def test_batteries_needed_for_heavy_loads(self):
        """Section 4: printed batteries max out near 30 mW, so the
        124 mW openMSP430 needs several in parallel."""
        battery = battery_by_name("Blue Spark 30")
        assert battery.batteries_needed(mW(124.4)) >= 4
        assert battery.batteries_needed(mW(10)) == 1

    def test_invalid_battery_rejected(self):
        with pytest.raises(ConfigError):
            PrintedBattery("broken", 0.0, 1.5, 0.01)


class TestLifetime:
    def test_legacy_cores_die_within_hours_at_full_duty(self):
        """Figures 4-5 headline: every pre-existing core drains every
        battery within a few hours at duty 1.0 (under 2 h on all but
        the largest battery; the 90 mAh Molex stretches the frugal
        light8080 to ~3 h)."""
        from repro.baselines.specs import BASELINE_SPECS

        for spec in BASELINE_SPECS.values():
            for technology in ("EGFET", "CNT-TFT"):
                power = spec.point(technology).power
                for battery in PRINTED_BATTERIES:
                    hours = lifetime_hours(battery, power, 1.0)
                    assert hours < 4.0
                    if battery.capacity_mah <= 30:
                        assert hours < 2.0

    def test_duty_cycling_scales_lifetime(self):
        battery = PRINTED_BATTERIES[0]
        full = lifetime_hours(battery, mW(40), 1.0)
        tenth = lifetime_hours(battery, mW(40), 0.1)
        assert tenth == pytest.approx(10 * full)

    def test_idle_power_caps_the_gain(self):
        battery = PRINTED_BATTERIES[0]
        gated = lifetime_hours(battery, mW(40), 0.01)
        leaky = lifetime_hours(battery, mW(40), 0.01, idle_power=mW(4))
        assert leaky < gated

    def test_curve_is_monotonic(self):
        battery = PRINTED_BATTERIES[1]
        curve = lifetime_curve(battery, mW(40), [1.0, 0.5, 0.1, 0.01])
        hours = [h for _, h in curve]
        assert hours == sorted(hours)

    def test_invalid_duty_rejected(self):
        with pytest.raises(ConfigError):
            average_power(mW(1), 0.0)
        with pytest.raises(ConfigError):
            average_power(mW(1), 1.5)

    def test_max_iterations(self):
        assert max_iterations(108.0, 0.0128) == int(108.0 / 0.0128)
        with pytest.raises(ConfigError):
            max_iterations(108.0, 0.0)
