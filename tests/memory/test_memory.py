"""Tests for the printed memory-array models against Section 6 anchors."""

import pytest

from repro.errors import MemoryModelError
from repro.memory import CrosspointRom, SramArray, WormMemory
from repro.memory.adc import adc_for_depth, quantization_levels
from repro.memory.devices import (
    CNT_MEMORY_DEVICES,
    EGFET_MEMORY_DEVICES,
    memory_devices,
)
from repro.units import mm2, to_mm2, us


class TestDeviceTables:
    def test_table6_values_locked(self):
        ram = EGFET_MEMORY_DEVICES["ram_bit"]
        assert ram.area == pytest.approx(mm2(0.84))
        assert ram.delay == pytest.approx(2.5e-3)
        rom = EGFET_MEMORY_DEVICES["rom_bit"]
        assert rom.area == pytest.approx(mm2(0.05))

    def test_rom_beats_ram_by_published_ratios(self):
        """Section 6 headline: 5.77x power, 16.8x area, 2.42x delay."""
        ram = EGFET_MEMORY_DEVICES["ram_bit"]
        rom = EGFET_MEMORY_DEVICES["rom_bit"]
        assert ram.active_power / rom.active_power == pytest.approx(5.77, rel=0.01)
        assert ram.area / rom.area == pytest.approx(16.8, rel=0.01)
        assert ram.delay / rom.delay == pytest.approx(2.42, rel=0.01)

    def test_cnt_rom_delay_anchored_to_302us(self):
        assert CNT_MEMORY_DEVICES["rom_bit"].delay == pytest.approx(us(302))

    def test_unknown_technology_rejected(self):
        with pytest.raises(MemoryModelError):
            memory_devices("TTL")


class TestCrosspointRom:
    def test_published_16x9_example(self):
        """Section 6: 9 sub-blocks, 220 transistors, 52 pull-ups,
        20.42 mm^2."""
        rom = CrosspointRom(words=16, bits_per_word=9)
        assert rom.subblocks == 9
        assert rom.transistors == pytest.approx(220, abs=5)
        assert rom.pullup_resistors == pytest.approx(52, abs=4)
        assert to_mm2(rom.area) == pytest.approx(20.42, rel=0.02)

    def test_half_the_area_of_worm(self):
        rom = CrosspointRom(words=16, bits_per_word=9)
        worm = WormMemory(16, 9)
        assert worm.area / rom.area > 2.0
        assert worm.transistors > rom.transistors + rom.pullup_resistors

    def test_mlc_reduces_area_about_30_percent(self):
        """Section 8 (dTree-ROMopt): 2-bit MLC on a 256-word program
        cuts instruction-memory area by almost 30%."""
        base = CrosspointRom(256, 24)
        mlc = CrosspointRom(256, 24, bits_per_cell=2)
        reduction = 1 - mlc.area / base.area
        assert 0.2 < reduction < 0.35

    def test_mlc_needs_adcs_and_more_delay(self):
        base = CrosspointRom(256, 24)
        mlc = CrosspointRom(256, 24, bits_per_cell=2)
        assert mlc.read_delay > base.read_delay
        assert mlc.read_energy > base.read_energy

    def test_scaling_with_words(self):
        small = CrosspointRom(32, 24)
        large = CrosspointRom(256, 24)
        assert large.area > small.area
        assert large.transistors > small.transistors

    def test_average_power_includes_static(self):
        rom = CrosspointRom(64, 24)
        assert rom.average_power(0.0) == pytest.approx(rom.static_power)
        assert rom.average_power(10.0) > rom.static_power

    @pytest.mark.parametrize("kwargs", [
        {"words": 0, "bits_per_word": 24},
        {"words": 257, "bits_per_word": 24},
        {"words": 16, "bits_per_word": 0},
        {"words": 16, "bits_per_word": 24, "bits_per_cell": 3},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(MemoryModelError):
            CrosspointRom(**kwargs)


class TestSram:
    def test_table5_accounting(self):
        """Table 5 reproduces as bits x cell: a 32-word, 16-bit RAM
        is ~4.3 cm^2 burning ~9.8 mW when continuously accessed."""
        ram = SramArray(words=32, bits_per_word=16)
        assert to_mm2(ram.area) == pytest.approx(430, rel=0.01)
        assert ram.worst_case_power == pytest.approx(9.84e-3, rel=0.02)

    def test_energy_scales_with_width_not_depth(self):
        narrow = SramArray(words=64, bits_per_word=8)
        wide = SramArray(words=64, bits_per_word=32)
        deep = SramArray(words=256, bits_per_word=8)
        assert wide.access_energy == pytest.approx(4 * narrow.access_energy)
        assert deep.access_energy == pytest.approx(narrow.access_energy)
        assert deep.static_power > narrow.static_power

    def test_invalid_rejected(self):
        with pytest.raises(MemoryModelError):
            SramArray(words=0, bits_per_word=8)


class TestAdc:
    def test_depths(self):
        assert adc_for_depth(2).name.startswith("2-bit ADC")
        assert adc_for_depth(4).name.startswith("4-bit ADC")
        with pytest.raises(MemoryModelError):
            adc_for_depth(3)

    def test_levels(self):
        assert quantization_levels(2) == 4
        assert quantization_levels(4) == 16
