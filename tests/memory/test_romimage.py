"""Tests for the print-ready ROM dot map and Intel HEX artifacts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError, MemoryModelError
from repro.isa.hexfile import dump_hex, load_hex
from repro.memory.romimage import dot_map
from repro.coregen.config import CoreConfig
from repro.coregen.isa_map import encode_program_for_core
from repro.programs import build_benchmark


class TestDotMap:
    @settings(max_examples=30)
    @given(words=st.lists(st.integers(0, 0xFFFFFF), min_size=1, max_size=64))
    def test_readback_matches_image(self, words):
        image = dot_map(words, bits_per_word=24)
        for address, word in enumerate(words):
            assert image.word(address) == word

    @settings(max_examples=30)
    @given(words=st.lists(st.integers(0, 0xFFFFFF), min_size=1, max_size=64))
    def test_dot_count_is_popcount(self, words):
        image = dot_map(words, bits_per_word=24)
        assert image.printed_dots == sum(bin(w).count("1") for w in words)

    def test_real_program_dot_map(self):
        program = build_benchmark("mult", 8, 8)
        words = encode_program_for_core(program, CoreConfig(datawidth=8))
        image = dot_map(words, bits_per_word=24)
        assert 0.0 < image.dot_density < 1.0
        art = image.render(subblock=0)
        assert "#" in art or "." in art
        assert art.count("\n") == image.rom.rows + 1

    def test_oversized_word_rejected(self):
        with pytest.raises(MemoryModelError):
            dot_map([1 << 24], bits_per_word=24)

    def test_empty_rejected(self):
        with pytest.raises(MemoryModelError):
            dot_map([], bits_per_word=24)

    def test_bad_subblock_rejected(self):
        image = dot_map([1], bits_per_word=4)
        with pytest.raises(MemoryModelError):
            image.render(subblock=9)


class TestIntelHex:
    @settings(max_examples=40)
    @given(words=st.lists(st.integers(0, 0xFFFFFF), min_size=1, max_size=80))
    def test_round_trip(self, words):
        assert load_hex(dump_hex(words)) == words

    @settings(max_examples=20)
    @given(words=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=40))
    def test_round_trip_16bit_words(self, words):
        text = dump_hex(words, bits_per_word=16)
        assert load_hex(text, bits_per_word=16) == words

    def test_format_is_standard(self):
        text = dump_hex([0x123456])
        lines = text.splitlines()
        # 03 (count) 0000 (addr) 00 (type) 123456 (data) 61 (checksum)
        assert lines[0] == ":0300000012345661"
        assert lines[-1] == ":00000001FF"

    def test_checksum_validation(self):
        text = dump_hex([0x123456]).replace("61", "62", 1)
        with pytest.raises(IsaError, match="checksum"):
            load_hex(text)

    def test_garbage_rejected(self):
        with pytest.raises(IsaError):
            load_hex("not hex at all")
        with pytest.raises(IsaError, match="start code"):
            load_hex("0300000012345647")

    def test_real_program_exports(self):
        program = build_benchmark("crc8", 8, 8)
        words = encode_program_for_core(program, CoreConfig(datawidth=8))
        assert load_hex(dump_hex(words)) == words
