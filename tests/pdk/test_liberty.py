"""Round-trip tests for the Liberty-style serialization."""

import pytest

from repro.errors import PDKError
from repro.pdk import cnt_tft_library, dump_liberty, egfet_library, load_liberty


@pytest.mark.parametrize("factory", [egfet_library, cnt_tft_library])
def test_round_trip_preserves_everything(factory):
    original = factory()
    restored = load_liberty(dump_liberty(original))
    assert restored.name == original.name
    assert restored.vdd == original.vdd
    assert restored.logic_family == original.logic_family
    assert set(restored.cells) == set(original.cells)
    for name, cell in original.cells.items():
        loaded = restored.cell(name)
        assert loaded.kind == cell.kind
        assert loaded.area == pytest.approx(cell.area)
        assert loaded.energy == pytest.approx(cell.energy)
        assert loaded.rise_delay == pytest.approx(cell.rise_delay)
        assert loaded.fall_delay == pytest.approx(cell.fall_delay)
        assert loaded.inputs == cell.inputs
        assert loaded.transistors == cell.transistors
        assert loaded.resistors == cell.resistors


def test_dump_is_human_readable():
    text = dump_liberty(egfet_library())
    assert 'library ("EGFET")' in text
    assert 'cell ("DFFX1")' in text
    assert "voltage : 1.0;" in text


def test_load_rejects_garbage():
    with pytest.raises(PDKError):
        load_liberty("not a library at all")


def test_load_rejects_missing_cell_attribute():
    text = dump_liberty(egfet_library()).replace("rise_delay", "wrong_name", 1)
    with pytest.raises(PDKError):
        load_liberty(text)
