"""Tests for the variation / yield extension models."""

import pytest

from repro.coregen.config import CoreConfig
from repro.coregen.generator import generate_core
from repro.errors import PDKError
from repro.netlist.stats import area_report
from repro.pdk import egfet_library
from repro.pdk.variation import (
    EGFET_DEVICE_YIELD_RANGE,
    TimingDistribution,
    cost_per_working_unit,
    functional_yield,
    monte_carlo_timing,
    required_device_yield,
)


@pytest.fixture(scope="module")
def small_core():
    return generate_core(CoreConfig(datawidth=4, pc_bits=4))


class TestMonteCarloTiming:
    def test_zero_sigma_is_deterministic(self, small_core):
        distribution = monte_carlo_timing(
            small_core, egfet_library(), sigma=0.0, trials=8
        )
        assert len(set(distribution.samples)) == 1

    def test_spread_grows_with_sigma(self, small_core):
        library = egfet_library()
        tight = monte_carlo_timing(small_core, library, sigma=0.05, trials=32)
        loose = monte_carlo_timing(small_core, library, sigma=0.4, trials=32)

        def spread(d):
            return max(d.samples) / min(d.samples)

        assert spread(loose) > spread(tight) > 1.0

    def test_yield_fmax_below_nominal(self, small_core):
        distribution = monte_carlo_timing(
            small_core, egfet_library(), sigma=0.2, trials=32
        )
        assert distribution.yield_fmax(0.95) < distribution.nominal_fmax

    def test_deterministic_across_runs(self, small_core):
        library = egfet_library()
        first = monte_carlo_timing(small_core, library, sigma=0.2, trials=16)
        second = monte_carlo_timing(small_core, library, sigma=0.2, trials=16)
        assert first.samples == second.samples

    def test_negative_sigma_rejected(self, small_core):
        with pytest.raises(PDKError):
            monte_carlo_timing(small_core, egfet_library(), sigma=-0.1)

    def test_coverage_quantile_ordering(self):
        distribution = TimingDistribution(samples=(1.0, 2.0, 3.0, 4.0))
        assert distribution.yield_fmax(0.5) >= distribution.yield_fmax(0.99)


class TestFunctionalYield:
    def test_yield_decays_with_device_count(self):
        assert functional_yield(100, 0.999) > functional_yield(1000, 0.999)

    def test_published_yield_range_kills_large_designs(self):
        """Even at the paper's best measured device yield (99%), a
        thousand-device design is hopeless -- the quantitative teeth
        behind minimizing gate count in printed technologies."""
        best = EGFET_DEVICE_YIELD_RANGE[1]
        assert functional_yield(1000, best) < 1e-4

    def test_small_cores_win_cost_per_working_unit(self):
        """At equal device yield, the TP-ISA core's area advantage over
        light8080 *grows* once yield is priced in."""
        library = egfet_library()
        tp = area_report(generate_core(CoreConfig(datawidth=8)), library)
        device_yield = 0.9995
        tp_devices = tp.transistors + tp.resistors
        tp_cost = cost_per_working_unit(
            tp.total, functional_yield(tp_devices, device_yield)
        )
        # light8080: published 1948 gates; devices estimated with the
        # same per-gate device density as the TP core.
        density = tp_devices / tp.gate_count
        legacy_devices = int(1948 * density)
        from repro.baselines.specs import BASELINE_SPECS

        legacy_area = BASELINE_SPECS["light8080"].egfet.area
        legacy_cost = cost_per_working_unit(
            legacy_area, functional_yield(legacy_devices, device_yield)
        )
        raw_ratio = legacy_area / tp.total
        yielded_ratio = legacy_cost / tp_cost
        assert yielded_ratio > raw_ratio

    def test_required_device_yield(self):
        needed = required_device_yield(1500, target_yield=0.9)
        assert 0.99 < needed < 1.0
        assert functional_yield(1500, needed) == pytest.approx(0.9, rel=1e-6)

    def test_validation(self):
        with pytest.raises(PDKError):
            functional_yield(10, 0.0)
        with pytest.raises(PDKError):
            required_device_yield(10, 1.0)
        assert cost_per_working_unit(1.0, 0.0) == float("inf")
