"""Tests locking the published Table 2 characteristics into the libraries."""

import pytest

from repro.pdk import cnt_tft_library, egfet_library
from repro.units import mm2, nJ, us

EXPECTED_CELLS = {
    "INVX1",
    "NAND2X1",
    "NOR2X1",
    "AND2X1",
    "OR2X1",
    "XOR2X1",
    "XNOR2X1",
    "LATCHX1",
    "DFFX1",
    "DFFNRX1",
    "TSBUFX1",
}


@pytest.fixture(scope="module")
def egfet():
    return egfet_library()


@pytest.fixture(scope="module")
def cnt():
    return cnt_tft_library()


class TestEgfetLibrary:
    def test_cell_roster_matches_paper(self, egfet):
        assert set(egfet.cells) == EXPECTED_CELLS

    def test_supply_voltage_is_1v(self, egfet):
        assert egfet.vdd == 1.0

    def test_table2_spot_values(self, egfet):
        inv = egfet.cell("INVX1")
        assert inv.area == pytest.approx(mm2(0.224))
        assert inv.energy == pytest.approx(nJ(9.8))
        assert inv.rise_delay == pytest.approx(us(1212))
        assert inv.fall_delay == pytest.approx(us(174))
        dff = egfet.cell("DFFX1")
        assert dff.area == pytest.approx(mm2(1.41))
        assert dff.energy == pytest.approx(nJ(2360))

    def test_dff_dominates_inverter(self, egfet):
        """The paper's key architectural driver: DFFs are very expensive."""
        assert egfet.dff_to_inverter_area_ratio() > 6.0
        ratio = egfet.cell("DFFX1").energy / egfet.cell("INVX1").energy
        assert ratio > 200

    def test_rise_slower_than_fall(self, egfet):
        """Resistor pull-ups make rising edges the slow ones."""
        for cell in egfet:
            assert cell.rise_delay > cell.fall_delay

    def test_resistor_counts_present(self, egfet):
        """Transistor-resistor logic uses printed pull-up resistors."""
        assert all(cell.resistors >= 1 for cell in egfet)


class TestCntLibrary:
    def test_cell_roster_matches_paper(self, cnt):
        assert set(cnt.cells) == EXPECTED_CELLS

    def test_supply_voltage_is_3v(self, cnt):
        assert cnt.vdd == 3.0

    def test_table2_spot_values(self, cnt):
        nand = cnt.cell("NAND2X1")
        assert nand.area == pytest.approx(mm2(0.003))
        assert nand.energy == pytest.approx(nJ(10.01))
        assert nand.rise_delay == pytest.approx(us(0.088))
        assert nand.fall_delay == pytest.approx(us(7.99))

    def test_pseudo_cmos_has_no_resistors(self, cnt):
        assert all(cell.resistors == 0 for cell in cnt)

    def test_registers_relatively_more_expensive_than_egfet(self, cnt, egfet):
        """Section 8: CNT cores gain more from PS-ISA because CNT
        registers are costlier *relative to logic* than EGFET ones."""
        cnt_ratio = cnt.cell("DFFX1").area / cnt.cell("NAND2X1").area
        egfet_ratio = egfet.cell("DFFX1").area / egfet.cell("NAND2X1").area
        assert cnt_ratio > egfet_ratio


class TestCrossTechnology:
    def test_cnt_cells_much_smaller(self, egfet, cnt):
        for name in EXPECTED_CELLS:
            assert cnt.cell(name).area < egfet.cell(name).area / 10

    def test_cnt_cells_much_faster(self, egfet, cnt):
        for name in EXPECTED_CELLS:
            assert cnt.cell(name).worst_delay < egfet.cell(name).worst_delay / 50

    def test_libraries_are_cached_singletons(self):
        assert egfet_library() is egfet_library()
        assert cnt_tft_library() is cnt_tft_library()
