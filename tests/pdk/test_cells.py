"""Unit tests for the standard-cell data structures."""

import pytest

from repro.errors import PDKError, UnknownCellError
from repro.pdk.cells import CellKind, CellLibrary, StandardCell, build_cells


def make_cell(**overrides):
    base = dict(
        name="INVX1",
        kind=CellKind.COMBINATIONAL,
        area=1e-6,
        energy=1e-9,
        rise_delay=1e-3,
        fall_delay=2e-4,
        inputs=1,
        transistors=1,
        resistors=1,
    )
    base.update(overrides)
    return StandardCell(**base)


class TestStandardCell:
    def test_worst_delay_is_max_of_edges(self):
        cell = make_cell(rise_delay=3.0, fall_delay=1.0)
        assert cell.worst_delay == 3.0

    def test_mean_delay_averages_edges(self):
        cell = make_cell(rise_delay=3.0, fall_delay=1.0)
        assert cell.mean_delay == pytest.approx(2.0)

    def test_sequential_flag(self):
        assert make_cell(kind=CellKind.SEQUENTIAL, inputs=2).is_sequential
        assert not make_cell().is_sequential

    @pytest.mark.parametrize(
        "field,value",
        [("area", 0.0), ("energy", -1.0), ("rise_delay", 0.0), ("fall_delay", -2.0), ("inputs", 0)],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(PDKError):
            make_cell(**{field: value})


class TestCellLibrary:
    def make_library(self):
        cells = {"INVX1": make_cell(), "DFFX1": make_cell(name="DFFX1", kind=CellKind.SEQUENTIAL, inputs=2, area=5e-6)}
        return CellLibrary(
            name="TEST",
            vdd=1.0,
            logic_family="tr",
            printing_route="inkjet",
            cells=cells,
            mobility=100.0,
            feature_length=1e-6,
        )

    def test_lookup_and_contains(self):
        library = self.make_library()
        assert library.cell("INVX1").name == "INVX1"
        assert "DFFX1" in library
        assert "NAND2X1" not in library

    def test_unknown_cell_raises_with_context(self):
        library = self.make_library()
        with pytest.raises(UnknownCellError) as excinfo:
            library.cell("NAND9000")
        assert excinfo.value.name == "NAND9000"
        assert excinfo.value.library == "TEST"

    def test_kind_partitions(self):
        library = self.make_library()
        assert [c.name for c in library.sequential_cells()] == ["DFFX1"]
        assert [c.name for c in library.combinational_cells()] == ["INVX1"]

    def test_dff_inverter_ratio(self):
        library = self.make_library()
        assert library.dff_to_inverter_area_ratio() == pytest.approx(5.0)

    def test_empty_library_rejected(self):
        with pytest.raises(PDKError):
            CellLibrary(
                name="EMPTY",
                vdd=1.0,
                logic_family="tr",
                printing_route="inkjet",
                cells={},
                mobility=1.0,
                feature_length=1e-6,
            )

    def test_iteration_and_len(self):
        library = self.make_library()
        assert len(library) == 2
        assert {c.name for c in library} == {"INVX1", "DFFX1"}


def test_build_cells_round_trips_rows():
    rows = {"INVX1": (CellKind.COMBINATIONAL, 1e-6, 1e-9, 1e-3, 2e-4, 1, 1, 1)}
    cells = build_cells(rows)
    assert cells["INVX1"].area == 1e-6
    assert cells["INVX1"].inputs == 1
