"""Tests for the transistor-resistor compact model and its calibration."""

import math

import pytest

from repro.errors import PDKError
from repro.pdk import cnt_tft_library, egfet_library
from repro.pdk.compact import (
    DeviceParams,
    GateTopology,
    STANDARD_TOPOLOGIES,
    estimate_all,
    estimate_gate,
)
from repro.pdk.characterize import (
    calibrate_cnt,
    calibrate_egfet,
    compare_library,
    worst_log_error,
)


def make_params(**overrides):
    base = dict(
        mobility=1e-2,
        cox=3e-2,
        width=200e-6,
        length=40e-6,
        vth=0.17,
        vdd=1.0,
        contact_degradation=100.0,
        pullup_ratio=7.0,
        hold_time=0.05,
    )
    base.update(overrides)
    return DeviceParams(**base)


class TestDeviceParams:
    def test_on_current_positive_and_degraded(self):
        clean = make_params(contact_degradation=1.0)
        dirty = make_params(contact_degradation=10.0)
        assert dirty.on_current == pytest.approx(clean.on_current / 10.0)

    def test_pullup_exceeds_on_resistance(self):
        params = make_params()
        assert params.pullup_resistance > params.on_resistance

    def test_vdd_below_vth_rejected(self):
        with pytest.raises(PDKError):
            make_params(vdd=0.1, vth=0.17)

    def test_degradation_below_one_rejected(self):
        with pytest.raises(PDKError):
            make_params(contact_degradation=0.5)


class TestGateEstimates:
    def test_rise_slower_than_fall_for_resistor_load(self):
        params = make_params()
        estimate = estimate_gate(params, STANDARD_TOPOLOGIES["INVX1"])
        assert estimate.rise_delay > estimate.fall_delay

    def test_more_stages_cost_more_delay(self):
        params = make_params()
        inv = estimate_gate(params, STANDARD_TOPOLOGIES["INVX1"])
        and2 = estimate_gate(params, STANDARD_TOPOLOGIES["AND2X1"])
        assert and2.rise_delay > inv.rise_delay

    def test_fanout_increases_delay(self):
        params = make_params()
        topo = STANDARD_TOPOLOGIES["NAND2X1"]
        light = estimate_gate(params, topo, fanout=1.0)
        heavy = estimate_gate(params, topo, fanout=4.0)
        assert heavy.rise_delay > light.rise_delay

    def test_estimate_all_covers_topologies(self):
        estimates = estimate_all(make_params())
        assert set(estimates) == set(STANDARD_TOPOLOGIES)


class TestCalibration:
    def test_egfet_inverter_anchored_exactly(self):
        library = egfet_library()
        params = calibrate_egfet(library)
        comparisons = compare_library(library, params)
        inv = comparisons["INVX1"]
        assert inv.rise_ratio == pytest.approx(1.0, rel=1e-6)
        assert inv.fall_ratio == pytest.approx(1.0, rel=1e-6)
        assert inv.energy_ratio == pytest.approx(1.0, rel=1e-3)

    def test_egfet_library_consistent_with_rc_model(self):
        """Every EGFET cell's delay within one order of magnitude of
        the first-order RC prediction from its topology."""
        library = egfet_library()
        comparisons = compare_library(library, calibrate_egfet(library))
        assert worst_log_error(comparisons) < 1.0

    def test_cnt_library_consistent_with_rc_model(self):
        library = cnt_tft_library()
        comparisons = compare_library(library, calibrate_cnt(library))
        # Pseudo-CMOS asymmetries are larger; allow a wider band.
        assert worst_log_error(comparisons) < 2.0

    def test_dff_energy_predicted_to_dominate(self):
        """The compact model reproduces the DFF-vs-INV energy gap that
        drives the paper's single-stage-pipeline conclusion."""
        library = egfet_library()
        estimates = estimate_all(calibrate_egfet(library))
        assert estimates["DFFX1"].energy > 3 * estimates["INVX1"].energy
