"""Exception hierarchy for the printed-microprocessors reproduction.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing assembly errors from simulation errors, etc.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class PDKError(ReproError):
    """A standard-cell library or compact-model query failed."""


class UnknownCellError(PDKError):
    """A cell name was requested that the library does not provide."""

    def __init__(self, name: str, library: str) -> None:
        super().__init__(f"cell {name!r} is not in library {library!r}")
        self.name = name
        self.library = library


class NetlistError(ReproError):
    """A netlist was constructed or queried inconsistently."""


class MappingError(NetlistError):
    """Technology mapping failed (unknown logic op or bad arity)."""


class TimingError(NetlistError):
    """Static timing analysis failed (e.g. combinational loop)."""


class SimulationError(ReproError):
    """Gate-level or instruction-level simulation failed."""


class UnsupportedInLaneMode(SimulationError):
    """A scalar-only feature was requested from a lane-packed run.

    Bit-parallel and numpy bit-slice simulators advance many
    independent runs per pass and do not maintain per-instance toggle
    counters (each lane would need a popcount per instance per cycle).
    Callers that need toggle/power data must use a scalar backend;
    asking a lane simulator raises this instead of silently returning
    stale zeros.
    """

    def __init__(self, feature: str, simulator: str) -> None:
        super().__init__(
            f"{feature} is not available in lane mode ({simulator} packs "
            "many independent runs per pass and keeps no per-instance "
            "toggle state); use CycleSimulator with backend='interpreted' "
            "or 'compiled' when toggle/power data is needed"
        )
        self.feature = feature
        self.simulator = simulator


class IsaError(ReproError):
    """An instruction could not be encoded, decoded, or validated."""


class AssemblerError(ReproError):
    """Assembly source was malformed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line


class ProgramError(ReproError):
    """A program image violated a machine constraint (size, width...)."""


class MemoryModelError(ReproError):
    """A memory-array model was configured inconsistently."""


class PlacementError(ReproError):
    """A design could not be placed on a printed fabric.

    Raised for malformed fabrics, unknown fabric names, and designs
    whose slot demand overflows the fabric's capacity (the message
    carries the fit report's per-kind diagnostics).
    """


class ConfigError(ReproError):
    """A core or system configuration was invalid."""
