"""Plain-text rendering of tables and series.

Every benchmark harness prints through these helpers so the regenerated
tables read like the paper's.
"""

from __future__ import annotations

from typing import Sequence


def render_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width table with a title rule."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells)) if cells else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def render_series(title: str, points: Sequence[tuple], labels: tuple[str, str]) -> str:
    """Two-column (x, y) series rendering for figure data."""
    return render_table(title, labels, points)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
