"""Whole-suite system evaluation: the Figure 8 / Table 8 grid.

One call evaluates every benchmark version on every runnable
single-stage core, in every requested printed technology -- the full
grid behind Figure 8's subplots and Table 8's columns.  Each grid cell
(one benchmark version in one technology) is an independent unit of
work, so :func:`evaluate_suite` fans cells out across worker processes
via :func:`repro.exec.parallel_map`; results come back in grid order
and are bit-exact against the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.eval.figures import fig8_benchmark
from repro.eval.system import SystemMetrics
from repro.exec import parallel_map
from repro.pdk import canonical_technology
from repro.programs.suite import BENCHMARKS

#: Technologies evaluated by default (both printed processes).
DEFAULT_TECHNOLOGIES = ("EGFET", "CNT")


@dataclass(frozen=True)
class SuiteResult:
    """One grid cell: a benchmark version in one technology.

    ``metrics`` holds one :class:`SystemMetrics` per runnable
    single-stage core, ending with the program-specific system when
    the benchmark runs at its native width -- exactly the bars of one
    Figure 8 subplot.
    """

    program: str
    kernel_width: int
    technology: str
    metrics: tuple[SystemMetrics, ...]


def suite_grid(
    technologies: tuple[str, ...] = DEFAULT_TECHNOLOGIES,
) -> list[tuple[str, int, str]]:
    """Deterministic cell order: registry order x widths x technologies."""
    return [
        (name, kernel_width, canonical_technology(technology))
        for name, spec in BENCHMARKS.items()
        for kernel_width in spec.kernel_widths
        for technology in technologies
    ]


def _suite_cell(cell: tuple[str, int, str]) -> SuiteResult:
    """Worker entry: evaluate one grid cell (module-level for pickling)."""
    name, kernel_width, technology = cell
    return SuiteResult(
        program=name,
        kernel_width=kernel_width,
        technology=technology,
        metrics=tuple(fig8_benchmark(name, kernel_width, technology)),
    )


def evaluate_suite(
    technologies: tuple[str, ...] = DEFAULT_TECHNOLOGIES,
    jobs: int | None = None,
) -> list[SuiteResult]:
    """Evaluate the full Figure 8 / Table 8 grid.

    Args:
        technologies: Printed technologies to evaluate (aliases accepted).
        jobs: Worker processes (``None`` defers to ``--jobs`` /
            ``REPRO_JOBS`` / serial).  Output order and values are
            identical for any job count.
    """
    cells = suite_grid(technologies)
    with obs.span("evaluate_suite", cells=len(cells)):
        return parallel_map(_suite_cell, cells, jobs=jobs, label="evaluate_suite")
