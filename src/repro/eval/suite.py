"""Whole-suite system evaluation: the Figure 8 / Table 8 grid.

One call evaluates every benchmark version on every runnable
single-stage core, in every requested printed technology -- the full
grid behind Figure 8's subplots and Table 8's columns.  Each grid cell
(one benchmark version in one technology) is an independent unit of
work, so :func:`evaluate_suite` fans cells out across worker processes
via :func:`repro.exec.parallel_map`; results come back in grid order
and are bit-exact against the serial run.

:func:`verify_suite` additionally gate-level-verifies every
native-width benchmark against the instruction-set simulator before
(or independently of) an evaluation run, packing all programs that
share a core configuration into the lanes of *one* lane-parallel
simulation (:func:`repro.verify.differential.lane_verify`) -- the
numpy bit-slice backend makes this a few kernel streams for the whole
suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.coregen.config import CoreConfig
from repro.errors import SimulationError
from repro.eval.figures import fig8_benchmark
from repro.eval.system import SystemMetrics
from repro.exec import parallel_map
from repro.netlist.compile import BitParallelSimulator
from repro.netlist.nsim import NumpySimulator
from repro.pdk import canonical_technology
from repro.programs.suite import BENCHMARKS, build_benchmark

#: Technologies evaluated by default (both printed processes).
DEFAULT_TECHNOLOGIES = ("EGFET", "CNT")

#: Lane-parallel simulators selectable for suite verification.
LANE_BACKENDS = {"batched": BitParallelSimulator, "numpy": NumpySimulator}


@dataclass(frozen=True)
class SuiteResult:
    """One grid cell: a benchmark version in one technology.

    ``metrics`` holds one :class:`SystemMetrics` per runnable
    single-stage core, ending with the program-specific system when
    the benchmark runs at its native width -- exactly the bars of one
    Figure 8 subplot.
    """

    program: str
    kernel_width: int
    technology: str
    metrics: tuple[SystemMetrics, ...]


def suite_grid(
    technologies: tuple[str, ...] = DEFAULT_TECHNOLOGIES,
) -> list[tuple[str, int, str]]:
    """Deterministic cell order: registry order x widths x technologies."""
    return [
        (name, kernel_width, canonical_technology(technology))
        for name, spec in BENCHMARKS.items()
        for kernel_width in spec.kernel_widths
        for technology in technologies
    ]


def _suite_cell(cell: tuple[str, int, str]) -> SuiteResult:
    """Worker entry: evaluate one grid cell (module-level for pickling)."""
    name, kernel_width, technology = cell
    return SuiteResult(
        program=name,
        kernel_width=kernel_width,
        technology=technology,
        metrics=tuple(fig8_benchmark(name, kernel_width, technology)),
    )


def verify_groups() -> list[tuple[CoreConfig, list[str], list]]:
    """Native-width benchmarks grouped by core configuration.

    Every benchmark version that runs at its native width (core width
    == kernel width) lands in the group of the single-stage core that
    executes it; one group therefore becomes one lane-packed
    simulation in :func:`verify_suite`.
    """
    by_width: dict[int, tuple[list[str], list]] = {}
    for name, spec in BENCHMARKS.items():
        for width in spec.kernel_widths:
            if not spec.supports(width, width):
                continue
            names, programs = by_width.setdefault(width, ([], []))
            names.append(f"{name}{width}")
            programs.append(build_benchmark(name, width, width))
    return [
        (CoreConfig(datawidth=width, num_bars=2), names, programs)
        for width, (names, programs) in sorted(by_width.items())
    ]


def verify_suite(backend: str = "numpy") -> dict[str, int]:
    """Gate-level-verify every native benchmark against the ISS.

    All programs sharing a core configuration are packed into the
    lanes of *one* lane-parallel simulation, so the whole suite costs
    one gate-level pass per core width.  ``backend`` selects the lane
    simulator (``"numpy"`` or ``"batched"``).

    Returns:
        ``{config_name: programs_verified}`` for each core swept.

    Raises:
        SimulationError: If any lane disagrees with the ISS, listing
            every mismatching benchmark and its divergence details.
    """
    from repro.verify.differential import lane_verify

    simulator = LANE_BACKENDS.get(backend)
    if simulator is None:
        choices = ", ".join(sorted(LANE_BACKENDS))
        raise SimulationError(
            f"unknown lane backend {backend!r} (choose from {choices})"
        )
    verified: dict[str, int] = {}
    failures: list[str] = []
    with obs.span("verify_suite", backend=backend):
        for config, names, programs in verify_groups():
            reports = lane_verify(programs, config, simulator=simulator)
            for name, details in zip(names, reports):
                if details:
                    shown = "; ".join(details[:4])
                    failures.append(f"{name} @ {config.name}: {shown}")
            verified[config.name] = len(programs)
    if failures:
        raise SimulationError(
            f"suite verification failed on {backend} backend: "
            + " | ".join(failures)
        )
    return verified


def evaluate_suite(
    technologies: tuple[str, ...] = DEFAULT_TECHNOLOGIES,
    jobs: int | None = None,
    verify_backend: str | None = None,
) -> list[SuiteResult]:
    """Evaluate the full Figure 8 / Table 8 grid.

    Args:
        technologies: Printed technologies to evaluate (aliases accepted).
        jobs: Worker processes (``None`` defers to ``--jobs`` /
            ``REPRO_JOBS`` / serial).  Output order and values are
            identical for any job count.
        verify_backend: When set (``"numpy"`` or ``"batched"``),
            gate-level-verify every native benchmark via
            :func:`verify_suite` before evaluating; a divergence
            aborts the run.
    """
    if verify_backend is not None:
        verify_suite(verify_backend)
    cells = suite_grid(technologies)
    with obs.span("evaluate_suite", cells=len(cells)):
        return parallel_map(_suite_cell, cells, jobs=jobs, label="evaluate_suite")
