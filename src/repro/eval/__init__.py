"""System-level evaluation: core + ROM + RAM composition and the
regeneration of every table and figure in the paper."""

from repro.eval.system import SystemMetrics, evaluate_system

__all__ = ["SystemMetrics", "evaluate_system"]
