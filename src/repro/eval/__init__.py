"""System-level evaluation: core + ROM + RAM composition and the
regeneration of every table and figure in the paper."""

from repro.eval.suite import SuiteResult, evaluate_suite, verify_suite
from repro.eval.system import SystemMetrics, evaluate_system

__all__ = [
    "SuiteResult",
    "SystemMetrics",
    "evaluate_suite",
    "evaluate_system",
    "verify_suite",
]
