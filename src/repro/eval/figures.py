"""Regeneration of the paper's figure data series (Figures 4-8).

Each ``figN_*`` function returns structured series suitable both for
test assertions and for plain-text printing by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.specs import BASELINE_SPECS
from repro.coregen.config import CoreConfig
from repro.dse.sweep import DesignPoint, sweep_design_space
from repro.eval.system import SystemMetrics, evaluate_system
from repro.isa.disasm import disassemble
from repro.isa.spec import Mnemonic, OP_TABLE
from repro.power.battery import PRINTED_BATTERIES
from repro.power.lifetime import lifetime_hours
from repro.programs import BENCHMARKS, build_benchmark

#: Duty fractions swept on the Figure 4/5 x-axis.
DUTY_FRACTIONS = (1.0, 0.5, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001)


@dataclass(frozen=True)
class LifetimeSeries:
    """One (core, battery) lifetime-vs-duty curve."""

    core: str
    battery: str
    points: tuple[tuple[float, float], ...]  # (duty fraction, hours)


def fig4_lifetime(technology: str = "EGFET") -> list[LifetimeSeries]:
    """Figures 4 (EGFET) / 5 (CNT-TFT): legacy-core battery lifetime
    vs duty cycle for the four printed batteries."""
    series = []
    for spec in BASELINE_SPECS.values():
        active_power = spec.point(technology).power
        for battery in PRINTED_BATTERIES:
            points = tuple(
                (fraction, lifetime_hours(battery, active_power, fraction))
                for fraction in DUTY_FRACTIONS
            )
            series.append(
                LifetimeSeries(core=spec.name, battery=battery.name, points=points)
            )
    return series


def fig5_lifetime() -> list[LifetimeSeries]:
    """Figure 5 is Figure 4 in the CNT-TFT technology."""
    return fig4_lifetime("CNT-TFT")


def fig6_isa_listing() -> list[tuple[str, str, str]]:
    """Figure 6: one row per instruction: mnemonic, format, control
    bits (W C A B), rendered through the disassembler's syntax."""
    rows = []
    for mnemonic, spec in OP_TABLE.items():
        control = f"{spec.w}{spec.c}{spec.a}{spec.b}"
        rows.append((mnemonic.value, f"{spec.fmt}-type", control))
    return rows


def fig7_design_space(technology: str = "EGFET") -> list[DesignPoint]:
    """Figure 7: fmax/area/power over the 24-point sweep."""
    return sweep_design_space(technology)


#: The core configurations whose bars Figure 8 shows (single-stage).
FIG8_CORES = (
    CoreConfig(datawidth=4, num_bars=2),
    CoreConfig(datawidth=4, num_bars=4),
    CoreConfig(datawidth=8, num_bars=2),
    CoreConfig(datawidth=8, num_bars=4),
    CoreConfig(datawidth=16, num_bars=2),
    CoreConfig(datawidth=16, num_bars=4),
    CoreConfig(datawidth=32, num_bars=2),
    CoreConfig(datawidth=32, num_bars=4),
)


def fig8_benchmark(
    name: str, kernel_width: int, technology: str = "EGFET"
) -> list[SystemMetrics]:
    """Figure 8, one subplot: every runnable single-stage core on one
    benchmark version, ending with the program-specific system."""
    spec = BENCHMARKS[name]
    results = []
    for config in FIG8_CORES:
        if not spec.supports(kernel_width, config.datawidth):
            continue
        if spec.uses_bars and config.num_bars < 2:
            continue
        program = build_benchmark(
            name, kernel_width, config.datawidth, num_bars=config.num_bars
        )
        results.append(evaluate_system(program, config, technology))
    # Rightmost bar: the program-specific system at native width.
    if spec.supports(kernel_width, kernel_width):
        program = build_benchmark(name, kernel_width, kernel_width)
        results.append(
            evaluate_system(program, technology=technology, program_specific=True)
        )
    return results


def fig8_dtree_romopt(technology: str = "EGFET") -> tuple[SystemMetrics, SystemMetrics]:
    """The dTree-ROMopt comparison: 1-bit vs 2-bit MLC instruction ROM."""
    program = build_benchmark("dTree", 8, 8)
    base = evaluate_system(program, technology=technology)
    optimized = evaluate_system(program, technology=technology, rom_bits_per_cell=2)
    return base, optimized
