"""Regeneration of every table in the paper (Tables 1-8).

Each ``tableN_*`` function returns ``(headers, rows)``; pair with
:func:`repro.eval.report.render_table` to print.  Where a table is pure
published data (process comparisons, application requirements) the
rows come from the corresponding catalogue module; where it is a
measurement the rows are computed live from the models.
"""

from __future__ import annotations

from repro.apps.requirements import APPLICATIONS
from repro.baselines.kernels import BASELINE_CORES, run_baseline
from repro.baselines.model import structural_report
from repro.baselines.specs import BASELINE_SPECS
from repro.coregen.config import CoreConfig
from repro.eval.system import evaluate_system
from repro.isa.analysis import analyze_program
from repro.memory.devices import EGFET_MEMORY_DEVICES
from repro.memory.ram import SramArray
from repro.pdk import cnt_tft_library, egfet_library
from repro.power.battery import REFERENCE_BUDGET_J
from repro.programs import BENCHMARKS, build_benchmark
from repro.sim.machine import Machine
from repro.units import (
    to_cm2, to_mm2, to_ms, to_mW, to_nJ, to_us, to_uW,
)

#: Table 1 rows: (process, route, operating voltage V, mobility cm^2/Vs).
PRINTED_TECHNOLOGIES = (
    ("EGFET", "Inkjet", "<1", 126.0),
    ("IOTFT", "Solution/inkjet", "40", 1.0),
    ("OTFT (Ramon)", "Inkjet", "30", 2e-4),
    ("OTFT (Chung)", "Inkjet", "50", 0.02),
    ("OTFT (Kang)", "Gravure-inkjet", "15", 1.0),
    ("Carbon Nanotube", "Solution/shadow mask", "1-2", 25.0),
    ("OTFT (Chang)", "Shadow mask", "5-10", 0.16),
    ("SAM OTFT", "Shadow mask", "2", 0.5),
    ("OTFT (Plassmeyer)", "Shadow mask", "20-40", 11.0),
)


def table1_technologies():
    """Table 1: printed/flexible technology comparison."""
    headers = ("Process", "Route", "Voltage [V]", "Mobility [cm2/Vs]")
    return headers, list(PRINTED_TECHNOLOGIES)


def table2_standard_cells():
    """Table 2: per-cell area/energy/delay for both libraries."""
    egfet = egfet_library()
    cnt = cnt_tft_library()
    headers = (
        "Cell", "Area mm2 (EGFET)", "Area mm2 (CNT)",
        "Energy nJ (EGFET)", "Energy nJ (CNT)",
        "Rise us (EGFET)", "Rise us (CNT)",
        "Fall us (EGFET)", "Fall us (CNT)",
    )
    rows = []
    for name in egfet.cells:
        e, c = egfet.cell(name), cnt.cell(name)
        rows.append((
            name,
            to_mm2(e.area), to_mm2(c.area),
            to_nJ(e.energy), to_nJ(c.energy),
            to_us(e.rise_delay), to_us(c.rise_delay),
            to_us(e.fall_delay), to_us(c.fall_delay),
        ))
    return headers, rows


def table3_applications():
    """Table 3: application requirements catalogue."""
    headers = ("Application", "Sample Rate (Hz)", "Precision (bits)", "Duty Cycle")
    rows = [
        (a.name, a.sample_rate_hz, a.precision_bits, a.duty_cycle.value)
        for a in APPLICATIONS
    ]
    return headers, rows


def table4_baseline_cores():
    """Table 4: baseline core characterization (published inputs plus
    the structural-model cross-check ratio)."""
    headers = (
        "CPU", "ISA", "CPI",
        "Fmax Hz (EGFET/CNT)", "Gates (EGFET/CNT)",
        "Area cm2 (EGFET/CNT)", "Power mW (EGFET/CNT)",
        "Model/published area (EGFET)",
    )
    rows = []
    for spec in BASELINE_SPECS.values():
        check = structural_report(spec, egfet_library())
        rows.append((
            spec.name,
            spec.isa,
            f"{spec.cpi_min}-{spec.cpi_max}",
            f"{spec.egfet.fmax:g}/{spec.cnt.fmax:g}",
            f"{spec.egfet.gate_count}/{spec.cnt.gate_count}",
            f"{to_cm2(spec.egfet.area):.2f}/{to_cm2(spec.cnt.area):.2f}",
            f"{to_mW(spec.egfet.power):.1f}/{to_mW(spec.cnt.power):.1f}",
            round(check.area_ratio, 2),
        ))
    return headers, rows


#: Table 5 benchmark order (the 16-bit inSort variant matches the
#: array-of-16 C kernels the paper compiled).
TABLE5_BENCHMARKS = ("mult", "div", "inSort16", "intAvg", "tHold", "crc8", "dTree")


def table5_imem_overhead():
    """Table 5: instruction-memory (EGFET RAM) overhead per benchmark,
    from our hand-written baseline kernels' static sizes."""
    headers = ["CPU"]
    for name in TABLE5_BENCHMARKS:
        headers += [f"{name} A cm2", f"{name} P mW"]
    rows = []
    for core in BASELINE_CORES:
        row = [core]
        for benchmark in TABLE5_BENCHMARKS:
            run = run_baseline(core, benchmark)
            ram = SramArray(words=run.size_bits, bits_per_word=1)
            row += [to_cm2(ram.area), to_mW(ram.worst_case_power)]
        rows.append(tuple(row))
    return tuple(headers), rows


def table6_memory_devices():
    """Table 6: EGFET memory-device characteristics."""
    headers = ("Component", "Area mm2", "Active Power uW", "Static Power uW", "Delay ms")
    rows = [
        (
            spec.name,
            to_mm2(spec.area),
            to_uW(spec.active_power),
            to_uW(spec.static_power),
            to_ms(spec.delay),
        )
        for spec in EGFET_MEMORY_DEVICES.values()
    ]
    return headers, rows


#: Table 7 rows are the native-width, 2-BAR benchmark variants.
TABLE7_BENCHMARKS = ("crc8", "div", "dTree", "inSort", "intAvg", "mult", "tHold")


def table7_program_specific():
    """Table 7: program-specific architectural state per benchmark."""
    headers = (
        "Benchmark", "PC Size", "BAR Size", "# of BARs", "# of flags",
        "Instruction Size",
    )
    rows = []
    for name in TABLE7_BENCHMARKS:
        program = build_benchmark(name, 8, 8)
        machine = Machine(program)
        machine.run()
        analysis = analyze_program(program, data_words=machine.stats.data_words_used())
        rows.append((
            name,
            analysis.pc_bits,
            analysis.bar_bits if analysis.bar_bits is not None else "N/A",
            analysis.num_bars,
            analysis.num_flags,
            f"{analysis.instruction_bits} bits",
        ))
    return headers, rows


def table8_battery_iterations():
    """Table 8: max iterations on a 1 V, 30 mAh battery, standard vs
    program-specific cores, per benchmark and kernel width."""
    headers = (
        "Benchmark",
        "8-bit STD", "8-bit PS",
        "16-bit STD", "16-bit PS",
        "32-bit STD", "32-bit PS",
    )
    rows = []
    for name, spec in BENCHMARKS.items():
        row = [name]
        for width in (8, 16, 32):
            if not spec.supports(width, width):
                row += ["", ""]
                continue
            program = build_benchmark(name, width, width)
            for program_specific in (False, True):
                metrics = evaluate_system(program, program_specific=program_specific)
                row.append(int(REFERENCE_BUDGET_J // metrics.total_energy))
        rows.append(tuple(row))
    return headers, rows
