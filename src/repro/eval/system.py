"""Full-system evaluation: TP-ISA core + crosspoint ROM + SRAM.

This is Section 8's methodology: the instruction memory is a crosspoint
ROM "just large enough to store exactly as many static instructions as
exist in the program", the data memory an SRAM with "exactly as many
entries as are required by the application", and the core a generated
single-stage netlist.  Dynamic counts come from the instruction-set
simulator; physical characteristics from the netlist analyses and the
memory models.

Timing composition (one memory-memory instruction per cycle):

* core time      = cycles x critical-path delay,
* IM time        = fetches x ROM read latency,
* DM time        = (parallel-read phases + write phases) x RAM latency,

and total execution time is their sum -- matching Figure 8's stacked
execution-time bars.  Energy composes the same way, with memory static
power integrated over the total runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.coregen.config import CoreConfig, program_specific_config
from repro.coregen.generator import generate_core
from repro.isa.analysis import analyze_program
from repro.isa.program import Program
from repro.memory.ram import SramArray
from repro.memory.rom import CrosspointRom
from repro.netlist.power import power_report
from repro.netlist.sta import timing_report
from repro.netlist.stats import area_report
from repro import obs
from repro.pdk import canonical_technology, technology_library
from repro.sim.machine import Machine
from repro.sim.pipeline import cycles_for


@dataclass(frozen=True)
class SystemMetrics:
    """Everything Figure 8 / Table 8 report for one (program, core).

    Areas in m^2, energies in J, times in seconds, power in W.
    """

    program: str
    core_name: str
    technology: str
    program_specific: bool
    # Static instruction/data footprint.
    static_instructions: int
    data_words: int
    # Area breakdown (Figure 8 top).
    core_combinational_area: float
    core_sequential_area: float
    imem_area: float
    dmem_area: float
    # Per-iteration energy breakdown (Figure 8 middle).
    core_combinational_energy: float
    core_sequential_energy: float
    imem_energy: float
    dmem_energy: float
    # Per-iteration execution-time breakdown (Figure 8 bottom).
    core_time: float
    imem_time: float
    dmem_time: float
    # Dynamics.
    cycles: int
    core_fmax: float

    @property
    def total_area(self) -> float:
        return (
            self.core_combinational_area
            + self.core_sequential_area
            + self.imem_area
            + self.dmem_area
        )

    @property
    def core_area(self) -> float:
        return self.core_combinational_area + self.core_sequential_area

    @property
    def total_energy(self) -> float:
        return (
            self.core_combinational_energy
            + self.core_sequential_energy
            + self.imem_energy
            + self.dmem_energy
        )

    @property
    def total_time(self) -> float:
        return self.core_time + self.imem_time + self.dmem_time

    @property
    def average_power(self) -> float:
        return self.total_energy / self.total_time if self.total_time else 0.0


@lru_cache(maxsize=256)
def _core_reports(config: CoreConfig, technology: str):
    # ``technology`` is canonical here (callers normalize), so the
    # cache never splits between "CNT" and its "CNT-TFT" alias.
    netlist = generate_core(config)
    library = technology_library(technology)
    return (
        area_report(netlist, library),
        power_report(netlist, library),
        timing_report(netlist, library),
    )


def evaluate_system(
    program: Program,
    config: CoreConfig | None = None,
    technology: str = "EGFET",
    program_specific: bool = False,
    rom_bits_per_cell: int = 1,
) -> SystemMetrics:
    """Evaluate one benchmark on one core with right-sized memories.

    Args:
        program: The benchmark image (must halt under the ISS).
        config: Core configuration; defaults to a standard single-stage
            core at the program's datawidth/BAR count.
        technology: ``"EGFET"``, ``"CNT"``, or the ``"CNT-TFT"`` alias
            (normalized to canonical ``"CNT"`` before caching).
        program_specific: Shrink the core and memories per the
            Section 7 static analysis before evaluating.
        rom_bits_per_cell: Multi-level-cell depth of the instruction
            ROM (the dTree-ROMopt configuration uses 2).
    """
    technology = canonical_technology(technology)
    if config is None:
        config = CoreConfig(
            datawidth=program.datawidth,
            pipeline_stages=1,
            num_bars=max(2, program.num_bars),
        )

    with obs.span(
        "evaluate_system",
        program=program.name,
        design=config.name,
        technology=technology,
    ):
        return _evaluate_system(
            program, config, technology, program_specific, rom_bits_per_cell
        )


def _evaluate_system(
    program: Program,
    config: CoreConfig,
    technology: str,
    program_specific: bool,
    rom_bits_per_cell: int,
) -> SystemMetrics:
    # Dynamic behaviour (independent of technology).
    machine = Machine(program, num_bars=config.num_bars)
    machine.run()
    stats = machine.stats

    if program_specific:
        analysis = analyze_program(program, data_words=stats.data_words_used())
        config = program_specific_config(config, analysis)
        instruction_bits = analysis.instruction_bits
    else:
        instruction_bits = config.instruction_bits

    area, power, timing = _core_reports(config, technology)

    data_words = max(1, stats.data_words_used())
    rom = CrosspointRom(
        words=max(1, program.static_size),
        bits_per_word=instruction_bits,
        bits_per_cell=rom_bits_per_cell,
        technology=technology,
    )
    ram = SramArray(
        words=data_words, bits_per_word=config.datawidth, technology=technology
    )

    cycles = cycles_for(stats, config.pipeline_stages)
    core_time = cycles * timing.critical_path_delay
    imem_time = stats.fetches * rom.read_delay
    dmem_time = (stats.read_phases + stats.write_phases) * ram.access_delay
    total_time = core_time + imem_time + dmem_time

    scale = cycles  # core energy scales with clocked cycles
    return SystemMetrics(
        program=program.name,
        core_name=config.name + ("_ps" if program_specific else ""),
        technology=technology,
        program_specific=program_specific,
        static_instructions=program.static_size,
        data_words=data_words,
        core_combinational_area=area.combinational,
        core_sequential_area=area.sequential,
        imem_area=rom.area,
        dmem_area=ram.area,
        core_combinational_energy=scale * power.combinational_energy,
        core_sequential_energy=scale * power.sequential_energy,
        imem_energy=stats.fetches * rom.read_energy + rom.static_power * total_time,
        dmem_energy=(
            (stats.memory_reads + stats.memory_writes) * ram.access_energy
            + ram.static_power * total_time
        ),
        core_time=core_time,
        imem_time=imem_time,
        dmem_time=dmem_time,
        cycles=cycles,
        core_fmax=timing.fmax,
    )
