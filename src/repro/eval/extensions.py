"""Extension studies beyond the paper's headline results.

* :func:`evaluate_with_icache` -- the Section 8 future-work direction:
  attach a printed loop cache to hide the CNT ROM latency.
* :func:`throttled_operating_point` -- the paper's other suggestion:
  derate the clock so average power fits a printed battery's maximum
  output.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coregen.config import CoreConfig
from repro.eval.system import SystemMetrics, evaluate_system
from repro.isa.program import Program
from repro.memory.icache import icache_cost, simulate_icache
from repro.pdk import technology_library
from repro.power.battery import PrintedBattery
from repro.sim.machine import Machine
from repro.sim.trace import FetchTrace


@dataclass(frozen=True)
class ICacheStudy:
    """Baseline vs cached system for one benchmark/technology."""

    baseline: SystemMetrics
    cache_words: int
    hit_rate: float
    cached_imem_time: float
    cached_total_time: float
    cached_total_area: float
    cached_total_energy: float

    @property
    def speedup(self) -> float:
        return self.baseline.total_time / self.cached_total_time

    @property
    def area_overhead(self) -> float:
        return self.cached_total_area / self.baseline.total_area - 1.0


def evaluate_with_icache(
    program: Program,
    cache_words: int = 32,
    technology: str = "CNT-TFT",
    config: CoreConfig | None = None,
) -> ICacheStudy:
    """Attach a loop cache in front of the instruction ROM.

    Hits are served at the cache lookup delay; misses pay the full ROM
    latency (plus the lookup) and fill the line.
    """
    baseline = evaluate_system(program, config=config, technology=technology)

    trace = FetchTrace()
    machine = Machine(program, fetch_trace=trace)
    machine.run()
    sim = simulate_icache(trace, cache_words)

    library = technology_library(technology)
    rom_delay = baseline.imem_time / max(1, machine.stats.fetches)
    rom_energy = 0.0
    if machine.stats.fetches:
        rom_energy = baseline.imem_energy / machine.stats.fetches
    cost = icache_cost(
        library, cache_words, instruction_bits=24, pc_bits=8
    )

    cached_imem_time = (
        sim.hits * cost.hit_delay + sim.misses * (rom_delay + cost.hit_delay)
    )
    cached_total_time = baseline.core_time + cached_imem_time + baseline.dmem_time
    cached_energy = (
        baseline.total_energy
        - baseline.imem_energy
        + sim.misses * rom_energy
        + sim.accesses * cost.hit_energy
        + machine.stats.fetches * cost.idle_energy_per_cycle
    )
    return ICacheStudy(
        baseline=baseline,
        cache_words=cache_words,
        hit_rate=sim.hit_rate,
        cached_imem_time=cached_imem_time,
        cached_total_time=cached_total_time,
        cached_total_area=baseline.total_area + cost.area,
        cached_total_energy=cached_energy,
    )


@dataclass(frozen=True)
class OperatingPoint:
    """A battery-compatible clocking of one system."""

    nominal_power: float
    battery_limit: float
    frequency_scale: float
    throttled_time_per_iteration: float

    @property
    def throttled(self) -> bool:
        return self.frequency_scale < 1.0


def throttle_power(
    nominal_power: float, time_per_iteration: float, battery: PrintedBattery
) -> OperatingPoint:
    """Derate the clock so power fits the battery's maximum output.

    Printed batteries top out near 10-45 mW; CNT cores at nominal
    frequency draw watts (Section 8: "CNT-TFT power consumption at
    nominal frequency exceeds the output of currently available
    printed batteries"), so they must run well below fmax -- e.g.
    matched to the instruction-ROM latency as the paper suggests.
    Dynamic power scales with frequency, so runtime stretches by the
    inverse of the derate.
    """
    if nominal_power <= battery.max_power:
        scale = 1.0
    else:
        scale = battery.max_power / nominal_power
    return OperatingPoint(
        nominal_power=nominal_power,
        battery_limit=battery.max_power,
        frequency_scale=scale,
        throttled_time_per_iteration=time_per_iteration / scale,
    )


def throttled_operating_point(
    metrics: SystemMetrics, battery: PrintedBattery
) -> OperatingPoint:
    """Battery-compatible clocking of a full system evaluation."""
    return throttle_power(metrics.average_power, metrics.total_time, battery)
