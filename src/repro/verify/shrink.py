"""Automatic shrinking of divergence-triggering programs.

A fuzz-found failure on a 20-instruction program is noise; the same
failure on 3 instructions is a bug report.  This module reduces a
failing program while preserving the failure, in three deterministic
passes:

1. **ddmin** (Zeller's delta debugging) over the instruction list,
   with branch targets remapped around every deletion so candidates
   stay well-formed;
2. a **greedy** one-at-a-time deletion sweep to squeeze out what ddmin's
   granularity missed;
3. **operand simplification**: offsets toward 0, immediates toward 0/1,
   masks toward 0, BAR-relative operands toward absolute, initial data
   values toward 0.

Candidates that no longer halt on the reference simulator are rejected
outright, so the minimized repro is always a halting program.  The
result can be emitted as a ready-to-run pytest case
(:func:`emit_pytest_case`) that fails while the bug exists and turns
into a regression test once it is fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.coregen.config import CoreConfig
from repro.isa.program import Program
from repro.isa.spec import Instruction, MemOperand, Mnemonic
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import span as _obs_span
from repro.sim.machine import Machine

from repro.verify.differential import (
    DEFAULT_EXECUTORS,
    DEFAULT_MAX_CYCLES,
    differential_check,
)

_CANDIDATES = _obs_counter("verify.shrink_candidates")


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    program: Program
    original_size: int
    candidates_tried: int

    @property
    def size(self) -> int:
        return len(self.program.instructions)


def _remap_subset(program: Program, kept: list[int]) -> Program:
    """The subsequence of ``program`` at indices ``kept`` (sorted),
    with branch targets remapped to the surviving numbering.

    A target maps to the number of kept instructions before it, so
    branches into deleted stretches land on the next survivor and
    one-past-the-end halt targets stay one past the end.
    """
    kept_sorted = sorted(kept)
    instructions = []
    for index in kept_sorted:
        instruction = program.instructions[index]
        if instruction.is_branch:
            new_target = sum(1 for k in kept_sorted if k < instruction.target)
            instruction = Instruction(
                instruction.mnemonic,
                target=new_target,
                mask=instruction.mask,
            )
        instructions.append(instruction)
    return dc_replace(program, instructions=instructions)


def _halts(program: Program, config: CoreConfig, max_cycles: int) -> bool:
    try:
        machine = Machine(
            program,
            mem_size=config.data_memory_words(),
            num_bars=config.num_bars,
        )
        return machine.run(max_steps=max_cycles).halted
    except Exception:
        return False


def make_predicate(
    config: CoreConfig,
    executors=DEFAULT_EXECUTORS,
    fault=None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
):
    """The default "still fails" oracle for :func:`shrink`.

    A candidate must (a) still halt on the reference simulator -- the
    shrinker never trades a divergence for a hang -- and (b) still
    produce at least one differential divergence.
    """

    def predicate(candidate: Program) -> bool:
        _CANDIDATES.inc()
        if not candidate.instructions:
            return False
        if not _halts(candidate, config, max_cycles):
            return False
        return bool(differential_check(
            candidate, config, executors=executors, fault=fault,
            max_cycles=max_cycles,
        ))

    return predicate


def _ddmin(program: Program, predicate, counter: list) -> Program:
    """Classic ddmin over the instruction index list."""
    indices = list(range(len(program.instructions)))
    granularity = 2
    while len(indices) >= 2:
        chunk = max(1, len(indices) // granularity)
        subsets = [
            indices[start:start + chunk]
            for start in range(0, len(indices), chunk)
        ]
        reduced = False
        for subset in subsets:
            complement = [i for i in indices if i not in subset]
            if not complement:
                continue
            counter[0] += 1
            candidate = _remap_subset(program, complement)
            if predicate(candidate):
                indices = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(indices):
                break
            granularity = min(len(indices), granularity * 2)
    return _remap_subset(program, indices)


def _greedy_delete(program: Program, predicate, counter: list) -> Program:
    """One-at-a-time deletion until a fixed point."""
    changed = True
    while changed and len(program.instructions) > 1:
        changed = False
        for index in range(len(program.instructions)):
            kept = [i for i in range(len(program.instructions)) if i != index]
            counter[0] += 1
            candidate = _remap_subset(program, kept)
            if predicate(candidate):
                program = candidate
                changed = True
                break
    return program


def _operand_variants(instruction: Instruction):
    """Simpler variants of one instruction, most aggressive first."""

    def simpler_operands(op: MemOperand | None):
        if op is None:
            return []
        variants = []
        if op.bar != 0:
            variants.append(MemOperand(offset=op.offset))
        if op.offset != 0:
            variants.append(MemOperand(offset=0, bar=op.bar))
        return variants

    if instruction.is_branch:
        for mask in {0, 4} - {instruction.mask}:
            yield Instruction(
                instruction.mnemonic, target=instruction.target, mask=mask
            )
        return
    if instruction.mnemonic is Mnemonic.STORE:
        for imm in {0, 1} - {instruction.imm}:
            yield Instruction(Mnemonic.STORE, dst=instruction.dst, imm=imm)
        for dst in simpler_operands(instruction.dst):
            yield Instruction(Mnemonic.STORE, dst=dst, imm=instruction.imm)
        return
    if instruction.mnemonic is Mnemonic.SETBAR:
        for src in simpler_operands(instruction.src):
            yield Instruction(
                Mnemonic.SETBAR, bar_index=instruction.bar_index, src=src
            )
        return
    for dst in simpler_operands(instruction.dst):
        yield Instruction(instruction.mnemonic, dst=dst, src=instruction.src)
    for src in simpler_operands(instruction.src):
        yield Instruction(instruction.mnemonic, dst=instruction.dst, src=src)


def _simplify(program: Program, predicate, counter: list) -> Program:
    """Per-instruction operand simplification, then data zeroing."""
    changed = True
    while changed:
        changed = False
        for index, instruction in enumerate(program.instructions):
            for variant in _operand_variants(instruction):
                instructions = list(program.instructions)
                instructions[index] = variant
                counter[0] += 1
                candidate = dc_replace(program, instructions=instructions)
                if predicate(candidate):
                    program = candidate
                    changed = True
                    break
            if changed:
                break
    for address in sorted(program.data):
        if program.data[address] == 0:
            continue
        data = dict(program.data)
        data[address] = 0
        counter[0] += 1
        candidate = dc_replace(program, data=data)
        if predicate(candidate):
            program = candidate
    return program


def shrink(
    program: Program,
    config: CoreConfig,
    executors=DEFAULT_EXECUTORS,
    fault=None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    predicate=None,
) -> ShrinkResult:
    """Reduce a failing ``program`` to a minimal failing repro.

    The input must already fail ``predicate`` (by default: diverge on
    the differential stack for ``config``); otherwise a ``ValueError``
    is raised so silent non-repros cannot masquerade as shrunk bugs.
    Fully deterministic: same input, same minimized output.
    """
    if predicate is None:
        predicate = make_predicate(
            config, executors=executors, fault=fault, max_cycles=max_cycles
        )
    counter = [0]
    with _obs_span(
        "verify.shrink", program=program.name, design=config.name
    ) as sp:
        if not predicate(program):
            raise ValueError(
                f"{program.name}: does not fail the predicate; nothing to shrink"
            )
        counter[0] += 1
        reduced = _ddmin(program, predicate, counter)
        reduced = _greedy_delete(reduced, predicate, counter)
        reduced = _simplify(reduced, predicate, counter)
        reduced = dc_replace(reduced, name=f"{program.name}_min")
        sp.note(
            candidates=counter[0],
            size_before=len(program.instructions),
            size_after=len(reduced.instructions),
        )
    return ShrinkResult(
        program=reduced,
        original_size=len(program.instructions),
        candidates_tried=counter[0],
    )


# -- pytest-ready repro emission ------------------------------------------


def _format_operand(op: MemOperand | None) -> str:
    if op is None:
        return "None"
    if op.bar:
        return f"MemOperand(offset={op.offset}, bar={op.bar})"
    return f"MemOperand(offset={op.offset})"


def _format_instruction(instruction: Instruction) -> str:
    if instruction.is_branch:
        return (
            f"Instruction(Mnemonic.{instruction.mnemonic.name}, "
            f"target={instruction.target}, mask={instruction.mask})"
        )
    if instruction.mnemonic is Mnemonic.STORE:
        return (
            f"Instruction(Mnemonic.STORE, "
            f"dst={_format_operand(instruction.dst)}, imm={instruction.imm})"
        )
    if instruction.mnemonic is Mnemonic.SETBAR:
        return (
            f"Instruction(Mnemonic.SETBAR, "
            f"bar_index={instruction.bar_index}, "
            f"src={_format_operand(instruction.src)})"
        )
    return (
        f"Instruction(Mnemonic.{instruction.mnemonic.name}, "
        f"dst={_format_operand(instruction.dst)}, "
        f"src={_format_operand(instruction.src)})"
    )


def emit_pytest_case(
    program: Program,
    config: CoreConfig,
    seed: int | None = None,
    note: str = "",
) -> str:
    """Source text of a standalone pytest module reproducing the bug.

    The generated test asserts differential *agreement*, so it fails
    while the defect exists and becomes a permanent regression test
    once the defect is fixed.
    """
    lines = [
        '"""Auto-generated minimal repro from the differential fuzzer.',
        "",
        f"program: {program.name}",
        f"config:  {config.name}",
    ]
    if seed is not None:
        lines.append(f"seed:    {seed}")
    if note:
        lines.append(f"note:    {note}")
    lines += [
        '"""',
        "",
        "from repro.coregen.config import CoreConfig",
        "from repro.isa.program import Program",
        "from repro.isa.spec import Instruction, MemOperand, Mnemonic",
        "from repro.verify.differential import differential_check",
        "",
        "",
        "CONFIG = CoreConfig(",
        f"    datawidth={config.datawidth},",
        f"    pipeline_stages={config.pipeline_stages},",
        f"    num_bars={config.num_bars},",
        ")",
        "",
        "",
        "def build_program():",
        "    return Program(",
        f"        name={program.name!r},",
        "        instructions=[",
    ]
    for instruction in program.instructions:
        lines.append(f"            {_format_instruction(instruction)},")
    data = {k: v for k, v in sorted(program.data.items())}
    lines += [
        "        ],",
        f"        datawidth={program.datawidth},",
        f"        num_bars={program.num_bars},",
        f"        data={data!r},",
        "    )",
        "",
        "",
        "def test_differential_agreement():",
        "    divergences = differential_check(build_program(), CONFIG)",
        '    assert not divergences, "; ".join(str(d) for d in divergences)',
        "",
    ]
    return "\n".join(lines)
