"""Static netlist lint: structural defects no simulation is needed for.

The differential fuzzer exercises behaviour; this pass catches the
structural mistakes that often *escape* simulation because the
zero-initialized simulator hides them (a printed die does not power up
zeroed).  Rules:

``comb-loop``
    A cycle through combinational cells only.  Simulators iterate such
    loops to a fixed point; silicon (or printed foil) oscillates or
    latches unpredictably.  Error.
``multi-driven``
    A net driven by more than one instance, or an instance driving a
    primary input or constant net.  Recomputed from the instance list
    itself, so netlists assembled outside the builder API (e.g.
    deserialized) are covered too.  Error.
``floating-input``
    An instance input net with no driver that is neither a primary
    input nor a constant.  Error.
``floating-output``
    An undriven primary output bit.  Error.
``bad-pin-count``
    An instance whose input count does not match its cell's pin list
    (an unconnected or extra pin).  Unknown cells are reported here
    too.  Error.
``unresettable-flop``
    A state element with no reset (``DFFX1``/``LATCHX1``) or whose
    reset pin cannot ever assert (``DFFNRX1`` with ``rn`` tied high).
    An *error* when the flop holds control state (``pc``, ``flag_``,
    ``bar``, ``valid`` -- an unknown power-up value wedges the core);
    *info* for datapath registers, which the generated pipelines
    intentionally leave reset-free (their values are dead until the
    first valid instruction reaches them).
``dangling-cell``
    A cell output that nothing consumes and that is not a primary
    output: dead area on the foil.  Warning.

A report is "ok" when it has no errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.core import CONST0, CONST1, Netlist, SEQUENTIAL_CELLS
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import span as _obs_span

_FINDINGS = _obs_counter("verify.lint_findings")

#: Q-net name prefixes that mark *control* state: these must reset.
CONTROL_STATE_PREFIXES = ("pc", "flag_", "bar", "valid")

#: Reset-pin position of each resettable sequential cell.
RESET_PIN = {"DFFNRX1": 1}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation (or advisory) on one netlist."""

    rule: str
    severity: str  # "error" | "warning" | "info"
    message: str
    nets: tuple[int, ...] = ()

    def __str__(self) -> str:
        return f"{self.severity}[{self.rule}]: {self.message}"


@dataclass
class LintReport:
    """All findings for one design."""

    design: str
    findings: list[LintFinding] = field(default_factory=list)

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        infos = len(self.findings) - len(self.errors) - len(self.warnings)
        verdict = "clean" if self.ok else "FAIL"
        return (
            f"{self.design}: {verdict} "
            f"({len(self.errors)} errors, {len(self.warnings)} warnings, "
            f"{infos} infos)"
        )


def _cell_arity() -> dict:
    from repro.netlist.stats import CELL_ARITY

    return CELL_ARITY


def lint_netlist(netlist: Netlist) -> LintReport:
    """Run every lint rule over ``netlist``."""
    with _obs_span("verify.lint", design=netlist.name) as sp:
        report = LintReport(design=netlist.name)
        add = report.findings.append
        arity_table = _cell_arity()
        port_nets = {n for bus in netlist.inputs.values() for n in bus}
        constants = {CONST0, CONST1}

        # Drivers recomputed from the instance list (not the builder's
        # bookkeeping dict), so rule coverage does not depend on how
        # the netlist was assembled.
        drivers: dict[int, list[int]] = {}
        for index, instance in enumerate(netlist.instances):
            drivers.setdefault(instance.output, []).append(index)

        # multi-driven ---------------------------------------------------
        for net, who in sorted(drivers.items()):
            if len(who) > 1:
                cells = ", ".join(netlist.instances[i].cell for i in who)
                add(LintFinding(
                    "multi-driven", "error",
                    f"net {netlist.net_name(net)} driven by "
                    f"{len(who)} instances ({cells})",
                    nets=(net,),
                ))
            if net in port_nets or net in constants:
                kind = "constant" if net in constants else "primary input"
                add(LintFinding(
                    "multi-driven", "error",
                    f"{netlist.instances[who[0]].cell} drives {kind} net "
                    f"{netlist.net_name(net)}",
                    nets=(net,),
                ))

        # bad-pin-count / floating-input --------------------------------
        driven = set(drivers) | port_nets | constants
        for instance in netlist.instances:
            arity = arity_table.get(instance.cell)
            if arity is None:
                add(LintFinding(
                    "bad-pin-count", "error",
                    f"unknown cell {instance.cell!r}",
                    nets=(instance.output,),
                ))
            elif len(instance.inputs) != arity:
                add(LintFinding(
                    "bad-pin-count", "error",
                    f"{instance.cell} driving {netlist.net_name(instance.output)} "
                    f"has {len(instance.inputs)} of {arity} pins connected",
                    nets=(instance.output,),
                ))
            for net in instance.inputs:
                if net not in driven:
                    add(LintFinding(
                        "floating-input", "error",
                        f"{instance.cell} input {netlist.net_name(net)} "
                        f"is floating",
                        nets=(net,),
                    ))

        # floating-output ------------------------------------------------
        for bus in netlist.outputs.values():
            for position, net in enumerate(bus):
                if net not in driven:
                    add(LintFinding(
                        "floating-output", "error",
                        f"output {bus.name}[{position}] is floating",
                        nets=(net,),
                    ))

        # comb-loop ------------------------------------------------------
        for cycle in _combinational_loops(netlist):
            names = " -> ".join(netlist.net_name(net) for net in cycle)
            add(LintFinding(
                "comb-loop", "error",
                f"combinational loop through {len(cycle)} nets: {names}",
                nets=tuple(cycle),
            ))

        # unresettable-flop ----------------------------------------------
        for instance in netlist.instances:
            if instance.cell not in SEQUENTIAL_CELLS:
                continue
            reset_pin = RESET_PIN.get(instance.cell)
            if reset_pin is not None:
                if (
                    len(instance.inputs) > reset_pin
                    and instance.inputs[reset_pin] == CONST1
                ):
                    add(LintFinding(
                        "unresettable-flop", "error",
                        f"{instance.cell} at {netlist.net_name(instance.output)} "
                        f"has its reset pin tied inactive",
                        nets=(instance.output,),
                    ))
                continue
            q_name = netlist.net_name(instance.output)
            if q_name.startswith(CONTROL_STATE_PREFIXES):
                add(LintFinding(
                    "unresettable-flop", "error",
                    f"control-state flop {q_name} ({instance.cell}) "
                    f"has no reset",
                    nets=(instance.output,),
                ))
            else:
                add(LintFinding(
                    "unresettable-flop", "info",
                    f"datapath flop {q_name} ({instance.cell}) has no reset",
                    nets=(instance.output,),
                ))

        # dangling-cell --------------------------------------------------
        consumed = {net for i in netlist.instances for net in i.inputs}
        consumed |= {net for bus in netlist.outputs.values() for net in bus}
        for instance in netlist.instances:
            if instance.output not in consumed:
                add(LintFinding(
                    "dangling-cell", "warning",
                    f"{instance.cell} output "
                    f"{netlist.net_name(instance.output)} drives nothing",
                    nets=(instance.output,),
                ))

        _FINDINGS.inc(len(report.findings))
        sp.note(findings=len(report.findings), errors=len(report.errors))
    return report


def _combinational_loops(netlist: Netlist) -> list[list[int]]:
    """Cycles in the combinational net graph (sequential cells cut it).

    Iterative DFS with an explicit stack; returns each distinct cycle
    once, as the list of nets along it.
    """
    comb_driver = {
        instance.output: instance
        for instance in netlist.instances
        if instance.cell not in SEQUENTIAL_CELLS
    }
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {net: WHITE for net in comb_driver}
    loops: list[list[int]] = []
    for root in comb_driver:
        if color[root] != WHITE:
            continue
        path: list[int] = []
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            net, edge = stack[-1]
            if edge == 0:
                color[net] = GRAY
                path.append(net)
            fanin = [
                n for n in comb_driver[net].inputs if n in comb_driver
            ]
            if edge < len(fanin):
                stack[-1] = (net, edge + 1)
                child = fanin[edge]
                if color[child] == GRAY:
                    loops.append(path[path.index(child):] + [child])
                elif color[child] == WHITE:
                    stack.append((child, 0))
            else:
                color[net] = BLACK
                path.pop()
                stack.pop()
    return loops


def lint_core(config) -> LintReport:
    """Generate (or fetch from cache) the core for ``config`` and lint it."""
    from repro.coregen.generator import generate_core

    return lint_netlist(generate_core(config))
