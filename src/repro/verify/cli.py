"""``python -m repro verify`` / ``python -m repro lint`` entry points.

Usage::

    python -m repro verify --seed 0 --count 50
        Fuzz 50 seeds through the differential stack on the default
        three-config cross-section of the grid.

    python -m repro verify --configs p1_8_2,p2_4_4 --jobs 4
        Specific configurations, fanned across worker processes.

    python -m repro verify --inject-fault wdata:0 --shrink-dir repros
        Fault-detection demo: inject a stuck-at-1 on the driver of
        ``wdata[0]``, expect the fuzzer to catch it, and write the
        shrunk pytest-ready repros under ``repros/``.  Exits non-zero
        if the fault *escapes*.

    python -m repro lint [CONFIG ...] [--all]
        Static lint; defaults to two representative cores, ``--all``
        sweeps the full 24-configuration grid.

Divergences exit 1 (the campaign is the check); usage errors exit 2.
"""

from __future__ import annotations

import sys

from repro.coregen.config import CoreConfig, config_from_name, standard_sweep
from repro.errors import ConfigError

#: Representative pair for quick lint runs: the simplest core and a
#: deep-pipeline wide one (most distinct structure in the grid).
LINT_DEFAULTS = ("p1_8_2", "p3_16_4")


def _parse_config(name: str) -> CoreConfig:
    """A CoreConfig from its ``pP_D_B`` sweep name (e.g. ``p1_8_2``)."""
    try:
        return config_from_name(name)
    except ConfigError as error:
        raise ValueError(str(error))


def _usage_error(message: str) -> int:
    print(message, file=sys.stderr)
    print(__doc__, file=sys.stderr)
    return 2


def verify_main(argv: list[str]) -> int:
    """Entry point for ``python -m repro verify ...``."""
    from repro.verify.corpus import DEFAULT_CONFIGS, run_campaign
    from repro.verify.differential import (
        DEFAULT_EXECUTORS,
        fault_site_for_output,
    )

    seed = 0
    count = 20
    configs = list(DEFAULT_CONFIGS)
    executors = DEFAULT_EXECUTORS
    jobs = None
    shrink_dir = None
    inject = None
    max_instructions = 20

    i = 0
    while i < len(argv):
        arg = argv[i]

        def value() -> str:
            nonlocal i
            i += 1
            if i >= len(argv):
                raise ValueError(f"{arg} needs an argument")
            return argv[i]

        try:
            if arg == "--seed":
                seed = int(value())
            elif arg == "--count":
                count = int(value())
            elif arg == "--jobs":
                jobs = int(value())
            elif arg == "--max-instructions":
                max_instructions = int(value())
            elif arg == "--configs":
                configs = [_parse_config(n) for n in value().split(",")]
            elif arg == "--executors":
                executors = tuple(value().split(","))
            elif arg == "--shrink-dir":
                shrink_dir = value()
            elif arg == "--inject-fault":
                inject = value()
            else:
                return _usage_error(f"unknown verify option {arg!r}")
        except ValueError as error:
            return _usage_error(str(error))
        i += 1

    fault = None
    if inject is not None:
        if len(configs) != 1:
            # A fault is an instance index into one specific netlist.
            configs = configs[:1]
        bus, _, bit = inject.partition(":")
        from repro.coregen.generator import generate_core

        try:
            fault = fault_site_for_output(
                generate_core(configs[0]), bus, int(bit) if bit else 0
            )
        except Exception as error:
            return _usage_error(f"--inject-fault {inject!r}: {error}")

    names = ",".join(c.name for c in configs)
    print(
        f"verify: seeds {seed}..{seed + count - 1} x configs {names} "
        f"({', '.join(executors)})"
    )
    result = run_campaign(
        range(seed, seed + count),
        configs=configs,
        executors=executors,
        fault=fault,
        jobs=jobs,
        max_instructions=max_instructions,
        out_dir=shrink_dir,
    )
    for case in result.failures:
        print(f"  seed {case.seed} @ {case.config_name}:")
        for divergence in case.divergences[:4]:
            print(f"    {divergence}")
    for path in result.repro_paths:
        print(f"  shrunk repro: {path}")
    print(f"verify: {result.summary()}")

    if fault is not None:
        caught = not result.ok
        print(
            "verify: injected fault was "
            + ("caught" if caught else "NOT caught")
        )
        return 0 if caught else 1
    return 0 if result.ok else 1


def lint_main(argv: list[str]) -> int:
    """Entry point for ``python -m repro lint ...``."""
    from repro.verify.lint import lint_core

    names: list[str] = []
    show_all = False
    verbose = False
    for arg in argv:
        if arg == "--all":
            show_all = True
        elif arg in ("-v", "--verbose"):
            verbose = True
        elif arg.startswith("-"):
            return _usage_error(f"unknown lint option {arg!r}")
        else:
            names.append(arg)

    if show_all:
        configs = standard_sweep()
    else:
        try:
            configs = [_parse_config(n) for n in (names or LINT_DEFAULTS)]
        except ValueError as error:
            return _usage_error(str(error))

    failed = 0
    for config in configs:
        report = lint_core(config)
        print(report.summary())
        for finding in report.findings:
            if finding.severity == "error" or verbose:
                print(f"  {finding}")
        if not report.ok:
            failed += 1
    return 0 if failed == 0 else 1


def main(argv: list[str]) -> int:
    """Dispatch ``verify`` / ``lint`` subcommands."""
    if not argv:
        return _usage_error("verify/lint: missing subcommand")
    if argv[0] == "verify":
        return verify_main(argv[1:])
    if argv[0] == "lint":
        return lint_main(argv[1:])
    return _usage_error(f"unknown subcommand {argv[0]!r}")
