"""Seeded random TP-ISA program generator for differential fuzzing.

Every generated program is *well-formed by construction* and
*guaranteed to halt*:

* control flow is forward branches plus **bounded loops** -- a loop is
  emitted as ``STORE ctr, k`` / body / ``SUB ctr, one`` /
  ``BRN body, Z`` where the counter cell and the constant-one cell
  live in a reserved scratch segment no random instruction can write,
  so the loop runs exactly ``k`` times;
* memory stays confined to the data segment: absolute operands address
  ``[0, mem_words)``, BAR values are only ever loaded through an
  adjacent ``STORE ptr, base`` / ``SETBAR n, ptr`` pair with
  ``base + max_offset < mem_words``, so no effective address can
  escape -- which is what makes the same program sound on
  program-specific cores with exactly-sized RAM.

Determinism: the instruction stream is a pure function of
``(seed, datawidth, num_bars, mem_words, max_instructions)`` via
:class:`random.Random`, so a seed in a bug report reproduces the exact
program on any machine.
"""

from __future__ import annotations

import random

from repro.errors import ProgramError
from repro.isa.program import Program
from repro.isa.spec import Flag, Instruction, MemOperand, Mnemonic
from repro.obs.metrics import counter as _obs_counter

_GENERATED = _obs_counter("verify.programs_generated")


def _retarget_into_region(
    index: int, instruction: Instruction, regions: list[tuple[int, int]]
) -> Instruction:
    """Move a *forward* branch target out of a guarded region's
    interior onto its entry (the initializing STORE).  A loop's own
    backward branch legitimately targets its body and is left alone."""
    if not instruction.is_branch or instruction.target <= index:
        return instruction
    for start, end in regions:
        if start < instruction.target <= end:
            return Instruction(
                instruction.mnemonic, target=start, mask=instruction.mask
            )
    return instruction

#: Binary ALU operations (read dst and src, most write dst).
BINARY_OPS = (
    Mnemonic.ADD, Mnemonic.ADC, Mnemonic.SUB, Mnemonic.CMP, Mnemonic.SBB,
    Mnemonic.AND, Mnemonic.TEST, Mnemonic.OR, Mnemonic.XOR,
)

#: Unary ALU operations (read src, write dst).
UNARY_OPS = (
    Mnemonic.NOT, Mnemonic.RL, Mnemonic.RLC, Mnemonic.RR, Mnemonic.RRC,
    Mnemonic.RRA,
)


def generator_rng(seed: int, datawidth: int, num_bars: int) -> random.Random:
    """The seeded RNG; parameters are folded in so each grid point gets
    an independent stream from the same corpus seed."""
    return random.Random(f"repro.verify/{seed}/{datawidth}/{num_bars}")


def random_program(
    seed: int,
    datawidth: int = 8,
    num_bars: int = 2,
    mem_words: int = 12,
    max_instructions: int = 20,
) -> Program:
    """Generate one well-formed, halting TP-ISA program.

    Args:
        seed: Corpus seed; same arguments always produce the same
            program.
        datawidth: Data word width the program assumes (4/8/16/32).
        num_bars: BAR configuration (2 or 4 in the standard grid).
        mem_words: Random-data segment size; the program confines every
            effective address below ``mem_words`` and its loop
            scaffolding to a few reserved words just above it.
        max_instructions: Upper bound on static program length.

    Raises:
        ProgramError: On parameter combinations that cannot satisfy the
            confinement invariants (segment too large for the operand
            encoding, program too short for a loop, ...).
    """
    if mem_words < 4:
        raise ProgramError(f"mem_words {mem_words} too small to be interesting")
    if max_instructions < 4:
        raise ProgramError(f"max_instructions {max_instructions} too small")
    select_bits = (num_bars - 1).bit_length()
    offset_limit = 1 << (8 - select_bits)
    # Reserved scratch: [mem_words] = constant one, [mem_words+1..] =
    # loop counters.  Everything must stay encodable as an absolute
    # offset and below the architectural 256-word space.
    max_loops = 3
    if mem_words + 1 + max_loops > min(offset_limit, 256):
        raise ProgramError(
            f"mem_words {mem_words} leaves no encodable scratch segment"
        )

    rng = generator_rng(seed, datawidth, num_bars)
    value_mask = (1 << datawidth) - 1
    base_span = mem_words // 2          # BAR values in [0, base_span]
    rel_limit = mem_words - base_span   # BAR-relative offsets below this
    one_cell = mem_words
    first_counter = mem_words + 1

    count = rng.randint(4, max_instructions)
    instructions: list[Instruction] = []
    loops_left = max_loops
    # (entry index, last index) of multi-instruction constructs whose
    # interior forward branches may not enter: a loop entered past its
    # counter STORE never terminates, and a SETBAR reached without its
    # paired pointer STORE loads a random BAR base that can escape the
    # data segment.
    guarded_regions: list[tuple[int, int]] = []

    def absolute() -> MemOperand:
        return MemOperand(offset=rng.randrange(mem_words))

    def operand() -> MemOperand:
        """A data-segment operand: absolute, or BAR-relative."""
        if num_bars > 1 and rng.random() < 0.35:
            return MemOperand(
                offset=rng.randrange(rel_limit),
                bar=rng.randint(1, num_bars - 1),
            )
        return absolute()

    def emit_alu() -> None:
        if rng.random() < 0.6:
            instructions.append(Instruction(
                rng.choice(BINARY_OPS), dst=operand(), src=operand()
            ))
        else:
            instructions.append(Instruction(
                rng.choice(UNARY_OPS), dst=operand(), src=operand()
            ))

    while len(instructions) < count:
        room = count - len(instructions)
        kind = rng.random()
        if kind < 0.45:
            emit_alu()
        elif kind < 0.60:
            instructions.append(Instruction(
                Mnemonic.STORE,
                dst=operand(),
                imm=rng.randint(0, min(255, value_mask)),
            ))
        elif kind < 0.72 and num_bars > 1 and room >= 2:
            # STORE ptr, base ; SETBAR n, ptr -- adjacent, so the BAR
            # always holds a known in-segment base.
            pointer = absolute()
            instructions.append(Instruction(
                Mnemonic.STORE, dst=pointer, imm=rng.randint(0, base_span)
            ))
            instructions.append(Instruction(
                Mnemonic.SETBAR,
                bar_index=rng.randint(1, num_bars - 1),
                src=pointer,
            ))
            guarded_regions.append((len(instructions) - 2, len(instructions) - 1))
        elif kind < 0.86 and loops_left and room >= 4:
            # Bounded loop: runs exactly `iterations` times because the
            # counter and the constant-one cell are unwritable by any
            # random instruction.
            counter = first_counter + (max_loops - loops_left)
            loops_left -= 1
            iterations = rng.randint(1, 3)
            body_len = rng.randint(1, min(3, room - 3))
            store_index = len(instructions)
            instructions.append(Instruction(
                Mnemonic.STORE, dst=MemOperand(counter), imm=iterations
            ))
            body_start = len(instructions)
            for _ in range(body_len):
                emit_alu()
            instructions.append(Instruction(
                Mnemonic.SUB, dst=MemOperand(counter), src=MemOperand(one_cell)
            ))
            instructions.append(Instruction(
                Mnemonic.BRN, target=body_start, mask=int(Flag.Z)
            ))
            guarded_regions.append((store_index, len(instructions) - 1))
        else:
            # Forward branch (possibly to one past the end = halt).
            target = rng.randint(len(instructions) + 1, count)
            instructions.append(Instruction(
                rng.choice((Mnemonic.BR, Mnemonic.BRN)),
                target=target,
                mask=rng.randint(0, 15),
            ))

    # Forward branches were emitted before later loops existed, so some
    # may land inside a loop region, past the counter initialization.
    # Retarget those to the region's counter STORE (still forward --
    # every region starts after the branch that could name it).
    instructions = [
        _retarget_into_region(index, instruction, guarded_regions)
        for index, instruction in enumerate(instructions)
    ]

    data = {address: rng.randint(0, value_mask) for address in range(mem_words)}
    data[one_cell] = 1
    for loop in range(max_loops):
        data[first_counter + loop] = 0
    _GENERATED.inc()
    return Program(
        name=f"fuzz_s{seed}",
        instructions=instructions,
        datawidth=datawidth,
        num_bars=num_bars,
        data=data,
        description=(
            f"seeded random program (seed={seed}, w={datawidth}, "
            f"bars={num_bars})"
        ),
    )
