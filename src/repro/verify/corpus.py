"""Fuzz-campaign driver: generate, differentially execute, shrink.

One campaign is a seed range crossed with a list of core
configurations.  Each (seed, config) case generates a program and runs
it through the differential stack; cases fan out across worker
processes with :func:`repro.exec.parallel_map` (the per-case worker is
module-level and all its arguments are plain picklable values).
Failures are shrunk *in the parent* -- they are rare, and keeping the
shrinker serial keeps its output deterministic regardless of ``jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.coregen.config import CoreConfig
from repro.exec import parallel_map
from repro.obs.trace import span as _obs_span

from repro.verify.differential import (
    DEFAULT_EXECUTORS,
    DEFAULT_MAX_CYCLES,
    differential_check,
)
from repro.verify.generator import random_program
from repro.verify.shrink import emit_pytest_case, shrink

#: Campaign default: one config per pipeline depth, mixed widths and
#: BAR counts, so every differential executor sees every control path.
DEFAULT_CONFIGS = (
    CoreConfig(datawidth=8, pipeline_stages=1, num_bars=2),
    CoreConfig(datawidth=4, pipeline_stages=2, num_bars=4),
    CoreConfig(datawidth=16, pipeline_stages=3, num_bars=2),
)


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one (seed, config) fuzz case."""

    seed: int
    config_name: str
    divergences: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class CampaignResult:
    """Aggregate outcome of one fuzz campaign."""

    cases: list[CaseResult] = field(default_factory=list)
    repro_paths: list[Path] = field(default_factory=list)

    @property
    def failures(self) -> list[CaseResult]:
        return [c for c in self.cases if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "all agree" if self.ok else "DIVERGENCE"
        return (
            f"{len(self.cases)} cases, {len(self.failures)} divergent: "
            f"{verdict}"
        )


def _check_case(item) -> CaseResult:
    """Worker: one (seed, config) case.  Module-level for pickling."""
    seed, config, executors, fault, max_cycles, mem_words, max_instructions = item
    program = random_program(
        seed,
        datawidth=config.datawidth,
        num_bars=config.num_bars,
        mem_words=mem_words,
        max_instructions=max_instructions,
    )
    divergences = differential_check(
        program, config, executors=executors, fault=fault,
        seed=seed, max_cycles=max_cycles,
    )
    return CaseResult(
        seed=seed,
        config_name=config.name,
        divergences=tuple(str(d) for d in divergences),
    )


def run_campaign(
    seeds,
    configs=DEFAULT_CONFIGS,
    executors=DEFAULT_EXECUTORS,
    fault=None,
    jobs: int | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    mem_words: int = 12,
    max_instructions: int = 20,
    shrink_failures: bool = True,
    out_dir: str | Path | None = None,
) -> CampaignResult:
    """Run the full campaign; optionally shrink and emit failures.

    Args:
        seeds: Iterable of corpus seeds.
        configs: Core configurations to cross the seeds with.
        executors: Differential executors per case (see
            :data:`DEFAULT_EXECUTORS`).
        fault: Optional stuck-at fault injected into every gate-level
            run (the fault-detection demo).  Note the fault is an
            instance index, so it only makes sense with a single
            config.
        jobs: Worker processes for the case fan-out (None = serial
            unless ``REPRO_JOBS`` says otherwise).
        shrink_failures: Reduce each failing case to a minimal repro.
        out_dir: Where to write pytest-ready repro files (created on
            first failure; nothing is written for green campaigns).
    """
    seeds = list(seeds)
    work = [
        (seed, config, tuple(executors), fault,
         max_cycles, mem_words, max_instructions)
        for config in configs
        for seed in seeds
    ]
    result = CampaignResult()
    with _obs_span("verify.campaign", cases=len(work)) as sp:
        result.cases = parallel_map(
            _check_case, work, jobs=jobs, label="verify.cases"
        )
        sp.note(failures=len(result.failures))

        if shrink_failures:
            config_by_name = {c.name: c for c in configs}
            for case in result.failures:
                config = config_by_name[case.config_name]
                program = random_program(
                    case.seed,
                    datawidth=config.datawidth,
                    num_bars=config.num_bars,
                    mem_words=mem_words,
                    max_instructions=max_instructions,
                )
                reduced = shrink(
                    program, config, executors=executors, fault=fault,
                    max_cycles=max_cycles,
                )
                if out_dir is not None:
                    directory = Path(out_dir)
                    directory.mkdir(parents=True, exist_ok=True)
                    path = directory / (
                        f"test_repro_{case.config_name}_s{case.seed}.py"
                    )
                    path.write_text(emit_pytest_case(
                        reduced.program, config, seed=case.seed,
                        note="; ".join(case.divergences[:2]),
                    ))
                    result.repro_paths.append(path)
    return result
