"""Differential execution: one program, every simulator, zero excuses.

The strongest correctness evidence the repository can produce is that
*all* execution models agree on arbitrary programs across the whole
configuration grid:

* the instruction-set simulator (:mod:`repro.sim.machine`) -- the
  architectural reference;
* the interpreted gate-level simulator (``backend="interpreted"``);
* the compiled gate-level simulator (``backend="compiled"``);
* :class:`~repro.netlist.compile.BitParallelSimulator` lanes (many
  programs through one netlist at once);
* :class:`~repro.netlist.nsim.NumpySimulator` lanes (the vectorized
  uint64 bit-slice backend, same lane packing, different kernel
  machinery);
* the **program-specific** shrunken core (Section 7): the same program
  re-verified on a core whose PC, BARs, flags, and operand fields were
  narrowed to exactly what it uses.

Any architectural-state disagreement is reported as a
:class:`Divergence`; the shrinker (:mod:`repro.verify.shrink`) then
reduces the offending program to a minimal repro.  An optional
stuck-at ``fault`` is injected into the gate-level side only, which is
how the fuzzer proves it would catch a real netlist defect.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.coregen.config import CoreConfig, program_specific_config
from repro.coregen.cosim import architectural_nets, cosim_verify
from repro.coregen.fault_test import halt_word_encoder
from repro.coregen.generator import generate_core
from repro.coregen.isa_map import encode_program_for_core
from repro.errors import ReproError
from repro.isa.analysis import analyze_program
from repro.isa.program import Program
from repro.isa.spec import Instruction, MemOperand, Mnemonic
from repro.netlist.compile import BitParallelSimulator
from repro.netlist.lanes import LaneMemoryHarness
from repro.netlist.nsim import NumpySimulator
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import span as _obs_span
from repro.sim.machine import Machine

#: Executors the differential stack runs, in order.
DEFAULT_EXECUTORS = ("interpreted", "compiled", "bitparallel", "numpy", "ps-isa")

#: Cycle safety valve for fuzz-sized programs.
DEFAULT_MAX_CYCLES = 100_000

_CHECKED = _obs_counter("verify.programs_checked")
_DIVERGENCES = _obs_counter("verify.divergences")


@dataclass(frozen=True)
class Divergence:
    """One executor disagreeing with the ISS on one program."""

    executor: str
    config: str
    seed: int | None
    details: tuple[str, ...]

    def __str__(self) -> str:
        head = f"[{self.executor} @ {self.config}"
        if self.seed is not None:
            head += f" seed={self.seed}"
        shown = "; ".join(self.details[:4])
        more = len(self.details) - 4
        if more > 0:
            shown += f"; ... {more} more"
        return f"{head}] {shown}"


def iss_reference(
    program: Program, config: CoreConfig, max_cycles: int = DEFAULT_MAX_CYCLES
) -> Machine:
    """Run the architectural reference to completion for ``config``."""
    machine = Machine(
        program,
        mem_size=config.data_memory_words(),
        num_bars=config.num_bars,
    )
    machine.run(max_steps=max_cycles)
    return machine


def ps_isa_config(program: Program, base: CoreConfig) -> CoreConfig:
    """The program-specific shrunken configuration for ``program``.

    The data footprint is taken from an actual reference run (not the
    static estimate) so dynamically-reached BAR-relative addresses are
    always inside the shrunken core's exactly-sized RAM.  Programs that
    halt by running off the end (handwritten benchmarks end in an
    explicit self-branch; fuzz programs need not) get one extra PC /
    branch-target bit so the halt address itself is representable --
    otherwise the shrunken PC wraps to 0 and re-runs the program.
    """
    machine = iss_reference(program, base)
    data_words = max(
        max(machine.stats.touched_addresses, default=0) + 1,
        program.data_words_used(),
        1,
    )
    analysis = analyze_program(program, data_words=data_words)
    config = program_specific_config(base, analysis)
    halt_pc = machine.pc
    if halt_pc >= len(program.instructions):
        need = max(1, halt_pc.bit_length())
        config = replace(
            config,
            pc_bits=max(config.pc_bits, need),
            operand1_bits=max(config.operand1_bits, need),
        )
    return config


def remap_bars(program: Program) -> Program:
    """Renumber BAR indices densely (Section 7's "unused BARs are
    removed").

    A program touching only BAR 2 of a 4-BAR machine shrinks to a core
    with a *single* settable BAR -- but that BAR is then index 1, so
    the program must be renumbered to match before it can execute on
    the shrunken core.  Semantics are unchanged: renumbering is
    uniform, and every BAR resets to zero regardless of index.
    """
    used = sorted({
        operand.bar
        for instruction in program.instructions
        for operand in (instruction.dst, instruction.src)
        if operand is not None and operand.bar != 0
    } | {
        instruction.bar_index
        for instruction in program.instructions
        if instruction.mnemonic is Mnemonic.SETBAR
    })
    mapping = {old: new for new, old in enumerate(used, start=1)}
    if all(old == new for old, new in mapping.items()):
        return program

    def operand(op):
        if op is None or op.bar == 0:
            return op
        return MemOperand(offset=op.offset, bar=mapping[op.bar])

    instructions = []
    for instruction in program.instructions:
        if instruction.mnemonic is Mnemonic.SETBAR:
            instructions.append(Instruction(
                Mnemonic.SETBAR,
                bar_index=mapping[instruction.bar_index],
                src=operand(instruction.src),
            ))
        elif instruction.mnemonic is Mnemonic.STORE:
            instructions.append(Instruction(
                Mnemonic.STORE, dst=operand(instruction.dst),
                imm=instruction.imm,
            ))
        elif instruction.is_branch:
            instructions.append(instruction)
        else:
            instructions.append(Instruction(
                instruction.mnemonic,
                dst=operand(instruction.dst),
                src=operand(instruction.src),
            ))
    return Program(
        name=program.name,
        instructions=instructions,
        datawidth=program.datawidth,
        num_bars=max(2, len(used) + 1),
        data=dict(program.data),
        symbols=dict(program.symbols),
        description=program.description,
    )


def ps_isa_variant(program: Program, base: CoreConfig) -> tuple[Program, CoreConfig]:
    """BAR-renumbered program plus its shrunken core configuration."""
    remapped = remap_bars(program)
    return remapped, ps_isa_config(remapped, base)


def fault_site_for_output(netlist, bus: str, bit: int = 0, stuck: int = 1):
    """A :class:`~repro.netlist.faults.StuckAtFault` on the instance
    driving output ``bus[bit]`` -- a guaranteed-architectural site for
    fault-detection demos and tests."""
    from repro.netlist.faults import StuckAtFault

    nets = netlist.outputs.get(bus)
    if nets is None:
        raise ReproError(f"netlist has no output bus {bus!r}")
    driver = netlist.driver_of(nets[bit])
    if driver is None:
        raise ReproError(f"output {bus}[{bit}] is not instance-driven")
    return StuckAtFault(netlist.instances.index(driver), stuck)


def lane_verify(
    programs: list[Program],
    config: CoreConfig,
    fault=None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    simulator=BitParallelSimulator,
) -> list[list[str]]:
    """Run a batch of programs as packed lanes; diff each lane.

    One lane-parallel simulator pass carries every program as a
    separate lane of the same netlist, so a batch of N costs roughly
    one gate-level simulation.  ``simulator`` selects the lane backend
    -- :class:`BitParallelSimulator` (bigint) or
    :class:`NumpySimulator` (vectorized bit-slice); both share the
    :class:`~repro.netlist.lanes.LanePlan` packing semantics, so this
    harness is backend-agnostic.  Returns one mismatch-string list per
    program (empty = that lane agrees with the ISS).

    Single-stage cores step exactly as many cycles as the longest lane
    has instructions; deeper pipelines get a stall/flush margin and
    must additionally park their PC in the halt loop.
    """
    if not programs:
        return []
    machines = [iss_reference(p, config, max_cycles) for p in programs]
    lanes = len(programs)
    netlist = generate_core(config)
    faults = [fault] * lanes if fault is not None else None
    sim = simulator(netlist, lanes, faults=faults)
    flag_nets, bar_nets = architectural_nets(netlist)

    mask = (1 << config.datawidth) - 1
    roms = [encode_program_for_core(p, config) for p in programs]
    initial = []
    for program in programs:
        memory = [0] * config.data_memory_words()
        for address, value in program.data.items():
            memory[address] = value & mask
        initial.append(memory)

    harness = LaneMemoryHarness(
        sim,
        lanes=lanes,
        roms=roms,
        memories=initial,
        halt_word=halt_word_encoder(config),
        pc_bits=len(netlist.outputs["pc"].nets),
    )

    steps = max(m.stats.instructions for m in machines)
    if config.pipeline_stages > 1:
        steps = config.pipeline_stages * steps + 2 * len(max(roms, key=len)) + 24
    harness.run(steps)
    memories = harness.memory_rows()
    pcs = sim.read_output("pc")
    flag_values = {
        flag: sim.read_nets(flag_nets.get(flag.name, ()))
        for flag in config.flags
    }
    bar_values = {
        index: sim.read_nets(bar_nets.get(index, ()))
        for index in range(1, config.num_bars)
    }

    pc_mask = (1 << max(1, config.pc_bits)) - 1
    bar_mask = (1 << config.bar_bits) - 1
    reports: list[list[str]] = []
    for lane, machine in enumerate(machines):
        details: list[str] = []
        halt_pc = machine.pc & pc_mask
        # Deep pipelines keep re-fetching in the halt self-loop, so
        # their PC oscillates around the halt address; like
        # cosim_verify, only single-stage cores get an exact PC check.
        if config.pipeline_stages == 1 and pcs[lane] != halt_pc:
            details.append(f"pc: gate={pcs[lane]} iss={halt_pc}")
        for flag in config.flags:
            gate = flag_values[flag][lane]
            iss = 1 if machine.flags & flag else 0
            if gate != iss:
                details.append(f"flag {flag.name}: gate={gate} iss={iss}")
        for index in range(1, config.num_bars):
            if index >= machine.num_bars:
                continue
            gate = bar_values[index][lane]
            iss = machine.bars[index] & bar_mask
            if gate != iss:
                details.append(f"bar{index}: gate={gate} iss={iss}")
        memory = memories[lane]
        for address in range(min(len(memory), machine.mem_size)):
            if memory[address] != machine.memory[address]:
                details.append(
                    f"mem[{address}]: gate={memory[address]} "
                    f"iss={machine.memory[address]}"
                )
        reports.append(details)
    return reports


def bitparallel_verify(
    programs: list[Program],
    config: CoreConfig,
    fault=None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> list[list[str]]:
    """:func:`lane_verify` on the bigint backend (back-compat name)."""
    return lane_verify(
        programs, config, fault=fault, max_cycles=max_cycles,
        simulator=BitParallelSimulator,
    )


def differential_check(
    program: Program,
    config: CoreConfig,
    executors=DEFAULT_EXECUTORS,
    fault=None,
    seed: int | None = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> list[Divergence]:
    """Run ``program`` through the whole differential stack.

    Returns one :class:`Divergence` per disagreeing executor (empty
    list = full agreement).  An executor that *crashes* (e.g. a
    fault-wedged pipeline that never quiesces) counts as divergent
    rather than aborting the campaign.
    """
    divergences: list[Divergence] = []

    def record(executor: str, config_name: str, details) -> None:
        if details:
            divergences.append(Divergence(
                executor=executor,
                config=config_name,
                seed=seed,
                details=tuple(str(d) for d in details),
            ))

    with _obs_span("verify.check", program=program.name, design=config.name):
        _CHECKED.inc()
        for backend in ("interpreted", "compiled"):
            if backend not in executors:
                continue
            try:
                mismatches = cosim_verify(
                    program, config, max_cycles=max_cycles,
                    backend=backend, fault=fault,
                )
            except Exception as error:  # wedged = detected
                mismatches = [f"executor crashed: {error}"]
            record(backend, config.name, mismatches)

        for executor, simulator in (
            ("bitparallel", BitParallelSimulator),
            ("numpy", NumpySimulator),
        ):
            if executor not in executors:
                continue
            try:
                lanes = lane_verify(
                    [program], config, fault=fault, max_cycles=max_cycles,
                    simulator=simulator,
                )
                mismatches = lanes[0]
            except Exception as error:
                mismatches = [f"executor crashed: {error}"]
            record(executor, config.name, mismatches)

        if "ps-isa" in executors:
            try:
                ps_program, ps_config = ps_isa_variant(program, config)
                # The injected fault is an instance index of the *base*
                # netlist; it has no meaning on the shrunken one.
                mismatches = cosim_verify(
                    ps_program, ps_config, max_cycles=max_cycles,
                    backend="compiled",
                )
                config_name = f"ps:{ps_config.name}"
            except Exception as error:
                mismatches = [f"executor crashed: {error}"]
                config_name = f"ps:{config.name}"
            record("ps-isa", config_name, mismatches)

    _DIVERGENCES.inc(len(divergences))
    return divergences
