"""Differential fuzzing and static netlist lint (``docs/VERIFY.md``).

The verification subsystem closes the loop the unit tests cannot: it
generates arbitrary (well-formed, halting) TP-ISA programs, runs each
one through *every* execution model in the repository -- ISS,
interpreted and compiled gate-level simulation, bit-parallel lanes,
and the program-specific shrunken core -- and flags any architectural
disagreement.  Failures shrink to minimal pytest-ready repros; a
static lint pass independently checks every generated netlist for
structural defects (combinational loops, multi-driven or floating
nets, unresettable control flops).

Command line::

    python -m repro verify --seed 0 --count 50
    python -m repro lint --all
"""

from repro.verify.corpus import (
    CampaignResult,
    CaseResult,
    DEFAULT_CONFIGS,
    run_campaign,
)
from repro.verify.differential import (
    DEFAULT_EXECUTORS,
    Divergence,
    bitparallel_verify,
    differential_check,
    fault_site_for_output,
    lane_verify,
    ps_isa_variant,
    remap_bars,
)
from repro.verify.generator import random_program
from repro.verify.lint import (
    LintFinding,
    LintReport,
    lint_core,
    lint_netlist,
)
from repro.verify.shrink import ShrinkResult, emit_pytest_case, shrink

__all__ = [
    "CampaignResult",
    "CaseResult",
    "DEFAULT_CONFIGS",
    "DEFAULT_EXECUTORS",
    "Divergence",
    "LintFinding",
    "LintReport",
    "ShrinkResult",
    "bitparallel_verify",
    "differential_check",
    "emit_pytest_case",
    "fault_site_for_output",
    "lane_verify",
    "lint_core",
    "lint_netlist",
    "ps_isa_variant",
    "random_program",
    "remap_bars",
    "run_campaign",
    "shrink",
]
