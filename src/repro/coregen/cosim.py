"""Lock-step co-simulation: gate-level core vs instruction-set simulator.

The strongest evidence that the generated netlists are *real* designs:
run a benchmark program cycle-by-cycle on the gate-level simulator with
behavioural ROM/RAM models attached, and compare every piece of
architectural state (PC, flags, BARs, data memory) against the
reference instruction-set simulator.

All pipeline depths are supported: multi-stage cores run until the
architectural state quiesces in the HALT loop (the stall and flush
control is thereby verified at gate level too).  The paper's
application-level results use single-stage cores (Section 8), which is
also the fastest configuration to verify.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError
from repro.isa.program import Program
from repro.isa.spec import Flag, Instruction, Mnemonic
from repro.netlist.sim import CycleSimulator
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import span as _obs_span
from repro.sim.machine import Machine
from repro.coregen.config import CoreConfig
from repro.coregen.generator import generate_core
from repro.coregen.isa_map import encode_for_core, encode_program_for_core

_COSIM_RUNS = _obs_counter("cosim.runs")
_COSIM_MISMATCHES = _obs_counter("cosim.mismatches")


@dataclass
class CoSimMismatch:
    """One architectural-state divergence found during co-simulation."""

    cycle: int
    what: str
    gate_value: int
    iss_value: int

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}: {self.what}: gate={self.gate_value} "
            f"iss={self.iss_value}"
        )


def architectural_nets(
    netlist,
) -> tuple[dict[str, tuple[int, ...]], dict[int, tuple[int, ...]]]:
    """Index flag and BAR flop nets of a generated core by name.

    Returns ``(flag_nets, bar_nets)``: flag nets keyed by flag name
    (e.g. ``"Z"``), BAR buses keyed by BAR index with nets LSB-first.
    Built in one pass over the net table so per-query name scans --
    which run once per verification -- are avoided.
    """
    flag_nets: dict[str, list[int]] = {}
    bar_bits: dict[int, list[tuple[int, int]]] = {}
    for net in range(netlist.net_count):
        name = netlist.net_name(net)
        if name.startswith("flag_") and name.endswith("[0]"):
            flag_nets.setdefault(name[len("flag_"):-len("[0]")], []).append(net)
        elif name.startswith("bar"):
            prefix, bracket, bit = name.partition("[")
            index = prefix[len("bar"):]
            if bracket and index.isdigit() and bit.endswith("]"):
                bar_bits.setdefault(int(index), []).append(
                    (int(bit[:-1]), net)
                )
    bar_nets = {
        index: tuple(net for _, net in sorted(bits))
        for index, bits in bar_bits.items()
    }
    return (
        {flag: tuple(nets) for flag, nets in flag_nets.items()},
        bar_nets,
    )


class CoSimHarness:
    """Drives one generated core against behavioural memories.

    Args:
        program: The program image to run.
        config: Core configuration; defaults to a standard single-stage
            core matching the program's datawidth and BAR count.
        backend: Gate-level simulation backend; the compiled backend is
            the default (bit-exact with the interpreter, an order of
            magnitude faster -- see ``docs/MODELS.md``).
        fault: Optional stuck-at fault injected into the gate-level
            side only (the differential fuzzer uses this to prove it
            detects real netlist defects -- see ``docs/VERIFY.md``).
    """

    def __init__(
        self,
        program: Program,
        config: CoreConfig | None = None,
        backend: str = "compiled",
        fault=None,
    ) -> None:
        if config is None:
            config = CoreConfig(
                datawidth=program.datawidth,
                pipeline_stages=1,
                num_bars=max(2, program.num_bars),
            )
        self.program = program
        self.config = config
        self.netlist = generate_core(config)
        if fault is not None:
            from repro.netlist.faults import FaultySimulator

            self.sim = FaultySimulator(self.netlist, fault, backend=backend)
        else:
            self.sim = CycleSimulator(self.netlist, backend=backend)
        self._flag_nets, self._bar_nets = architectural_nets(self.netlist)
        self.rom = encode_program_for_core(program, config)
        self.memory = [0] * config.data_memory_words()
        mask = (1 << config.datawidth) - 1
        for address, value in program.data.items():
            if address >= len(self.memory):
                raise SimulationError(
                    f"data at {address} exceeds the core's "
                    f"{len(self.memory)}-word memory"
                )
            self.memory[address] = value & mask
        self.cycle = 0
        self.wrote_last_cycle = False
        self.sim.reset()

    # -- memory model ------------------------------------------------------

    def _halt_word(self, pc: int) -> int:
        """Fetch word for addresses past the program: branch-to-self."""
        return encode_for_core(
            Instruction(Mnemonic.BRN, target=pc, mask=0), self.config
        )

    def _provide(self, sim: CycleSimulator) -> None:
        pc = sim.read_output("pc")
        word = self.rom[pc] if pc < len(self.rom) else self._halt_word(pc)
        sim.set_input("instr", word)
        addr_a = sim.read_output("addr_a")
        addr_b = sim.read_output("addr_b")
        sim.set_input("rdata_a", self.memory[addr_a])
        sim.set_input("rdata_b", self.memory[addr_b])

    def step(self) -> None:
        """Run one full clock cycle (fetch/execute/writeback)."""
        sim = self.sim
        sim.settle()
        self._provide(sim)
        sim.settle()
        self._provide(sim)
        sim.settle()
        we = sim.read_output("we")
        waddr = sim.read_output("waddr")
        wdata = sim.read_output("wdata")
        sim.tick()
        if we:
            self.memory[waddr] = wdata
        self.cycle += 1
        self.wrote_last_cycle = bool(we)

    # -- state access ---------------------------------------------------------

    @property
    def pc(self) -> int:
        self.sim.settle()
        return self.sim.read_output("pc")

    def flag(self, flag: Flag) -> int:
        """Current value of one architectural flag's flop."""
        nets = self._flag_nets.get(flag.name)
        if not nets:
            return 0
        return self.sim.read_flop_bus(nets)

    def bar(self, index: int) -> int:
        """Current value of settable BAR ``index`` (0 is hardwired)."""
        if index == 0 or index >= self.config.num_bars:
            return 0
        return self.sim.read_flop_bus(self._bar_nets.get(index, ()))


def cosim_verify(
    program: Program,
    config: CoreConfig | None = None,
    max_cycles: int = 200_000,
    backend: str = "compiled",
    fault=None,
) -> list[CoSimMismatch]:
    """Run ``program`` on both simulators and diff architectural state.

    Single-stage cores are stepped exactly as many cycles as the ISS
    executes instructions; multi-stage cores run until the PC parks in
    the HALT self-loop (which also exercises the stall/flush control).
    PC, flags, BARs, and the full data memory are compared afterwards.

    Returns:
        A list of mismatches -- empty means the core is equivalent on
        this program.
    """
    with _obs_span(
        "cosim",
        program=program.name,
        design=config.name if config is not None else "default",
        backend=backend,
    ) as sp:
        _COSIM_RUNS.inc()
        mismatches = _cosim_verify(program, config, max_cycles, backend, fault)
        _COSIM_MISMATCHES.inc(len(mismatches))
        sp.note(mismatches=len(mismatches))
    return mismatches


def _cosim_verify(
    program: Program,
    config: CoreConfig | None,
    max_cycles: int,
    backend: str,
    fault=None,
) -> list[CoSimMismatch]:
    machine = Machine(
        program,
        mem_size=(config.data_memory_words() if config else 256),
        num_bars=(config.num_bars if config else max(2, program.num_bars)),
    )
    result = machine.run(max_steps=max_cycles)
    if not result.halted:
        raise SimulationError(f"{program.name}: ISS did not halt")

    harness = CoSimHarness(program, config, backend=backend, fault=fault)
    pc_mask = (1 << max(1, harness.config.pc_bits)) - 1
    halt_pc = machine.pc & pc_mask
    if harness.config.pipeline_stages == 1:
        for _ in range(machine.stats.instructions):
            harness.step()
    else:
        # A multi-stage core parked in the HALT self-loop keeps
        # re-fetching (its PC oscillates around the halt address), so
        # quiescence is: no memory writes for a while and the PC
        # repeatedly passing through the halt address.
        quiet = 0
        halt_sightings = 0
        for _ in range(max_cycles):
            harness.step()
            quiet = 0 if harness.wrote_last_cycle else quiet + 1
            if harness.pc == halt_pc:
                halt_sightings += 1
            else:
                halt_sightings = max(0, halt_sightings)
            if quiet >= 12 and halt_sightings >= 4:
                break
        else:
            raise SimulationError(f"{program.name}: pipeline never quiesced")

    mismatches: list[CoSimMismatch] = []

    def check(what: str, gate: int, iss: int) -> None:
        if gate != iss:
            mismatches.append(CoSimMismatch(harness.cycle, what, gate, iss))

    if harness.config.pipeline_stages == 1:
        check("pc", harness.pc, machine.pc & pc_mask)
    for flag in harness.config.flags:
        check(f"flag {flag.name}", harness.flag(flag), 1 if machine.flags & flag else 0)
    for index in range(1, harness.config.num_bars):
        if index < machine.num_bars:
            bar_mask = (1 << harness.config.bar_bits) - 1
            check(f"bar{index}", harness.bar(index), machine.bars[index] & bar_mask)
    for address in range(min(len(harness.memory), machine.mem_size)):
        check(f"mem[{address}]", harness.memory[address], machine.memory[address])
    return mismatches
