"""Configuration-aware instruction encoding.

The standard TP-ISA word is 24 bits, but a program-specific core
(Section 7) fetches *shrunken* words: narrower operand fields and a
compacted flag mask holding only the flags the core implements.  This
module encodes :class:`~repro.isa.spec.Instruction` objects for an
arbitrary :class:`~repro.coregen.config.CoreConfig`, which is what the
co-simulation harness and the instruction-ROM sizing both consume.
"""

from __future__ import annotations

from repro.errors import IsaError
from repro.isa.program import Program
from repro.isa.spec import Instruction, MemOperand, Mnemonic
from repro.coregen.config import CoreConfig


def _encode_memory_operand(
    operand: MemOperand, config: CoreConfig, offset_bits: int
) -> int:
    if operand.bar >= config.num_bars:
        raise IsaError(
            f"operand BAR {operand.bar} exceeds the core's {config.num_bars} BARs"
        )
    if operand.offset >= (1 << offset_bits):
        raise IsaError(
            f"offset {operand.offset} does not fit {offset_bits} offset bits"
        )
    return (operand.bar << offset_bits) | operand.offset


def encode_mask(mask: int, config: CoreConfig) -> int:
    """Compact an architectural flag mask onto the core's flag order.

    Bit ``i`` of the result selects ``config.flags[i]``.  Raises if the
    mask names a flag the core does not implement.
    """
    compacted = 0
    remaining = mask
    for position, flag in enumerate(config.flags):
        if mask & int(flag):
            compacted |= 1 << position
            remaining &= ~int(flag)
    if remaining:
        raise IsaError(
            f"mask {mask:#x} uses flags the core lacks (has {config.flags})"
        )
    return compacted


def encode_for_core(instruction: Instruction, config: CoreConfig) -> int:
    """Encode ``instruction`` into the core's fetch-word format.

    Field layout (MSB first): opcode (4) | W C A B (4) |
    operand1 (``config.operand1_bits``) | operand2
    (``config.operand2_bits``).
    """
    spec = instruction.spec
    o1_bits = config.operand1_bits
    o2_bits = config.operand2_bits

    if spec.fmt == "M":
        op1 = _encode_memory_operand(instruction.dst, config, config.offset1_bits)
        op2 = _encode_memory_operand(instruction.src, config, config.offset2_bits)
    elif instruction.mnemonic is Mnemonic.STORE:
        op1 = _encode_memory_operand(instruction.dst, config, config.offset1_bits)
        op2 = instruction.imm
    elif instruction.mnemonic is Mnemonic.SETBAR:
        # The pointer resolves through the regular operand-1 path, so
        # it must fit the offset field (kernels keep pointers low).
        op1 = _encode_memory_operand(instruction.src, config, config.offset1_bits)
        op2 = instruction.bar_index
    else:  # branch
        if instruction.target >= (1 << max(1, config.pc_bits)):
            raise IsaError(
                f"branch target {instruction.target} exceeds the core's "
                f"{config.pc_bits}-bit PC"
            )
        op1 = instruction.target
        op2 = encode_mask(instruction.mask, config)

    for value, bits, label in ((op1, o1_bits, "operand1"), (op2, o2_bits, "operand2")):
        if value >= (1 << bits):
            raise IsaError(f"{label} value {value} does not fit {bits} bits")

    word = spec.opcode
    word = (word << 4) | spec.control_bits
    word = (word << o1_bits) | op1
    word = (word << o2_bits) | op2
    return word


def encode_program_for_core(program: Program, config: CoreConfig) -> list[int]:
    """Encode a whole program as the core's instruction-ROM image."""
    return [encode_for_core(i, config) for i in program.instructions]
