"""Elaborate a :class:`CoreConfig` into a technology-mapped netlist.

The generated core is a Harvard-organization TP-ISA machine:

* ``instr`` input / ``pc`` output talk to an external instruction ROM;
* ``addr_a``/``addr_b`` outputs and ``rdata_a``/``rdata_b`` inputs talk
  to a dual-read-port data RAM with asynchronous read;
* ``we``/``waddr``/``wdata`` outputs commit one write per cycle.

Keeping the memories external matches the paper's methodology: cores
and memory arrays are characterized separately (Tables 2 vs 6) and
composed at the system level (Section 8).

Pipeline elaboration:

* 1 stage -- fully combinational from fetch to writeback.
* 2 stages (IF | EX) -- instruction + valid registers after fetch;
  taken branches flush the fetched slot.
* 3 stages (IF | RD | EX) -- address resolution and memory read in RD,
  execute/writeback in EX, with registered operands, a memory
  read-after-write stall comparator, and two-slot branch flush.

Construction style: every register's Q net is allocated *first* (state
feedback), all combinational logic is built against those nets, and the
flip-flop instances are placed last with their computed D drivers --
so feedback costs no buffer gates and the netlist stays minimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.isa.spec import Flag
from repro.netlist.components import (
    add_subtract,
    decoder,
    equals_const,
    incrementer,
    is_zero,
    mux_bus,
    mux_tree,
    ripple_adder,
    zero_extend,
)
from repro.exec.cache import load_artifact, source_digest, store_artifact
from repro.netlist.core import Bus, CONST0, CONST1, Netlist
from repro.obs.metrics import counter as _obs_counter
from repro.obs.runtime import STATE as _OBS
from repro.obs.trace import span as _obs_span
from repro.coregen.config import CoreConfig

_MEMO_HITS = _obs_counter("coregen.memo_hits")
_MEMO_MISSES = _obs_counter("coregen.memo_misses")
_DISK_HITS = _obs_counter("coregen.disk_hits")

#: Artifact-cache bucket for elaborated netlists.
_ARTIFACT_KIND = "netlist"

#: Modules whose source feeds elaboration (artifact-cache key digest).
_ELABORATION_SOURCES = (
    "repro.coregen.generator",
    "repro.coregen.config",
    "repro.netlist.core",
    "repro.netlist.components",
    "repro.isa.spec",
)


class _FlopBank:
    """Deferred flip-flop allocation: Q nets now, instances later."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._pending: list[tuple[int, bool, str]] = []
        self._drivers: dict[int, int] = {}

    def q_bus(self, name: str, width: int, reset: bool = True) -> list[int]:
        """Allocate ``width`` state nets (Q outputs)."""
        nets = []
        for i in range(width):
            q = self.netlist.net(f"{name}[{i}]")
            self._pending.append((q, reset, name))
            nets.append(q)
        return nets

    def q(self, name: str, reset: bool = True) -> int:
        return self.q_bus(name, 1, reset)[0]

    def drive(self, q_nets, d_nets) -> None:
        """Record the D driver(s) for previously allocated Q net(s)."""
        if isinstance(q_nets, int):
            q_nets, d_nets = [q_nets], [d_nets]
        for q, d in zip(q_nets, d_nets):
            self._drivers[q] = d

    def finalize(self) -> None:
        """Instantiate every flop with its recorded driver."""
        reset_net = self.netlist.reset_input()
        for q, reset, name in self._pending:
            d = self._drivers.get(q)
            if d is None:
                raise AssertionError(f"state net {name} was never driven")
            if reset:
                self.netlist.add_instance("DFFNRX1", (d, reset_net), q)
            else:
                self.netlist.add_instance("DFFX1", (d,), q)


@dataclass
class _Fields:
    """Decoded instruction fields (nets), shared by all stages."""

    opcode: list[int]
    w: int
    c: int
    a: int
    b: int
    op1: list[int]
    op2: list[int]


def _split_fields(config: CoreConfig, word: list[int]) -> _Fields:
    o2 = config.operand2_bits
    o1 = config.operand1_bits
    return _Fields(
        opcode=word[o1 + o2 + 4 : o1 + o2 + 8],
        b=word[o1 + o2 + 0],
        a=word[o1 + o2 + 1],
        c=word[o1 + o2 + 2],
        w=word[o1 + o2 + 3],
        op1=word[o2 : o2 + o1],
        op2=word[0:o2],
    )


def _resolve_address(
    n: Netlist,
    config: CoreConfig,
    operand: list[int],
    offset_bits: int,
    bar_q: list[list[int]],
) -> Bus:
    """Effective address: ``BAR[select] + offset`` (mod 2^address_bits).

    On program-specific cores the address bus may be narrower than the
    operand offset field; high offset bits are truncated -- the RAM is
    sized so the program never addresses beyond them.
    """
    offset = zero_extend(
        operand[: min(offset_bits, config.address_bits)], config.address_bits
    )
    if config.num_bars == 1:
        return Bus("ea", offset)
    select = operand[offset_bits : offset_bits + config.bar_select_bits]
    bars = [zero_extend(q, config.address_bits) for q in bar_q]
    base = mux_tree(n, select, bars)
    total, _carry = ripple_adder(n, base.nets, offset)
    return total


def _build_alu(
    n: Netlist,
    config: CoreConfig,
    fields: _Fields,
    a_bus: list[int],
    b_bus: list[int],
    flag_q: dict[Flag, int],
) -> tuple[Bus, dict[Flag, int], int]:
    """The execute logic.

    Returns ``(result, flag_next, is_alu)`` where ``flag_next`` maps
    each implemented flag to its next-value net.
    """
    w = config.datawidth
    carry_flag = flag_q.get(Flag.C, CONST0)

    add_result, carry_out, overflow = add_subtract(
        n, a_bus, b_bus, subtract=fields.a,
        carry_in=carry_flag, use_carry_in=fields.c,
    )
    and_result = [n.and_(x, y) for x, y in zip(a_bus, b_bus)]
    or_result = [n.or_(x, y) for x, y in zip(a_bus, b_bus)]
    xor_result = [n.xor_(x, y) for x, y in zip(a_bus, b_bus)]
    not_result = [n.not_(y) for y in b_bus]

    # Rotate left: LSB takes the wrapped MSB (RL) or the carry (RLC).
    rl_lsb = n.mux(fields.c, b_bus[w - 1], carry_flag)
    rl_result = [rl_lsb] + list(b_bus[: w - 1])
    # Rotate right: MSB takes the wrapped LSB (RR), the carry (RRC),
    # or its own sign (RRA).
    rr_msb = n.mux(fields.a, n.mux(fields.c, b_bus[0], carry_flag), b_bus[w - 1])
    rr_result = list(b_bus[1:]) + [rr_msb]

    imm_bits = fields.op2[: min(len(fields.op2), w)]
    store_result = zero_extend(imm_bits, w)

    result = mux_tree(
        n,
        fields.opcode[0:3],
        [
            add_result.nets,
            and_result,
            or_result,
            xor_result,
            not_result,
            rl_result,
            rr_result,
            store_result,
        ],
    )

    is_add = equals_const(n, fields.opcode, 0)
    is_rl = equals_const(n, fields.opcode, 5)
    is_rr = equals_const(n, fields.opcode, 6)
    alu_onehot = decoder(n, fields.opcode, count=7)
    is_alu = n.or_many(alu_onehot.nets)

    flag_next: dict[Flag, int] = {}
    if Flag.S in flag_q:
        flag_next[Flag.S] = result[w - 1]
    if Flag.Z in flag_q:
        flag_next[Flag.Z] = is_zero(n, result.nets)
    if Flag.C in flag_q:
        flag_next[Flag.C] = n.or_(
            n.and_(is_add, carry_out),
            n.or_(n.and_(is_rl, b_bus[w - 1]), n.and_(is_rr, b_bus[0])),
        )
    if Flag.V in flag_q:
        flag_next[Flag.V] = n.and_(is_add, overflow)
    return result, flag_next, is_alu


def _branch_unit(
    n: Netlist,
    config: CoreConfig,
    fields: _Fields,
    flag_q: dict[Flag, int],
) -> tuple[int, list[int]]:
    """Branch resolution: returns ``(taken, target_bits)``."""
    masked = [
        n.and_(fields.op2[position], flag_q[flag])
        for position, flag in enumerate(config.flags)
        if position < len(fields.op2)
    ]
    any_set = n.or_many(masked)
    taken_if = n.mux(fields.a, any_set, n.not_(any_set))
    taken = n.and_(fields.b, taken_if)
    target = zero_extend(fields.op1[: config.pc_bits], max(1, config.pc_bits))
    return taken, target


def _bus_equal(n: Netlist, a: list[int], b: list[int]) -> int:
    """Equality comparator over two equal-width buses."""
    return n.and_many([n.xnor(x, y) for x, y in zip(a, b)])


def generate_core(config: CoreConfig, cse: bool = True) -> Netlist:
    """Generate the gate-level netlist for ``config``.

    The returned netlist is validated and ready for STA, power, area
    analysis, Verilog dump, or cycle simulation.  ``cse=False``
    disables common-subexpression elimination (ablation of the
    builder's stand-in for logic optimization).

    Results are memoized per ``(config, cse)``: elaboration is pure,
    the returned netlist is treated as immutable by every analysis,
    and sharing it lets the simulators reuse one compiled code object
    across co-simulation harnesses and fault campaigns.
    """
    if not _OBS.enabled:
        return _generate_core(config, cse)
    # Memo telemetry: lru_cache hides hits, so detect them by whether
    # the call bumped the miss count (elaboration itself gets a span
    # inside the cached function, covering misses only).
    misses_before = _generate_core.cache_info().misses
    netlist = _generate_core(config, cse)
    if _generate_core.cache_info().misses == misses_before:
        _MEMO_HITS.inc()
    else:
        _MEMO_MISSES.inc()
    return netlist


@lru_cache(maxsize=128)
def _generate_core(config: CoreConfig, cse: bool) -> Netlist:
    # On-disk tier under the in-memory memo: a warm cache means a
    # fresh process (or pool worker) unpickles the elaborated netlist
    # instead of re-running elaboration.  The key digests the config
    # and every module whose source shapes the netlist, so code edits
    # invalidate automatically.
    key = f"{config!r};cse={cse};" + source_digest(*_ELABORATION_SOURCES)
    netlist = load_artifact(_ARTIFACT_KIND, key)
    if isinstance(netlist, Netlist):
        _DISK_HITS.inc()
        return netlist
    with _obs_span("elaborate", design=config.name, cse=cse):
        netlist = _elaborate(config, cse)
    store_artifact(_ARTIFACT_KIND, key, netlist)
    return netlist


def _elaborate(config: CoreConfig, cse: bool) -> Netlist:
    n = Netlist(config.name, cse=cse)
    n.reset_input()
    flops = _FlopBank(n)
    w = config.datawidth
    pc_bits = max(1, config.pc_bits)
    stages = config.pipeline_stages

    instr_in = n.input_bus("instr", config.instruction_bits)
    rdata_a_in = n.input_bus("rdata_a", w)
    rdata_b_in = n.input_bus("rdata_b", w)

    # -- architectural state (Q nets first; D wiring at the end) -----------
    pc_q = flops.q_bus("pc", pc_bits)
    n.output_bus("pc", pc_q)

    bar_q: list[list[int]] = [[CONST0] * config.bar_bits]
    for index in range(1, config.num_bars):
        bar_q.append(flops.q_bus(f"bar{index}", config.bar_bits))

    flag_q = {flag: flops.q(f"flag_{flag.name}") for flag in config.flags}

    # -- IF stage ------------------------------------------------------------
    if stages == 1:
        fetched_word = list(instr_in.nets)
        fetched_valid = CONST1
    else:
        fetched_word = flops.q_bus("instr_if", config.instruction_bits, reset=False)
        fetched_valid = flops.q("valid_if")

    # -- RD: address resolution ------------------------------------------------
    rd_fields = _split_fields(config, fetched_word)
    addr_a = _resolve_address(n, config, rd_fields.op1, config.offset1_bits, bar_q)
    addr_b = _resolve_address(n, config, rd_fields.op2, config.offset2_bits, bar_q)
    n.output_bus("addr_a", addr_a.nets)
    n.output_bus("addr_b", addr_b.nets)

    # -- RD/EX boundary ----------------------------------------------------------
    if stages == 3:
        ex_word = flops.q_bus("instr_ex", config.instruction_bits, reset=False)
        ex_rdata_a = flops.q_bus("rdata_a_ex", w, reset=False)
        ex_rdata_b = flops.q_bus("rdata_b_ex", w, reset=False)
        ex_waddr = flops.q_bus("waddr_ex", config.address_bits, reset=False)
        ex_valid = flops.q("valid_ex")
        ex_fields = _split_fields(config, ex_word)
    else:
        ex_word = fetched_word
        ex_rdata_a = list(rdata_a_in.nets)
        ex_rdata_b = list(rdata_b_in.nets)
        ex_waddr = list(addr_a.nets)
        ex_valid = fetched_valid
        ex_fields = rd_fields

    # -- EX: ALU, flags, branch, writeback ----------------------------------------
    result, flag_next, is_alu = _build_alu(
        n, config, ex_fields, ex_rdata_a, ex_rdata_b, flag_q
    )
    taken_raw, target = _branch_unit(n, config, ex_fields, flag_q)
    taken = n.and_(taken_raw, ex_valid)

    flags_we = n.and_(is_alu, ex_valid)
    for flag in config.flags:
        flops.drive(flag_q[flag], n.mux(flags_we, flag_q[flag], flag_next[flag]))

    # BAR writes (SETBAR: opcode 8; new value from operand-1 read data).
    if config.num_bars > 1:
        is_bar = equals_const(n, ex_fields.opcode, 8)
        bar_value = zero_extend(
            ex_rdata_a[: min(w, config.bar_bits)], config.bar_bits
        )
        select_bits = max(1, (config.num_bars - 1).bit_length())
        for index in range(1, config.num_bars):
            matches = equals_const(n, ex_fields.op2[:select_bits], index)
            bar_we = n.and_(n.and_(is_bar, matches), ex_valid)
            flops.drive(
                bar_q[index],
                [
                    n.mux(bar_we, old, new)
                    for old, new in zip(bar_q[index], bar_value)
                ],
            )

    # Memory write port.
    we = n.and_(ex_fields.w, ex_valid)
    n.output_bus("we", [we])
    n.output_bus("waddr", ex_waddr)
    n.output_bus("wdata", result.nets)

    # -- PC update and pipeline control ----------------------------------------------
    pc_plus_1 = incrementer(n, pc_q)
    pc_next = mux_bus(n, taken, pc_plus_1.nets, target)

    if stages == 1:
        flops.drive(pc_q, pc_next.nets)
    elif stages == 2:
        # Taken branches flush the fetched slot; no stalls exist.
        flops.drive(fetched_valid, n.not_(taken))
        flops.drive(fetched_word, list(instr_in.nets))
        flops.drive(pc_q, pc_next.nets)
    else:
        # Stall when the RD-stage instruction reads an address the
        # EX-stage one is writing (memory RAW), or when EX is a SETBAR
        # whose new BAR value RD's addressing may depend on.
        eq_a = _bus_equal(n, addr_a.nets, ex_waddr)
        eq_b = _bus_equal(n, addr_b.nets, ex_waddr)
        is_bar_ex = equals_const(n, ex_fields.opcode, 8)
        hazard = n.or_(
            n.and_(we, n.or_(eq_a, eq_b)),
            n.and_(is_bar_ex, ex_valid),
        )
        stall = n.and_(hazard, fetched_valid)
        not_stall = n.not_(stall)

        # IF: hold on stall, flush on taken branch, else refill.
        flops.drive(
            fetched_word,
            [n.mux(stall, new, old) for new, old in zip(instr_in.nets, fetched_word)],
        )
        flops.drive(fetched_valid, n.mux(stall, n.not_(taken), fetched_valid))
        # RD/EX: bubble on stall or flush.
        flops.drive(ex_word, [n.and_(bit, not_stall) for bit in fetched_word])
        flops.drive(ex_rdata_a, [n.and_(bit, not_stall) for bit in rdata_a_in.nets])
        flops.drive(ex_rdata_b, [n.and_(bit, not_stall) for bit in rdata_b_in.nets])
        flops.drive(ex_waddr, [n.and_(bit, not_stall) for bit in addr_a.nets])
        flops.drive(
            ex_valid,
            n.and_(fetched_valid, n.and_(not_stall, n.not_(taken))),
        )
        # PC holds on stall.
        flops.drive(pc_q, mux_bus(n, stall, pc_next.nets, pc_q).nets)

    flops.finalize()
    n.validate()
    return n
