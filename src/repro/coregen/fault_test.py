"""Functional print-test campaigns: benchmarks as fault detectors.

Runs a benchmark on fault-injected variants of a generated core and
measures what fraction of stuck-at faults the program's architectural
result exposes -- i.e. how good "run the application and check its
output" is as a post-print test (the only economical test for sub-cent
printed systems).

Campaigns are embarrassingly parallel across fault sites, and the
lane backends exploit that with cross-run lane packing
(:class:`repro.netlist.lanes.LanePlan`): each lane carries one faulty
machine with its own data memory image, so one gate evaluation pass
advances many fault simulations.  Two lane backends exist --
``"batched"`` (bigint :class:`repro.netlist.compile.BitParallelSimulator`,
:data:`DEFAULT_LANES` faults per pass) and ``"numpy"`` (vectorized
uint64 bit-slice :class:`repro.netlist.nsim.NumpySimulator`,
:data:`DEFAULT_NUMPY_LANES` faults per pass with fully vectorized
fetch/memory plumbing).  The ``"compiled"`` and ``"interpreted"``
backends run one fault at a time and exist for cross-checking; all
four produce identical campaigns.

On top of lane-level batching, ``jobs=`` fans batches (or, for the
scalar backends, individual faults) out across worker processes via
:func:`repro.exec.parallel_map` with a warm-worker initializer that
pre-builds the campaign context (netlist, ROM, compiled kernels) in
each worker before the first chunk lands.  Judging happens in the
parent in submission order, so a parallel campaign is bit-identical to
the serial one, down to the order of ``undetected_sites``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import Sequence

from repro import obs
from repro.coregen.config import CoreConfig
from repro.coregen.cosim import CoSimHarness, architectural_nets
from repro.coregen.generator import generate_core
from repro.coregen.isa_map import encode_for_core, encode_program_for_core
from repro.exec import map_in_chunks, parallel_map
from repro.isa.program import Program
from repro.isa.spec import Instruction, Mnemonic
from repro.netlist.compile import BitParallelSimulator
from repro.netlist.faults import (
    FaultCampaign,
    FaultySimulator,
    StuckAtFault,
    enumerate_fault_sites,
)
from repro.netlist.lanes import LaneMemoryHarness, LanePlan
from repro.netlist.nsim import NumpySimulator
from repro.sim.machine import Machine

#: Fault sites evaluated per bit-parallel pass in batched campaigns.
DEFAULT_LANES = 48

#: Fault sites evaluated per kernel pass in numpy campaigns.  Far
#: larger than the bigint width because a vectorized pass costs almost
#: the same for 64 lanes as for 8192 -- the per-gate ufunc dispatch
#: dominates, not the word count.
DEFAULT_NUMPY_LANES = 8192

_FAULTS_INJECTED = obs.counter("faults.injected")
_FAULTS_DETECTED = obs.counter("faults.detected")
_FAULT_RATE = obs.histogram("faults.per_second")

# Per-backend throughput (faults.per_second.<backend>), created lazily
# so only exercised backends appear in run reports.
_RATES_BY_BACKEND: dict[str, obs.Histogram] = {}


def _fault_rate(backend: str):
    rate = _RATES_BY_BACKEND.get(backend)
    if rate is None:
        rate = _RATES_BY_BACKEND[backend] = obs.histogram(
            f"faults.per_second.{backend}"
        )
    return rate


def _signature(harness: CoSimHarness) -> tuple:
    """Architectural outcome: data memory, PC, flags, BARs."""
    flags = tuple(harness.flag(f) for f in harness.config.flags)
    bars = tuple(harness.bar(i) for i in range(1, harness.config.num_bars))
    return (tuple(harness.memory), harness.pc, flags, bars)


def _run(
    program: Program,
    config: CoreConfig,
    cycles: int,
    fault=None,
    backend: str = "compiled",
) -> tuple:
    harness = CoSimHarness(program, config, backend=backend)
    if fault is not None:
        harness.sim = FaultySimulator(harness.netlist, fault, backend=backend)
        harness.sim.reset()
    for _ in range(cycles):
        harness.step()
    return _signature(harness)


@dataclass
class _CampaignContext:
    """Per-campaign invariants, computed once and shared by every batch.

    Hoists what :func:`_run_batched` used to rebuild per 48-fault
    batch: the elaborated netlist, the encoded ROM, the initial
    data-memory image, the flag/BAR net index from
    :func:`architectural_nets`, and the halt-word padding memo (shared
    across batches -- entries are pure functions of the PC).
    """

    netlist: object
    rom: list[int]
    base_memory: list[int]
    flag_nets: dict
    bar_nets: dict
    halt_words: dict


def _prepare_campaign(program: Program, config: CoreConfig) -> _CampaignContext:
    """Build the shared per-campaign context (one elaboration, one scan)."""
    netlist = generate_core(config)
    mask = (1 << config.datawidth) - 1
    base = [0] * config.data_memory_words()
    for address, value in program.data.items():
        base[address] = value & mask
    flag_nets, bar_nets = architectural_nets(netlist)
    return _CampaignContext(
        netlist=netlist,
        rom=encode_program_for_core(program, config),
        base_memory=base,
        flag_nets=flag_nets,
        bar_nets=bar_nets,
        halt_words={},
    )


# One-slot context memo for pool workers: every batch of a campaign
# shares (program name, config), so a worker prepares the context once
# and reuses it for each chunk it serves.
_WORKER_CONTEXT: tuple[tuple, _CampaignContext] | None = None


def _campaign_context(program: Program, config: CoreConfig) -> _CampaignContext:
    global _WORKER_CONTEXT
    key = (program.name, config)
    if _WORKER_CONTEXT is None or _WORKER_CONTEXT[0] != key:
        _WORKER_CONTEXT = (key, _prepare_campaign(program, config))
    return _WORKER_CONTEXT[1]


def halt_word_encoder(config: CoreConfig):
    """``pc -> instruction word`` for fetches past the program end.

    Encodes the same self-branch the scalar harness pads with; shared
    by both lane backends and the differential verifier via
    :class:`~repro.netlist.lanes.LaneMemoryHarness`.
    """

    def encode(pc: int) -> int:
        return encode_for_core(
            Instruction(Mnemonic.BRN, target=pc, mask=0), config
        )

    return encode


def _lane_signatures(
    harness: LaneMemoryHarness, config: CoreConfig, context: _CampaignContext
) -> list[tuple]:
    """Per-lane architectural signatures after a finished harness run."""
    sim = harness.sim
    memory_rows = harness.memory_rows()
    pcs = sim.read_output("pc")
    flag_values = [
        sim.read_nets(context.flag_nets.get(flag.name, ()))
        for flag in config.flags
    ]
    bar_values = [
        sim.read_nets(context.bar_nets.get(index, ()))
        for index in range(1, config.num_bars)
    ]
    return [
        (
            tuple(memory_rows[lane]),
            pcs[lane],
            tuple(values[lane] for values in flag_values),
            tuple(values[lane] for values in bar_values),
        )
        for lane in range(harness.lanes)
    ]


def _run_batched(
    program: Program,
    config: CoreConfig,
    cycles: int,
    faults: list[StuckAtFault],
    context: _CampaignContext | None = None,
) -> list[tuple]:
    """Architectural signatures of ``len(faults)`` faulty runs at once.

    Mirrors :meth:`CoSimHarness.step` exactly -- three settles with
    behavioural ROM/RAM provided between them, then writeback -- but
    every lane carries its own fault and its own data-memory image.
    The memory loop itself lives in the shared
    :class:`~repro.netlist.lanes.LaneMemoryHarness`.
    """
    if context is None:
        context = _prepare_campaign(program, config)
    lanes = len(faults)
    sim = BitParallelSimulator(context.netlist, lanes, faults=faults)
    harness = LaneMemoryHarness(
        sim,
        lanes=lanes,
        rom=context.rom,
        base_memory=context.base_memory,
        halt_word=halt_word_encoder(config),
        halt_words=context.halt_words,
    )
    harness.run(cycles)
    return _lane_signatures(harness, config, context)


def _run_batched_numpy(
    program: Program,
    config: CoreConfig,
    cycles: int,
    faults: list[StuckAtFault],
    context: _CampaignContext | None = None,
) -> list[tuple]:
    """Architectural signatures of ``len(faults)`` faulty runs at once,
    on the numpy bit-slice backend.

    Same cycle structure as :func:`_run_batched` (mirroring
    :meth:`CoSimHarness.step`), but on the shared harness's array
    path: instruction fetch is a table gather, data memory is one
    ``(lanes, words)`` array read with fancy indexing and written back
    under the ``we`` mask, so the run stays O(kernel calls) rather
    than O(lanes) per cycle.
    """
    if context is None:
        context = _prepare_campaign(program, config)
    lanes = len(faults)
    sim = NumpySimulator(context.netlist, plan=LanePlan.for_faults(faults))
    harness = LaneMemoryHarness(
        sim,
        lanes=lanes,
        rom=context.rom,
        base_memory=context.base_memory,
        halt_word=halt_word_encoder(config),
        halt_words=context.halt_words,
        pc_bits=len(context.netlist.outputs["pc"].nets),
    )
    harness.run(cycles)
    return _lane_signatures(harness, config, context)


def golden_signature(
    program: Program,
    config: CoreConfig,
    cycles: int,
    backend: str = "compiled",
) -> tuple:
    """Architectural signature of the healthy core after ``cycles``."""
    return _run(program, config, cycles, backend=backend)


def lane_signatures(
    program: Program,
    config: CoreConfig,
    cycles: int,
    fault_sets: Sequence,
    context: _CampaignContext | None = None,
) -> list[tuple]:
    """Architectural signatures of lane-packed faulty units (numpy).

    One entry per element of ``fault_sets``; each entry may be a
    single :class:`StuckAtFault`, a tuple of them (a multi-defect
    printed unit), or ``None`` for a healthy lane -- the
    :class:`LanePlan` per-lane fault semantics.  This is the
    Monte-Carlo yield engine's doorway into the campaign machinery:
    :mod:`repro.mc.fyield` packs sampled defective units through here
    and compares against :func:`golden_signature`.  Pass ``context``
    (see :func:`prepare_context`) to amortize elaboration across
    batches.
    """
    return _run_batched_numpy(program, config, cycles, list(fault_sets), context)


def prepare_context(program: Program, config: CoreConfig) -> _CampaignContext:
    """Worker-memoized campaign context (public alias for engines)."""
    return _campaign_context(program, config)


def _judge_one(
    program: Program,
    config: CoreConfig,
    cycles: int,
    backend: str,
    fault: StuckAtFault,
) -> tuple:
    """Scalar verdict for one fault: ``("ok", signature)`` or ``("wedged", None)``.

    A fault that wedges the simulation is certainly detected; the
    parent treats the ``"wedged"`` status as a divergence.
    """
    try:
        return ("ok", _run(program, config, cycles, fault, backend))
    except Exception:
        return ("wedged", None)


def _judge_batch(
    program: Program,
    config: CoreConfig,
    cycles: int,
    scalar_backend: str,
    faults: list[StuckAtFault],
    runner=_run_batched,
) -> list[tuple]:
    """Lane-parallel verdicts for one batch (``parallel_map`` target).

    ``runner`` is the lane backend (:func:`_run_batched` for bigint,
    :func:`_run_batched_numpy` for bit-slice).  Falls back to
    one-at-a-time scalar simulation when the batched run itself raises,
    so a wedging fault is attributed to the lane that caused it --
    exactly the serial campaign's recovery path.
    """
    context = _campaign_context(program, config)
    try:
        outcomes = runner(program, config, cycles, faults, context)
    except Exception:
        return [
            _judge_one(program, config, cycles, scalar_backend, fault)
            for fault in faults
        ]
    return [("ok", outcome) for outcome in outcomes]


def run_fault_campaign(
    program: Program,
    config: CoreConfig | None = None,
    stride: int = 8,
    max_faults: int | None = None,
    backend: str = "batched",
    lanes: int | None = None,
    jobs: int | None = None,
) -> FaultCampaign:
    """Inject sampled stuck-at faults and count detections.

    Args:
        program: The benchmark used as the functional test.
        config: Core configuration (single-stage default).
        stride: Sample every ``stride``-th instance (full enumeration
            is quadratic in runtime; sampling estimates coverage).
        max_faults: Optional cap on injected faults.
        backend: ``"batched"`` (default; bigint bit-parallel),
            ``"numpy"`` (vectorized bit-slice, fastest for large
            campaigns), ``"compiled"`` (one fault at a time), or
            ``"interpreted"``.
        lanes: Faults per lane-parallel pass; defaults to
            :data:`DEFAULT_LANES` (batched) or
            :data:`DEFAULT_NUMPY_LANES` (numpy).
        jobs: Worker processes for the fault fan-out (``None`` defers
            to ``--jobs`` / ``REPRO_JOBS`` / serial).  Results are
            bit-exact against ``jobs=1``.

    A fault is *detected* when the faulty run's architectural
    signature differs from the golden run's after the same cycle
    count.
    """
    if config is None:
        config = CoreConfig(
            datawidth=program.datawidth,
            pipeline_stages=1,
            num_bars=max(2, program.num_bars),
        )
    with obs.span(
        "fault_campaign",
        program=program.name,
        design=config.name,
        backend=backend,
    ) as sp:
        started = time.perf_counter()
        machine = Machine(program, num_bars=config.num_bars)
        machine.run()
        cycles = machine.stats.instructions

        scalar_backend = "interpreted" if backend == "interpreted" else "compiled"
        golden = _run(program, config, cycles, backend=scalar_backend)
        sites = enumerate_fault_sites_from_config(program, config, stride)
        if max_faults is not None:
            sites = sites[:max_faults]

        label = f"fault_campaign[{program.name}]"
        warm = partial(_campaign_context, program, config)
        if backend in ("batched", "numpy"):
            runner = _run_batched if backend == "batched" else _run_batched_numpy
            if lanes is None:
                lanes = (
                    DEFAULT_LANES if backend == "batched" else DEFAULT_NUMPY_LANES
                )
            verdicts = map_in_chunks(
                partial(
                    _judge_batch,
                    program,
                    config,
                    cycles,
                    scalar_backend,
                    runner=runner,
                ),
                sites,
                chunk_size=lanes,
                jobs=jobs,
                label=label,
                warm=warm,
            )
        else:
            verdicts = parallel_map(
                partial(_judge_one, program, config, cycles, scalar_backend),
                sites,
                jobs=jobs,
                label=label,
                warm=warm,
            )

        detected = 0
        undetected: list[StuckAtFault] = []
        for fault, (status, outcome) in zip(sites, verdicts):
            if status != "ok" or outcome != golden:
                detected += 1
            else:
                undetected.append(fault)

        elapsed = time.perf_counter() - started
        _FAULTS_INJECTED.inc(len(sites))
        _FAULTS_DETECTED.inc(detected)
        if elapsed > 0:
            _FAULT_RATE.observe(len(sites) / elapsed)
            _fault_rate(backend).observe(len(sites) / elapsed)
        sp.note(faults=len(sites), detected=detected)
        return FaultCampaign(
            total=len(sites), detected=detected, undetected_sites=tuple(undetected)
        )


def enumerate_fault_sites_from_config(
    program: Program, config: CoreConfig, stride: int
) -> list[StuckAtFault]:
    """Fault sites over the core the campaign will instantiate."""
    return enumerate_fault_sites(generate_core(config), stride=stride)
