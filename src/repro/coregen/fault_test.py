"""Functional print-test campaigns: benchmarks as fault detectors.

Runs a benchmark on fault-injected variants of a generated core and
measures what fraction of stuck-at faults the program's architectural
result exposes -- i.e. how good "run the application and check its
output" is as a post-print test (the only economical test for sub-cent
printed systems).
"""

from __future__ import annotations

from repro.coregen.config import CoreConfig
from repro.coregen.cosim import CoSimHarness
from repro.isa.program import Program
from repro.netlist.faults import (
    FaultCampaign,
    FaultySimulator,
    StuckAtFault,
    enumerate_fault_sites,
)
from repro.sim.machine import Machine


def _signature(harness: CoSimHarness) -> tuple:
    """Architectural outcome: data memory, PC, flags, BARs."""
    flags = tuple(harness.flag(f) for f in harness.config.flags)
    bars = tuple(harness.bar(i) for i in range(1, harness.config.num_bars))
    return (tuple(harness.memory), harness.pc, flags, bars)


def _run(program: Program, config: CoreConfig, cycles: int, fault=None) -> tuple:
    harness = CoSimHarness(program, config)
    if fault is not None:
        harness.sim = FaultySimulator(harness.netlist, fault)
        harness.sim.reset()
    for _ in range(cycles):
        harness.step()
    return _signature(harness)


def run_fault_campaign(
    program: Program,
    config: CoreConfig | None = None,
    stride: int = 8,
    max_faults: int | None = None,
) -> FaultCampaign:
    """Inject sampled stuck-at faults and count detections.

    Args:
        program: The benchmark used as the functional test.
        config: Core configuration (single-stage default).
        stride: Sample every ``stride``-th instance (full enumeration
            is quadratic in runtime; sampling estimates coverage).
        max_faults: Optional cap on injected faults.

    A fault is *detected* when the faulty run's architectural
    signature differs from the golden run's after the same cycle
    count.
    """
    if config is None:
        config = CoreConfig(
            datawidth=program.datawidth,
            pipeline_stages=1,
            num_bars=max(2, program.num_bars),
        )
    machine = Machine(program, num_bars=config.num_bars)
    machine.run()
    cycles = machine.stats.instructions

    golden = _run(program, config, cycles)
    sites = enumerate_fault_sites_from_config(program, config, stride)
    if max_faults is not None:
        sites = sites[:max_faults]

    detected = 0
    undetected: list[StuckAtFault] = []
    for fault in sites:
        try:
            outcome = _run(program, config, cycles, fault)
        except Exception:
            # A fault that wedges the simulation is certainly detected.
            detected += 1
            continue
        if outcome != golden:
            detected += 1
        else:
            undetected.append(fault)
    return FaultCampaign(
        total=len(sites), detected=detected, undetected_sites=tuple(undetected)
    )


def enumerate_fault_sites_from_config(
    program: Program, config: CoreConfig, stride: int
) -> list[StuckAtFault]:
    """Fault sites over the core the campaign will instantiate."""
    harness = CoSimHarness(program, config)
    return enumerate_fault_sites(harness.netlist, stride=stride)
