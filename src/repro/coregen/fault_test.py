"""Functional print-test campaigns: benchmarks as fault detectors.

Runs a benchmark on fault-injected variants of a generated core and
measures what fraction of stuck-at faults the program's architectural
result exposes -- i.e. how good "run the application and check its
output" is as a post-print test (the only economical test for sub-cent
printed systems).

Campaigns are embarrassingly parallel across fault sites, and the
default ``"batched"`` backend exploits that with bit-parallel compiled
simulation (:class:`repro.netlist.compile.BitParallelSimulator`): each
bigint lane carries one faulty machine with its own data memory image,
so one gate evaluation pass advances dozens of fault simulations.  The
``"compiled"`` and ``"interpreted"`` backends run one fault at a time
and exist for cross-checking; all three produce identical campaigns.
"""

from __future__ import annotations

import time

from repro import obs
from repro.coregen.config import CoreConfig
from repro.coregen.cosim import CoSimHarness, architectural_nets
from repro.coregen.generator import generate_core
from repro.coregen.isa_map import encode_for_core, encode_program_for_core
from repro.isa.program import Program
from repro.isa.spec import Instruction, Mnemonic
from repro.netlist.compile import BitParallelSimulator
from repro.netlist.faults import (
    FaultCampaign,
    FaultySimulator,
    StuckAtFault,
    enumerate_fault_sites,
)
from repro.sim.machine import Machine

#: Fault sites evaluated per bit-parallel pass in batched campaigns.
DEFAULT_LANES = 48

_FAULTS_INJECTED = obs.counter("faults.injected")
_FAULTS_DETECTED = obs.counter("faults.detected")
_FAULT_RATE = obs.histogram("faults.per_second")


def _signature(harness: CoSimHarness) -> tuple:
    """Architectural outcome: data memory, PC, flags, BARs."""
    flags = tuple(harness.flag(f) for f in harness.config.flags)
    bars = tuple(harness.bar(i) for i in range(1, harness.config.num_bars))
    return (tuple(harness.memory), harness.pc, flags, bars)


def _run(
    program: Program,
    config: CoreConfig,
    cycles: int,
    fault=None,
    backend: str = "compiled",
) -> tuple:
    harness = CoSimHarness(program, config, backend=backend)
    if fault is not None:
        harness.sim = FaultySimulator(harness.netlist, fault, backend=backend)
        harness.sim.reset()
    for _ in range(cycles):
        harness.step()
    return _signature(harness)


def _run_batched(
    program: Program, config: CoreConfig, cycles: int, faults: list[StuckAtFault]
) -> list[tuple]:
    """Architectural signatures of ``len(faults)`` faulty runs at once.

    Mirrors :meth:`CoSimHarness.step` exactly -- three settles with
    behavioural ROM/RAM provided between them, then writeback -- but
    every lane carries its own fault and its own data-memory image.
    """
    netlist = generate_core(config)
    rom = encode_program_for_core(program, config)
    lanes = len(faults)
    sim = BitParallelSimulator(netlist, lanes, faults=faults)
    mask = (1 << config.datawidth) - 1
    base = [0] * config.data_memory_words()
    for address, value in program.data.items():
        base[address] = value & mask
    memories = [list(base) for _ in range(lanes)]
    halt_words: dict[int, int] = {}

    def provide() -> None:
        words = []
        for pc in sim.read_output("pc"):
            if pc < len(rom):
                words.append(rom[pc])
            else:
                word = halt_words.get(pc)
                if word is None:
                    word = halt_words[pc] = encode_for_core(
                        Instruction(Mnemonic.BRN, target=pc, mask=0), config
                    )
                words.append(word)
        sim.set_input("instr", words)
        addr_a = sim.read_output("addr_a")
        addr_b = sim.read_output("addr_b")
        sim.set_input(
            "rdata_a", [memories[lane][addr_a[lane]] for lane in range(lanes)]
        )
        sim.set_input(
            "rdata_b", [memories[lane][addr_b[lane]] for lane in range(lanes)]
        )

    sim.reset()
    for _ in range(cycles):
        sim.settle()
        provide()
        sim.settle()
        provide()
        sim.settle()
        we = sim.read_output("we")
        waddr = sim.read_output("waddr")
        wdata = sim.read_output("wdata")
        sim.tick()
        for lane in range(lanes):
            if we[lane]:
                memories[lane][waddr[lane]] = wdata[lane]

    sim.settle()
    pcs = sim.read_output("pc")
    flag_nets, bar_nets = architectural_nets(netlist)
    flag_values = [
        sim.read_nets(flag_nets.get(flag.name, ())) for flag in config.flags
    ]
    bar_values = [
        sim.read_nets(bar_nets.get(index, ()))
        for index in range(1, config.num_bars)
    ]
    return [
        (
            tuple(memories[lane]),
            pcs[lane],
            tuple(values[lane] for values in flag_values),
            tuple(values[lane] for values in bar_values),
        )
        for lane in range(lanes)
    ]


def run_fault_campaign(
    program: Program,
    config: CoreConfig | None = None,
    stride: int = 8,
    max_faults: int | None = None,
    backend: str = "batched",
    lanes: int = DEFAULT_LANES,
) -> FaultCampaign:
    """Inject sampled stuck-at faults and count detections.

    Args:
        program: The benchmark used as the functional test.
        config: Core configuration (single-stage default).
        stride: Sample every ``stride``-th instance (full enumeration
            is quadratic in runtime; sampling estimates coverage).
        max_faults: Optional cap on injected faults.
        backend: ``"batched"`` (default; bit-parallel compiled),
            ``"compiled"`` (one fault at a time), or ``"interpreted"``.
        lanes: Faults per bit-parallel pass in batched mode.

    A fault is *detected* when the faulty run's architectural
    signature differs from the golden run's after the same cycle
    count.
    """
    if config is None:
        config = CoreConfig(
            datawidth=program.datawidth,
            pipeline_stages=1,
            num_bars=max(2, program.num_bars),
        )
    with obs.span(
        "fault_campaign",
        program=program.name,
        design=config.name,
        backend=backend,
    ) as sp:
        started = time.perf_counter()
        machine = Machine(program, num_bars=config.num_bars)
        machine.run()
        cycles = machine.stats.instructions

        scalar_backend = "interpreted" if backend == "interpreted" else "compiled"
        golden = _run(program, config, cycles, backend=scalar_backend)
        sites = enumerate_fault_sites_from_config(program, config, stride)
        if max_faults is not None:
            sites = sites[:max_faults]

        detected = 0
        undetected: list[StuckAtFault] = []

        def judge_scalar(fault: StuckAtFault) -> None:
            nonlocal detected
            try:
                outcome = _run(program, config, cycles, fault, scalar_backend)
            except Exception:
                # A fault that wedges the simulation is certainly detected.
                detected += 1
                return
            if outcome != golden:
                detected += 1
            else:
                undetected.append(fault)

        if backend == "batched":
            batches = [
                sites[start : start + lanes]
                for start in range(0, len(sites), lanes)
            ]
            for batch in obs.progress(
                batches, f"fault_campaign[{program.name}]", every=4
            ):
                try:
                    outcomes = _run_batched(program, config, cycles, batch)
                except Exception:
                    # Fall back to one-at-a-time so a wedging fault is
                    # attributed to the lane that caused it.
                    for fault in batch:
                        judge_scalar(fault)
                    continue
                for fault, outcome in zip(batch, outcomes):
                    if outcome != golden:
                        detected += 1
                    else:
                        undetected.append(fault)
        else:
            for fault in obs.progress(
                sites, f"fault_campaign[{program.name}]", every=16
            ):
                judge_scalar(fault)

        elapsed = time.perf_counter() - started
        _FAULTS_INJECTED.inc(len(sites))
        _FAULTS_DETECTED.inc(detected)
        if elapsed > 0:
            _FAULT_RATE.observe(len(sites) / elapsed)
        sp.note(faults=len(sites), detected=detected)
        return FaultCampaign(
            total=len(sites), detected=detected, undetected_sites=tuple(undetected)
        )


def enumerate_fault_sites_from_config(
    program: Program, config: CoreConfig, stride: int
) -> list[StuckAtFault]:
    """Fault sites over the core the campaign will instantiate."""
    return enumerate_fault_sites(generate_core(config), stride=stride)
