"""Core configuration: the design-space axes plus PS-ISA shrinking.

The paper's Figure 7 sweep is the cross product of datawidth
{4, 8, 16, 32}, pipeline depth {1, 2, 3}, and BAR count {2, 4}; cores
are named ``pP_D_B`` after it.  A program-specific core (Section 7)
additionally narrows the PC, BARs, flag register, and instruction
operand fields to what one program actually uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.isa.analysis import ProgramSpecificIsa
from repro.isa.spec import Flag

#: All four architectural flags, in mask-bit order (bit 0 first).
ALL_FLAGS = (Flag.V, Flag.C, Flag.Z, Flag.S)


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of one TP-ISA core instance.

    Attributes:
        datawidth: ALU/data word width in bits.
        pipeline_stages: 1 (single cycle), 2 (IF|EX) or 3 (IF|RD|EX).
        num_bars: Base-address registers including the hardwired
            BAR[0] (2 or 4 in the standard sweep; 1 means no settable
            BARs at all -- a PS-ISA outcome).
        pc_bits: Program-counter width (8 for the standard ISA).
        bar_bits: Width of each settable BAR (8 standard).
        flags: The architectural flags implemented.
        operand1_bits / operand2_bits: Instruction operand field
            widths (8 standard; shrunken in PS-ISA cores).
        address_bits: Data-memory address width presented to the RAM.
    """

    datawidth: int = 8
    pipeline_stages: int = 1
    num_bars: int = 2
    pc_bits: int = 8
    bar_bits: int = 8
    flags: tuple[Flag, ...] = ALL_FLAGS
    operand1_bits: int = 8
    operand2_bits: int = 8
    address_bits: int = 8

    def __post_init__(self) -> None:
        if self.datawidth not in (4, 8, 16, 32):
            raise ConfigError(f"unsupported datawidth {self.datawidth}")
        if self.pipeline_stages not in (1, 2, 3):
            raise ConfigError(f"unsupported pipeline depth {self.pipeline_stages}")
        if self.num_bars not in (1, 2, 4):
            raise ConfigError(f"unsupported BAR count {self.num_bars}")
        if not 0 <= self.pc_bits <= 8:
            raise ConfigError(f"pc_bits {self.pc_bits} out of range")
        if not 0 <= self.bar_bits <= 8:
            raise ConfigError(f"bar_bits {self.bar_bits} out of range")
        if self.num_bars > 1 and self.bar_bits == 0:
            raise ConfigError("settable BARs need a nonzero width")
        seen = set()
        for flag in self.flags:
            if flag in seen:
                raise ConfigError(f"duplicate flag {flag}")
            seen.add(flag)
        if self.operand1_bits < 1 or self.operand2_bits < 1:
            raise ConfigError("operand fields need at least one bit")
        if self.bar_select_bits + 1 > self.operand1_bits:
            raise ConfigError("operand1 field too narrow for its BAR select")

    # -- derived layout --------------------------------------------------------

    @property
    def bar_select_bits(self) -> int:
        """Bits of each memory operand that select a BAR."""
        return (self.num_bars - 1).bit_length()

    @property
    def offset1_bits(self) -> int:
        return self.operand1_bits - self.bar_select_bits

    @property
    def offset2_bits(self) -> int:
        return self.operand2_bits - self.bar_select_bits

    @property
    def instruction_bits(self) -> int:
        """Total instruction word width (opcode + control + operands)."""
        return 8 + self.operand1_bits + self.operand2_bits

    @property
    def flag_count(self) -> int:
        return len(self.flags)

    @property
    def name(self) -> str:
        """The paper's ``pP_D_B`` naming."""
        return f"p{self.pipeline_stages}_{self.datawidth}_{self.num_bars}"

    def flag_mask_bit(self, flag: Flag) -> int:
        """Position of ``flag`` within the branch-mask field."""
        return int(math.log2(int(flag)))

    def data_memory_words(self) -> int:
        return 1 << self.address_bits


def config_from_name(name: str) -> CoreConfig:
    """A :class:`CoreConfig` from its ``pP_D_B`` sweep name.

    Inverse of :attr:`CoreConfig.name` for the standard sweep axes
    (``p1_8_2`` -> one-stage, 8-bit, 2 BARs); the CLI surfaces
    (``verify``, ``lint``, ``profile-design``) all accept these names.

    Raises:
        ConfigError: If the name does not parse or the axes are
            outside the supported grid.
    """
    parts = name.split("_")
    if len(parts) == 3 and parts[0].startswith("p"):
        try:
            return CoreConfig(
                pipeline_stages=int(parts[0][1:]),
                datawidth=int(parts[1]),
                num_bars=int(parts[2]),
            )
        except ValueError:
            pass
    raise ConfigError(
        f"bad config name {name!r} (expected pP_D_B, e.g. p1_8_2)"
    )


def standard_sweep() -> list[CoreConfig]:
    """The 24 configurations of the paper's Figure 7 sweep."""
    return [
        CoreConfig(datawidth=width, pipeline_stages=stages, num_bars=bars)
        for width in (4, 8, 16, 32)
        for stages in (1, 2, 3)
        for bars in (2, 4)
    ]


def program_specific_config(
    base: CoreConfig, analysis: ProgramSpecificIsa
) -> CoreConfig:
    """Shrink ``base`` to a program-specific core (Section 7).

    The datawidth and pipeline depth are preserved; the PC, BARs, flag
    register, and operand fields shrink to the analyzed program's
    needs.  Address bits shrink to the program's data footprint so the
    attached RAM can be exactly sized.
    """
    if analysis.num_bars == 0:
        num_bars = 1
        bar_bits = 0
    else:
        num_bars = 1 << (analysis.num_bars).bit_length() if analysis.num_bars > 1 else 2
        bar_bits = max(1, analysis.bar_bits or 1)
    address_bits = max(1, math.ceil(math.log2(max(2, analysis.data_words))))
    flags = tuple(f for f in ALL_FLAGS if f in analysis.flags_used)
    bar_select = (num_bars - 1).bit_length() if num_bars > 1 else 0
    return replace(
        base,
        num_bars=num_bars,
        pc_bits=max(1, analysis.pc_bits),
        bar_bits=min(8, bar_bits if num_bars > 1 else 0),
        flags=flags,
        operand1_bits=max(analysis.operand1_bits, bar_select + 1, 1),
        operand2_bits=max(analysis.operand2_bits, bar_select + 1, 1),
        address_bits=min(8, address_bits),
    )
