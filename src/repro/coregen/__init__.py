"""Parametric gate-level TP-ISA core generator.

Stands in for the paper's Verilog RTL + Design Compiler flow: a
:class:`~repro.coregen.config.CoreConfig` (datawidth x pipeline depth x
BAR count, Section 5.2) is elaborated into a real technology-mapped
netlist whose area, timing, and power are then measured by the
:mod:`repro.netlist` analyses.  Program-specific cores (Section 7)
reuse the same generator with shrunken parameters derived from
:func:`repro.isa.analysis.analyze_program`.

Single-stage cores are functionally verified by lock-step
co-simulation against the instruction-set simulator
(:mod:`repro.coregen.cosim`); multi-stage variants add their pipeline
registers and stall/flush control structurally, which is what the
Figure 7 PPA sweep measures.
"""

from repro.coregen.config import CoreConfig, program_specific_config
from repro.coregen.generator import generate_core
from repro.coregen.cosim import CoSimHarness

__all__ = [
    "CoreConfig",
    "program_specific_config",
    "generate_core",
    "CoSimHarness",
]
