"""Command-line regeneration of the paper's tables and figures.

Usage::

    python -m repro list                # what can be regenerated
    python -m repro table2             # one table
    python -m repro table8 fig7        # several at once
    python -m repro all                # everything (takes ~a minute)
    python -m repro export [DIR]       # write release artifacts
                                       # (.lib, .v, .hex, dot maps)
    python -m repro stats              # run a probe workload, print
                                       # the metrics snapshot
    python -m repro --profile table7   # trace the run; write
                                       # RUN_REPORT.json + summary
    python -m repro --profile --trace-out run.jsonl all
                                       # also export Chrome-trace JSONL
    python -m repro --jobs 4 fig7      # fan sweeps/campaigns across
                                       # 4 worker processes
    python -m repro verify --count 50  # differential fuzz campaign
    python -m repro lint --all         # static netlist lint
                                       # (see docs/VERIFY.md)
    python -m repro campaign --program mult --backend numpy
                                       # stuck-at fault campaign on the
                                       # vectorized bit-slice backend
    python -m repro campaign --verify-suite --backend numpy
                                       # lane-pack every native
                                       # benchmark; diff vs the ISS
    python -m repro profile-design p1_8_2 --program crc8 --vcd out.vcd
                                       # waveforms + per-module /
                                       # per-instruction energy
                                       # (see docs/OBSERVABILITY.md)
    python -m repro yield p1_8_2 --instances 100000 --jobs 2
                                       # fleet-scale Monte-Carlo yield
                                       # campaign: fmax distribution,
                                       # functional yield, cost and
                                       # lifetime per printed unit
    python -m repro place p1_8_2 --fabric small --seed 0
                                       # printed-fabric placement with
                                       # wire RC back-annotation:
                                       # layout.html + wire-aware vs
                                       # wire-blind PPA
    python -m repro history check      # regression sentinel over the
                                       # cross-run telemetry ledger
    python -m repro history show       # recent ledger records
    python -m repro dashboard --out dashboard.html
                                       # self-contained HTML dashboard
                                       # (inline-SVG trend sparklines)
    python -m repro serve --port 8097 --jobs 2
                                       # long-running DSE service:
                                       # job queue over the drivers,
                                       # /metrics + SSE + per-job
                                       # traces (see docs/SERVE.md)

``REPRO_TRACE=1`` in the environment is equivalent to ``--profile``;
``REPRO_JOBS=N`` is equivalent to ``--jobs N``.  Every profiled run
and bench emission also appends one compact record to the cross-run
history ledger under ``$REPRO_HISTORY_DIR`` (default
``~/.cache/repro/history``; opt out with ``REPRO_HISTORY=0``).  See
``docs/OBSERVABILITY.md`` for the report/ledger schemas and
``docs/PARALLELISM.md`` for the execution/caching model.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro import obs
from repro.eval import figures, tables
from repro.eval.report import render_table
from repro.units import to_cm2, to_mW

#: Default run-report path (repository root when run from there).
DEFAULT_REPORT = "RUN_REPORT.json"


def _print_fig4(technology: str) -> None:
    series = figures.fig4_lifetime(technology)
    rows = [
        (s.core, s.battery, f"{s.points[0][1]:.2f}", f"{s.points[-1][1]:.0f}")
        for s in series
    ]
    print(render_table(
        f"Lifetime hours in {technology} (duty 1.0 -> 0.001)",
        ("Core", "Battery", "Full duty", "Duty 0.001"),
        rows,
    ))


def _print_fig7(technology: str) -> None:
    points = figures.fig7_design_space(technology)
    rows = [
        (p.name, f"{p.fmax:.2f}", to_cm2(p.area), to_mW(p.power_at_fmax),
         p.gate_count, p.dff_count)
        for p in points
    ]
    print(render_table(
        f"Figure 7: design space in {technology}",
        ("Core", "Fmax Hz", "Area cm2", "Power mW", "Gates", "DFFs"),
        rows,
    ))


def _print_fig8() -> None:
    for name, width in (("mult", 8), ("dTree", 8)):
        results = figures.fig8_benchmark(name, width)
        rows = [
            (m.core_name, to_cm2(m.total_area), m.total_energy * 1e3,
             f"{m.total_time:.2f}")
            for m in results
        ]
        print(render_table(
            f"Figure 8: {name}{width} (EGFET)",
            ("Core", "Area cm2", "Energy mJ", "Time s"),
            rows,
        ))


def export_artifacts(directory: str = "build") -> list[str]:
    """Write the open-source release artifacts to ``directory``.

    Produces the deliverables the paper open-sourced (or that a
    physical flow consumes): Liberty cell libraries, structural
    Verilog for every sweep core, and per-benchmark ROM images as
    Intel HEX plus crosspoint dot-map statistics.
    """
    from repro.coregen.config import CoreConfig, standard_sweep
    from repro.coregen.generator import generate_core
    from repro.coregen.isa_map import encode_program_for_core
    from repro.isa.hexfile import dump_hex
    from repro.memory.romimage import dot_map
    from repro.netlist.verilog import dump_verilog
    from repro.pdk import cnt_tft_library, dump_liberty, egfet_library
    from repro.programs import BENCHMARKS, build_benchmark

    root = Path(directory)
    written: list[str] = []

    def write(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        written.append(str(path))

    for library in (egfet_library(), cnt_tft_library()):
        write(root / "lib" / f"{library.name}.lib", dump_liberty(library))

    for config in standard_sweep():
        write(
            root / "rtl" / f"{config.name}.v",
            dump_verilog(generate_core(config)),
        )

    config = CoreConfig(datawidth=8)
    dot_stats = ["benchmark words dots density"]
    for name in BENCHMARKS:
        program = build_benchmark(name, 8, 8)
        words = encode_program_for_core(program, config)
        write(root / "rom" / f"{name}8.hex", dump_hex(words))
        image = dot_map(words, bits_per_word=24)
        dot_stats.append(
            f"{name} {len(words)} {image.printed_dots} {image.dot_density:.3f}"
        )
    write(root / "rom" / "dotmap_stats.txt", "\n".join(dot_stats) + "\n")
    return written


TARGETS = {
    "table1": lambda: print(render_table("Table 1", *tables.table1_technologies())),
    "table2": lambda: print(render_table("Table 2", *tables.table2_standard_cells())),
    "table3": lambda: print(render_table("Table 3", *tables.table3_applications())),
    "table4": lambda: print(render_table("Table 4", *tables.table4_baseline_cores())),
    "table5": lambda: print(render_table("Table 5", *tables.table5_imem_overhead())),
    "table6": lambda: print(render_table("Table 6", *tables.table6_memory_devices())),
    "table7": lambda: print(render_table("Table 7", *tables.table7_program_specific())),
    "table8": lambda: print(render_table("Table 8", *tables.table8_battery_iterations())),
    "fig4": lambda: _print_fig4("EGFET"),
    "fig5": lambda: _print_fig4("CNT-TFT"),
    "fig7": lambda: _print_fig7("EGFET"),
    "fig8": _print_fig8,
}


def run_stats_probe() -> None:
    """Exercise the instrumented flow so ``stats`` has data to show.

    Runs one gate-level co-simulation (compiling the netlist, ticking
    the simulator) plus a repeated design evaluation, which together
    touch the compile cache, the elaboration memo, the ISS, and the
    cycle counters.
    """
    from repro.coregen.cosim import cosim_verify
    from repro.coregen.generator import generate_core
    from repro.dse.sweep import evaluate_design
    from repro.coregen.config import CoreConfig
    from repro.netlist.sim import CycleSimulator
    from repro.programs import build_benchmark

    program = build_benchmark("mult", 8, 8)
    mismatches = cosim_verify(program)
    if mismatches:  # pragma: no cover - would mean a broken core
        print(f"warning: cosim reported {len(mismatches)} mismatches",
              file=sys.stderr)
    config = CoreConfig(datawidth=8)
    # Second consumers of the same design: the elaboration memo, the
    # compiled-code cache, and the evaluation cache all register hits.
    CycleSimulator(generate_core(config), backend="compiled")
    evaluate_design(config, "EGFET")
    evaluate_design(config, "EGFET")


def _split_flags(argv: list[str]) -> tuple[dict, list[str], str | None]:
    """Parse leading/interleaved options; returns (opts, targets, error)."""
    opts = {
        "profile": False,
        "trace_out": None,
        "report_out": DEFAULT_REPORT,
        "jobs": None,
    }
    requests: list[str] = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--profile":
            opts["profile"] = True
        elif arg == "--jobs":
            if i + 1 >= len(argv):
                return opts, requests, f"{arg} needs a count argument"
            try:
                opts["jobs"] = int(argv[i + 1])
            except ValueError:
                return opts, requests, f"--jobs needs an integer, got {argv[i + 1]!r}"
            if opts["jobs"] < 1:
                return opts, requests, "--jobs must be >= 1"
            i += 1
        elif arg in ("--trace-out", "--report-out"):
            if i + 1 >= len(argv):
                return opts, requests, f"{arg} needs a path argument"
            key = "trace_out" if arg == "--trace-out" else "report_out"
            opts[key] = argv[i + 1]
            i += 1
        elif arg.startswith("--"):
            return opts, requests, f"unknown option {arg}"
        else:
            requests.append(arg)
        i += 1
    return opts, requests, None


def main(argv: list[str]) -> int:
    # The verify/lint/profile-design subcommands own their argument
    # grammar (seeds, config lists, fault specs, probe selections), so
    # they dispatch before the table option parser gets a chance to
    # reject their flags.
    if argv and argv[0] in ("verify", "lint"):
        from repro.verify.cli import main as verify_lint_main

        return verify_lint_main(argv)
    if argv and argv[0] == "profile-design":
        from repro.apps.profile import profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "campaign":
        from repro.apps.campaign import campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "yield":
        from repro.apps.yieldcli import yield_main

        return yield_main(argv[1:])
    if argv and argv[0] == "place":
        from repro.apps.place import place_main

        return place_main(argv[1:])
    if argv and argv[0] == "history":
        from repro.apps.history import history_main

        return history_main(argv[1:])
    if argv and argv[0] == "dashboard":
        from repro.apps.history import dashboard_main

        return dashboard_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve.cli import serve_main

        return serve_main(argv[1:])

    opts, requests, error = _split_flags(argv)
    if error:
        print(error, file=sys.stderr)
        return 2
    profile = opts["profile"] or obs.enabled()
    if opts["jobs"] is not None:
        from repro.exec import set_default_jobs

        set_default_jobs(opts["jobs"])
    requests = requests or ["list"]
    if requests == ["list"]:
        print("regenerable results:", " ".join(TARGETS), "all export stats")
        return 0

    if profile:
        obs.enable()
    start = time.perf_counter()

    if requests[0] == "export":
        directory = requests[1] if len(requests) > 1 else "build"
        with obs.span("export", directory=directory):
            written = export_artifacts(directory)
        print(f"wrote {len(written)} artifacts under {directory}/")
        return _finish(["export", directory], start, opts, profile)
    if requests[0] == "stats":
        # Metrics are in-process, so the stats subcommand generates its
        # own activity: enable collection, run the probe, print.
        obs.enable()
        with obs.span("stats_probe"):
            run_stats_probe()
        print(obs.render_metrics(obs.snapshot()))
        return _finish(["stats"], start, opts, profile)

    if requests == ["all"]:
        requests = list(TARGETS)
    unknown = [r for r in requests if r not in TARGETS]
    if unknown:
        print(f"unknown target(s): {' '.join(unknown)}", file=sys.stderr)
        print("regenerable results:", " ".join(TARGETS), "all", file=sys.stderr)
        return 2
    for request in requests:
        with obs.span(request):
            TARGETS[request]()
    return _finish(requests, start, opts, profile)


def _finish(command: list[str], start: float, opts: dict, profile: bool) -> int:
    """Emit the run report / trace export for profiled invocations."""
    if not profile:
        return 0
    wall = time.perf_counter() - start
    report = obs.build_run_report(command, wall)
    path = obs.write_run_report(opts["report_out"], report)
    print(obs.render_run_report(report))
    print(f"run report -> {path}")
    if opts["trace_out"]:
        # Suffix picks the format: .json = ready-to-load JSON array,
        # anything else = streaming JSONL (see obs.export_trace).
        count = obs.export_trace(opts["trace_out"])
        print(f"trace ({count} spans) -> {opts['trace_out']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
