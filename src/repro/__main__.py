"""Command-line regeneration of the paper's tables and figures.

Usage::

    python -m repro list                # what can be regenerated
    python -m repro table2             # one table
    python -m repro table8 fig7        # several at once
    python -m repro all                # everything (takes ~a minute)
    python -m repro export [DIR]       # write release artifacts
                                       # (.lib, .v, .hex, dot maps)
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.eval import figures, tables
from repro.eval.report import render_table
from repro.units import to_cm2, to_mW


def _print_fig4(technology: str) -> None:
    series = figures.fig4_lifetime(technology)
    rows = [
        (s.core, s.battery, f"{s.points[0][1]:.2f}", f"{s.points[-1][1]:.0f}")
        for s in series
    ]
    print(render_table(
        f"Lifetime hours in {technology} (duty 1.0 -> 0.001)",
        ("Core", "Battery", "Full duty", "Duty 0.001"),
        rows,
    ))


def _print_fig7(technology: str) -> None:
    points = figures.fig7_design_space(technology)
    rows = [
        (p.name, f"{p.fmax:.2f}", to_cm2(p.area), to_mW(p.power_at_fmax),
         p.gate_count, p.dff_count)
        for p in points
    ]
    print(render_table(
        f"Figure 7: design space in {technology}",
        ("Core", "Fmax Hz", "Area cm2", "Power mW", "Gates", "DFFs"),
        rows,
    ))


def _print_fig8() -> None:
    for name, width in (("mult", 8), ("dTree", 8)):
        results = figures.fig8_benchmark(name, width)
        rows = [
            (m.core_name, to_cm2(m.total_area), m.total_energy * 1e3,
             f"{m.total_time:.2f}")
            for m in results
        ]
        print(render_table(
            f"Figure 8: {name}{width} (EGFET)",
            ("Core", "Area cm2", "Energy mJ", "Time s"),
            rows,
        ))


def export_artifacts(directory: str = "build") -> list[str]:
    """Write the open-source release artifacts to ``directory``.

    Produces the deliverables the paper open-sourced (or that a
    physical flow consumes): Liberty cell libraries, structural
    Verilog for every sweep core, and per-benchmark ROM images as
    Intel HEX plus crosspoint dot-map statistics.
    """
    from repro.coregen.config import CoreConfig, standard_sweep
    from repro.coregen.generator import generate_core
    from repro.coregen.isa_map import encode_program_for_core
    from repro.isa.hexfile import dump_hex
    from repro.memory.romimage import dot_map
    from repro.netlist.verilog import dump_verilog
    from repro.pdk import cnt_tft_library, dump_liberty, egfet_library
    from repro.programs import BENCHMARKS, build_benchmark

    root = Path(directory)
    written: list[str] = []

    def write(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        written.append(str(path))

    for library in (egfet_library(), cnt_tft_library()):
        write(root / "lib" / f"{library.name}.lib", dump_liberty(library))

    for config in standard_sweep():
        write(
            root / "rtl" / f"{config.name}.v",
            dump_verilog(generate_core(config)),
        )

    config = CoreConfig(datawidth=8)
    dot_stats = ["benchmark words dots density"]
    for name in BENCHMARKS:
        program = build_benchmark(name, 8, 8)
        words = encode_program_for_core(program, config)
        write(root / "rom" / f"{name}8.hex", dump_hex(words))
        image = dot_map(words, bits_per_word=24)
        dot_stats.append(
            f"{name} {len(words)} {image.printed_dots} {image.dot_density:.3f}"
        )
    write(root / "rom" / "dotmap_stats.txt", "\n".join(dot_stats) + "\n")
    return written


TARGETS = {
    "table1": lambda: print(render_table("Table 1", *tables.table1_technologies())),
    "table2": lambda: print(render_table("Table 2", *tables.table2_standard_cells())),
    "table3": lambda: print(render_table("Table 3", *tables.table3_applications())),
    "table4": lambda: print(render_table("Table 4", *tables.table4_baseline_cores())),
    "table5": lambda: print(render_table("Table 5", *tables.table5_imem_overhead())),
    "table6": lambda: print(render_table("Table 6", *tables.table6_memory_devices())),
    "table7": lambda: print(render_table("Table 7", *tables.table7_program_specific())),
    "table8": lambda: print(render_table("Table 8", *tables.table8_battery_iterations())),
    "fig4": lambda: _print_fig4("EGFET"),
    "fig5": lambda: _print_fig4("CNT-TFT"),
    "fig7": lambda: _print_fig7("EGFET"),
    "fig8": _print_fig8,
}


def main(argv: list[str]) -> int:
    requests = argv or ["list"]
    if requests == ["list"]:
        print("regenerable results:", " ".join(TARGETS), "all export")
        return 0
    if requests[0] == "export":
        directory = requests[1] if len(requests) > 1 else "build"
        written = export_artifacts(directory)
        print(f"wrote {len(written)} artifacts under {directory}/")
        return 0
    if requests == ["all"]:
        requests = list(TARGETS)
    unknown = [r for r in requests if r not in TARGETS]
    if unknown:
        print(f"unknown target(s): {' '.join(unknown)}", file=sys.stderr)
        print("regenerable results:", " ".join(TARGETS), "all", file=sys.stderr)
        return 2
    for request in requests:
        TARGETS[request]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
