"""Unit conventions and conversion helpers.

The library stores every physical quantity in SI base units:

* area    -> square metres (m^2)
* energy  -> joules (J)
* time    -> seconds (s)
* power   -> watts (W)
* voltage -> volts (V)
* charge  -> coulombs (C); battery capacity is stored in coulombs
  (1 mAh = 3.6 C).

The paper mixes mm^2 / cm^2, nJ / mJ, and micro/milliseconds; these helpers
make call sites explicit about the unit of incoming literals and make
report rendering explicit about the unit of outgoing values.
"""

from __future__ import annotations

# --- scale factors -------------------------------------------------------

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12

# --- input conversions (literal -> SI) -----------------------------------


def mm2(value: float) -> float:
    """Square millimetres to square metres."""
    return value * 1e-6


def cm2(value: float) -> float:
    """Square centimetres to square metres."""
    return value * 1e-4


def um2(value: float) -> float:
    """Square micrometres to square metres."""
    return value * 1e-12


def nJ(value: float) -> float:  # noqa: N802 - unit name
    """Nanojoules to joules."""
    return value * NANO


def mJ(value: float) -> float:  # noqa: N802 - unit name
    """Millijoules to joules."""
    return value * MILLI


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * MICRO


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MILLI

def uW(value: float) -> float:  # noqa: N802 - unit name
    """Microwatts to watts."""
    return value * MICRO


def mW(value: float) -> float:  # noqa: N802 - unit name
    """Milliwatts to watts."""
    return value * MILLI


def mAh(value: float, voltage: float = 1.0) -> float:  # noqa: N802
    """Milliamp-hours at ``voltage`` volts to joules (energy)."""
    return value * 3.6 * voltage


# --- output conversions (SI -> display) ----------------------------------


def to_mm2(area_m2: float) -> float:
    """Square metres to square millimetres."""
    return area_m2 * 1e6


def to_cm2(area_m2: float) -> float:
    """Square metres to square centimetres."""
    return area_m2 * 1e4


def to_nJ(energy_j: float) -> float:  # noqa: N802 - unit name
    """Joules to nanojoules."""
    return energy_j / NANO


def to_mJ(energy_j: float) -> float:  # noqa: N802 - unit name
    """Joules to millijoules."""
    return energy_j / MILLI


def to_us(time_s: float) -> float:
    """Seconds to microseconds."""
    return time_s / MICRO


def to_ms(time_s: float) -> float:
    """Seconds to milliseconds."""
    return time_s / MILLI


def to_mW(power_w: float) -> float:  # noqa: N802 - unit name
    """Watts to milliwatts."""
    return power_w / MILLI


def to_uW(power_w: float) -> float:  # noqa: N802 - unit name
    """Watts to microwatts."""
    return power_w / MICRO


def to_hours(time_s: float) -> float:
    """Seconds to hours."""
    return time_s / 3600.0
