"""Numpy bit-slice simulation: vectorized uint64 kernels, thousands of lanes.

The bigint :class:`~repro.netlist.compile.BitParallelSimulator` packs
dozens of independent runs into Python integers -- one Python-level
bitwise op per gate advances every lane, but the op itself still runs
through the interpreter's bigint machinery and cost grows with lane
count.  This module is the next step on the ROADMAP's "next 10x"
curve: the levelized gate array is compiled *once per netlist* into
straight-line numpy kernels over a dense ``uint64`` value matrix of
shape ``(nets, words)``, so each net's value is a row carrying
``64 * words`` lanes and a single vectorized ufunc call advances all
of them.

Each lane is an **independent run** -- a distinct stuck-at fault set,
initial data memory, or stimulus stream (see
:class:`~repro.netlist.lanes.LanePlan`), not a bit of one run.  A
fault campaign that needed ~60 bigint batches therefore collapses into
one kernel stream over a few dozen words.

Codegen (:func:`_generate_source`) lays the value matrix out for the
hot loop:

* rows are assigned in **levelized topological order** -- source nets
  (constants, primary inputs, flop outputs) first, then each logic
  level's gate outputs contiguously.  Per-lane stuck-at forcing then
  needs no gather/scatter: each level's forced nets are clamped with
  two in-place ufunc ops over that level's contiguous row block
  (unforced rows carry identity masks), and levels without forced
  nets skip masking entirely;
* gates are grouped by logic level (level = 1 + max input level), one
  generated function per level, all writing their output rows *in
  place* via ``out=`` ufunc calls -- zero allocation in the settle
  loop, and the level boundary is exactly where the force clamp for
  that block lands, so downstream levels always read clamped values;
* inverting cells use ``np.invert`` on the full word -- garbage in
  lanes beyond ``plan.lanes`` is harmless because every read masks to
  the active lanes;
* the clock edge (``tick(R, D)``) captures every flop D into a
  scratch matrix first, then writes all Q rows, matching the
  simultaneous-capture semantics of the scalar backends, with per-lane
  asynchronous reset folded in as ``d & rst_n``.

Generated code is cached on the netlist object and in the on-disk
artifact cache (kind ``"numpy-sim"``), exactly like the compiled
backend, so fresh processes and pool workers skip codegen.

Like the bigint lane mode, no per-instance toggle counters are kept:
:meth:`NumpySimulator.toggle_counts` raises
:class:`~repro.errors.UnsupportedInLaneMode` instead of returning
stale zeros.  Bit-exactness against the interpreted/compiled backends
is asserted across the whole Figure 7 sweep by
``tests/test_sim_compiled.py``.
"""

from __future__ import annotations

import importlib.util
import marshal
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import SimulationError, UnsupportedInLaneMode
from repro.exec.cache import load_artifact, source_digest, store_artifact, structural_hash
from repro.netlist.core import CONST1, Instance, Netlist, SEQUENTIAL_CELLS
from repro.netlist.lanes import LanePlan
from repro.netlist.sta import _topological_order
from repro.obs.metrics import counter as _obs_counter
from repro.obs.runtime import STATE as _OBS
from repro.obs.trace import span as _obs_span

_CACHE_HITS = _obs_counter("nsim.cache_hits")
_CACHE_MISSES = _obs_counter("nsim.cache_misses")
_DISK_HITS = _obs_counter("nsim.disk_hits")
_TICKS = _obs_counter("sim.numpy_ticks")
_LANE_CYCLES = _obs_counter("sim.numpy_lane_cycles")

#: Artifact-cache bucket for generated numpy kernel code.
_ARTIFACT_KIND = "numpy-sim"

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)

#: In-place ufunc statement sequence per combinational cell.  ``{a}``
#: and ``{b}`` are input row indices, ``{o}`` the output row; every
#: statement writes ``R[o]`` so the settle loop allocates nothing.
_CELL_OPS = {
    "INVX1": ("NOT(R[{a}], out=R[{o}])",),
    "NAND2X1": ("AND(R[{a}], R[{b}], out=R[{o}])", "NOT(R[{o}], out=R[{o}])"),
    "NOR2X1": ("OR(R[{a}], R[{b}], out=R[{o}])", "NOT(R[{o}], out=R[{o}])"),
    "AND2X1": ("AND(R[{a}], R[{b}], out=R[{o}])",),
    "OR2X1": ("OR(R[{a}], R[{b}], out=R[{o}])",),
    "XOR2X1": ("XOR(R[{a}], R[{b}], out=R[{o}])",),
    "XNOR2X1": ("XOR(R[{a}], R[{b}], out=R[{o}])", "NOT(R[{o}], out=R[{o}])"),
    "TSBUFX1": ("AND(R[{a}], R[{b}], out=R[{o}])",),
}


@dataclass
class NumpyLayout:
    """Levelized row layout of one netlist's value matrix.

    Attributes:
        row_of: Net id -> row index in the value matrix.
        rows: Total row count (== ``netlist.net_count``).
        source_rows: Rows ``[0, source_rows)`` hold source nets
            (constants, primary inputs, flop outputs); unused nets are
            parked at the end of the matrix.
        level_slices: Contiguous ``(lo, hi)`` row range per logic
            level, in dependency order.
        level_of: Logic level per combinational output net (sources
            are absent).
    """

    row_of: dict[int, int]
    rows: int
    source_rows: int
    level_slices: tuple[tuple[int, int], ...]
    level_of: dict[int, int]


@dataclass
class NumpyCompiled:
    """Vectorized kernels generated for one netlist.

    Attributes:
        levels: One settle function per logic level, each ``f(R)`` over
            the row-view list, in dependency order.
        tick: Clock-edge function ``tick(R, D)`` (``D`` = flop scratch
            matrix, shape ``(flops, words)``).
        layout: Row layout of the value matrix (see
            :class:`NumpyLayout`).
        flop_count: Number of sequential cells (sizes ``D``).
        source: Generated Python source (kept for debugging).
        code: Compiled module code object (marshaled to disk).
    """

    levels: tuple[Callable, ...]
    tick: Callable
    layout: NumpyLayout
    flop_count: int
    source: str = field(repr=False, default="")
    code: object = field(repr=False, default=None)


def _levelize(netlist: Netlist) -> tuple[list[list[Instance]], dict[int, int]]:
    """Group combinational instances by logic level, in topo order."""
    order = _topological_order(netlist)
    level_of: dict[int, int] = {}
    levels: list[list[Instance]] = []
    for inst in order:
        level = 0
        for net in inst.inputs:
            input_level = level_of.get(net)
            if input_level is not None and input_level >= level:
                level = input_level + 1
        level_of[inst.output] = level
        while len(levels) <= level:
            levels.append([])
        levels[level].append(inst)
    return levels, level_of


def _layout(netlist: Netlist) -> tuple[NumpyLayout, list[list[Instance]]]:
    """Assign matrix rows: sources, then levels, then unused nets."""
    levels, level_of = _levelize(netlist)
    sources = {0, 1}  # CONST0, CONST1
    for bus in netlist.inputs.values():
        sources.update(bus.nets)
    for instance in netlist.instances:
        if instance.cell in SEQUENTIAL_CELLS:
            sources.add(instance.output)
    row_of: dict[int, int] = {}
    for net in sorted(sources):
        row_of[net] = len(row_of)
    source_rows = len(row_of)
    level_slices: list[tuple[int, int]] = []
    for instances in levels:
        lo = len(row_of)
        for instance in instances:
            row_of[instance.output] = len(row_of)
        level_slices.append((lo, len(row_of)))
    for net in range(netlist.net_count):  # park unused nets at the end
        if net not in row_of:
            row_of[net] = len(row_of)
    return (
        NumpyLayout(
            row_of=row_of,
            rows=netlist.net_count,
            source_rows=source_rows,
            level_slices=tuple(level_slices),
            level_of=level_of,
        ),
        levels,
    )


def levelized_layout(
    netlist: Netlist,
) -> tuple[NumpyLayout, list[list[Instance]]]:
    """Public row layout + per-level instance lists for ``netlist``.

    The same levelized geometry the generated simulation kernels use,
    exposed for other vectorized passes over the value matrix -- the
    Monte-Carlo timing engine (:mod:`repro.mc.timing`) propagates
    arrival times level by level through exactly these rows.
    """
    return _layout(netlist)


def _statements(instance: Instance, row_of: dict[int, int]) -> list[str]:
    ops = _CELL_OPS.get(instance.cell)
    if ops is None:
        raise SimulationError(f"cannot compile cell {instance.cell!r}")
    a = row_of[instance.inputs[0]]
    b = row_of[instance.inputs[1]] if len(instance.inputs) > 1 else ""
    return [op.format(a=a, b=b, o=row_of[instance.output]) for op in ops]


def _generate_source(netlist: Netlist) -> str:
    """Emit per-level settle functions plus the flop-capture tick."""
    layout, levels = _layout(netlist)
    row_of = layout.row_of
    flops = [i for i in netlist.instances if i.cell in SEQUENTIAL_CELLS]
    reset_net = netlist.reset_n

    lines: list[str] = []
    for index, instances in enumerate(levels):
        lines.append(f"def level_{index}(R):")
        for inst in instances:
            for statement in _statements(inst, row_of):
                lines.append(f"    {statement}")
        lines.append("    return")

    # Two-phase edge: capture every D (with per-lane async reset folded
    # in for DFFNRX1) before writing any Q, so flop-to-flop paths see
    # pre-edge values -- identical to the scalar backends' tick.
    lines.append("def tick(R, D):")
    for j, flop in enumerate(flops):
        if flop.cell == "DFFNRX1" and reset_net is not None:
            lines.append(
                f"    AND(R[{row_of[flop.inputs[0]]}],"
                f" R[{row_of[reset_net]}], out=D[{j}])"
            )
        else:
            lines.append(f"    CPY(D[{j}], R[{row_of[flop.inputs[0]]}])")
    for j, flop in enumerate(flops):
        lines.append(f"    CPY(R[{row_of[flop.output]}], D[{j}])")
    lines.append("    return")

    lines.append(
        "LEVELS = (" + ", ".join(f"level_{i}" for i in range(len(levels)))
        + ("," if levels else "") + ")"
    )
    return "\n".join(lines)


def _bind(code, source: str, netlist: Netlist) -> NumpyCompiled:
    """Exec generated code with the ufunc vocabulary bound as globals."""
    namespace: dict = {
        "AND": np.bitwise_and,
        "OR": np.bitwise_or,
        "XOR": np.bitwise_xor,
        "NOT": np.invert,
        "CPY": np.copyto,
    }
    exec(code, namespace)
    layout, _ = _layout(netlist)
    flop_count = sum(
        1 for i in netlist.instances if i.cell in SEQUENTIAL_CELLS
    )
    return NumpyCompiled(
        levels=tuple(namespace["LEVELS"]),
        tick=namespace["tick"],
        layout=layout,
        flop_count=flop_count,
        source=source,
        code=code,
    )


def compile_numpy_netlist(netlist: Netlist) -> NumpyCompiled:
    """Translate ``netlist`` into vectorized numpy kernel code."""
    netlist.validate()
    for instance in netlist.instances:
        if instance.cell == "LATCHX1":
            raise SimulationError("level-sensitive latches are not simulatable")
    source = _generate_source(netlist)
    code = compile(source, f"<numpy-sim:{netlist.name}>", "exec")
    return _bind(code, source, netlist)


def _artifact_key(netlist: Netlist) -> str:
    return structural_hash(netlist) + source_digest(
        "repro.netlist.nsim", "repro.netlist.sta"
    )


def _from_artifact(netlist: Netlist, key: str) -> NumpyCompiled | None:
    """Rebuild kernels from a cached artifact, or None on miss."""
    payload = load_artifact(_ARTIFACT_KIND, key)
    if not isinstance(payload, dict) or "source" not in payload:
        return None
    try:
        if payload.get("magic") == importlib.util.MAGIC_NUMBER:
            code = marshal.loads(payload["code"])
        else:
            code = compile(
                payload["source"], f"<numpy-sim:{netlist.name}>", "exec"
            )
        return _bind(code, payload["source"], netlist)
    except (ValueError, TypeError, SyntaxError, KeyError, EOFError):
        return None  # treat any decode failure as a plain miss


def numpy_netlist(netlist: Netlist) -> NumpyCompiled:
    """Numpy kernels for ``netlist``: memo -> disk artifact -> codegen.

    Same three cache tiers as
    :func:`repro.netlist.compile.compiled_netlist`, under the separate
    artifact kind ``"numpy-sim"`` (the payloads are different code).
    """
    cached = getattr(netlist, "_numpy_sim", None)
    if cached is not None:
        _CACHE_HITS.inc()
        return cached
    _CACHE_MISSES.inc()
    key = _artifact_key(netlist)
    cached = _from_artifact(netlist, key)
    if cached is not None:
        _DISK_HITS.inc()
    else:
        with _obs_span("compile_numpy", design=netlist.name):
            cached = compile_numpy_netlist(netlist)
        store_artifact(
            _ARTIFACT_KIND,
            key,
            {
                "magic": importlib.util.MAGIC_NUMBER,
                "code": marshal.dumps(cached.code),
                "source": cached.source,
            },
        )
    netlist._numpy_sim = cached
    return cached


class NumpySimulator:
    """Vectorized bit-slice simulation: 64 lanes per word, per ufunc call.

    Net values live in one dense ``uint64`` matrix of shape
    ``(nets, words)``, rows in levelized topological order; bit
    ``l % 64`` of word ``l // 64`` in a net's row is that net's logic
    value in lane ``l``.  One generated kernel pass advances every
    lane; per-lane stuck-at forcing clamps each level's contiguous row
    block with two in-place ufunc ops (levels without forced nets skip
    masking); bus pack/unpack runs as whole-bus matrix ops -- so a
    campaign batch of thousands of runs costs one kernel stream with
    no per-net or per-lane Python loops.

    The lane semantics -- per-lane stuck-at forcing, per-lane
    asynchronous reset, broadcast-or-per-lane stimulus -- are identical
    to :class:`~repro.netlist.compile.BitParallelSimulator`; both
    backends build their force state from the same
    :class:`~repro.netlist.lanes.LanePlan`, and the equivalence suite
    asserts lane-for-lane bit-exactness against the scalar backends.

    Args:
        netlist: A validated, technology-mapped netlist.
        lanes: Number of parallel runs (ignored when ``plan`` given).
        faults: Optional per-lane stuck-at faults (``lanes`` entries,
            ``None`` = healthy lane).  Ignored when ``plan`` is given.
        plan: Full :class:`LanePlan` (lanes + faults + memories).
    """

    def __init__(
        self,
        netlist: Netlist,
        lanes: int | None = None,
        faults: Sequence | None = None,
        plan: LanePlan | None = None,
    ) -> None:
        if plan is None:
            if faults is not None:
                plan = LanePlan.for_faults(faults)
                if lanes is not None and lanes != plan.lanes:
                    raise SimulationError(
                        f"{len(plan.faults)} faults for {lanes} lanes"
                    )
            else:
                plan = LanePlan(lanes if lanes is not None else 1)
        self.netlist = netlist
        self.plan = plan
        self.lanes = plan.lanes
        self.words = (plan.lanes + 63) // 64
        self._compiled = numpy_netlist(netlist)
        layout = self._compiled.layout
        self._layout = layout
        self._V = np.zeros((layout.rows, self.words), dtype=np.uint64)
        self._V[layout.row_of[CONST1]] = _ALL_ONES
        # Kernels index a flat list of row views: list indexing is
        # cheaper than 2D __getitem__ in the per-gate hot loop, and
        # every view aliases the matrix, so block ops and kernels see
        # one consistent store.
        self._R = list(self._V)
        self._D = np.zeros(
            (self._compiled.flop_count, self.words), dtype=np.uint64
        )
        self.cycles = 0

        # Lane geometry for pack/unpack (word index + bit shift per
        # lane, the 64 in-word bit positions, and per-bus scratch).
        lane_index = np.arange(self.lanes)
        self._lane_word = lane_index // 64
        self._lane_bit = (lane_index % 64).astype(np.uint64)
        self._bit_positions = np.arange(64, dtype=np.uint64)
        self._pack_cache: dict[str, tuple] = {}
        self._gather_cache: dict[tuple, tuple] = {}

        # Force masks from the shared plan, as identity-padded
        # contiguous blocks: sources clamp before level 0, each level's
        # block clamps right after its kernel, and the full matrix is
        # re-clamped after every tick (mirroring the bigint backend's
        # stuck-across-the-edge semantics).
        self._forced = False
        self._pre_force: tuple | None = None
        self._level_forces: tuple = tuple(
            None for _ in self._compiled.levels
        )
        self._all_force: tuple | None = None
        self._fault_nets: list[int] = []
        forced = plan.forced_bits(netlist)
        if forced:
            self._forced = True
            self._fault_nets = list(forced)
            all_and = np.full(
                (layout.rows, self.words), _ALL_ONES, dtype=np.uint64
            )
            all_or = np.zeros((layout.rows, self.words), dtype=np.uint64)
            for net, sites in forced.items():
                row = layout.row_of[net]
                for lane, value in sites:
                    word, bit = lane // 64, np.uint64(lane % 64)
                    all_and[row, word] &= ~(_ONE << bit)
                    if value:
                        all_or[row, word] |= _ONE << bit
            self._all_force = (all_and, all_or)
            forced_rows = {layout.row_of[net] for net in forced}
            lo, hi = 0, layout.source_rows
            if any(lo <= row < hi for row in forced_rows):
                self._pre_force = (all_and[lo:hi], all_or[lo:hi])
            self._level_forces = tuple(
                (all_and[lo:hi], all_or[lo:hi])
                if any(lo <= row < hi for row in forced_rows)
                else None
                for lo, hi in layout.level_slices
            )

    # -- I/O -------------------------------------------------------------

    def set_input(self, name: str, values) -> None:
        """Drive input ``name``: one int broadcast, or one per lane.

        Accepts a plain int (broadcast), any length-``lanes`` sequence,
        or a numpy integer array of shape ``(lanes,)``.
        """
        bus = self.netlist.inputs.get(name)
        if bus is None:
            raise SimulationError(f"no input bus named {name!r}")
        limit = 1 << len(bus)
        row_of = self._layout.row_of
        V = self._V
        if isinstance(values, int):
            if values < 0 or values >= limit:
                raise SimulationError(
                    f"value {values} does not fit input {name!r} "
                    f"({len(bus)} bits)"
                )
            for i, net in enumerate(bus):
                V[row_of[net]] = _ALL_ONES if (values >> i) & 1 else 0
            return
        lanes = np.asarray(values)
        if lanes.shape != (self.lanes,):
            raise SimulationError(
                f"{lanes.size} values for {self.lanes} lanes on {name!r}"
            )
        if int(lanes.min()) < 0 or int(lanes.max()) >= limit:
            bad = int(lanes[(lanes < 0) | (lanes >= limit)][0])
            raise SimulationError(
                f"value {bad} does not fit input {name!r} ({len(bus)} bits)"
            )
        cached = self._pack_cache.get(name)
        if cached is None:
            cached = self._pack_cache[name] = (
                np.array([row_of[net] for net in bus], dtype=np.intp),
                np.arange(len(bus), dtype=np.uint64)[:, None],
                np.zeros((len(bus), self.words * 64), dtype=np.uint64),
            )
        rows, shifts, padded = cached
        padded[:, : self.lanes] = (
            lanes.astype(np.uint64)[None, :] >> shifts
        ) & _ONE
        V[rows] = np.bitwise_or.reduce(
            padded.reshape(len(bus), self.words, 64) << self._bit_positions,
            axis=2,
        )

    def read_output(self, name: str) -> list[int]:
        """Read output bus ``name``: one integer per lane."""
        return [int(v) for v in self.read_output_array(name).tolist()]

    def read_output_array(self, name: str) -> np.ndarray:
        """Read output bus ``name`` as a ``(lanes,)`` uint64 array."""
        bus = self.netlist.outputs.get(name)
        if bus is None:
            raise SimulationError(f"no output bus named {name!r}")
        return self._gather(tuple(bus.nets))

    def read_nets(self, nets: Sequence[int]) -> list[int]:
        """Read an arbitrary LSB-first net collection, one int per lane."""
        nets = tuple(nets)
        if len(nets) <= 64:
            return [int(v) for v in self._gather(nets).tolist()]
        # Wider collections overflow uint64 shifts: gather in 64-net
        # chunks and recombine as python bigints (parity with the
        # bigint backend, which has no width limit).
        out = [0] * self.lanes
        for start in range(0, len(nets), 64):
            chunk = self._gather(nets[start : start + 64]).tolist()
            for lane, value in enumerate(chunk):
                out[lane] |= int(value) << start
        return out

    def _gather(self, nets: tuple) -> np.ndarray:
        if not nets:
            return np.zeros(self.lanes, dtype=np.uint64)
        cached = self._gather_cache.get(nets)
        if cached is None:
            row_of = self._layout.row_of
            cached = self._gather_cache[nets] = (
                np.array([row_of[net] for net in nets], dtype=np.intp),
                np.arange(len(nets), dtype=np.uint64)[:, None],
            )
        rows, shifts = cached
        bits = (self._V[rows][:, self._lane_word] >> self._lane_bit) & _ONE
        return np.bitwise_or.reduce(bits << shifts, axis=0)

    # -- phases ------------------------------------------------------------

    def settle(self) -> None:
        """Propagate all lanes through the combinational logic."""
        R = self._R
        if not self._forced:
            for kernel in self._compiled.levels:
                kernel(R)
            return
        V = self._V
        if self._pre_force is not None:
            block = V[: self._layout.source_rows]
            np.bitwise_and(block, self._pre_force[0], out=block)
            np.bitwise_or(block, self._pre_force[1], out=block)
        slices = self._layout.level_slices
        for index, kernel in enumerate(self._compiled.levels):
            kernel(R)
            force = self._level_forces[index]
            if force is not None:
                lo, hi = slices[index]
                block = V[lo:hi]
                np.bitwise_and(block, force[0], out=block)
                np.bitwise_or(block, force[1], out=block)

    def tick(self) -> None:
        """Advance one clock edge in every lane (per-lane async reset)."""
        self._compiled.tick(self._R, self._D)
        # A stuck net stays stuck across the edge (covers faults on
        # flop outputs), mirroring BitParallelSimulator.tick.
        if self._all_force is not None:
            V = self._V
            np.bitwise_and(V, self._all_force[0], out=V)
            np.bitwise_or(V, self._all_force[1], out=V)
        self.cycles += 1
        if _OBS.enabled:
            _TICKS.value += 1
            _LANE_CYCLES.value += self.lanes

    def reset(self) -> None:
        """Apply one asynchronous reset pulse to all lanes."""
        if self.netlist.reset_n is None:
            raise SimulationError("netlist has no reset input")
        self.set_input("rst_n", 0)
        self.settle()
        self.tick()
        self.set_input("rst_n", 1)
        self.settle()

    # -- instrumentation ---------------------------------------------------

    def toggle_counts(self):
        """Lane runs keep no toggle state -- raise instead of lying."""
        raise UnsupportedInLaneMode("toggle_counts", "NumpySimulator")
