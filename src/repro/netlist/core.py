"""Netlist data model and technology-mapped logic builder.

A :class:`Netlist` is a flat collection of standard-cell instances
connected by integer-identified nets.  The builder methods (``nand``,
``xor_``, ``mux`` ...) instantiate library cells directly, so a built
netlist *is* the technology-mapped design: area, timing, and power
analyses read cell names straight out of it.

Two lightweight optimizations run during construction, standing in for
the logic optimization a synthesis tool would perform:

* **constant folding** -- operations on the constant nets
  :data:`CONST0` / :data:`CONST1` reduce to wires or constants, so a
  core configured with e.g. ``BAR[0] = 0`` (paper Section 5.2) sheds
  its unreachable logic automatically;
* **common-subexpression elimination** -- structurally identical
  operations return the existing output net instead of duplicating
  cells.

Sequential cells: ``DFFX1`` (inputs ``(d,)``) and ``DFFNRX1`` (inputs
``(d, rn)`` with active-low asynchronous reset) are ordinary instances
whose outputs are treated as path sources/sinks by the analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import MappingError, NetlistError

#: Net id of the constant logic-0 net.
CONST0 = 0
#: Net id of the constant logic-1 net.
CONST1 = 1

#: Cells whose output holds state across clock edges.
SEQUENTIAL_CELLS = frozenset({"DFFX1", "DFFNRX1", "LATCHX1"})

#: Truth functions of combinational cells, keyed by cell name.
CELL_FUNCTIONS = {
    "INVX1": lambda a: a ^ 1,
    "NAND2X1": lambda a, b: (a & b) ^ 1,
    "NOR2X1": lambda a, b: (a | b) ^ 1,
    "AND2X1": lambda a, b: a & b,
    "OR2X1": lambda a, b: a | b,
    "XOR2X1": lambda a, b: a ^ b,
    "XNOR2X1": lambda a, b: (a ^ b) ^ 1,
    "TSBUFX1": lambda d, en: d & en,
}


@dataclass(frozen=True)
class Instance:
    """One placed standard cell.

    Attributes:
        cell: Library cell name (e.g. ``"NAND2X1"``).
        inputs: Driver net ids, in cell pin order.
        output: Net id driven by this instance.
    """

    cell: str
    inputs: tuple[int, ...]
    output: int


@dataclass
class Bus:
    """An ordered group of nets, least-significant bit first."""

    name: str
    nets: list[int]

    def __len__(self) -> int:
        return len(self.nets)

    def __iter__(self):
        return iter(self.nets)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Bus(f"{self.name}[{index}]", self.nets[index])
        return self.nets[index]

    @property
    def width(self) -> int:
        return len(self.nets)


class Netlist:
    """A flat, technology-mapped gate-level netlist under construction.

    Args:
        name: Design name (used in reports and Verilog emission).
    """

    def __init__(self, name: str, cse: bool = True) -> None:
        self.name = name
        self.cse_enabled = cse
        self.instances: list[Instance] = []
        self.inputs: dict[str, Bus] = {}
        self.outputs: dict[str, Bus] = {}
        self._net_count = 2  # CONST0 and CONST1 pre-exist
        self._net_names: dict[int, str] = {CONST0: "const0", CONST1: "const1"}
        self._driver: dict[int, Instance] = {}
        self._cse: dict[tuple, int] = {}
        self.reset_n: int | None = None

    def __getstate__(self) -> dict:
        """Pickle support: drop the compiled-code attachment.

        :func:`repro.netlist.compile.compiled_netlist` caches exec'd
        function objects on the netlist; those are not picklable and
        are cheap to rebuild (they have their own on-disk artifact
        cache), so the on-disk netlist artifact and process-pool
        transfers carry structure only.
        """
        state = dict(self.__dict__)
        state.pop("_compiled_sim", None)
        state.pop("_numpy_sim", None)
        return state

    # -- net management ----------------------------------------------------

    def net(self, name: str = "") -> int:
        """Allocate a fresh net and return its id."""
        net_id = self._net_count
        self._net_count += 1
        if name:
            self._net_names[net_id] = name
        return net_id

    @property
    def net_count(self) -> int:
        """Number of allocated nets (including the two constants)."""
        return self._net_count

    def net_name(self, net_id: int) -> str:
        """Best-effort human-readable name for a net."""
        return self._net_names.get(net_id, f"n{net_id}")

    def named_nets(self) -> dict[int, str]:
        """All explicitly named nets as ``{net_id: name}`` (a copy).

        The probe/attribution layer (:mod:`repro.netlist.probe`)
        derives buses, waveform scopes, and per-module energy labels
        from these names.
        """
        return dict(self._net_names)

    def driver_of(self, net_id: int) -> Instance | None:
        """The instance driving ``net_id``, or None for ports/constants."""
        return self._driver.get(net_id)

    # -- ports ---------------------------------------------------------------

    def input_bus(self, name: str, width: int) -> Bus:
        """Declare a primary input bus of ``width`` bits."""
        if name in self.inputs:
            raise NetlistError(f"duplicate input bus {name!r}")
        bus = Bus(name, [self.net(f"{name}[{i}]") for i in range(width)])
        self.inputs[name] = bus
        return bus

    def output_bus(self, name: str, nets: Sequence[int]) -> Bus:
        """Declare a primary output bus driven by ``nets``."""
        if name in self.outputs:
            raise NetlistError(f"duplicate output bus {name!r}")
        bus = Bus(name, list(nets))
        self.outputs[name] = bus
        return bus

    def reset_input(self) -> int:
        """Declare (once) and return the active-low reset input net."""
        if self.reset_n is None:
            self.reset_n = self.input_bus("rst_n", 1)[0]
        return self.reset_n

    # -- raw instantiation ---------------------------------------------------

    def add_instance(self, cell: str, inputs: Iterable[int], output: int | None = None) -> int:
        """Place one cell instance; returns the output net id."""
        if output is None:
            output = self.net()
        instance = Instance(cell, tuple(inputs), output)
        if output in self._driver:
            raise NetlistError(f"net {self.net_name(output)} has two drivers")
        self.instances.append(instance)
        self._driver[output] = instance
        return output

    def _mapped(self, cell: str, *args: int) -> int:
        """Instantiate ``cell`` with CSE; symmetric cells share keys."""
        if not self.cse_enabled:
            return self.add_instance(cell, args)
        key_args = tuple(sorted(args)) if cell != "TSBUFX1" else args
        key = (cell, key_args)
        cached = self._cse.get(key)
        if cached is not None:
            return cached
        output = self.add_instance(cell, args)
        self._cse[key] = output
        return output

    # -- mapped logic operations ----------------------------------------------

    def not_(self, a: int) -> int:
        """Logical NOT, folded on constants and double inversion."""
        if a == CONST0:
            return CONST1
        if a == CONST1:
            return CONST0
        driver = self._driver.get(a)
        if driver is not None and driver.cell == "INVX1":
            return driver.inputs[0]
        return self._mapped("INVX1", a)

    def and_(self, a: int, b: int) -> int:
        """Logical AND of two nets."""
        if CONST0 in (a, b):
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1:
            return a
        if a == b:
            return a
        return self._mapped("AND2X1", a, b)

    def or_(self, a: int, b: int) -> int:
        """Logical OR of two nets."""
        if CONST1 in (a, b):
            return CONST1
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        if a == b:
            return a
        return self._mapped("OR2X1", a, b)

    def nand(self, a: int, b: int) -> int:
        """Logical NAND of two nets."""
        if CONST0 in (a, b):
            return CONST1
        if a == CONST1:
            return self.not_(b)
        if b == CONST1:
            return self.not_(a)
        if a == b:
            return self.not_(a)
        return self._mapped("NAND2X1", a, b)

    def nor(self, a: int, b: int) -> int:
        """Logical NOR of two nets."""
        if CONST1 in (a, b):
            return CONST0
        if a == CONST0:
            return self.not_(b)
        if b == CONST0:
            return self.not_(a)
        if a == b:
            return self.not_(a)
        return self._mapped("NOR2X1", a, b)

    def xor_(self, a: int, b: int) -> int:
        """Logical XOR of two nets."""
        if a == b:
            return CONST0
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        if a == CONST1:
            return self.not_(b)
        if b == CONST1:
            return self.not_(a)
        return self._mapped("XOR2X1", a, b)

    def xnor(self, a: int, b: int) -> int:
        """Logical XNOR of two nets."""
        return self.not_(self.xor_(a, b))

    def mux(self, select: int, when0: int, when1: int) -> int:
        """2:1 multiplexer: ``when1 if select else when0``.

        Mapped NAND-NAND (``NAND(NAND(s, w1), NAND(~s, w0))``) -- in the
        printed libraries that is both smaller and faster than the
        AND/OR form, and the select inverter is shared across a whole
        bus through CSE.  Full constant folding applies: a mux with
        equal branches or a constant select costs nothing.
        """
        if when0 == when1:
            return when0
        if select == CONST0:
            return when0
        if select == CONST1:
            return when1
        if when0 == CONST0 and when1 == CONST1:
            return select
        if when0 == CONST1 and when1 == CONST0:
            return self.not_(select)
        if when0 == CONST0:
            return self.and_(select, when1)
        if when1 == CONST0:
            return self.and_(self.not_(select), when0)
        return self.nand(
            self.nand(select, when1), self.nand(self.not_(select), when0)
        )

    def and_many(self, nets: Sequence[int]) -> int:
        """Balanced AND reduction of any number of nets.

        Wide reductions use an alternating NAND/NOR tree: inverting
        stages alternate slow-rise and slow-fall transitions, which in
        transistor-resistor logic is markedly faster (and smaller)
        than a tree of AND2 cells.
        """
        nets = [n for n in nets if n != CONST1]
        if CONST0 in nets:
            return CONST0
        if len(nets) >= 4:
            signal, inverted = self._reduce_inverting(self.nand, self.nor, nets)
            return self.not_(signal) if inverted else signal
        return self._reduce(self.and_, nets, empty=CONST1)

    def or_many(self, nets: Sequence[int]) -> int:
        """Balanced OR reduction of any number of nets (fast tree)."""
        nets = [n for n in nets if n != CONST0]
        if CONST1 in nets:
            return CONST1
        if len(nets) >= 4:
            signal, inverted = self._reduce_inverting(self.nor, self.nand, nets)
            return self.not_(signal) if inverted else signal
        return self._reduce(self.or_, nets, empty=CONST0)

    def _reduce_inverting(self, first_op, second_op, nets: Sequence[int]) -> tuple[int, bool]:
        """Alternating two-op reduction; returns (net, is_inverted).

        ``first_op`` combines true-polarity levels, ``second_op``
        inverted ones (e.g. NOR then NAND computes an OR reduction).
        Odd leftovers are inverted to join the next level.
        """
        level = list(nets)
        inverted = False
        while len(level) > 1:
            op = second_op if inverted else first_op
            next_level = [
                op(level[i], level[i + 1]) for i in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2:
                next_level.append(self.not_(level[-1]))
            level = next_level
            inverted = not inverted
        return level[0], inverted

    def xor_many(self, nets: Sequence[int]) -> int:
        """Balanced XOR reduction of any number of nets."""
        return self._reduce(self.xor_, nets, empty=CONST0)

    def _reduce(self, op, nets: Sequence[int], empty: int) -> int:
        nets = list(nets)
        if not nets:
            return empty
        while len(nets) > 1:
            nets = [
                op(nets[i], nets[i + 1]) if i + 1 < len(nets) else nets[i]
                for i in range(0, len(nets), 2)
            ]
        return nets[0]

    # -- sequential elements ----------------------------------------------------

    def dff(self, d: int, name: str = "") -> int:
        """Plain D flip-flop (no reset); returns the Q net."""
        q = self.net(name or "q")
        self.add_instance("DFFX1", (d,), q)
        return q

    def dff_r(self, d: int, name: str = "") -> int:
        """D flip-flop with asynchronous active-low reset to 0."""
        rn = self.reset_input()
        q = self.net(name or "q")
        self.add_instance("DFFNRX1", (d, rn), q)
        return q

    def register(self, d_bits: Sequence[int], name: str = "", reset: bool = True) -> Bus:
        """A bank of flip-flops over ``d_bits``; returns the Q bus."""
        flop = self.dff_r if reset else self.dff
        return Bus(name, [flop(d, f"{name}[{i}]") for i, d in enumerate(d_bits)])

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants.

        Raises:
            NetlistError: On unknown cells, bad arity, or floating
                instance inputs (nets that are neither driven, ports,
                nor constants).
        """
        from repro.netlist.stats import CELL_ARITY

        port_nets = {n for bus in self.inputs.values() for n in bus}
        driven = set(self._driver) | port_nets | {CONST0, CONST1}
        for instance in self.instances:
            arity = CELL_ARITY.get(instance.cell)
            if arity is None:
                raise NetlistError(f"unknown cell {instance.cell!r}")
            if len(instance.inputs) != arity:
                raise NetlistError(
                    f"{instance.cell} expects {arity} inputs, got {len(instance.inputs)}"
                )
            for net_id in instance.inputs:
                if net_id not in driven:
                    raise NetlistError(
                        f"floating input net {self.net_name(net_id)} on {instance.cell}"
                    )
        for bus in self.outputs.values():
            for net_id in bus:
                if net_id not in driven:
                    raise NetlistError(
                        f"output {bus.name} bit is floating ({self.net_name(net_id)})"
                    )


def constant_bus(netlist: Netlist, value: int, width: int, name: str = "const") -> Bus:
    """A bus of constant nets encoding ``value`` over ``width`` bits."""
    if value < 0 or value >= (1 << width):
        raise MappingError(f"constant {value} does not fit in {width} bits")
    return Bus(name, [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)])
