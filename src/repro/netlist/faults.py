"""Stuck-at fault injection for gate-level netlists.

Printed devices fail often (Section 3.1: 90-99% measured device
yield), and printed systems are too cheap to justify scan chains -- so
post-print testing means running a program and checking its output.
This module quantifies how good that test is: inject a stuck-at-0/1
fault on a cell output, run the benchmark on the faulty netlist, and
see whether the architectural result diverges from the golden run.

The detected fraction is the benchmark's *fault coverage* as a
functional print test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import SimulationError
from repro.netlist.core import CELL_FUNCTIONS, Netlist, SEQUENTIAL_CELLS
from repro.netlist.sim import CycleSimulator
from repro.obs.metrics import counter as _obs_counter

_SIMULATORS_BUILT = _obs_counter("faults.simulators_built")
_SITES_ENUMERATED = _obs_counter("faults.sites_enumerated")


@dataclass(frozen=True)
class StuckAtFault:
    """One stuck-at fault site: an instance's output net forced."""

    instance_index: int
    stuck_value: int

    def __post_init__(self) -> None:
        if self.stuck_value not in (0, 1):
            raise SimulationError(f"stuck value must be 0/1, got {self.stuck_value}")


class FaultySimulator(CycleSimulator):
    """A cycle simulator with one injected stuck-at fault.

    The faulted instance's output is forced to the stuck value after
    every combinational settle and on every flip-flop capture.  With
    ``backend="compiled"`` the forcing runs through the generated
    ``settle_forced`` code (masks select the fault site), so one
    compiled netlist serves every fault site without recompilation.
    """

    def __init__(
        self, netlist: Netlist, fault: StuckAtFault, backend: str = "interpreted"
    ) -> None:
        super().__init__(netlist, backend=backend)
        _SIMULATORS_BUILT.inc()
        if not 0 <= fault.instance_index < len(netlist.instances):
            raise SimulationError(f"no instance {fault.instance_index}")
        self.fault = fault
        self._fault_net = netlist.instances[fault.instance_index].output
        self._force_and: list[int] | None = None
        self._force_or: list[int] | None = None
        if self._compiled is not None:
            self._force_and = [1] * netlist.net_count
            self._force_or = [0] * netlist.net_count
            self._force_and[self._fault_net] = 0
            self._force_or[self._fault_net] = fault.stuck_value

    def settle(self) -> None:
        # Levelized evaluation with the faulted driver overridden *in
        # place*, so every downstream consumer sees the stuck value.
        values = self._values
        if self._compiled is not None:
            self._compiled.settle_forced(
                values, 1, self._force_and, self._force_or
            )
            return
        values[self._fault_net] = self.fault.stuck_value
        for instance in self._order:
            if instance.output == self._fault_net:
                continue
            function = CELL_FUNCTIONS[instance.cell]
            values[instance.output] = function(
                *(values[n] for n in instance.inputs)
            )

    def tick(self) -> None:
        super().tick()
        # A stuck sequential output stays stuck across the edge.
        self._values[self._fault_net] = self.fault.stuck_value


def enumerate_fault_sites(netlist: Netlist, stride: int = 1) -> list[StuckAtFault]:
    """All (or every ``stride``-th) stuck-at-0/1 fault site."""
    sites = []
    for index in range(0, len(netlist.instances), stride):
        sites.append(StuckAtFault(index, 0))
        sites.append(StuckAtFault(index, 1))
    _SITES_ENUMERATED.inc(len(sites))
    return sites


@dataclass(frozen=True)
class FaultCampaign:
    """Outcome of a fault-injection campaign."""

    total: int
    detected: int
    undetected_sites: tuple[StuckAtFault, ...]

    @property
    def coverage(self) -> float:
        return self.detected / self.total if self.total else 0.0
