"""Structural Verilog emission.

Generated cores can be dumped as flat structural Verilog referencing
the printed standard-cell names, matching the artifact a physical
design flow for the printed PDKs would consume.  Emission is purely
textual -- there is no Verilog parser here.
"""

from __future__ import annotations

from repro.netlist.core import CONST0, CONST1, Netlist

#: Pin names per cell, in the same order as Instance.inputs + output.
_CELL_PINS = {
    "INVX1": ("A", "Y"),
    "NAND2X1": ("A", "B", "Y"),
    "NOR2X1": ("A", "B", "Y"),
    "AND2X1": ("A", "B", "Y"),
    "OR2X1": ("A", "B", "Y"),
    "XOR2X1": ("A", "B", "Y"),
    "XNOR2X1": ("A", "B", "Y"),
    "LATCHX1": ("D", "EN", "Q"),
    "DFFX1": ("D", "Q"),
    "DFFNRX1": ("D", "RN", "Q"),
    "TSBUFX1": ("A", "EN", "Y"),
}

#: Cells that additionally take the global clock pin.
_CLOCKED = {"DFFX1", "DFFNRX1"}


def _net_ref(netlist: Netlist, net: int) -> str:
    if net == CONST0:
        return "1'b0"
    if net == CONST1:
        return "1'b1"
    return f"n{net}"


def dump_verilog(netlist: Netlist) -> str:
    """Render ``netlist`` as flat structural Verilog text."""
    ports: list[str] = []
    declarations: list[str] = []
    assigns: list[str] = []

    has_flops = any(i.cell in _CLOCKED for i in netlist.instances)
    if has_flops:
        ports.append("clk")
        declarations.append("  input wire clk;")

    for name, bus in netlist.inputs.items():
        ports.append(name)
        declarations.append(f"  input wire [{len(bus) - 1}:0] {name};")
        for i, net in enumerate(bus):
            assigns.append(f"  assign n{net} = {name}[{i}];")
    for name, bus in netlist.outputs.items():
        ports.append(name)
        declarations.append(f"  output wire [{len(bus) - 1}:0] {name};")
        for i, net in enumerate(bus):
            assigns.append(f"  assign {name}[{i}] = {_net_ref(netlist, net)};")

    body: list[str] = []
    wires = sorted(
        {i.output for i in netlist.instances}
        | {n for bus in netlist.inputs.values() for n in bus}
    )
    if wires:
        body.append("  wire " + ", ".join(f"n{w}" for w in wires) + ";")
    body.extend(assigns)

    for index, instance in enumerate(netlist.instances):
        pins = _CELL_PINS[instance.cell]
        connections = [
            f".{pin}({_net_ref(netlist, net)})"
            for pin, net in zip(pins, (*instance.inputs, instance.output))
        ]
        if instance.cell in _CLOCKED:
            connections.append(".CK(clk)")
        body.append(f"  {instance.cell} u{index} ({', '.join(connections)});")

    header = f"module {netlist.name} ({', '.join(ports)});"
    return "\n".join([header, *declarations, *body, "endmodule"]) + "\n"
