"""Area, device-count, and composition statistics for netlists.

These reports correspond to the synthesis-report numbers the paper
quotes: gate count, printed area (cm^2 scale for EGFET), and the
register-vs-combinational split that drives Figures 7 and 8's stacked
bars.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.netlist.core import Netlist, SEQUENTIAL_CELLS
from repro.pdk.cells import CellLibrary

#: Input-pin count per supported cell (validation + simulation order).
CELL_ARITY = {
    "INVX1": 1,
    "NAND2X1": 2,
    "NOR2X1": 2,
    "AND2X1": 2,
    "OR2X1": 2,
    "XOR2X1": 2,
    "XNOR2X1": 2,
    "LATCHX1": 2,
    "DFFX1": 1,
    "DFFNRX1": 2,
    "TSBUFX1": 2,
}


@dataclass(frozen=True)
class AreaReport:
    """Printed-area breakdown of one netlist in one technology.

    Attributes:
        total: Total cell area in m^2.
        combinational: Area of combinational cells in m^2.
        sequential: Area of flip-flops and latches in m^2.
        gate_count: Total placed cell count.
        dff_count: Number of sequential cells.
        transistors: Total printed transistor count.
        resistors: Total printed pull-up resistor count (EGFET only).
    """

    total: float
    combinational: float
    sequential: float
    gate_count: int
    dff_count: int
    transistors: int
    resistors: int

    @property
    def sequential_fraction(self) -> float:
        """Fraction of total area spent on state-holding cells."""
        return self.sequential / self.total if self.total else 0.0


def cell_histogram(netlist: Netlist) -> Counter[str]:
    """Count placed instances per cell name."""
    return Counter(instance.cell for instance in netlist.instances)


def area_report(netlist: Netlist, library: CellLibrary) -> AreaReport:
    """Compute the area/composition report of ``netlist`` in ``library``."""
    total = 0.0
    combinational = 0.0
    sequential = 0.0
    dff_count = 0
    transistors = 0
    resistors = 0
    for instance in netlist.instances:
        cell = library.cell(instance.cell)
        total += cell.area
        transistors += cell.transistors
        resistors += cell.resistors
        if instance.cell in SEQUENTIAL_CELLS:
            sequential += cell.area
            dff_count += 1
        else:
            combinational += cell.area
    return AreaReport(
        total=total,
        combinational=combinational,
        sequential=sequential,
        gate_count=len(netlist.instances),
        dff_count=dff_count,
        transistors=transistors,
        resistors=resistors,
    )
