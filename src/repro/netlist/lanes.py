"""Cross-run lane packing: one netlist, many independent runs.

Both lane-parallel simulation backends -- the bigint
:class:`~repro.netlist.compile.BitParallelSimulator` and the numpy
bit-slice :class:`~repro.netlist.nsim.NumpySimulator` -- advance K
*independent runs* of one netlist per pass.  The runs may differ only
in three ways: forced nets (per-lane stuck-at faults), initial data
memory, and per-cycle stimulus.  :class:`LanePlan` is the shared
description of such a batch: the simulators consume its forced-net
map, the campaign/verify harnesses consume its per-lane memory images,
and stimulus stays with the harness (it is a per-cycle stream, driven
through ``set_input`` with one value per lane).

Keeping the plan backend-agnostic is what lets
:func:`repro.coregen.fault_test.run_fault_campaign` and the verify
differential executor switch between bigint lanes and numpy bit-slice
words without touching batching logic -- and what keeps the two
backends bit-exact by construction: they build their force masks from
the *same* ``forced_bits`` map.

:class:`LaneMemoryHarness` is the matching *architectural* half: the
behavioural instruction-ROM / data-RAM model every lane-packed core
run needs (fetch with halt-branch padding past the program end, dual
read ports, write-enable writeback).  The fault campaign and the
differential verifier used to each maintain their own copy of this
loop; they now both drive this one harness, which picks the vectorized
array path automatically when the simulator exposes
``read_output_array`` (numpy bit-slice) and the per-lane list path
otherwise (bigint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import SimulationError


@dataclass(frozen=True)
class LanePlan:
    """K independent runs that share one netlist.

    Attributes:
        lanes: Number of packed runs (bigint width / bit-slice lanes).
        faults: Optional per-lane stuck-at faults -- a ``lanes``-tuple
            where each entry is ``None`` (healthy lane), one
            :class:`~repro.netlist.faults.StuckAtFault`, or a tuple of
            them (a multi-defect printed unit).  ``None`` (or
            all-``None``) means no forcing at all.  If one lane lists
            two faults on the same net with conflicting values, the
            backends' force order (and-mask then or-mask) makes
            stuck-at-1 win; the Monte-Carlo defect sampler never emits
            duplicate sites, so this only matters for hand-built plans.
        memories: Optional per-lane initial data-memory images (a
            ``lanes``-tuple of word tuples).  Consumed by harnesses,
            not by the simulators themselves.
    """

    lanes: int
    faults: tuple | None = None
    memories: tuple | None = None

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise SimulationError(f"need at least one lane, got {self.lanes}")
        if self.faults is not None and len(self.faults) != self.lanes:
            raise SimulationError(
                f"{len(self.faults)} faults for {self.lanes} lanes"
            )
        if self.memories is not None and len(self.memories) != self.lanes:
            raise SimulationError(
                f"{len(self.memories)} memory images for {self.lanes} lanes"
            )

    @classmethod
    def for_faults(cls, faults: Sequence) -> "LanePlan":
        """One lane per entry of ``faults`` (``None`` = healthy lane).

        Entries may be single faults or per-lane fault tuples.
        """
        faults = tuple(faults)
        return cls(lanes=len(faults), faults=faults)

    @staticmethod
    def _lane_faults(entry) -> tuple:
        """Normalize one lane's entry to a (possibly empty) fault tuple."""
        if entry is None:
            return ()
        if isinstance(entry, tuple):
            return entry
        return (entry,)

    @property
    def has_forces(self) -> bool:
        """Whether any lane forces any net."""
        return self.faults is not None and any(
            self._lane_faults(entry) for entry in self.faults
        )

    def forced_bits(self, netlist) -> dict[int, list[tuple[int, int]]]:
        """Forced-net map: ``net -> [(lane, stuck_value), ...]``.

        Nets appear in order of first lane appearance (both backends
        derive their fault-net ordering from this), and fault sites are
        validated against ``netlist``.  Empty when the plan has no
        forces.
        """
        forced: dict[int, list[tuple[int, int]]] = {}
        if not self.has_forces:
            return forced
        for lane, entry in enumerate(self.faults):
            for fault in self._lane_faults(entry):
                if not 0 <= fault.instance_index < len(netlist.instances):
                    raise SimulationError(f"no instance {fault.instance_index}")
                net = netlist.instances[fault.instance_index].output
                forced.setdefault(net, []).append((lane, fault.stuck_value))
        return forced

    def memory_images(self, base: Sequence[int]) -> list[list[int]]:
        """Per-lane initial data memories, one mutable list per lane.

        Lanes with no explicit image in :attr:`memories` get a copy of
        ``base`` -- the common case for fault campaigns, where every
        lane starts from the program's data segment.
        """
        if self.memories is None:
            return [list(base) for _ in range(self.lanes)]
        return [
            list(base if image is None else image) for image in self.memories
        ]


class LaneMemoryHarness:
    """Behavioural ROM/RAM model around a lane-packed core simulator.

    Drives the memory side of the canonical lane-parallel cycle --
    settle, provide fetch+read data, settle, provide again, settle,
    capture the write port, tick, write back -- for every lane at
    once.  This is the loop :meth:`repro.coregen.cosim.CoSimHarness.step`
    runs for one machine, generalized to K independent lanes and
    shared by the fault campaign and the differential verifier.

    Two execution paths, chosen automatically:

    * **array path** when the simulator exposes ``read_output_array``
      (the numpy bit-slice backend): instruction fetch is a
      precomputed-table gather, data memory is one ``(lanes, words)``
      ``uint64`` array read with fancy indexing and written back under
      the ``we`` mask -- O(kernel calls), not O(lanes), per cycle.
    * **list path** otherwise (bigint bit-parallel): per-lane Python
      loops over the simulator's list-valued ports.

    Both paths are bit-exact with each other and with the scalar
    harness.

    Args:
        sim: A lane simulator (``BitParallelSimulator`` or
            ``NumpySimulator``) already constructed over the netlist.
        lanes: Lane count (must match the simulator's packing).
        rom: Shared instruction ROM (every lane runs one program), or
        roms: Per-lane instruction ROMs (one program per lane).
            Exactly one of ``rom``/``roms`` must be given.
        base_memory: Shared initial data image, copied per lane, or
        memories: Per-lane initial data images.  Exactly one must be
            given.
        halt_word: ``pc -> instruction word`` for fetches past the
            program end (the consumers encode a self-branch).  Kept a
            callable so this module never imports the ISA layer.
        halt_words: Optional shared memo dict for ``halt_word`` results
            (entries are pure functions of the PC, so campaign contexts
            pass one dict across many harnesses).
        pc_bits: PC bus width; required on the array path (it sizes
            the fetch table), ignored on the list path.
    """

    def __init__(
        self,
        sim,
        *,
        lanes: int,
        rom: Sequence[int] | None = None,
        roms: Sequence[Sequence[int]] | None = None,
        base_memory: Sequence[int] | None = None,
        memories: Sequence[Sequence[int]] | None = None,
        halt_word: Callable[[int], int],
        halt_words: dict[int, int] | None = None,
        pc_bits: int | None = None,
    ) -> None:
        if (rom is None) == (roms is None):
            raise SimulationError("pass exactly one of rom= or roms=")
        if (base_memory is None) == (memories is None):
            raise SimulationError(
                "pass exactly one of base_memory= or memories="
            )
        if roms is not None and len(roms) != lanes:
            raise SimulationError(f"{len(roms)} ROMs for {lanes} lanes")
        if memories is not None and len(memories) != lanes:
            raise SimulationError(
                f"{len(memories)} memory images for {lanes} lanes"
            )
        self.sim = sim
        self.lanes = lanes
        self._rom = list(rom) if rom is not None else None
        self._roms = (
            [list(r) for r in roms] if roms is not None else None
        )
        self._halt_word = halt_word
        self._halt_words = halt_words if halt_words is not None else {}
        self.array_mode = hasattr(sim, "read_output_array")
        if memories is None:
            memories = [list(base_memory) for _ in range(lanes)]
        if self.array_mode:
            import numpy as np

            if pc_bits is None:
                raise SimulationError(
                    "pc_bits is required on the array path"
                )
            self._np = np
            self._memory = np.asarray(memories, dtype=np.uint64)
            self._lane_index = np.arange(lanes)
            self._fetch = self._build_fetch_table(pc_bits)
        else:
            self.memories = [list(image) for image in memories]

    def _halt(self, pc: int) -> int:
        word = self._halt_words.get(pc)
        if word is None:
            word = self._halt_words[pc] = self._halt_word(pc)
        return word

    def _build_fetch_table(self, pc_bits: int):
        """Instruction word per (lane,) possible PC, as a gather table.

        The PC bus is at most 8 bits, so the whole fetch path -- ROM
        lookup plus synthetic halt padding past the program end --
        precomputes into at most 256 words (per lane when ROMs
        differ); ``fetch[pc]`` then replaces the per-lane Python
        fetch loop with one vectorized gather.
        """
        np = self._np
        size = 1 << pc_bits
        if self._rom is not None:
            table = np.zeros(size, dtype=np.uint64)
            table[: len(self._rom)] = self._rom
            for pc in range(len(self._rom), size):
                table[pc] = self._halt(pc)
            return table
        table = np.zeros((self.lanes, size), dtype=np.uint64)
        for lane, rom in enumerate(self._roms):
            table[lane, : len(rom)] = rom
            for pc in range(len(rom), size):
                table[lane, pc] = self._halt(pc)
        return table

    def _provide_array(self) -> None:
        sim = self.sim
        pcs = sim.read_output_array("pc")
        if self._fetch.ndim == 1:
            sim.set_input("instr", self._fetch[pcs])
        else:
            sim.set_input("instr", self._fetch[self._lane_index, pcs])
        sim.set_input(
            "rdata_a",
            self._memory[self._lane_index, sim.read_output_array("addr_a")],
        )
        sim.set_input(
            "rdata_b",
            self._memory[self._lane_index, sim.read_output_array("addr_b")],
        )

    def _provide_lists(self) -> None:
        sim = self.sim
        words = []
        for lane, pc in enumerate(sim.read_output("pc")):
            rom = self._rom if self._rom is not None else self._roms[lane]
            if pc < len(rom):
                words.append(rom[pc])
            else:
                words.append(self._halt(pc))
        sim.set_input("instr", words)
        addr_a = sim.read_output("addr_a")
        addr_b = sim.read_output("addr_b")
        memories = self.memories
        sim.set_input(
            "rdata_a",
            [memories[lane][addr_a[lane]] for lane in range(self.lanes)],
        )
        sim.set_input(
            "rdata_b",
            [memories[lane][addr_b[lane]] for lane in range(self.lanes)],
        )

    def step(self) -> None:
        """Advance every lane one architectural cycle."""
        sim = self.sim
        provide = (
            self._provide_array if self.array_mode else self._provide_lists
        )
        sim.settle()
        provide()
        sim.settle()
        provide()
        sim.settle()
        if self.array_mode:
            we = sim.read_output_array("we").astype(bool)
            waddr = sim.read_output_array("waddr")
            wdata = sim.read_output_array("wdata")
            sim.tick()
            self._memory[self._lane_index[we], waddr[we]] = wdata[we]
        else:
            we = sim.read_output("we")
            waddr = sim.read_output("waddr")
            wdata = sim.read_output("wdata")
            sim.tick()
            for lane in range(self.lanes):
                if we[lane]:
                    self.memories[lane][waddr[lane]] = wdata[lane]

    def run(self, cycles: int) -> None:
        """Reset, run ``cycles`` architectural cycles, settle outputs."""
        self.sim.reset()
        for _ in range(cycles):
            self.step()
        self.sim.settle()

    def memory_rows(self) -> list[list[int]]:
        """Final per-lane data memories as plain Python int lists."""
        if self.array_mode:
            return self._memory.tolist()
        return [list(image) for image in self.memories]
