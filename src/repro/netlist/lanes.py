"""Cross-run lane packing: one netlist, many independent runs.

Both lane-parallel simulation backends -- the bigint
:class:`~repro.netlist.compile.BitParallelSimulator` and the numpy
bit-slice :class:`~repro.netlist.nsim.NumpySimulator` -- advance K
*independent runs* of one netlist per pass.  The runs may differ only
in three ways: forced nets (per-lane stuck-at faults), initial data
memory, and per-cycle stimulus.  :class:`LanePlan` is the shared
description of such a batch: the simulators consume its forced-net
map, the campaign/verify harnesses consume its per-lane memory images,
and stimulus stays with the harness (it is a per-cycle stream, driven
through ``set_input`` with one value per lane).

Keeping the plan backend-agnostic is what lets
:func:`repro.coregen.fault_test.run_fault_campaign` and the verify
differential executor switch between bigint lanes and numpy bit-slice
words without touching batching logic -- and what keeps the two
backends bit-exact by construction: they build their force masks from
the *same* ``forced_bits`` map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError


@dataclass(frozen=True)
class LanePlan:
    """K independent runs that share one netlist.

    Attributes:
        lanes: Number of packed runs (bigint width / bit-slice lanes).
        faults: Optional per-lane stuck-at faults -- a ``lanes``-tuple
            where each entry is ``None`` (healthy lane), one
            :class:`~repro.netlist.faults.StuckAtFault`, or a tuple of
            them (a multi-defect printed unit).  ``None`` (or
            all-``None``) means no forcing at all.  If one lane lists
            two faults on the same net with conflicting values, the
            backends' force order (and-mask then or-mask) makes
            stuck-at-1 win; the Monte-Carlo defect sampler never emits
            duplicate sites, so this only matters for hand-built plans.
        memories: Optional per-lane initial data-memory images (a
            ``lanes``-tuple of word tuples).  Consumed by harnesses,
            not by the simulators themselves.
    """

    lanes: int
    faults: tuple | None = None
    memories: tuple | None = None

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise SimulationError(f"need at least one lane, got {self.lanes}")
        if self.faults is not None and len(self.faults) != self.lanes:
            raise SimulationError(
                f"{len(self.faults)} faults for {self.lanes} lanes"
            )
        if self.memories is not None and len(self.memories) != self.lanes:
            raise SimulationError(
                f"{len(self.memories)} memory images for {self.lanes} lanes"
            )

    @classmethod
    def for_faults(cls, faults: Sequence) -> "LanePlan":
        """One lane per entry of ``faults`` (``None`` = healthy lane).

        Entries may be single faults or per-lane fault tuples.
        """
        faults = tuple(faults)
        return cls(lanes=len(faults), faults=faults)

    @staticmethod
    def _lane_faults(entry) -> tuple:
        """Normalize one lane's entry to a (possibly empty) fault tuple."""
        if entry is None:
            return ()
        if isinstance(entry, tuple):
            return entry
        return (entry,)

    @property
    def has_forces(self) -> bool:
        """Whether any lane forces any net."""
        return self.faults is not None and any(
            self._lane_faults(entry) for entry in self.faults
        )

    def forced_bits(self, netlist) -> dict[int, list[tuple[int, int]]]:
        """Forced-net map: ``net -> [(lane, stuck_value), ...]``.

        Nets appear in order of first lane appearance (both backends
        derive their fault-net ordering from this), and fault sites are
        validated against ``netlist``.  Empty when the plan has no
        forces.
        """
        forced: dict[int, list[tuple[int, int]]] = {}
        if not self.has_forces:
            return forced
        for lane, entry in enumerate(self.faults):
            for fault in self._lane_faults(entry):
                if not 0 <= fault.instance_index < len(netlist.instances):
                    raise SimulationError(f"no instance {fault.instance_index}")
                net = netlist.instances[fault.instance_index].output
                forced.setdefault(net, []).append((lane, fault.stuck_value))
        return forced

    def memory_images(self, base: Sequence[int]) -> list[list[int]]:
        """Per-lane initial data memories, one mutable list per lane.

        Lanes with no explicit image in :attr:`memories` get a copy of
        ``base`` -- the common case for fault campaigns, where every
        lane starts from the program's data segment.
        """
        if self.memories is None:
            return [list(base) for _ in range(self.lanes)]
        return [
            list(base if image is None else image) for image in self.memories
        ]
