"""Gate-level netlist substrate.

This package stands in for the commercial synthesis flow the paper used
(Synopsys Design Compiler): a hierarchical gate-level netlist builder
whose logic operations map directly onto the printed standard-cell
libraries, plus the analyses the paper reports -- static timing
(:mod:`repro.netlist.sta`), activity-based power
(:mod:`repro.netlist.power`), area/cell statistics
(:mod:`repro.netlist.stats`) -- and a cycle-accurate gate-level
simulator (:mod:`repro.netlist.sim`) used to verify generated cores
against the instruction-set simulator.
"""

from repro.netlist.core import Bus, Instance, Netlist, CONST0, CONST1
from repro.netlist.sta import TimingReport, timing_report
from repro.netlist.power import PowerReport, power_report
from repro.netlist.stats import AreaReport, area_report, cell_histogram
from repro.netlist.sim import CycleSimulator

__all__ = [
    "Bus",
    "Instance",
    "Netlist",
    "CONST0",
    "CONST1",
    "TimingReport",
    "timing_report",
    "PowerReport",
    "power_report",
    "AreaReport",
    "area_report",
    "cell_histogram",
    "CycleSimulator",
]
