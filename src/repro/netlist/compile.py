"""Compiled gate-level simulation: netlist-to-Python code generation.

The interpreted :class:`repro.netlist.sim.CycleSimulator` walks the
levelized netlist one instance at a time, paying a dict lookup and a
Python function call per gate per settle -- three settles per clock
cycle.  This module removes that overhead Verilator-style: the netlist
is translated *once* into straight-line Python source (one bitwise
expression statement per gate, operating on local variables) which is
``compile()``d and ``exec``'d into ordinary functions.  Evaluating a
settle is then a single call into a code object with no per-gate
interpreter dispatch, which is an order of magnitude faster.

Four functions are generated per netlist:

``settle(V, M)``
    Plain combinational settle over the value table ``V`` (a flat list
    indexed by net id).  ``M`` is the *lane mask*: ``1`` for ordinary
    scalar simulation, ``(1 << lanes) - 1`` for bit-parallel
    simulation.  Cell inversions are emitted as ``x ^ M`` so the same
    code object serves both modes.

``settle_forced(V, M, A, O)``
    Settle with per-net force masks: every value is passed through
    ``(value & A[net]) | O[net]``.  With ``A[net] = M`` and
    ``O[net] = 0`` this is the identity; zeroing a lane bit of
    ``A[net]`` and setting it in ``O[net]`` forces that lane of that
    net -- the classic bit-parallel stuck-at fault injection.  One
    compiled function therefore serves *every* fault site (no
    per-fault recompilation).

``tick(V, P, T, resetting)``
    Scalar clock edge with exact per-instance toggle accounting
    (``P`` = previous settled value per instance index, ``T`` = toggle
    counters), matching the interpreted simulator bit for bit.

``tick_lanes(V, M)``
    Bit-parallel clock edge.  Asynchronous reset is applied per lane
    (a lane whose ``rst_n`` bit is low captures 0).  Toggle counts are
    not maintained in lane mode -- bit-parallel simulation exists for
    fault campaigns and random-vector sweeps, which do not read them.

:func:`make_capture` additionally generates standalone straight-line
probe-capture functions (``capture(V) -> tuple``) for the waveform
layer (:mod:`repro.netlist.probe`), reading an arbitrary net selection
without a per-net Python loop.

The generated code caches on the netlist object itself
(:func:`compiled_netlist`), so repeated simulator constructions --
e.g. one :class:`~repro.netlist.faults.FaultySimulator` per fault site
-- compile exactly once.
"""

from __future__ import annotations

import importlib.util
import marshal
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import SimulationError, UnsupportedInLaneMode
from repro.exec.cache import load_artifact, source_digest, store_artifact, structural_hash
from repro.netlist.core import CONST1, Instance, Netlist, SEQUENTIAL_CELLS
from repro.netlist.lanes import LanePlan
from repro.netlist.sta import _topological_order
from repro.obs.metrics import counter as _obs_counter
from repro.obs.runtime import STATE as _OBS
from repro.obs.trace import span as _obs_span

# Per-netlist code-object cache telemetry (see docs/OBSERVABILITY.md).
_CACHE_HITS = _obs_counter("compile.cache_hits")
_CACHE_MISSES = _obs_counter("compile.cache_misses")
_DISK_HITS = _obs_counter("compile.disk_hits")
_LANE_TICKS = _obs_counter("sim.batched_ticks")
_LANE_CYCLES = _obs_counter("sim.lane_cycles_simulated")

#: Artifact-cache bucket for compiled simulation code.
_ARTIFACT_KIND = "compiled-sim"

#: Expression template per combinational cell; ``M`` is the lane mask
#: standing in for logical 1, so inverting cells work for any lane count.
_CELL_EXPR = {
    "INVX1": "v{a} ^ M",
    "NAND2X1": "(v{a} & v{b}) ^ M",
    "NOR2X1": "(v{a} | v{b}) ^ M",
    "AND2X1": "v{a} & v{b}",
    "OR2X1": "v{a} | v{b}",
    "XOR2X1": "v{a} ^ v{b}",
    "XNOR2X1": "(v{a} ^ v{b}) ^ M",
    "TSBUFX1": "v{a} & v{b}",
}


@dataclass
class CompiledNetlist:
    """Code objects generated for one netlist (see module docstring).

    Attributes:
        settle: Plain straight-line settle ``(V, M)``.
        settle_forced: Settle with force masks ``(V, M, A, O)``.
        tick: Scalar clock edge with toggle accounting
            ``(V, P, T, resetting)``.
        tick_lanes: Bit-parallel clock edge ``(V, M)``.
        source: The generated Python source (kept for debugging).
        code: The compiled module code object (marshaled into the
            on-disk artifact cache).
    """

    settle: Callable[[list, int], None]
    settle_forced: Callable[[list, int, list, list], None]
    tick: Callable[[list, list, list, bool], None]
    tick_lanes: Callable[[list, int], None]
    source: str = field(repr=False, default="")
    code: object = field(repr=False, default=None)


def _expression(instance: Instance) -> str:
    template = _CELL_EXPR.get(instance.cell)
    if template is None:
        raise SimulationError(f"cannot compile cell {instance.cell!r}")
    a = instance.inputs[0]
    b = instance.inputs[1] if len(instance.inputs) > 1 else ""
    return template.format(a=a, b=b)


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Translate ``netlist`` into compiled straight-line simulation code.

    The netlist must be simulatable (validated, no latches); net ids
    index the flat value table directly, so the caller's value list
    must have ``netlist.net_count`` entries.
    """
    netlist.validate()
    for instance in netlist.instances:
        if instance.cell == "LATCHX1":
            raise SimulationError("level-sensitive latches are not simulatable")
    source = _generate_source(netlist)
    code = compile(source, f"<compiled:{netlist.name}>", "exec")
    return _bind(code, source)


def _generate_source(netlist: Netlist) -> str:
    """Emit the four straight-line functions as Python source."""
    order = _topological_order(netlist)
    position = {inst.output: n for n, inst in enumerate(netlist.instances)}
    flops = [i for i in netlist.instances if i.cell in SEQUENTIAL_CELLS]
    comb_outputs = {inst.output for inst in order}
    sources = sorted(
        {net for inst in order for net in inst.inputs} - comb_outputs
    )

    lines: list[str] = []

    # -- settle(V, M) ------------------------------------------------------
    lines.append("def settle(V, M):")
    for net in sources:
        lines.append(f"    v{net} = V[{net}]")
    for inst in order:
        lines.append(f"    v{inst.output} = {_expression(inst)}")
    for inst in order:
        lines.append(f"    V[{inst.output}] = v{inst.output}")
    lines.append("    return")

    # -- settle_forced(V, M, A, O) ----------------------------------------
    # Sources are forced at load (covering faults on flop outputs and
    # primary inputs) and written back so direct reads observe the
    # forced value, exactly like the interpreted FaultySimulator.
    lines.append("def settle_forced(V, M, A, O):")
    for net in sources:
        lines.append(f"    v{net} = (V[{net}] & A[{net}]) | O[{net}]")
    for net in sources:
        lines.append(f"    V[{net}] = v{net}")
    for inst in order:
        out = inst.output
        lines.append(f"    v{out} = (({_expression(inst)}) & A[{out}]) | O[{out}]")
    for inst in order:
        lines.append(f"    V[{inst.output}] = v{inst.output}")
    lines.append("    return")

    # -- tick(V, P, T, resetting) ------------------------------------------
    # Identical semantics to the interpreted tick: combinational toggle
    # accounting against the previous cycle's settled value (P holds -1
    # before the first tick), then a simultaneous flop capture with
    # async reset and per-flop toggle counting.
    lines.append("def tick(V, P, T, resetting):")
    for inst in order:
        k = position[inst.output]
        lines.append(f"    p = P[{k}]")
        lines.append(f"    x = V[{inst.output}]")
        lines.append("    if p != x:")
        lines.append(f"        if p >= 0: T[{k}] += 1")
        lines.append(f"        P[{k}] = x")
    for j, flop in enumerate(flops):
        lines.append(f"    d{j} = V[{flop.inputs[0]}]")
    reset_flops = [j for j, f in enumerate(flops) if f.cell == "DFFNRX1"]
    if reset_flops:
        lines.append("    if resetting:")
        for j in reset_flops:
            lines.append(f"        d{j} = 0")
    for j, flop in enumerate(flops):
        k = position[flop.output]
        lines.append(f"    if V[{flop.output}] != d{j}:")
        lines.append(f"        T[{k}] += 1")
        lines.append(f"        V[{flop.output}] = d{j}")
    lines.append("    return")

    # -- tick_lanes(V, M) --------------------------------------------------
    # Per-lane asynchronous reset: a DFFNRX1 lane captures its D bit
    # ANDed with the (active-low) reset lane bit.
    reset_net = netlist.reset_n
    lines.append("def tick_lanes(V, M):")
    for j, flop in enumerate(flops):
        if flop.cell == "DFFNRX1" and reset_net is not None:
            lines.append(f"    d{j} = V[{flop.inputs[0]}] & V[{reset_net}]")
        else:
            lines.append(f"    d{j} = V[{flop.inputs[0]}]")
    for j, flop in enumerate(flops):
        lines.append(f"    V[{flop.output}] = d{j}")
    lines.append("    return")

    return "\n".join(lines)


def make_capture(netlist: Netlist, nets: Sequence[int]) -> Callable[[list], tuple]:
    """Generate a straight-line probe-capture function for ``nets``.

    Returns a compiled ``capture(V) -> tuple`` that reads the listed
    nets (in order) out of the flat value table -- the compiled
    backend's analogue of the interpreted simulator's per-net reads,
    used by :class:`repro.netlist.probe.WaveProbe` so waveform capture
    pays no per-net Python indexing loop.  Values are returned exactly
    as stored, so interpreted and compiled captures are bit-identical.
    """
    for net in nets:
        if not 0 <= net < netlist.net_count:
            raise SimulationError(f"cannot capture unknown net {net}")
    body = ", ".join(f"V[{net}]" for net in nets)
    source = f"def capture(V):\n    return ({body}{',' if nets else ''})"
    namespace: dict = {}
    exec(compile(source, f"<capture:{netlist.name}>", "exec"), namespace)
    return namespace["capture"]


def _bind(code, source: str) -> CompiledNetlist:
    """Exec a generated module code object into a :class:`CompiledNetlist`."""
    namespace: dict = {}
    exec(code, namespace)
    return CompiledNetlist(
        settle=namespace["settle"],
        settle_forced=namespace["settle_forced"],
        tick=namespace["tick"],
        tick_lanes=namespace["tick_lanes"],
        source=source,
        code=code,
    )


def _artifact_key(netlist: Netlist) -> str:
    """Disk-cache key: structure + the compiler/levelizer source digest."""
    return structural_hash(netlist) + source_digest(
        "repro.netlist.compile", "repro.netlist.sta"
    )


def _from_artifact(netlist: Netlist, key: str) -> CompiledNetlist | None:
    """Rebuild compiled code from a cached artifact, or None on miss.

    The artifact carries the generated source plus the marshaled
    module code object tagged with the bytecode magic that produced
    it: a same-interpreter hit skips parsing entirely (``marshal``
    load), a cross-version hit recompiles the cached source -- both
    skip codegen.
    """
    payload = load_artifact(_ARTIFACT_KIND, key)
    if not isinstance(payload, dict) or "source" not in payload:
        return None
    try:
        if payload.get("magic") == importlib.util.MAGIC_NUMBER:
            code = marshal.loads(payload["code"])
        else:
            code = compile(
                payload["source"], f"<compiled:{netlist.name}>", "exec"
            )
        return _bind(code, payload["source"])
    except (ValueError, TypeError, SyntaxError, KeyError, EOFError):
        return None  # treat any decode failure as a plain miss


def compiled_netlist(netlist: Netlist) -> CompiledNetlist:
    """Compiled code for ``netlist``, generated once and cached on it.

    Three cache tiers, cheapest first: the attribute on the netlist
    object (one process, one netlist), then the on-disk artifact cache
    (:mod:`repro.exec.cache` -- fresh processes and parallel workers
    skip codegen for structures any prior run compiled), then real
    compilation, whose result is published back to disk.
    """
    cached = getattr(netlist, "_compiled_sim", None)
    if cached is not None:
        _CACHE_HITS.inc()
        return cached
    _CACHE_MISSES.inc()
    key = _artifact_key(netlist)
    cached = _from_artifact(netlist, key)
    if cached is not None:
        _DISK_HITS.inc()
    else:
        with _obs_span("compile", design=netlist.name):
            cached = compile_netlist(netlist)
        store_artifact(
            _ARTIFACT_KIND,
            key,
            {
                "magic": importlib.util.MAGIC_NUMBER,
                "code": marshal.dumps(cached.code),
                "source": cached.source,
            },
        )
    netlist._compiled_sim = cached
    return cached


class BitParallelSimulator:
    """Bit-parallel gate-level simulation: N stimulus sets per pass.

    Each net's value is a Python bigint whose bit ``l`` is the net's
    logic value in *lane* ``l``; one compiled settle therefore
    evaluates ``lanes`` independent simulations at once.  Lanes may
    carry different primary-input stimulus and (optionally) different
    stuck-at faults, which is how fault campaigns batch dozens of
    faulty machines into one run.

    Toggle counts are not maintained (see module docstring); use the
    scalar compiled backend when measured-activity power is needed.

    Args:
        netlist: A validated, technology-mapped netlist.
        lanes: Number of parallel simulations (bigint width).
        faults: Optional per-lane stuck-at faults -- a sequence of
            ``lanes`` entries, each a
            :class:`~repro.netlist.faults.StuckAtFault` or ``None``
            for a healthy lane.  Ignored when ``plan`` is given.
        plan: Full :class:`~repro.netlist.lanes.LanePlan` (lanes +
            faults + memories); the same plan drives the numpy
            bit-slice backend, keeping the two bit-exact by
            construction.
    """

    def __init__(
        self,
        netlist: Netlist,
        lanes: int | None = None,
        faults: Sequence | None = None,
        plan: LanePlan | None = None,
    ) -> None:
        if plan is None:
            if faults is not None:
                plan = LanePlan.for_faults(faults)
                if lanes is not None and lanes != plan.lanes:
                    raise SimulationError(
                        f"{len(plan.faults)} faults for {lanes} lanes"
                    )
            else:
                plan = LanePlan(lanes if lanes is not None else 1)
        self.netlist = netlist
        self.plan = plan
        self.lanes = plan.lanes
        self.mask = (1 << plan.lanes) - 1
        self._compiled = compiled_netlist(netlist)
        self._values = [0] * netlist.net_count
        self._values[CONST1] = self.mask
        self.cycles = 0

        self._fault_nets: list[int] = []
        self._force_and: list[int] | None = None
        self._force_or: list[int] | None = None
        forced = plan.forced_bits(netlist)
        if forced:
            force_and = [self.mask] * netlist.net_count
            force_or = [0] * netlist.net_count
            for net, sites in forced.items():
                for lane, stuck_value in sites:
                    force_and[net] &= ~(1 << lane)
                    force_or[net] |= stuck_value << lane
                self._fault_nets.append(net)
            self._force_and = force_and
            self._force_or = force_or

    # -- I/O -------------------------------------------------------------

    def set_input(self, name: str, values) -> None:
        """Drive input ``name``: one int broadcast, or one per lane."""
        bus = self.netlist.inputs.get(name)
        if bus is None:
            raise SimulationError(f"no input bus named {name!r}")
        if isinstance(values, int):
            values = [values] * self.lanes
        if len(values) != self.lanes:
            raise SimulationError(
                f"{len(values)} values for {self.lanes} lanes on {name!r}"
            )
        limit = 1 << len(bus)
        for value in values:
            if value < 0 or value >= limit:
                raise SimulationError(
                    f"value {value} does not fit input {name!r} ({len(bus)} bits)"
                )
        for i, net in enumerate(bus):
            word = 0
            for lane, value in enumerate(values):
                word |= ((value >> i) & 1) << lane
            self._values[net] = word

    def read_output(self, name: str) -> list[int]:
        """Read output bus ``name``: one integer per lane."""
        bus = self.netlist.outputs.get(name)
        if bus is None:
            raise SimulationError(f"no output bus named {name!r}")
        return self.read_nets(bus.nets)

    def read_nets(self, nets: Sequence[int]) -> list[int]:
        """Read an arbitrary LSB-first net collection, one int per lane."""
        out = [0] * self.lanes
        for i, net in enumerate(nets):
            word = self._values[net]
            if word:
                for lane in range(self.lanes):
                    out[lane] |= ((word >> lane) & 1) << i
        return out

    # -- phases ------------------------------------------------------------

    def settle(self) -> None:
        """Propagate all lanes through the combinational logic."""
        if self._force_and is not None:
            self._compiled.settle_forced(
                self._values, self.mask, self._force_and, self._force_or
            )
        else:
            self._compiled.settle(self._values, self.mask)

    def tick(self) -> None:
        """Advance one clock edge in every lane (per-lane async reset)."""
        self._compiled.tick_lanes(self._values, self.mask)
        if self._force_and is not None:
            values = self._values
            for net in self._fault_nets:
                values[net] = (values[net] & self._force_and[net]) | self._force_or[net]
        self.cycles += 1
        if _OBS.enabled:
            _LANE_TICKS.value += 1
            _LANE_CYCLES.value += self.lanes

    def reset(self) -> None:
        """Apply one asynchronous reset pulse to all lanes."""
        if self.netlist.reset_n is None:
            raise SimulationError("netlist has no reset input")
        self.set_input("rst_n", 0)
        self.settle()
        self.tick()
        self.set_input("rst_n", 1)
        self.settle()

    # -- instrumentation ---------------------------------------------------

    def toggle_counts(self):
        """Lane runs keep no toggle state -- raise instead of lying."""
        raise UnsupportedInLaneMode("toggle_counts", "BitParallelSimulator")
