"""Design-under-test introspection: net probing and energy attribution.

The gate-level simulators verify generated cores but historically kept
their internals opaque -- one scalar toggle total, no waveforms, no
idea which part of the design burns the energy.  This module opens the
box:

* **probe selection** (:func:`resolve_probes`) -- pick nets by explicit
  name, regex, or architectural group (``pc``, ``flags``, ``bars``,
  ``bus``), assembled into named, LSB-first :class:`ProbeSignal` buses
  with hierarchical scopes derived from the net-name prefixes the core
  generator assigns (``flag_Z`` scopes under ``flags``, ``bar1`` under
  ``bars``, pipeline registers under their stage);
* **waveform capture** (:class:`WaveProbe`) -- samples probed nets
  every clock and feeds a :class:`repro.obs.wave.VcdWriter`; on the
  compiled backend the sampler is a generated straight-line capture
  function (:func:`repro.netlist.compile.make_capture`), bit-exact
  with the interpreted path;
* **module attribution** (:func:`module_map`) -- a per-instance module
  label derived from net names, letting
  :func:`repro.netlist.power.attributed_power_report` split measured
  energy per module the way the paper's Table 4 splits core power;
* **per-instruction energy** (:class:`InstructionEnergyProfiler`) --
  correlates the fetched PC with per-cycle toggle deltas, producing
  energy-per-instruction and cycles-per-PC histograms.

Probes attach to a :class:`~repro.netlist.sim.CycleSimulator` via
``attach_probe``; with no probes attached the simulator's only cost is
one empty-list truth test per tick (covered by the <2% overhead budget
in ``benchmarks/bench_sim_backends.py``).
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import SimulationError
from repro.netlist.core import CONST0, CONST1, Netlist, SEQUENTIAL_CELLS
from repro.netlist.sta import _topological_order

#: Architectural probe groups understood by :func:`resolve_probes`.
ARCH_GROUPS = ("pc", "flags", "bars", "bus")

#: Pipeline-register name suffixes that define waveform sub-scopes.
_STAGE_SUFFIXES = ("if", "ex")

#: Module label for instances whose fanout reaches no named net.
UNATTRIBUTED = "(unattributed)"

_BAR_NAME = re.compile(r"bar\d+$")


@dataclass(frozen=True)
class ProbeSignal:
    """One probed signal: a named, LSB-first group of nets.

    Attributes:
        name: Signal name as it appears in the waveform.
        nets: Net ids, least-significant bit first.
        scope: Hierarchical scope path (may be empty = top level).
    """

    name: str
    nets: tuple[int, ...]
    scope: tuple[str, ...] = ()

    @property
    def width(self) -> int:
        return len(self.nets)


def _scope_of(name: str) -> tuple[str, ...]:
    """Waveform scope derived from a net-name prefix.

    The core generator's naming conventions carry the hierarchy:
    ``flag_*`` nets are the flag register, ``bar<N>`` the BAR file,
    and ``*_if`` / ``*_ex`` the pipeline-stage registers.
    """
    if name.startswith("flag_"):
        return ("flags",)
    if _BAR_NAME.match(name):
        return ("bars",)
    stem, _, suffix = name.rpartition("_")
    if stem and suffix in _STAGE_SUFFIXES:
        return (suffix,)
    return ()


def named_buses(netlist: Netlist) -> dict[str, tuple[int, ...]]:
    """Assemble the netlist's named nets into LSB-first buses.

    Net names of the form ``prefix[i]`` group into a bus ``prefix``;
    primary input/output buses are included under their port names
    (port definitions win on name collisions, e.g. the ``pc`` output
    bus aliasing the ``pc`` flop nets).  Constants and ambiguous
    scalar names (two distinct nets sharing one unindexed name) are
    skipped.
    """
    indexed: dict[str, dict[int, int]] = {}
    scalars: dict[str, int | None] = {}  # None marks an ambiguous name
    for net, name in netlist.named_nets().items():
        if net in (CONST0, CONST1):
            continue
        prefix, bracket, rest = name.partition("[")
        if bracket and rest.endswith("]") and rest[:-1].isdigit():
            indexed.setdefault(prefix, {})[int(rest[:-1])] = net
        elif name in scalars:
            scalars[name] = None
        else:
            scalars[name] = net
    buses: dict[str, tuple[int, ...]] = {}
    for prefix, bits in indexed.items():
        if sorted(bits) == list(range(len(bits))):
            buses[prefix] = tuple(bits[i] for i in range(len(bits)))
    for name, net in scalars.items():
        if net is not None and name not in buses:
            buses[name] = (net,)
    for port in (*netlist.inputs.values(), *netlist.outputs.values()):
        buses[port.name] = tuple(port.nets)
    return buses


def resolve_probes(
    netlist: Netlist,
    names: Iterable[str] = (),
    regex: str | None = None,
    groups: Iterable[str] = (),
) -> list[ProbeSignal]:
    """Select signals to probe; see module docstring for the three modes.

    Args:
        netlist: The design under test.
        names: Exact bus names (``"pc"``) or single bits (``"pc[3]"``).
        regex: Pattern matched (``re.fullmatch``) against bus names.
        groups: Architectural groups from :data:`ARCH_GROUPS`.

    Returns:
        Deduplicated :class:`ProbeSignal` list in selection order
        (groups, then names, then regex matches sorted by name).

    Raises:
        SimulationError: On unknown groups, names, or empty regex hits.
    """
    buses = named_buses(netlist)
    picked: dict[str, ProbeSignal] = {}

    def add(name: str, nets: Sequence[int]) -> None:
        if name not in picked:
            picked[name] = ProbeSignal(name, tuple(nets), _scope_of(name))

    for group in groups:
        if group == "pc":
            if "pc" not in buses:
                raise SimulationError("netlist has no pc nets to probe")
            add("pc", buses["pc"])
        elif group == "flags":
            for name in sorted(buses):
                if name.startswith("flag_"):
                    add(name, buses[name])
        elif group == "bars":
            for name in sorted(buses):
                if _BAR_NAME.match(name):
                    add(name, buses[name])
        elif group == "bus":
            for port in (*netlist.inputs.values(), *netlist.outputs.values()):
                add(port.name, tuple(port.nets))
        else:
            raise SimulationError(
                f"unknown probe group {group!r} (expected one of {ARCH_GROUPS})"
            )
    for name in names:
        prefix, bracket, rest = name.partition("[")
        if bracket and rest.endswith("]") and rest[:-1].isdigit():
            bus = buses.get(prefix)
            bit = int(rest[:-1])
            if bus is None or bit >= len(bus):
                raise SimulationError(f"no net named {name!r}")
            add(name, (bus[bit],))
        elif name in buses:
            add(name, buses[name])
        else:
            raise SimulationError(f"no bus named {name!r}")
    if regex is not None:
        pattern = re.compile(regex)
        matches = [name for name in sorted(buses) if pattern.fullmatch(name)]
        if not matches:
            raise SimulationError(f"probe regex {regex!r} matches no bus")
        for name in matches:
            add(name, buses[name])
    return list(picked.values())


def module_map(netlist: Netlist) -> list[str]:
    """Per-instance module label, aligned with ``netlist.instances``.

    An instance driving a named net belongs to that name's prefix
    (``pc[3]`` -> ``pc``); unnamed combinational instances inherit the
    label of their fanout, resolved in reverse levelized order so
    every cone collapses onto the architectural register or output
    port it feeds.  Fan-out into several modules is broken
    deterministically (lexicographically smallest label); logic whose
    fanout reaches no named net is labelled :data:`UNATTRIBUTED`.
    """
    names = netlist.named_nets()
    labels: dict[int, str] = {}  # net id -> module label
    for bus in netlist.outputs.values():
        for net in bus:
            labels.setdefault(net, bus.name)
    for net, name in names.items():
        if net in (CONST0, CONST1):
            continue
        labels[net] = name.partition("[")[0]

    consumers: dict[int, list[int]] = {}
    for index, instance in enumerate(netlist.instances):
        for net in instance.inputs:
            consumers.setdefault(net, []).append(index)

    result = [""] * len(netlist.instances)
    position = {inst.output: n for n, inst in enumerate(netlist.instances)}
    order = _topological_order(netlist)
    sequential = [
        (index, inst)
        for index, inst in enumerate(netlist.instances)
        if inst.cell in SEQUENTIAL_CELLS
    ]
    for index, inst in sequential:
        result[index] = labels.get(inst.output, UNATTRIBUTED)
        labels[inst.output] = result[index]
    for inst in reversed(order):
        index = position[inst.output]
        label = labels.get(inst.output)
        if label is None:
            candidates = [
                result[c] for c in consumers.get(inst.output, ()) if result[c]
            ]
            label = min(candidates) if candidates else UNATTRIBUTED
            labels[inst.output] = label
        result[index] = label
    return result


class Probe:
    """Base class for simulator probes (no-op hooks).

    A probe attached to a :class:`~repro.netlist.sim.CycleSimulator`
    receives :meth:`sample` at the *start* of every ``tick`` -- when
    the value table holds the fully settled state of the ending cycle,
    before flops capture -- and :meth:`after_tick` once the clock edge
    (including toggle accounting) has been applied.
    """

    def bind(self, sim) -> None:
        """Called by ``attach_probe``; override to specialize per backend."""

    def sample(self, cycle: int, values: list) -> None:
        """Settled pre-edge state of cycle ``cycle``."""

    def after_tick(self, cycle: int, values: list, toggles: list) -> None:
        """Post-edge state; ``toggles`` includes cycle ``cycle``."""


class WaveProbe(Probe):
    """Samples probed signals each cycle into a VCD waveform.

    Args:
        netlist: The design under test.
        signals: What to record (see :func:`resolve_probes`).
        writer: Optional pre-configured
            :class:`~repro.obs.wave.VcdWriter`; one named after the
            design is created by default.

    When bound to a compiled-backend simulator the per-cycle sampler
    is straight-line generated code
    (:func:`repro.netlist.compile.make_capture`); the interpreted
    fallback reads the value table directly.  Both paths are bit-exact
    (asserted in the test suite).
    """

    def __init__(
        self,
        netlist: Netlist,
        signals: Sequence[ProbeSignal],
        writer=None,
    ) -> None:
        from repro.obs.wave import VcdWriter

        if not signals:
            raise SimulationError("WaveProbe needs at least one signal")
        self.netlist = netlist
        self.signals = list(signals)
        self.writer = writer if writer is not None else VcdWriter(netlist.name)
        self._vars = [
            self.writer.declare(sig.name, sig.width, sig.scope)
            for sig in self.signals
        ]
        self._flat = [net for sig in self.signals for net in sig.nets]
        slices = []
        start = 0
        for sig in self.signals:
            slices.append((start, sig.width))
            start += sig.width
        self._slices = slices
        self._capture: Callable[[list], tuple] = self._interpreted_capture
        self.samples = 0

    def _interpreted_capture(self, values: list) -> tuple:
        return tuple(values[net] for net in self._flat)

    def bind(self, sim) -> None:
        """Use a generated capture function on the compiled backend."""
        if getattr(sim, "backend", "interpreted") == "compiled":
            from repro.netlist.compile import make_capture

            self._capture = make_capture(self.netlist, self._flat)

    def sample(self, cycle: int, values: list) -> None:
        bits = self._capture(values)
        sampled: dict = {}
        for var, (start, width) in zip(self._vars, self._slices):
            value = 0
            for i in range(width):
                value |= bits[start + i] << i
            sampled[var] = value
        if self.samples == 0:
            self.writer.start(sampled, time=cycle)
        else:
            self.writer.sample(cycle, sampled)
        self.samples += 1

    def render(self) -> str:
        """The VCD text collected so far."""
        return self.writer.render()

    def write(self, path):
        """Write the VCD to ``path``; returns the path."""
        return self.writer.write(path)


class InstructionEnergyProfiler(Probe):
    """Correlates fetched PCs with per-cycle switching energy.

    Every cycle, the PC sampled from the settled pre-edge state names
    the instruction occupying the fetch slot; the toggle delta the
    clock edge adds -- weighted by each instance's characterized
    per-switch energy -- is charged to that PC.  The result is an
    energy-per-instruction histogram plus a cycles-per-PC count, with
    the PC stream mirrored into a :class:`repro.sim.trace.FetchTrace`
    so its windowing (``maxlen`` / ``dropped``) and hotspot helpers
    (``top_n``) apply unchanged.

    Args:
        netlist: The design under test.
        library: Technology supplying per-cell switch energies.
        pc_nets: The PC nets, LSB-first (resolve via
            :func:`resolve_probes` or the netlist's ``pc`` output bus).
        trace: Optional :class:`~repro.sim.trace.FetchTrace` to record
            into (bounded traces profile long runs in O(maxlen) memory;
            the energy histograms always cover every cycle).
    """

    def __init__(
        self,
        netlist: Netlist,
        library,
        pc_nets: Sequence[int],
        trace=None,
    ) -> None:
        from repro.sim.trace import FetchTrace

        if not pc_nets:
            raise SimulationError("profiler needs at least one pc net")
        self.netlist = netlist
        self._pc_nets = tuple(pc_nets)
        self._weights = [
            library.cell(instance.cell).energy for instance in netlist.instances
        ]
        self.trace = trace if trace is not None else FetchTrace()
        self.energy_by_pc: dict[int, float] = {}
        self.cycles_by_pc: Counter = Counter()
        self.total_energy = 0.0
        self._prev: list[int] | None = None
        self._pc: int | None = None

    def sample(self, cycle: int, values: list) -> None:
        pc = 0
        for i, net in enumerate(self._pc_nets):
            pc |= values[net] << i
        self._pc = pc
        self.trace.record(pc)
        self.cycles_by_pc[pc] += 1

    def after_tick(self, cycle: int, values: list, toggles: list) -> None:
        if self._prev is None:
            # First profiled edge: charge everything since reset to it.
            self._prev = [0] * len(toggles)
        prev = self._prev
        weights = self._weights
        energy = 0.0
        for index, count in enumerate(toggles):
            delta = count - prev[index]
            if delta:
                energy += delta * weights[index]
                prev[index] = count
        self.energy_by_pc[self._pc] = (
            self.energy_by_pc.get(self._pc, 0.0) + energy
        )
        self.total_energy += energy

    def energy_ranking(self, top: int | None = None) -> list[tuple[int, float]]:
        """``(pc, energy)`` pairs, most energy-hungry first."""
        ranked = sorted(
            self.energy_by_pc.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:top] if top is not None else ranked
