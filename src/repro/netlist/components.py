"""Reusable datapath component generators.

Each function takes a :class:`~repro.netlist.core.Netlist` under
construction plus input buses/nets and appends mapped gates, returning
output buses/nets.  These are the building blocks the TP-ISA core
generator composes; they are also unit-tested exhaustively against
integer semantics.

Arithmetic uses NAND-mapped ripple-carry full adders -- the lowest
worst-case-delay carry chain available in the 2-input printed library
(each carry step is two NAND2 levels).  The paper's cores are tiny
(hundreds of gates), so no carry-lookahead is warranted and none was
used there either.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MappingError
from repro.netlist.core import Bus, CONST0, CONST1, Netlist


def full_adder(netlist: Netlist, a: int, b: int, cin: int) -> tuple[int, int]:
    """One-bit full adder; returns ``(sum, carry_out)``.

    The carry is mapped as ``NAND(NAND(a, b), NAND(cin, a XOR b))`` so
    the per-bit carry path is two NAND2 delays.
    """
    axb = netlist.xor_(a, b)
    total = netlist.xor_(axb, cin)
    carry = netlist.nand(netlist.nand(a, b), netlist.nand(cin, axb))
    return total, carry


def ripple_adder(
    netlist: Netlist, a: Sequence[int], b: Sequence[int], cin: int = CONST0
) -> tuple[Bus, int]:
    """Ripple-carry adder; returns ``(sum_bus, carry_out)``.

    Args:
        a: LSB-first addend nets.
        b: LSB-first addend nets (must match ``a`` in width).
        cin: Carry-in net (defaults to constant 0).
    """
    if len(a) != len(b):
        raise MappingError(f"adder width mismatch: {len(a)} vs {len(b)}")
    total_bits = []
    carry = cin
    for bit_a, bit_b in zip(a, b):
        total, carry = full_adder(netlist, bit_a, bit_b, carry)
        total_bits.append(total)
    return Bus("sum", total_bits), carry


def add_subtract(
    netlist: Netlist,
    a: Sequence[int],
    b: Sequence[int],
    subtract: int,
    carry_in: int = CONST0,
    use_carry_in: int = CONST0,
) -> tuple[Bus, int, int]:
    """Combined adder/subtractor with optional external carry chain.

    Computes ``a + (b XOR subtract) + cin_effective`` where the
    effective carry-in is ``subtract`` for plain SUB/ADD (two's
    complement) or the architectural carry flag when ``use_carry_in``
    is asserted (ADC/SBB -- the paper's data-coalescing instructions).

    Returns:
        ``(sum_bus, carry_out, overflow)`` where overflow is the signed
        overflow flag (carry into MSB XOR carry out of MSB).
    """
    if len(a) != len(b):
        raise MappingError(f"addsub width mismatch: {len(a)} vs {len(b)}")
    b_eff = [netlist.xor_(bit, subtract) for bit in b]
    cin = netlist.mux(use_carry_in, subtract, carry_in)
    total_bits = []
    carry = cin
    carry_into_msb = cin
    for bit_a, bit_b in zip(a, b_eff):
        carry_into_msb = carry
        total, carry = full_adder(netlist, bit_a, bit_b, carry)
        total_bits.append(total)
    overflow = netlist.xor_(carry_into_msb, carry)
    return Bus("sum", total_bits), carry, overflow


def incrementer(netlist: Netlist, a: Sequence[int]) -> Bus:
    """``a + 1`` using half adders (cheap program-counter update)."""
    out_bits = []
    carry = CONST1
    for bit in a:
        out_bits.append(netlist.xor_(bit, carry))
        carry = netlist.and_(bit, carry)
    return Bus("inc", out_bits)


def mux_bus(netlist: Netlist, select: int, when0: Sequence[int], when1: Sequence[int]) -> Bus:
    """Bitwise 2:1 mux over two equal-width buses."""
    if len(when0) != len(when1):
        raise MappingError(f"mux width mismatch: {len(when0)} vs {len(when1)}")
    return Bus("mux", [netlist.mux(select, w0, w1) for w0, w1 in zip(when0, when1)])


def mux_tree(netlist: Netlist, select: Sequence[int], choices: Sequence[Sequence[int]]) -> Bus:
    """N:1 bus multiplexer from a binary select bus.

    Args:
        select: LSB-first select nets; ``len(choices)`` must not exceed
            ``2 ** len(select)``.  Missing choices read as zero.
        choices: Equal-width buses, indexed by the select value.
    """
    if not choices:
        raise MappingError("mux_tree needs at least one choice")
    width = len(choices[0])
    for choice in choices:
        if len(choice) != width:
            raise MappingError("mux_tree choices differ in width")
    if len(choices) > (1 << len(select)):
        raise MappingError("mux_tree select bus too narrow")
    level: list[Sequence[int]] = list(choices)
    for bit in select:
        next_level = []
        for i in range(0, len(level), 2):
            if i + 1 < len(level):
                next_level.append(mux_bus(netlist, bit, level[i], level[i + 1]).nets)
            else:
                # Odd leftover: selecting the absent partner yields 0.
                masked = [netlist.and_(netlist.not_(bit), n) for n in level[i]]
                next_level.append(masked)
        level = next_level
        if len(level) == 1:
            break
    return Bus("muxtree", list(level[0]))


def decoder(netlist: Netlist, select: Sequence[int], count: int | None = None) -> Bus:
    """Binary-to-one-hot decoder.

    Args:
        select: LSB-first select nets.
        count: Number of one-hot outputs (default: full ``2**n``).
    """
    total = 1 << len(select)
    if count is None:
        count = total
    if count > total:
        raise MappingError(f"decoder cannot produce {count} outputs from {len(select)} bits")
    inverted = [netlist.not_(bit) for bit in select]
    outputs = []
    for value in range(count):
        terms = [
            select[i] if (value >> i) & 1 else inverted[i]
            for i in range(len(select))
        ]
        outputs.append(netlist.and_many(terms))
    return Bus("onehot", outputs)


def is_zero(netlist: Netlist, bits: Sequence[int]) -> int:
    """1 when every bit of the bus is 0 (Z-flag reduction)."""
    return netlist.not_(netlist.or_many(list(bits)))


def equals_const(netlist: Netlist, bits: Sequence[int], value: int) -> int:
    """1 when the bus equals the compile-time constant ``value``."""
    terms = [
        bit if (value >> i) & 1 else netlist.not_(bit)
        for i, bit in enumerate(bits)
    ]
    return netlist.and_many(terms)


def rotate_left(bits: Sequence[int]) -> list[int]:
    """Rotate a bus left by one (pure rewiring, zero gates)."""
    bits = list(bits)
    return [bits[-1]] + bits[:-1]


def rotate_right(bits: Sequence[int]) -> list[int]:
    """Rotate a bus right by one (pure rewiring, zero gates)."""
    bits = list(bits)
    return bits[1:] + [bits[0]]


def bitwise(netlist: Netlist, op: str, a: Sequence[int], b: Sequence[int]) -> Bus:
    """Bitwise AND/OR/XOR over two buses."""
    operations = {"and": netlist.and_, "or": netlist.or_, "xor": netlist.xor_}
    if op not in operations:
        raise MappingError(f"unknown bitwise op {op!r}")
    if len(a) != len(b):
        raise MappingError(f"bitwise width mismatch: {len(a)} vs {len(b)}")
    return Bus(op, [operations[op](x, y) for x, y in zip(a, b)])


def zero_extend(bits: Sequence[int], width: int) -> list[int]:
    """Pad a bus with constant zeros up to ``width`` (pure wiring)."""
    bits = list(bits)
    if len(bits) > width:
        raise MappingError(f"cannot zero-extend {len(bits)} bits into {width}")
    return bits + [CONST0] * (width - len(bits))
