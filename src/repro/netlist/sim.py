"""Cycle-accurate gate-level simulation of mapped netlists.

The simulator evaluates the combinational network in levelized order
and clocks all flip-flops simultaneously on :meth:`CycleSimulator.tick`.
It exists to *verify* generated cores: the TP-ISA core netlists are run
instruction-by-instruction against external memory models and their
architectural state compared with the instruction-set simulator.

Two backends share identical semantics (see ``docs/MODELS.md``):

* ``"interpreted"`` (default) walks the levelized instance list,
  calling each cell's truth function -- simple and easy to instrument;
* ``"compiled"`` executes straight-line Python generated from the
  netlist by :mod:`repro.netlist.compile`, removing the per-gate
  dispatch overhead (roughly an order of magnitude faster).

External memories (the paper's crosspoint ROM and SRAM) are modelled
outside the netlist: the harness reads address/control output buses
after a combinational settle, supplies read data on input buses, and
re-settles.  Because read data never feeds back into address logic in
the TP-ISA cores, two settles per cycle reach a fixed point (the
simulator checks this).

Per-instance output toggle counts are recorded for measured-activity
power analysis; both backends account toggles identically.  Probes
(:mod:`repro.netlist.probe`) attach via :meth:`CycleSimulator.
attach_probe` for waveform capture and per-instruction energy
profiling; with none attached the hook costs one branch per tick.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.errors import SimulationError
from repro.netlist.core import (
    CELL_FUNCTIONS,
    CONST1,
    Netlist,
    SEQUENTIAL_CELLS,
)
from repro.netlist.sta import _topological_order
from repro.obs.metrics import counter as _obs_counter
from repro.obs.metrics import histogram as _obs_histogram
from repro.obs.runtime import STATE as _OBS

#: Supported simulation backends.
BACKENDS = ("interpreted", "compiled")

# Scalar-simulation telemetry; bound once so the per-tick cost while
# disabled is one attribute load and a branch (<2% budget, asserted by
# benchmarks/bench_sim_backends.py).
_CYCLES = _obs_counter("sim.cycles_simulated")
_TOGGLE_READOUTS = _obs_histogram("sim.toggles_per_readout")


class CycleSimulator:
    """Two-phase (settle / tick) simulator for one netlist.

    Args:
        netlist: A validated, technology-mapped netlist.  Latches are
            not supported (the generated cores are edge-triggered only).
        backend: ``"interpreted"`` (default) or ``"compiled"``; both
            are bit-exact including toggle accounting.
    """

    def __init__(self, netlist: Netlist, backend: str = "interpreted") -> None:
        if backend not in BACKENDS:
            raise SimulationError(f"unknown simulation backend {backend!r}")
        netlist.validate()
        for instance in netlist.instances:
            if instance.cell == "LATCHX1":
                raise SimulationError("level-sensitive latches are not simulatable")
        self.netlist = netlist
        self.backend = backend
        self._order = _topological_order(netlist)
        self._flops = [i for i in netlist.instances if i.cell in SEQUENTIAL_CELLS]
        # Positional instance indices (toggle counters are reported per
        # index into ``netlist.instances``).
        position = {inst.output: n for n, inst in enumerate(netlist.instances)}
        self._comb_pos = [position[inst.output] for inst in self._order]
        self._flop_pos = [position[flop.output] for flop in self._flops]
        # Flat value table indexed by net id; undriven nets read as 0,
        # matching the paper cores' reset-to-zero state.
        self._values: list[int] = [0] * netlist.net_count
        self._values[CONST1] = 1
        self._toggles: list[int] = [0] * len(netlist.instances)
        self._prev_comb: list[int] = [-1] * len(netlist.instances)
        self._probes: list = []
        self.cycles = 0
        self._compiled = None
        if backend == "compiled":
            from repro.netlist.compile import compiled_netlist

            self._compiled = compiled_netlist(netlist)

    # -- I/O -------------------------------------------------------------

    def set_input(self, name: str, value: int) -> None:
        """Drive the primary input bus ``name`` with integer ``value``."""
        bus = self.netlist.inputs.get(name)
        if bus is None:
            raise SimulationError(f"no input bus named {name!r}")
        if value < 0 or value >= (1 << len(bus)):
            raise SimulationError(f"value {value} does not fit input {name!r} ({len(bus)} bits)")
        for i, net in enumerate(bus):
            self._values[net] = (value >> i) & 1

    def read_output(self, name: str) -> int:
        """Read the primary output bus ``name`` as an integer."""
        bus = self.netlist.outputs.get(name)
        if bus is None:
            raise SimulationError(f"no output bus named {name!r}")
        return self._bus_value(bus.nets)

    def read_flop_bus(self, nets: Sequence[int]) -> int:
        """Read an arbitrary collection of nets as an LSB-first integer."""
        return self._bus_value(nets)

    def _bus_value(self, nets: Sequence[int]) -> int:
        values = self._values
        value = 0
        for i, net in enumerate(nets):
            value |= values[net] << i
        return value

    # -- phases ------------------------------------------------------------

    def settle(self) -> None:
        """Propagate current inputs/state through combinational logic."""
        values = self._values
        if self._compiled is not None:
            self._compiled.settle(values, 1)
            return
        for instance in self._order:
            function = CELL_FUNCTIONS[instance.cell]
            values[instance.output] = function(*(values[n] for n in instance.inputs))

    def tick(self) -> None:
        """Advance one clock edge: capture all flip-flop D inputs.

        Asynchronous reset (active-low ``rst_n``) overrides capture for
        DFFNRX1 cells.  Combinational toggle accounting happens here:
        one count per cycle in which a cell's settled output differs
        from the previous cycle's.
        """
        if _OBS.enabled:
            _CYCLES.value += 1
        reset_net = self.netlist.reset_n
        resetting = reset_net is not None and self._values[reset_net] == 0
        values = self._values
        toggles = self._toggles
        probes = self._probes
        if probes:
            for probe in probes:
                probe.sample(self.cycles, values)
        if self._compiled is not None:
            self._compiled.tick(values, self._prev_comb, toggles, resetting)
            self.cycles += 1
            if probes:
                for probe in probes:
                    probe.after_tick(self.cycles - 1, values, toggles)
            return
        previous = self._prev_comb
        for instance, index in zip(self._order, self._comb_pos):
            value = values[instance.output]
            before = previous[index]
            if before != value:
                if before >= 0:
                    toggles[index] += 1
                previous[index] = value
        captured = [
            0 if (resetting and flop.cell == "DFFNRX1") else values[flop.inputs[0]]
            for flop in self._flops
        ]
        for flop, index, next_value in zip(self._flops, self._flop_pos, captured):
            if values[flop.output] != next_value:
                toggles[index] += 1
                values[flop.output] = next_value
        self.cycles += 1
        if probes:
            for probe in probes:
                probe.after_tick(self.cycles - 1, values, toggles)

    def reset(self) -> None:
        """Apply one asynchronous reset pulse (requires a reset input)."""
        if self.netlist.reset_n is None:
            raise SimulationError("netlist has no reset input")
        self.set_input("rst_n", 0)
        self.settle()
        self.tick()
        self.set_input("rst_n", 1)
        self.settle()

    def step_with_memory(
        self,
        provide_inputs: Callable[["CycleSimulator"], None],
    ) -> None:
        """Run one full cycle with an external-memory callback.

        The callback inspects settled outputs (addresses, write
        enables) via :meth:`read_output` and drives read-data inputs
        via :meth:`set_input`.  The simulator settles, calls the
        callback, re-settles, re-calls, and verifies the second call
        changed nothing (fixed point), then ticks the clock.
        """
        self.settle()
        provide_inputs(self)
        self.settle()
        snapshot = {
            name: self.read_output(name) for name in self.netlist.outputs
        }
        provide_inputs(self)
        self.settle()
        for name, before in snapshot.items():
            if self.read_output(name) != before:
                raise SimulationError(
                    f"memory feedback did not reach a fixed point on output {name!r}"
                )
        self.tick()

    # -- instrumentation -----------------------------------------------------

    def attach_probe(self, probe) -> None:
        """Attach a :class:`repro.netlist.probe.Probe` to this simulator.

        The probe's ``sample`` hook fires at the start of every
        :meth:`tick` (settled pre-edge state) and ``after_tick`` once
        the edge -- including toggle accounting -- has been applied.
        ``probe.bind(self)`` is called so the probe can specialize for
        the backend (the compiled backend gets generated capture
        code).  With no probes attached the per-tick cost is one
        empty-list truth test.
        """
        probe.bind(self)
        self._probes.append(probe)

    def detach_probe(self, probe) -> None:
        """Remove a previously attached probe.

        Raises:
            SimulationError: If the probe was never attached.
        """
        try:
            self._probes.remove(probe)
        except ValueError:
            raise SimulationError("probe is not attached to this simulator")

    def toggle_counts(self) -> Mapping[int, int]:
        """Output-toggle count per instance index, sparse.

        Covers *every* instance -- combinational cells (counted once
        per cycle whose settled output differs from the previous
        cycle's) and sequential cells (counted on captures that change
        Q) alike.  Instances that never toggled are absent from the
        mapping; :func:`repro.netlist.power.measured_power_report`
        reports them as ``static_only_cells`` rather than dropping
        them silently.
        """
        counts = {
            index: count for index, count in enumerate(self._toggles) if count
        }
        if _OBS.enabled:
            _TOGGLE_READOUTS.observe(sum(counts.values()))
        return counts
