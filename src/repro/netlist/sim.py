"""Cycle-accurate gate-level simulation of mapped netlists.

The simulator evaluates the combinational network in levelized order
and clocks all flip-flops simultaneously on :meth:`CycleSimulator.tick`.
It exists to *verify* generated cores: the TP-ISA core netlists are run
instruction-by-instruction against external memory models and their
architectural state compared with the instruction-set simulator.

External memories (the paper's crosspoint ROM and SRAM) are modelled
outside the netlist: the harness reads address/control output buses
after a combinational settle, supplies read data on input buses, and
re-settles.  Because read data never feeds back into address logic in
the TP-ISA cores, two settles per cycle reach a fixed point (the
simulator checks this).

Per-instance output toggle counts are recorded for measured-activity
power analysis.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.errors import SimulationError
from repro.netlist.core import (
    CELL_FUNCTIONS,
    CONST0,
    CONST1,
    Netlist,
    SEQUENTIAL_CELLS,
)
from repro.netlist.sta import _topological_order


class CycleSimulator:
    """Two-phase (settle / tick) simulator for one netlist.

    Args:
        netlist: A validated, technology-mapped netlist.  Latches are
            not supported (the generated cores are edge-triggered only).
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        for instance in netlist.instances:
            if instance.cell == "LATCHX1":
                raise SimulationError("level-sensitive latches are not simulatable")
        self.netlist = netlist
        self._order = _topological_order(netlist)
        self._values: dict[int, int] = {CONST0: 0, CONST1: 1}
        self._flops = [i for i in netlist.instances if i.cell in SEQUENTIAL_CELLS]
        self._toggles: dict[int, int] = {}
        self._prev_comb: dict[int, int] = {}
        self._instance_index = {id(inst): n for n, inst in enumerate(netlist.instances)}
        self.cycles = 0
        for bus in netlist.inputs.values():
            for net in bus:
                self._values.setdefault(net, 0)
        for flop in self._flops:
            self._values[flop.output] = 0

    # -- I/O -------------------------------------------------------------

    def set_input(self, name: str, value: int) -> None:
        """Drive the primary input bus ``name`` with integer ``value``."""
        bus = self.netlist.inputs.get(name)
        if bus is None:
            raise SimulationError(f"no input bus named {name!r}")
        if value < 0 or value >= (1 << len(bus)):
            raise SimulationError(f"value {value} does not fit input {name!r} ({len(bus)} bits)")
        for i, net in enumerate(bus):
            self._values[net] = (value >> i) & 1

    def read_output(self, name: str) -> int:
        """Read the primary output bus ``name`` as an integer."""
        bus = self.netlist.outputs.get(name)
        if bus is None:
            raise SimulationError(f"no output bus named {name!r}")
        return self._bus_value(bus.nets)

    def read_flop_bus(self, nets: Sequence[int]) -> int:
        """Read an arbitrary collection of nets as an LSB-first integer."""
        return self._bus_value(nets)

    def _bus_value(self, nets: Sequence[int]) -> int:
        value = 0
        for i, net in enumerate(nets):
            value |= self._values.get(net, 0) << i
        return value

    # -- phases ------------------------------------------------------------

    def settle(self) -> None:
        """Propagate current inputs/state through combinational logic."""
        values = self._values
        for instance in self._order:
            function = CELL_FUNCTIONS[instance.cell]
            values[instance.output] = function(*(values[n] for n in instance.inputs))

    def tick(self) -> None:
        """Advance one clock edge: capture all flip-flop D inputs.

        Asynchronous reset (active-low ``rst_n``) overrides capture for
        DFFNRX1 cells.
        """
        reset_net = self.netlist.reset_n
        resetting = reset_net is not None and self._values.get(reset_net, 1) == 0
        # Combinational toggle accounting: one count per cycle in which
        # a cell's settled output differs from the previous cycle's.
        for instance in self._order:
            value = self._values[instance.output]
            index = self._instance_index[id(instance)]
            previous = self._prev_comb.get(index)
            if previous is not None and previous != value:
                self._toggles[index] = self._toggles.get(index, 0) + 1
            self._prev_comb[index] = value
        captured: list[tuple[int, int]] = []
        for flop in self._flops:
            if flop.cell == "DFFNRX1" and resetting:
                next_value = 0
            else:
                next_value = self._values[flop.inputs[0]]
            captured.append((flop.output, next_value))
        for (net, next_value), flop in zip(captured, self._flops):
            if self._values[net] != next_value:
                index = self._instance_index[id(flop)]
                self._toggles[index] = self._toggles.get(index, 0) + 1
            self._values[net] = next_value
        self.cycles += 1

    def reset(self) -> None:
        """Apply one asynchronous reset pulse (requires a reset input)."""
        if self.netlist.reset_n is None:
            raise SimulationError("netlist has no reset input")
        self.set_input("rst_n", 0)
        self.settle()
        self.tick()
        self.set_input("rst_n", 1)
        self.settle()

    def step_with_memory(
        self,
        provide_inputs: Callable[["CycleSimulator"], None],
    ) -> None:
        """Run one full cycle with an external-memory callback.

        The callback inspects settled outputs (addresses, write
        enables) via :meth:`read_output` and drives read-data inputs
        via :meth:`set_input`.  The simulator settles, calls the
        callback, re-settles, re-calls, and verifies the second call
        changed nothing (fixed point), then ticks the clock.
        """
        self.settle()
        provide_inputs(self)
        self.settle()
        snapshot = {
            name: self.read_output(name) for name in self.netlist.outputs
        }
        provide_inputs(self)
        self.settle()
        for name, before in snapshot.items():
            if self.read_output(name) != before:
                raise SimulationError(
                    f"memory feedback did not reach a fixed point on output {name!r}"
                )
        self.tick()

    # -- instrumentation -----------------------------------------------------

    def toggle_counts(self) -> Mapping[int, int]:
        """Output-toggle count per instance index (sequential cells)."""
        return dict(self._toggles)
