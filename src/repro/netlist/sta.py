"""Static timing analysis over mapped netlists.

Computes per-net arrival times by levelized traversal and reports the
critical path and the resulting maximum clock frequency, mirroring what
the paper reads out of Design Compiler for each core.

Printed transistor-resistor logic is extremely asymmetric -- the
resistive pull-up makes rising edges ~7x slower than falling edges --
so a correct STA must track *polarity*: an inverting gate's slow rising
output is caused by its input's falling transition and vice versa.
Arrival times are therefore propagated as (rise, fall) pairs:

* inverting cells (INV/NAND/NOR): ``rise(out) = max fall(in) + t_rise``
  and ``fall(out) = max rise(in) + t_fall``;
* non-inverting cells (AND/OR/TSBUF): same-polarity propagation;
* non-monotone cells (XOR/XNOR): either input transition can cause
  either output transition -- worst of both;
* sequential outputs launch at their clock-to-Q rise/fall delays.

A path endpoint's arrival is the max of its rise and fall times.  The
clock period is the worst endpoint arrival; ``fmax = 1 / period``.  A
``pessimistic`` mode (worst delay on every edge) is kept for ablation.

Each cell's delay is derated through the shared net-load model
(:mod:`repro.netlist.load`): ``1 + fanout_slope * (fanout - 1)`` in
the wire-blind default -- printed gates drive large electrolyte gate
capacitances, so fanout matters -- and, when a placement-derived
:class:`~repro.netlist.load.RCAnnotation` is supplied via ``rc=``,
wire capacitance joins the same derate as extra gate-equivalent loads
while the distributed wire delay (``R*C/2``) adds to every transition
through the net.  ``rc=None`` is the explicit wire-blind mode and is
bit-exact with the pre-placement analysis.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from repro.errors import TimingError
from repro.netlist.core import CONST0, CONST1, Instance, Netlist, SEQUENTIAL_CELLS
from repro.netlist.load import (
    DEFAULT_FANOUT_SLOPE,
    RCAnnotation,
    fanout_counts,
    fanout_derate,
    net_derate,
)
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import span as _obs_span
from repro.pdk.cells import CellLibrary

_STA_REPORTS = _obs_counter("sta.reports")

#: Cells whose output transition is caused by the opposite input edge.
INVERTING_CELLS = frozenset({"INVX1", "NAND2X1", "NOR2X1"})

#: Cells where either input edge can cause either output edge.
NON_MONOTONE_CELLS = frozenset({"XOR2X1", "XNOR2X1"})


@dataclass(frozen=True)
class TimingReport:
    """Result of static timing analysis.

    Attributes:
        critical_path_delay: Worst endpoint arrival in seconds.
        fmax: Maximum clock frequency in hertz.
        critical_path: Cell names along the worst path, source first.
        levels: Logic depth (cell count) of the worst path.
    """

    critical_path_delay: float
    fmax: float
    critical_path: tuple[str, ...]
    levels: int


# Shared with power: one sink count, one load model.
_fanout_counts = fanout_counts


def _topological_order(netlist: Netlist) -> list[Instance]:
    """Topologically sort combinational instances.

    Sequential outputs, ports, and constants are sources.  A cycle
    through combinational cells raises :class:`TimingError`.
    """
    combinational = [i for i in netlist.instances if i.cell not in SEQUENTIAL_CELLS]
    consumers: dict[int, list[Instance]] = defaultdict(list)
    pending: dict[int, int] = {}
    sources = {CONST0, CONST1}
    for bus in netlist.inputs.values():
        sources.update(bus.nets)
    for instance in netlist.instances:
        if instance.cell in SEQUENTIAL_CELLS:
            sources.add(instance.output)
    for instance in combinational:
        needed = 0
        for net in instance.inputs:
            if net not in sources:
                consumers[net].append(instance)
                needed += 1
        pending[id(instance)] = needed

    ready = deque(i for i in combinational if pending[id(i)] == 0)
    ordered: list[Instance] = []
    while ready:
        instance = ready.popleft()
        ordered.append(instance)
        for consumer in consumers.get(instance.output, ()):
            pending[id(consumer)] -= 1
            if pending[id(consumer)] == 0:
                ready.append(consumer)
    if len(ordered) != len(combinational):
        raise TimingError(
            f"combinational loop: {len(combinational) - len(ordered)} cells unordered"
        )
    return ordered


def topological_order(netlist: Netlist) -> list[Instance]:
    """Public alias of the combinational topological sort.

    Shared by the polarity-aware STA here, the numpy kernel codegen
    (:mod:`repro.netlist.nsim`), and the Monte-Carlo variation models
    (:mod:`repro.pdk.variation`, :mod:`repro.mc.timing`) -- one order,
    one cycle check.
    """
    return _topological_order(netlist)


@dataclass
class _Arrival:
    """Rise/fall arrival pair plus the path reaching the later one."""

    rise: float
    fall: float
    rise_path: tuple[str, ...]
    fall_path: tuple[str, ...]

    @property
    def worst(self) -> float:
        return max(self.rise, self.fall)

    @property
    def worst_path(self) -> tuple[str, ...]:
        return self.rise_path if self.rise >= self.fall else self.fall_path


def timing_report(
    netlist: Netlist,
    library: CellLibrary,
    input_arrivals: dict[str, float] | None = None,
    fanout_slope: float = DEFAULT_FANOUT_SLOPE,
    pessimistic: bool = False,
    rc: RCAnnotation | None = None,
) -> TimingReport:
    """Run STA on ``netlist`` with cells timed from ``library``.

    Args:
        netlist: The mapped design.
        library: Technology supplying per-cell delays.
        input_arrivals: Optional arrival time (seconds) per primary
            input bus name; unlisted buses arrive at 0.
        fanout_slope: Per-extra-load delay derate.
        pessimistic: Use the worst of rise/fall on every edge instead
            of polarity-aware propagation (ablation mode).
        rc: Optional placement-derived wire parasitics
            (:func:`repro.place.rc_annotation`).  ``None`` is the
            wire-blind estimate, bit-exact with the pre-placement
            analysis.

    Returns:
        A :class:`TimingReport`; ``fmax`` is infinite for a netlist
        with no timed paths (no cells).
    """
    with _obs_span("sta", design=netlist.name, technology=library.name) as sp:
        report = _timing_report(
            netlist, library, input_arrivals, fanout_slope, pessimistic, rc
        )
        _STA_REPORTS.inc()
        sp.note(fmax=report.fmax, levels=report.levels)
    return report


def _timing_report(
    netlist: Netlist,
    library: CellLibrary,
    input_arrivals: dict[str, float] | None,
    fanout_slope: float,
    pessimistic: bool,
    rc: RCAnnotation | None = None,
) -> TimingReport:
    input_arrivals = input_arrivals or {}
    fanouts = _fanout_counts(netlist)
    input_cap = library.input_capacitance

    def delays(instance: Instance) -> tuple[float, float]:
        cell = library.cell(instance.cell)
        fanout = fanouts.get(instance.output, 1)
        if rc is None:
            derate = fanout_derate(fanout, fanout_slope)
            rise = cell.rise_delay * derate
            fall = cell.fall_delay * derate
        else:
            derate = net_derate(
                fanout, rc.capacitance(instance.output), input_cap, fanout_slope
            )
            wire = rc.wire_delay(instance.output)
            rise = cell.rise_delay * derate + wire
            fall = cell.fall_delay * derate + wire
        if pessimistic:
            worst = max(rise, fall)
            return worst, worst
        return rise, fall

    arrival: dict[int, _Arrival] = {
        CONST0: _Arrival(0.0, 0.0, (), ()),
        CONST1: _Arrival(0.0, 0.0, (), ()),
    }
    for name, bus in netlist.inputs.items():
        start = input_arrivals.get(name, 0.0)
        for net in bus:
            # Port-driven nets have no driving cell to derate; their
            # routed trace still delays every sink.
            at = start if rc is None else start + rc.wire_delay(net)
            arrival[net] = _Arrival(at, at, (), ())

    # Sequential outputs launch at clock-to-Q.
    for instance in netlist.instances:
        if instance.cell in SEQUENTIAL_CELLS:
            rise, fall = delays(instance)
            arrival[instance.output] = _Arrival(
                rise, fall, (instance.cell,), (instance.cell,)
            )

    zero = _Arrival(0.0, 0.0, (), ())
    for instance in _topological_order(netlist):
        rise_delay, fall_delay = delays(instance)
        ins = [arrival.get(net, zero) for net in instance.inputs]

        def latest(getter, path_getter):
            best_time, best_path = 0.0, ()
            for entry in ins:
                time = getter(entry)
                if time >= best_time:
                    best_time, best_path = time, path_getter(entry)
            return best_time, best_path

        if instance.cell in NON_MONOTONE_CELLS or pessimistic:
            in_time, in_path = latest(lambda e: e.worst, lambda e: e.worst_path)
            out = _Arrival(
                in_time + rise_delay,
                in_time + fall_delay,
                in_path + (instance.cell,),
                in_path + (instance.cell,),
            )
        elif instance.cell in INVERTING_CELLS:
            fall_in, fall_in_path = latest(lambda e: e.fall, lambda e: e.fall_path)
            rise_in, rise_in_path = latest(lambda e: e.rise, lambda e: e.rise_path)
            out = _Arrival(
                fall_in + rise_delay,
                rise_in + fall_delay,
                fall_in_path + (instance.cell,),
                rise_in_path + (instance.cell,),
            )
        else:  # non-inverting
            rise_in, rise_in_path = latest(lambda e: e.rise, lambda e: e.rise_path)
            fall_in, fall_in_path = latest(lambda e: e.fall, lambda e: e.fall_path)
            out = _Arrival(
                rise_in + rise_delay,
                fall_in + fall_delay,
                rise_in_path + (instance.cell,),
                fall_in_path + (instance.cell,),
            )
        arrival[instance.output] = out

    # Path endpoints: D pins of sequential cells and primary outputs.
    worst_delay = 0.0
    worst_path: tuple[str, ...] = ()

    def consider(net: int) -> None:
        nonlocal worst_delay, worst_path
        entry = arrival.get(net)
        if entry is not None and entry.worst > worst_delay:
            worst_delay = entry.worst
            worst_path = entry.worst_path

    for instance in netlist.instances:
        if instance.cell in SEQUENTIAL_CELLS:
            for net in instance.inputs:
                consider(net)
    for bus in netlist.outputs.values():
        for net in bus:
            consider(net)

    fmax = 1.0 / worst_delay if worst_delay > 0 else float("inf")
    return TimingReport(
        critical_path_delay=worst_delay,
        fmax=fmax,
        critical_path=worst_path,
        levels=len(worst_path),
    )
