"""Activity-based power and energy estimation.

Follows the paper's methodology: every cell contributes its
characterized per-switch energy (Table 2) scaled by an activity factor
-- the paper reports an average simulated activity of **0.88** for its
cores (Section 8, footnote 6).  Power at a clock frequency ``f`` is
then ``P = E_cycle * f``.

Two activity sources are supported:

* a flat activity factor (:func:`power_report` with ``activity=``),
  matching the paper's reporting, and
* measured per-cell toggle counts from the gate-level simulator
  (:meth:`repro.netlist.sim.CycleSimulator.toggle_counts`), for
  ablation studies of the flat-activity assumption.

Measured activity additionally supports *attribution*
(:func:`attributed_power_report`): the same toggle counts rolled up
through the cell-library energy model into per-module and
per-cell-type energies, with a conservation invariant -- the
attributed energies sum bit-exactly to the matching
:func:`measured_power_report` total (the paper's Table 4 power splits,
reproduced from measured switching instead of a flat factor).

Net cost comes from the same shared load model STA uses
(:mod:`repro.netlist.load`): in the wire-blind ``rc=None`` default a
net is free on the power side (each sink's gate capacitance is part of
the *sink* cell's characterized energy, while STA derates the driver's
delay for the same loads), and with a placement-derived
:class:`~repro.netlist.load.RCAnnotation` the routed wire capacitance
joins on the identical axis both analyses share -- STA as extra
gate-equivalent fanout on the driver, power as ``C_wire * VDD^2 / 2``
per driver switch, charged to the driver's bucket.  ``rc=None``
results stay bit-exact with the pre-placement flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.netlist.core import Netlist, SEQUENTIAL_CELLS
from repro.netlist.load import RCAnnotation, fanout_counts
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import span as _obs_span
from repro.pdk.cells import CellLibrary

_POWER_REPORTS = _obs_counter("power.reports")
_ATTRIBUTED_REPORTS = _obs_counter("power.attributed_reports")

#: Average simulated activity factor reported by the paper.
PAPER_ACTIVITY_FACTOR = 0.88


@dataclass(frozen=True)
class PowerReport:
    """Energy/power summary for one netlist in one technology.

    Attributes:
        energy_per_cycle: Expected switching energy per clock in J.
        combinational_energy: Per-cycle energy in combinational cells.
        sequential_energy: Per-cycle energy in flip-flops/latches.
        activity: Activity factor used.
        static_only_cells: Instances that never toggled over the
            measured window (0 for flat-activity reports, where every
            cell is assumed active).  Making these explicit keeps
            sparse toggle maps honest: an instance absent from the map
            is *counted*, not silently dropped.
        wire_energy: Per-cycle energy spent switching routed wire
            capacitance (0.0 for wire-blind ``rc=None`` reports).
            Informational -- each net's wire term is already folded
            into its driver's combinational/sequential bucket, so
            ``energy_per_cycle`` includes it.
    """

    energy_per_cycle: float
    combinational_energy: float
    sequential_energy: float
    activity: float
    static_only_cells: int = 0
    wire_energy: float = 0.0

    def power_at(self, frequency: float) -> float:
        """Average power in watts when clocked at ``frequency`` Hz."""
        return self.energy_per_cycle * frequency

    @property
    def sequential_fraction(self) -> float:
        """Fraction of per-cycle energy spent in sequential cells."""
        if self.energy_per_cycle == 0:
            return 0.0
        return self.sequential_energy / self.energy_per_cycle


def power_report(
    netlist: Netlist,
    library: CellLibrary,
    activity: float = PAPER_ACTIVITY_FACTOR,
    rc: RCAnnotation | None = None,
) -> PowerReport:
    """Estimate per-cycle energy with a flat activity factor.

    With ``rc`` (placement-derived wire parasitics), each driving
    instance additionally charges its output net's routed wire
    capacitance per switch (``C*VDD^2/2``, same activity factor);
    ``rc=None`` is the wire-blind estimate, bit-exact with the
    pre-placement analysis.
    """
    with _obs_span("power", design=netlist.name, technology=library.name):
        _POWER_REPORTS.inc()
        combinational = 0.0
        sequential = 0.0
        wire_total = 0.0
        for instance in netlist.instances:
            if rc is None:
                energy = library.cell(instance.cell).energy * activity
            else:
                wire = rc.switch_energy(instance.output, library.vdd)
                energy = (library.cell(instance.cell).energy + wire) * activity
                wire_total += wire * activity
            if instance.cell in SEQUENTIAL_CELLS:
                sequential += energy
            else:
                combinational += energy
        return PowerReport(
            energy_per_cycle=combinational + sequential,
            combinational_energy=combinational,
            sequential_energy=sequential,
            activity=activity,
            wire_energy=wire_total,
        )


def measured_power_report(
    netlist: Netlist,
    library: CellLibrary,
    toggles_per_cell: Mapping[int, int],
    cycles: int,
    rc: RCAnnotation | None = None,
) -> PowerReport:
    """Energy from measured toggle counts (one entry per instance index).

    Args:
        netlist: The simulated design.
        library: Technology supplying per-cell energies.
        toggles_per_cell: Output-toggle count per instance index, as
            produced by the gate-level simulator.
        cycles: Number of simulated cycles the counts cover.
        rc: Optional placement-derived wire parasitics; each measured
            output toggle then also charges the net's routed trace.
            ``rc=None`` is the wire-blind estimate, bit-exact with the
            pre-placement analysis.
    """
    with _obs_span(
        "power_measured", design=netlist.name, technology=library.name
    ):
        return _measured_power_report(
            netlist, library, toggles_per_cell, cycles, rc
        )


def _instance_energy(
    instance,
    library: CellLibrary,
    toggles: int,
    cycles: int,
    rc: RCAnnotation | None,
) -> float:
    """Per-cycle energy of one instance's measured switching.

    The single source of the per-instance float term: the measured
    total and both attribution rollups call this with identical
    arguments, so their sums agree to the last ulp (the conservation
    invariant of :func:`attributed_power_report`).
    """
    if rc is None:
        return library.cell(instance.cell).energy * toggles / max(1, cycles)
    wire = rc.switch_energy(instance.output, library.vdd)
    return (library.cell(instance.cell).energy + wire) * toggles / max(1, cycles)


def _measured_power_report(
    netlist: Netlist,
    library: CellLibrary,
    toggles_per_cell: Mapping[int, int],
    cycles: int,
    rc: RCAnnotation | None = None,
) -> PowerReport:
    combinational = 0.0
    sequential = 0.0
    wire_total = 0.0
    total_toggles = 0
    static_only = 0
    for index, instance in enumerate(netlist.instances):
        toggles = toggles_per_cell.get(index, 0)
        if not toggles:
            static_only += 1
        total_toggles += toggles
        energy = _instance_energy(instance, library, toggles, cycles, rc)
        if rc is not None:
            wire_total += (
                rc.switch_energy(instance.output, library.vdd)
                * toggles
                / max(1, cycles)
            )
        if instance.cell in SEQUENTIAL_CELLS:
            sequential += energy
        else:
            combinational += energy
    gate_count = max(1, len(netlist.instances))
    observed_activity = total_toggles / (max(1, cycles) * gate_count)
    return PowerReport(
        energy_per_cycle=combinational + sequential,
        combinational_energy=combinational,
        sequential_energy=sequential,
        activity=observed_activity,
        static_only_cells=static_only,
        wire_energy=wire_total,
    )


@dataclass(frozen=True)
class AttributedPowerReport:
    """Measured energy attributed per module and per cell type.

    Attributes:
        total: The matching :func:`measured_power_report` (identical
            floats -- both are computed from the same per-instance
            energy terms in the same order).
        by_module: Per-cycle energy per module label (see
            :func:`repro.netlist.probe.module_map`), ordered so a
            plain ``sum`` of the values reproduces
            ``total.energy_per_cycle`` bit-exactly.
        by_cell: Per-cycle energy per library cell type, with the
            same exact-sum ordering.
        toggles_by_module: Raw toggle counts per module (integers --
            conserved exactly by construction).
        static_only_cells: Instances with zero measured toggles.
    """

    total: PowerReport
    by_module: dict[str, float]
    by_cell: dict[str, float]
    toggles_by_module: dict[str, int]
    static_only_cells: int

    def conservation_error(self) -> tuple[float, float]:
        """``(module, cell)`` residuals vs the total; both must be 0.0.

        Summing either attribution dict's values *in iteration order*
        reproduces the measured total exactly (the smallest bucket is
        stored last as ``total - sum(others)``; Sterbenz's lemma makes
        that subtraction, and the final re-addition, exact).
        """
        total = self.total.energy_per_cycle
        return (
            sum(self.by_module.values()) - total,
            sum(self.by_cell.values()) - total,
        )


def _fold_residual(buckets: dict[str, float], total: float) -> dict[str, float]:
    """Order ``buckets`` so summing the values reproduces ``total`` exactly.

    Different groupings of the same float terms can disagree with the
    grand total by a few ulps.  The bucket with the smallest raw value
    (ties by name) is re-derived as ``total - sum(others)`` and stored
    last: its true share is at most ``total / 2``, so by Sterbenz's
    lemma the subtraction is exact and ``sum(others) + (total -
    sum(others))`` lands back on ``total`` bit-for-bit.  The
    perturbation is bounded by the grouping residual (ulps).
    """
    if not buckets:
        return {}
    if len(buckets) == 1:
        return {name: total for name in buckets}
    remainder = min(buckets, key=lambda name: (buckets[name], name))
    ordered: dict[str, float] = {}
    others_sum = 0.0
    for name in sorted(buckets):
        if name != remainder:
            ordered[name] = buckets[name]
            others_sum += buckets[name]
    ordered[remainder] = total - others_sum
    return ordered


def attributed_power_report(
    netlist: Netlist,
    library: CellLibrary,
    toggles_per_cell: Mapping[int, int],
    cycles: int,
    modules: "list[str] | None" = None,
    rc: RCAnnotation | None = None,
) -> AttributedPowerReport:
    """Roll measured toggles up into per-module / per-cell-type energy.

    Args:
        netlist: The simulated design.
        library: Technology supplying per-cell energies.
        toggles_per_cell: Output-toggle count per instance index, as
            produced by the gate-level simulator.
        cycles: Number of simulated cycles the counts cover.
        modules: Optional per-instance module labels (defaults to
            :func:`repro.netlist.probe.module_map`).
        rc: Optional placement-derived wire parasitics; each net's
            switched wire energy is attributed to its driving
            instance's module and cell type, and conservation stays
            bit-exact.

    The returned report's ``total`` is the exact
    :func:`measured_power_report` for the same inputs, and both
    attribution dicts sum bit-exactly to its ``energy_per_cycle``
    (see :meth:`AttributedPowerReport.conservation_error`).
    """
    with _obs_span(
        "power_attributed", design=netlist.name, technology=library.name
    ):
        _ATTRIBUTED_REPORTS.inc()
        if modules is None:
            from repro.netlist.probe import module_map

            modules = module_map(netlist)
        total = _measured_power_report(
            netlist, library, toggles_per_cell, cycles, rc
        )
        by_module: dict[str, float] = {}
        by_cell: dict[str, float] = {}
        toggles_by_module: dict[str, int] = {}
        for index, instance in enumerate(netlist.instances):
            toggles = toggles_per_cell.get(index, 0)
            energy = _instance_energy(instance, library, toggles, cycles, rc)
            module = modules[index]
            by_module[module] = by_module.get(module, 0.0) + energy
            by_cell[instance.cell] = by_cell.get(instance.cell, 0.0) + energy
            toggles_by_module[module] = toggles_by_module.get(module, 0) + toggles
        return AttributedPowerReport(
            total=total,
            by_module=_fold_residual(by_module, total.energy_per_cycle),
            by_cell=_fold_residual(by_cell, total.energy_per_cycle),
            toggles_by_module=dict(sorted(toggles_by_module.items())),
            static_only_cells=total.static_only_cells,
        )
