"""Activity-based power and energy estimation.

Follows the paper's methodology: every cell contributes its
characterized per-switch energy (Table 2) scaled by an activity factor
-- the paper reports an average simulated activity of **0.88** for its
cores (Section 8, footnote 6).  Power at a clock frequency ``f`` is
then ``P = E_cycle * f``.

Two activity sources are supported:

* a flat activity factor (:func:`power_report` with ``activity=``),
  matching the paper's reporting, and
* measured per-cell toggle counts from the gate-level simulator
  (:meth:`repro.netlist.sim.CycleSimulator.toggle_counts`), for
  ablation studies of the flat-activity assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.netlist.core import Netlist, SEQUENTIAL_CELLS
from repro.obs.metrics import counter as _obs_counter
from repro.obs.trace import span as _obs_span
from repro.pdk.cells import CellLibrary

_POWER_REPORTS = _obs_counter("power.reports")

#: Average simulated activity factor reported by the paper.
PAPER_ACTIVITY_FACTOR = 0.88


@dataclass(frozen=True)
class PowerReport:
    """Energy/power summary for one netlist in one technology.

    Attributes:
        energy_per_cycle: Expected switching energy per clock in J.
        combinational_energy: Per-cycle energy in combinational cells.
        sequential_energy: Per-cycle energy in flip-flops/latches.
        activity: Activity factor used.
    """

    energy_per_cycle: float
    combinational_energy: float
    sequential_energy: float
    activity: float

    def power_at(self, frequency: float) -> float:
        """Average power in watts when clocked at ``frequency`` Hz."""
        return self.energy_per_cycle * frequency

    @property
    def sequential_fraction(self) -> float:
        """Fraction of per-cycle energy spent in sequential cells."""
        if self.energy_per_cycle == 0:
            return 0.0
        return self.sequential_energy / self.energy_per_cycle


def power_report(
    netlist: Netlist,
    library: CellLibrary,
    activity: float = PAPER_ACTIVITY_FACTOR,
) -> PowerReport:
    """Estimate per-cycle energy with a flat activity factor."""
    with _obs_span("power", design=netlist.name, technology=library.name):
        _POWER_REPORTS.inc()
        combinational = 0.0
        sequential = 0.0
        for instance in netlist.instances:
            energy = library.cell(instance.cell).energy * activity
            if instance.cell in SEQUENTIAL_CELLS:
                sequential += energy
            else:
                combinational += energy
        return PowerReport(
            energy_per_cycle=combinational + sequential,
            combinational_energy=combinational,
            sequential_energy=sequential,
            activity=activity,
        )


def measured_power_report(
    netlist: Netlist,
    library: CellLibrary,
    toggles_per_cell: Mapping[int, int],
    cycles: int,
) -> PowerReport:
    """Energy from measured toggle counts (one entry per instance index).

    Args:
        netlist: The simulated design.
        library: Technology supplying per-cell energies.
        toggles_per_cell: Output-toggle count per instance index, as
            produced by the gate-level simulator.
        cycles: Number of simulated cycles the counts cover.
    """
    with _obs_span(
        "power_measured", design=netlist.name, technology=library.name
    ):
        return _measured_power_report(netlist, library, toggles_per_cell, cycles)


def _measured_power_report(
    netlist: Netlist,
    library: CellLibrary,
    toggles_per_cell: Mapping[int, int],
    cycles: int,
) -> PowerReport:
    combinational = 0.0
    sequential = 0.0
    total_toggles = 0
    for index, instance in enumerate(netlist.instances):
        toggles = toggles_per_cell.get(index, 0)
        total_toggles += toggles
        energy = library.cell(instance.cell).energy * toggles / max(1, cycles)
        if instance.cell in SEQUENTIAL_CELLS:
            sequential += energy
        else:
            combinational += energy
    gate_count = max(1, len(netlist.instances))
    observed_activity = total_toggles / (max(1, cycles) * gate_count)
    return PowerReport(
        energy_per_cycle=combinational + sequential,
        combinational_energy=combinational,
        sequential_energy=sequential,
        activity=observed_activity,
    )
