"""Shared net-load model for timing and power.

Before this module existed the two PPA analyses priced a net
differently: :mod:`repro.netlist.sta` derated cell delay by logical
fanout while :mod:`repro.netlist.power` charged multi-sink nets
nothing at all.  Both now cost a net through the same model defined
here:

* every sink beyond the first adds one gate-input load, derating the
  driving cell's delay by ``fanout_slope`` per extra load
  (:func:`fanout_derate`);
* a placed net additionally carries wire parasitics
  (:class:`WireRC`): its capacitance converts to extra gate-equivalent
  loads through the library's per-input capacitance (so wire load and
  fanout load are the *same axis*, not two formulas), plus a
  distributed-RC (Elmore) delay term ``0.5 * R_net * C_net`` added to
  every transition through the net;
* the switched wire capacitance costs ``0.5 * C_net * VDD^2`` per
  driver output toggle, which power accounting adds to the driving
  cell's switching energy.

The wire-blind estimate is the explicit ``rc=None`` mode of
:func:`repro.netlist.sta.timing_report` and the power reports: no
:class:`RCAnnotation` means zero wire resistance and capacitance, and
the arithmetic collapses bit-exactly to the historical fanout-only
derate (pinned by ``tests/netlist/test_load.py``).  Placement-derived
annotations come from :func:`repro.place.rc_annotation`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping

from repro.netlist.core import Netlist

#: Default incremental delay per extra fanout load (dimensionless).
#: Canonical home; :mod:`repro.netlist.sta` re-exports it.
DEFAULT_FANOUT_SLOPE = 0.05


def fanout_counts(netlist: Netlist) -> dict[int, int]:
    """Sink count per net: instance input pins plus primary outputs."""
    counts: dict[int, int] = defaultdict(int)
    for instance in netlist.instances:
        for net in instance.inputs:
            counts[net] += 1
    for bus in netlist.outputs.values():
        for net in bus:
            counts[net] += 1
    return counts


def fanout_derate(fanout: int, slope: float = DEFAULT_FANOUT_SLOPE) -> float:
    """Wire-blind delay derate: ``1 + slope * (fanout - 1)``, floored at 1."""
    return 1.0 + slope * max(0, fanout - 1)


@dataclass(frozen=True)
class WireRC:
    """Lumped parasitics of one routed net.

    Attributes:
        resistance: Total trace resistance in ohms.
        capacitance: Total trace capacitance in farads.
        length: Routed length estimate (HPWL) in metres.
    """

    resistance: float
    capacitance: float
    length: float

    @property
    def delay(self) -> float:
        """Distributed-RC (Elmore) wire delay in seconds: ``R*C/2``."""
        return 0.5 * self.resistance * self.capacitance

    def switch_energy(self, vdd: float) -> float:
        """Energy to charge the trace once: ``C * VDD^2 / 2`` joules."""
        return 0.5 * self.capacitance * vdd * vdd


@dataclass(frozen=True)
class RCAnnotation:
    """Per-net wire parasitics back-annotated from a placement.

    Attributes:
        source: Provenance label (e.g. ``"place:small:seed0"``).
        nets: Mapping from net id to :class:`WireRC`.  Nets absent from
            the map are treated as zero-length (local) wires.
    """

    source: str
    nets: Mapping[int, WireRC]

    def wire(self, net: int) -> WireRC | None:
        """Parasitics of ``net``, or ``None`` for an unrouted net."""
        return self.nets.get(net)

    def wire_delay(self, net: int) -> float:
        """Additive distributed wire delay of ``net`` in seconds."""
        wire = self.nets.get(net)
        return wire.delay if wire is not None else 0.0

    def capacitance(self, net: int) -> float:
        """Wire capacitance of ``net`` in farads (0.0 if unrouted)."""
        wire = self.nets.get(net)
        return wire.capacitance if wire is not None else 0.0

    def switch_energy(self, net: int, vdd: float) -> float:
        """Per-toggle wire switching energy of ``net`` in joules."""
        wire = self.nets.get(net)
        return wire.switch_energy(vdd) if wire is not None else 0.0

    @property
    def total_wirelength(self) -> float:
        """Summed routed length over every annotated net, in metres."""
        return sum(wire.length for wire in self.nets.values())

    @property
    def total_capacitance(self) -> float:
        """Summed wire capacitance over every annotated net, in farads."""
        return sum(wire.capacitance for wire in self.nets.values())


def net_derate(
    fanout: int,
    wire_capacitance: float,
    input_capacitance: float,
    slope: float = DEFAULT_FANOUT_SLOPE,
) -> float:
    """Unified load derate: wire capacitance counts as extra fanout.

    ``1 + slope * (fanout - 1 + C_wire / C_in)`` -- each sink past the
    first is one gate-input load, and the routed trace adds
    ``C_wire / C_in`` gate-equivalents on the same axis.  With zero
    wire capacitance (or a library that characterizes no
    ``input_capacitance``) this is exactly :func:`fanout_derate`.
    """
    loads = float(max(0, fanout - 1))
    if wire_capacitance > 0.0 and input_capacitance > 0.0:
        loads += wire_capacitance / input_capacitance
    return 1.0 + slope * loads
