"""Binary encoding and decoding of TP-ISA instructions.

The 24-bit layout is fixed (Figure 6); what varies with the core
configuration is how many of each operand byte's most significant bits
select a BAR (one bit for a 2-BAR core, two bits for a 4-BAR core).
Encoding therefore takes the BAR count as a parameter, and decoding the
same -- a single binary image is only meaningful for the configuration
it was assembled for.
"""

from __future__ import annotations

from repro.errors import IsaError
from repro.isa.spec import (
    Instruction,
    MemOperand,
    Mnemonic,
    OP_TABLE,
    UNARY_OPS,
)

#: Fixed instruction width in bits.
INSTRUCTION_BITS = 24

#: Operand field width in bits.
OPERAND_BITS = 8


def _bar_select_bits(num_bars: int) -> int:
    if num_bars < 1:
        raise IsaError(f"need at least one BAR, got {num_bars}")
    bits = (num_bars - 1).bit_length()
    if (1 << bits) != num_bars and num_bars != 1:
        raise IsaError(f"BAR count must be a power of two, got {num_bars}")
    return bits


def encode_operand(operand: MemOperand, num_bars: int) -> int:
    """Pack a memory operand into its 8-bit field.

    Raises:
        IsaError: If the BAR index or offset does not fit the split
            implied by ``num_bars``.
    """
    select_bits = _bar_select_bits(num_bars)
    offset_bits = OPERAND_BITS - select_bits
    if operand.bar >= num_bars:
        raise IsaError(f"BAR index {operand.bar} needs more than {num_bars} BARs")
    if operand.offset >= (1 << offset_bits):
        raise IsaError(
            f"offset {operand.offset} does not fit {offset_bits} offset bits "
            f"({num_bars}-BAR configuration)"
        )
    return (operand.bar << offset_bits) | operand.offset


def decode_operand(field: int, num_bars: int) -> MemOperand:
    """Unpack an 8-bit operand field into a memory operand."""
    select_bits = _bar_select_bits(num_bars)
    offset_bits = OPERAND_BITS - select_bits
    return MemOperand(offset=field & ((1 << offset_bits) - 1), bar=field >> offset_bits)


def encode(instruction: Instruction, num_bars: int = 2) -> int:
    """Encode one instruction into its 24-bit word."""
    spec = instruction.spec
    word = (spec.opcode << 20) | (spec.control_bits << 16)

    if spec.fmt == "M":
        op1 = encode_operand(instruction.dst, num_bars)
        op2 = encode_operand(instruction.src, num_bars)
    elif instruction.mnemonic is Mnemonic.STORE:
        op1 = encode_operand(instruction.dst, num_bars)
        op2 = instruction.imm
    elif instruction.mnemonic is Mnemonic.SETBAR:
        op1 = instruction.src.offset  # pointer address, absolute
        op2 = instruction.bar_index
    else:  # branch
        op1 = instruction.target
        op2 = instruction.mask
    return word | (op1 << 8) | op2


_DECODE_TABLE = {
    (spec.opcode, spec.control_bits): mnemonic for mnemonic, spec in OP_TABLE.items()
}


def decode(word: int, num_bars: int = 2) -> Instruction:
    """Decode a 24-bit word back into an :class:`Instruction`.

    Raises:
        IsaError: If the word is out of range or the opcode/control
            combination is not a defined TP-ISA instruction.
    """
    if not 0 <= word < (1 << INSTRUCTION_BITS):
        raise IsaError(f"instruction word {word:#x} out of 24-bit range")
    opcode = (word >> 20) & 0xF
    control = (word >> 16) & 0xF
    op1 = (word >> 8) & 0xFF
    op2 = word & 0xFF
    mnemonic = _DECODE_TABLE.get((opcode, control))
    if mnemonic is None:
        raise IsaError(f"undefined opcode/control combination {opcode:#x}/{control:04b}")

    spec = OP_TABLE[mnemonic]
    if spec.fmt == "M":
        return Instruction(
            mnemonic,
            dst=decode_operand(op1, num_bars),
            src=decode_operand(op2, num_bars),
        )
    if mnemonic is Mnemonic.STORE:
        return Instruction(mnemonic, dst=decode_operand(op1, num_bars), imm=op2)
    if mnemonic is Mnemonic.SETBAR:
        return Instruction(mnemonic, src=MemOperand(offset=op1), bar_index=op2)
    return Instruction(mnemonic, target=op1, mask=op2 & 0xF)


def encode_program(instructions: list[Instruction], num_bars: int = 2) -> list[int]:
    """Encode a sequence of instructions into 24-bit words."""
    return [encode(i, num_bars) for i in instructions]


def unary_source_field(instruction: Instruction) -> bool:
    """True when the instruction's single read operand is operand2."""
    return instruction.mnemonic in UNARY_OPS
