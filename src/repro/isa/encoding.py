"""Binary encoding and decoding of TP-ISA instructions.

The 24-bit layout is fixed (Figure 6); what varies with the core
configuration is how many of each operand byte's most significant bits
select a BAR (one bit for a 2-BAR core, two bits for a 4-BAR core).
Encoding therefore takes the BAR count as a parameter, and decoding the
same -- a single binary image is only meaningful for the configuration
it was assembled for.
"""

from __future__ import annotations

from repro.errors import IsaError
from repro.isa.spec import (
    Instruction,
    MemOperand,
    Mnemonic,
    OP_TABLE,
    UNARY_OPS,
)
from repro.obs.metrics import counter as _obs_counter

#: Fixed instruction width in bits.
INSTRUCTION_BITS = 24

#: Operand field width in bits.
OPERAND_BITS = 8

#: Branch-mask field width in bits (four architectural flags).
MASK_BITS = 4

# Strict-decode telemetry: words whose branch op2 carried nonzero bits
# above the 4-bit flag mask (a corrupt image or a stale assembler).
_MASK_REJECTS = _obs_counter("isa.decode_mask_rejects")


def _check_field(value: int, bits: int, what: str) -> int:
    """Range-check one raw operand field before packing it.

    Every field of the 24-bit word is checked here even when the
    :class:`Instruction` constructor already validated it -- encoding
    is the last line of defence before bits bleed into neighbouring
    fields (``word | (op1 << 8) | op2`` happily corrupts the opcode
    when ``op1`` exceeds its byte).
    """
    if not 0 <= value < (1 << bits):
        raise IsaError(f"{what} {value} does not fit {bits} bits")
    return value


def _bar_select_bits(num_bars: int) -> int:
    if num_bars < 1:
        raise IsaError(f"need at least one BAR, got {num_bars}")
    bits = (num_bars - 1).bit_length()
    if (1 << bits) != num_bars and num_bars != 1:
        raise IsaError(f"BAR count must be a power of two, got {num_bars}")
    return bits


def encode_operand(operand: MemOperand, num_bars: int) -> int:
    """Pack a memory operand into its 8-bit field.

    Raises:
        IsaError: If the BAR index or offset does not fit the split
            implied by ``num_bars``.
    """
    select_bits = _bar_select_bits(num_bars)
    offset_bits = OPERAND_BITS - select_bits
    if operand.bar >= num_bars:
        raise IsaError(f"BAR index {operand.bar} needs more than {num_bars} BARs")
    if operand.offset >= (1 << offset_bits):
        raise IsaError(
            f"offset {operand.offset} does not fit {offset_bits} offset bits "
            f"({num_bars}-BAR configuration)"
        )
    return (operand.bar << offset_bits) | operand.offset


def decode_operand(field: int, num_bars: int) -> MemOperand:
    """Unpack an 8-bit operand field into a memory operand."""
    select_bits = _bar_select_bits(num_bars)
    offset_bits = OPERAND_BITS - select_bits
    return MemOperand(offset=field & ((1 << offset_bits) - 1), bar=field >> offset_bits)


def encode(instruction: Instruction, num_bars: int = 2) -> int:
    """Encode one instruction into its 24-bit word.

    Raises:
        IsaError: If any operand field is out of range for its slot in
            the word (BAR split, 8-bit immediate/target/pointer, 4-bit
            flag mask).
    """
    spec = instruction.spec
    word = (spec.opcode << 20) | (spec.control_bits << 16)

    if spec.fmt == "M":
        op1 = encode_operand(instruction.dst, num_bars)
        op2 = encode_operand(instruction.src, num_bars)
    elif instruction.mnemonic is Mnemonic.STORE:
        op1 = encode_operand(instruction.dst, num_bars)
        op2 = _check_field(instruction.imm, OPERAND_BITS, "STORE immediate")
    elif instruction.mnemonic is Mnemonic.SETBAR:
        # Pointer address, absolute: the raw offset occupies the field.
        op1 = _check_field(
            instruction.src.offset, OPERAND_BITS, "SETBAR pointer address"
        )
        op2 = _check_field(instruction.bar_index, OPERAND_BITS, "SETBAR BAR index")
    else:  # branch
        op1 = _check_field(instruction.target, OPERAND_BITS, "branch target")
        op2 = _check_field(instruction.mask, MASK_BITS, "branch flag mask")
    return word | (op1 << 8) | op2


_DECODE_TABLE = {
    (spec.opcode, spec.control_bits): mnemonic for mnemonic, spec in OP_TABLE.items()
}


def decode(word: int, num_bars: int = 2) -> Instruction:
    """Decode a 24-bit word back into an :class:`Instruction`.

    Raises:
        IsaError: If the word is out of range or the opcode/control
            combination is not a defined TP-ISA instruction.
    """
    if not 0 <= word < (1 << INSTRUCTION_BITS):
        raise IsaError(f"instruction word {word:#x} out of 24-bit range")
    opcode = (word >> 20) & 0xF
    control = (word >> 16) & 0xF
    op1 = (word >> 8) & 0xFF
    op2 = word & 0xFF
    mnemonic = _DECODE_TABLE.get((opcode, control))
    if mnemonic is None:
        raise IsaError(f"undefined opcode/control combination {opcode:#x}/{control:04b}")

    spec = OP_TABLE[mnemonic]
    if spec.fmt == "M":
        return Instruction(
            mnemonic,
            dst=decode_operand(op1, num_bars),
            src=decode_operand(op2, num_bars),
        )
    if mnemonic is Mnemonic.STORE:
        return Instruction(mnemonic, dst=decode_operand(op1, num_bars), imm=op2)
    if mnemonic is Mnemonic.SETBAR:
        return Instruction(mnemonic, src=MemOperand(offset=op1), bar_index=op2)
    if op2 >> MASK_BITS:
        # Encode never produces these bits, so silently masking them
        # off (the old behaviour) would make decode(encode(x)) lossy
        # for corrupt images.  Reject, and count for observability.
        _MASK_REJECTS.inc()
        raise IsaError(
            f"branch word {word:#08x} carries nonzero bits above the "
            f"{MASK_BITS}-bit flag mask (op2={op2:#04x})"
        )
    return Instruction(mnemonic, target=op1, mask=op2)


def encode_program(instructions: list[Instruction], num_bars: int = 2) -> list[int]:
    """Encode a sequence of instructions into 24-bit words."""
    return [encode(i, num_bars) for i in instructions]


def unary_source_field(instruction: Instruction) -> bool:
    """True when the instruction's single read operand is operand2."""
    return instruction.mnemonic in UNARY_OPS
