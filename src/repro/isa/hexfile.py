"""Intel HEX export/import of TP-ISA ROM images.

The open-sourced flow needs an interchange artifact between the
assembler and a ROM-printing step; Intel HEX is the lingua franca for
small-device programmers.  24-bit instruction words are emitted as
three bytes, big-endian, at byte address ``3 * word_address``; shrunken
program-specific words are padded to whole bytes.
"""

from __future__ import annotations

from repro.errors import IsaError


def _record(address: int, data: bytes) -> str:
    payload = bytes([len(data), (address >> 8) & 0xFF, address & 0xFF, 0]) + data
    checksum = (-sum(payload)) & 0xFF
    return ":" + (payload + bytes([checksum])).hex().upper()


def dump_hex(words: list[int], bits_per_word: int = 24) -> str:
    """Render encoded instruction words as Intel HEX text."""
    bytes_per_word = (bits_per_word + 7) // 8
    image = bytearray()
    for address, word in enumerate(words):
        if word >= (1 << (8 * bytes_per_word)):
            raise IsaError(f"word {word:#x} at {address} does not fit")
        image += word.to_bytes(bytes_per_word, "big")
    lines = []
    for offset in range(0, len(image), 16):
        lines.append(_record(offset, bytes(image[offset : offset + 16])))
    lines.append(":00000001FF")  # EOF record
    return "\n".join(lines) + "\n"


def load_hex(text: str, bits_per_word: int = 24) -> list[int]:
    """Parse Intel HEX text back into instruction words.

    Raises:
        IsaError: On malformed records or checksum mismatches.
    """
    image = bytearray()
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if not line.startswith(":"):
            raise IsaError(f"line {line_number}: missing ':' start code")
        try:
            raw = bytes.fromhex(line[1:])
        except ValueError as exc:
            raise IsaError(f"line {line_number}: bad hex: {exc}") from exc
        if len(raw) < 5:
            raise IsaError(f"line {line_number}: record too short")
        if sum(raw) & 0xFF:
            raise IsaError(f"line {line_number}: checksum mismatch")
        count, addr_hi, addr_lo, record_type = raw[:4]
        data = raw[4:-1]
        if len(data) != count:
            raise IsaError(f"line {line_number}: length mismatch")
        if record_type == 1:  # EOF
            break
        if record_type != 0:
            raise IsaError(f"line {line_number}: unsupported type {record_type}")
        address = (addr_hi << 8) | addr_lo
        if len(image) < address + count:
            image.extend(b"\x00" * (address + count - len(image)))
        image[address : address + count] = data

    bytes_per_word = (bits_per_word + 7) // 8
    if len(image) % bytes_per_word:
        raise IsaError(
            f"image length {len(image)} not a multiple of {bytes_per_word}"
        )
    return [
        int.from_bytes(image[i : i + bytes_per_word], "big")
        for i in range(0, len(image), bytes_per_word)
    ]
