"""Static program analysis for program-specific ISA variants (Section 7).

Printing hardware on demand makes *program-specific* processors
economical: since the static program is known at print time, the
architectural state and instruction encoding can be shrunk to exactly
what the program uses.  This module performs the analyses the paper
describes:

* **PC width** -- ``ceil(log2 N)`` bits for ``N`` static instructions.
* **BAR inventory** -- BARs that are never selected (or only ever hold
  zero, like the hardwired ``BAR[0]``) are removed; surviving BARs
  shrink to ``ceil(log2 D)`` bits for ``D`` data words used.
* **Flag inventory** -- only flags actually *consumed* (tested by a
  branch mask or chained through a carry-consuming instruction)
  survive.
* **Operand field widths** -- address/immediate/mask fields shrink to
  the widest value each position actually encodes; the instruction
  word shrinks accordingly (Table 7's "Instruction Size").

These results drive both the shrunken-core generator
(:mod:`repro.coregen`) and the right-sized instruction ROM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.isa.program import Program
from repro.isa.spec import (
    CARRY_CONSUMERS,
    Flag,
    Mnemonic,
    UNARY_OPS,
)

#: Control field width (W, C, A, B) -- fixed by the encoding.
CONTROL_BITS = 4

#: Opcode field width -- fixed by the encoding.
OPCODE_BITS = 4


def _bits_for_count(count: int) -> int:
    """ceil(log2(count)); zero or one alternatives need no bits."""
    if count <= 1:
        return 0
    return math.ceil(math.log2(count))


def _bits_for_value(value: int) -> int:
    """Bits needed to represent ``value`` (at least 1)."""
    return max(1, value.bit_length())


@dataclass(frozen=True)
class ProgramSpecificIsa:
    """Shrunken architectural parameters for one program (Table 7 row).

    Attributes:
        program_name: The analyzed benchmark.
        pc_bits: Program-counter width.
        bar_bits: Width of the surviving BARs (None if no BARs remain).
        num_bars: Number of *settable* BARs retained.
        flags_used: The set of consumed flags.
        operand1_bits / operand2_bits: Shrunken operand field widths.
        instruction_bits: Total shrunken instruction width.
        data_words: Data-memory words the program addresses.
    """

    program_name: str
    pc_bits: int
    bar_bits: int | None
    num_bars: int
    flags_used: frozenset
    operand1_bits: int
    operand2_bits: int
    instruction_bits: int
    data_words: int

    @property
    def num_flags(self) -> int:
        return len(self.flags_used)


def flags_consumed(program: Program) -> frozenset:
    """Flags whose value some instruction actually observes."""
    used = 0
    for instruction in program.instructions:
        if instruction.is_branch:
            used |= instruction.mask
        elif instruction.mnemonic in CARRY_CONSUMERS:
            used |= Flag.C
    return frozenset(flag for flag in (Flag.S, Flag.Z, Flag.C, Flag.V) if used & flag)


def analyze_program(program: Program, data_words: int | None = None) -> ProgramSpecificIsa:
    """Derive the program-specific ISA parameters for ``program``.

    Args:
        program: The static program image.
        data_words: Observed data-memory footprint (e.g. from a
            simulator run).  Defaults to a static estimate from the
            initial data image and operand offsets.
    """
    pc_bits = _bits_for_count(len(program.instructions))

    settable_bars = set()
    max_offset = {1: 0, 2: 0}
    max_absolute = 0
    for instruction in program.instructions:
        if instruction.mnemonic is Mnemonic.SETBAR:
            settable_bars.add(instruction.bar_index)
        operands = []
        if instruction.dst is not None:
            operands.append((1, instruction.dst))
        if instruction.mnemonic is Mnemonic.SETBAR:
            # The pointer address occupies operand field 1.
            operands.append((1, instruction.src))
        elif instruction.src is not None:
            operands.append((2, instruction.src))
        for position, operand in operands:
            if operand.bar != 0:
                settable_bars.add(operand.bar)
            max_offset[position] = max(max_offset[position], operand.offset)
            if operand.bar == 0:
                max_absolute = max(max_absolute, operand.offset)

    if data_words is None:
        static_floor = (max(program.data) + 1) if program.data else 0
        data_words = max(static_floor, max_absolute + 1 if program.instructions else 0)

    num_bars = len(settable_bars)
    bar_bits = _bits_for_value(max(1, data_words - 1)) if num_bars else None

    flags = flags_consumed(program)

    # Operand fields shrink to the widest value each position encodes.
    # BAR-select bits only prefix *memory* operands; immediates, branch
    # targets, and flag masks occupy the raw field.
    max_target = 0
    max_mask = 0
    max_immediate = 0
    max_bar_index = 0
    for instruction in program.instructions:
        if instruction.is_branch:
            max_target = max(max_target, instruction.target)
            max_mask = max(max_mask, instruction.mask)
        elif instruction.mnemonic is Mnemonic.SETBAR:
            max_bar_index = max(max_bar_index, instruction.bar_index)
        elif instruction.mnemonic is Mnemonic.STORE:
            max_immediate = max(max_immediate, instruction.imm)

    bar_select_bits = _bits_for_count(num_bars + 1) if num_bars else 0
    operand1_bits = max(
        _bits_for_value(max_offset[1]) + bar_select_bits,
        _bits_for_value(max_target) if max_target else 0,
        1,
    )
    operand2_bits = max(
        _bits_for_value(max_offset[2]) + bar_select_bits,
        _bits_for_value(max_immediate) if max_immediate else 0,
        _bits_for_value(max_mask) if max_mask else 0,
        _bits_for_value(max_bar_index) if max_bar_index else 0,
        1,
    )
    instruction_bits = OPCODE_BITS + CONTROL_BITS + operand1_bits + operand2_bits

    return ProgramSpecificIsa(
        program_name=program.name,
        pc_bits=pc_bits,
        bar_bits=bar_bits,
        num_bars=num_bars,
        flags_used=flags,
        operand1_bits=operand1_bits,
        operand2_bits=operand2_bits,
        instruction_bits=instruction_bits,
        data_words=data_words,
    )
