"""Program container: instructions plus initial data image.

A :class:`Program` is what the toolchain hands to the instruction-set
simulator, the static analyzer, and the system-level evaluator: the
static instruction sequence, the initial data memory contents, the
datawidth it was written for, and a symbol table mapping names to data
addresses (so tests and benchmark harnesses can poke inputs and read
results without magic numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProgramError
from repro.isa.spec import Instruction

#: Architectural ceiling on program length (8-bit PC).
MAX_INSTRUCTIONS = 256

#: Architectural ceiling on data memory (Section 5.1: 256 words).
MAX_DATA_WORDS = 256


@dataclass
class Program:
    """A complete TP-ISA program image.

    Attributes:
        name: Short benchmark name (``"mult"`` ...).
        instructions: The static instruction sequence.
        datawidth: Data word width in bits the program assumes.
        num_bars: BAR configuration the program was written for.
        data: Initial data-memory image (address -> value).
        symbols: Name -> data address map for harness access.
        description: One-line summary.
    """

    name: str
    instructions: list[Instruction]
    datawidth: int
    num_bars: int = 2
    data: dict[int, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.instructions) > MAX_INSTRUCTIONS:
            raise ProgramError(
                f"{self.name}: {len(self.instructions)} instructions exceed the "
                f"{MAX_INSTRUCTIONS}-word PC space"
            )
        if self.datawidth not in (4, 8, 16, 32):
            raise ProgramError(f"{self.name}: unsupported datawidth {self.datawidth}")
        limit = (1 << self.datawidth) - 1
        for address, value in self.data.items():
            if not 0 <= address < MAX_DATA_WORDS:
                raise ProgramError(f"{self.name}: data address {address} out of range")
            if not 0 <= value <= limit:
                raise ProgramError(
                    f"{self.name}: initial value {value} at {address} exceeds "
                    f"{self.datawidth}-bit width"
                )
        for instruction in self.instructions:
            if instruction.is_branch and instruction.target > len(self.instructions):
                raise ProgramError(
                    f"{self.name}: branch target {instruction.target} beyond program end"
                )

    @property
    def static_size(self) -> int:
        """Static instruction count (ROM words needed)."""
        return len(self.instructions)

    def data_words_used(self) -> int:
        """Highest data address referenced in the initial image + 1.

        The system evaluator sizes the data RAM as exactly the
        addresses the application touches (Section 8); dynamic usage is
        refined by the simulator.
        """
        return (max(self.data) + 1) if self.data else 0

    def address_of(self, symbol: str) -> int:
        """Resolve a data symbol to its address."""
        try:
            return self.symbols[symbol]
        except KeyError:
            raise ProgramError(f"{self.name}: unknown symbol {symbol!r}") from None
