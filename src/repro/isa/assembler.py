"""Two-pass text assembler for TP-ISA.

Syntax overview::

    ; comments run to end of line
    .width 8            ; datawidth the program assumes
    .bars 2             ; BAR configuration
    .word x 7           ; allocate one data word named x, initial 7
    .word y             ; allocate one data word, initial 0
    .array buf 16       ; allocate 16 consecutive words (buf, buf+1..)

    start:
        STORE x, 5      ; immediates are decimal / 0x.. / 0b..
        ADD   x, y      ; memory-memory: dst, src
        ADC   x, b1:3   ; BAR-relative operand: BAR 1, offset 3
        CMP   x, y
        BR    done, Z   ; flag masks by letters (SZCV) or number
        BRN   start, 0  ; mask 0 -> unconditional jump
    done:
        HALT            ; pseudo: BRN to self

Pseudo-instructions:

* ``HALT`` -- unconditional branch to itself (the simulator's halt
  convention).
* ``MOV dst, src`` -- expands to ``XOR dst, dst`` + ``OR dst, src``
  (TP-ISA has no copy instruction; this is the canonical two-op idiom,
  clobbering flags).

Data symbols are allocated sequential addresses starting at 0, in
declaration order.  ``symbol+n`` arithmetic is supported in operands.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.isa.program import Program
from repro.isa.spec import Flag, Instruction, MemOperand, Mnemonic, OP_TABLE, UNARY_OPS

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_BAR_OPERAND_RE = re.compile(r"^b(\d+):(.+)$")

#: Instruction-count cost of each pseudo-instruction.
_PSEUDO_SIZES = {"HALT": 1, "MOV": 2, "NOP": 1}


@dataclass
class _Line:
    number: int
    mnemonic: str
    operands: list[str]


def _parse_value(text: str, line: int) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad numeric value {text!r}", line) from None


def _parse_mask(text: str, line: int) -> int:
    """Flag mask: either a number or flag letters like ``CZ``."""
    text = text.strip()
    if re.fullmatch(r"[SZCVszcv]+", text):
        mask = 0
        for letter in text.upper():
            mask |= Flag[letter]
        return int(mask)
    value = _parse_value(text, line)
    if not 0 <= value <= 0xF:
        raise AssemblerError(f"flag mask {value} out of range", line)
    return value


class _Assembler:
    def __init__(self, source: str, name: str) -> None:
        self.source = source
        self.name = name
        self.width = 8
        self.bars = 2
        self.data_symbols: dict[str, int] = {}
        self.data_init: dict[int, int] = {}
        self.labels: dict[str, int] = {}
        self.lines: list[_Line] = []
        self._next_data = 0

    # -- pass 1: directives, data allocation, label addresses ------------

    def first_pass(self) -> None:
        pc = 0
        for number, raw in enumerate(self.source.splitlines(), start=1):
            text = raw.split(";", 1)[0].strip()
            if not text:
                continue
            match = _LABEL_RE.match(text)
            if match:
                label, text = match.group(1), match.group(2).strip()
                if label in self.labels:
                    raise AssemblerError(f"duplicate label {label!r}", number)
                self.labels[label] = pc
                if not text:
                    continue
            if text.startswith("."):
                self._directive(text, number)
                continue
            parts = text.split(None, 1)
            mnemonic = parts[0].upper()
            operands = (
                [p.strip() for p in parts[1].split(",")] if len(parts) > 1 else []
            )
            self.lines.append(_Line(number, mnemonic, operands))
            pc += _PSEUDO_SIZES.get(mnemonic, 1)

    def _directive(self, text: str, number: int) -> None:
        parts = text.split()
        directive = parts[0]
        if directive == ".width":
            self.width = _parse_value(parts[1], number)
        elif directive == ".bars":
            self.bars = _parse_value(parts[1], number)
        elif directive == ".word":
            if len(parts) < 2:
                raise AssemblerError(".word needs a name", number)
            self._allocate(parts[1], 1, number)
            if len(parts) > 2:
                self.data_init[self.data_symbols[parts[1]]] = _parse_value(
                    parts[2], number
                )
        elif directive == ".array":
            if len(parts) < 3:
                raise AssemblerError(".array needs a name and a length", number)
            self._allocate(parts[1], _parse_value(parts[2], number), number)
            for i, value in enumerate(parts[3:]):
                self.data_init[self.data_symbols[parts[1]] + i] = _parse_value(
                    value, number
                )
        else:
            raise AssemblerError(f"unknown directive {directive!r}", number)

    def _allocate(self, symbol: str, count: int, number: int) -> None:
        if symbol in self.data_symbols:
            raise AssemblerError(f"duplicate data symbol {symbol!r}", number)
        self.data_symbols[symbol] = self._next_data
        self._next_data += count

    # -- pass 2: emission --------------------------------------------------

    def second_pass(self) -> list[Instruction]:
        instructions: list[Instruction] = []
        for line in self.lines:
            instructions.extend(self._emit(line, pc=len(instructions)))
        return instructions

    def _emit(self, line: _Line, pc: int) -> list[Instruction]:
        mnemonic = line.mnemonic
        if mnemonic == "HALT":
            return [Instruction(Mnemonic.BRN, target=pc, mask=0)]
        if mnemonic == "NOP":
            # Branch-never: BR with empty mask.
            return [Instruction(Mnemonic.BR, target=pc, mask=0)]
        if mnemonic == "MOV":
            dst = self._operand(line.operands[0], line.number)
            src = self._operand(line.operands[1], line.number)
            return [
                Instruction(Mnemonic.XOR, dst=dst, src=dst),
                Instruction(Mnemonic.OR, dst=dst, src=src),
            ]
        try:
            member = Mnemonic(mnemonic)
        except ValueError:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line.number) from None

        spec = OP_TABLE[member]
        ops = line.operands
        if spec.fmt == "M":
            self._expect_operands(line, 2)
            return [
                Instruction(
                    member,
                    dst=self._operand(ops[0], line.number),
                    src=self._operand(ops[1], line.number),
                )
            ]
        if member is Mnemonic.STORE:
            self._expect_operands(line, 2)
            return [
                Instruction(
                    member,
                    dst=self._operand(ops[0], line.number),
                    imm=self._immediate(ops[1], line.number),
                )
            ]
        if member is Mnemonic.SETBAR:
            # SETBAR k, ptr -- load BAR[k] from the memory word `ptr`.
            self._expect_operands(line, 2)
            return [
                Instruction(
                    member,
                    bar_index=_parse_value(ops[0], line.number),
                    src=self._operand(ops[1], line.number),
                )
            ]
        # Branches.
        self._expect_operands(line, 2)
        target_text = ops[0]
        if target_text in self.labels:
            target = self.labels[target_text]
        else:
            target = _parse_value(target_text, line.number)
        return [
            Instruction(member, target=target, mask=_parse_mask(ops[1], line.number))
        ]

    def _expect_operands(self, line: _Line, count: int) -> None:
        if len(line.operands) != count:
            raise AssemblerError(
                f"{line.mnemonic} expects {count} operands, got {len(line.operands)}",
                line.number,
            )

    def _operand(self, text: str, number: int) -> MemOperand:
        text = text.strip()
        bar = 0
        match = _BAR_OPERAND_RE.match(text)
        if match:
            bar = int(match.group(1))
            text = match.group(2).strip()
        offset = self._resolve_address(text, number)
        return MemOperand(offset=offset, bar=bar)

    def _resolve_address(self, text: str, number: int) -> int:
        if "+" in text:
            base, _, extra = text.partition("+")
            return self._resolve_address(base.strip(), number) + _parse_value(
                extra, number
            )
        if text in self.data_symbols:
            return self.data_symbols[text]
        return _parse_value(text, number)

    def _immediate(self, text: str, number: int) -> int:
        text = text.strip()
        if text in self.data_symbols:
            # Allow `SETBAR 1, arr` to point a BAR at a symbol.
            return self.data_symbols[text]
        return _parse_value(text, number)


def assemble(source: str, name: str = "program", description: str = "") -> Program:
    """Assemble TP-ISA source text into a :class:`Program`.

    Raises:
        AssemblerError: On any syntax or range error, with the source
            line number attached.
    """
    assembler = _Assembler(source, name)
    assembler.first_pass()
    instructions = assembler.second_pass()
    return Program(
        name=name,
        instructions=instructions,
        datawidth=assembler.width,
        num_bars=assembler.bars,
        data=dict(assembler.data_init),
        symbols=dict(assembler.data_symbols),
        description=description,
    )
