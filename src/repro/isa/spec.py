"""TP-ISA specification: mnemonics, control bits, operand model.

Instruction formats (Figure 6), 24 bits each::

    M-type:  [23:20] opcode | [19] W [18] C [17] A [16] B | [15:8] operand1 | [7:0] operand2
    S-type:  same, operand2 is an immediate
    B-type:  same, operand2[3:0] is a flag mask

Operands of M-type instructions are data-memory references: the top
``log2(num_bars)`` bits select a base-address register (BAR) and the
remaining bits are an offset; the effective address is
``BAR[sel] + offset``.  ``BAR[0]`` is hardwired to zero (Section 5.2).

Control-bit meanings:

* **W** -- write the result back to memory (CMP/TEST/SET-BAR/branches
  clear it);
* **C** -- chain the architectural carry through the operation (ADC,
  SBB, RLC, RRC: the paper's *data coalescing* support for multi-word
  arithmetic on narrow cores);
* **A** -- alternate operation (subtract for the adder, arithmetic for
  right rotate, negate for branch);
* **B** -- branch marker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import IsaError


class Flag(enum.IntFlag):
    """Architectural flag bits and their positions in the 4-bit mask."""

    V = 1  # signed overflow
    C = 2  # carry / not-borrow
    Z = 4  # zero
    S = 8  # sign (MSB of result)


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one mnemonic.

    Attributes:
        opcode: 4-bit major opcode.
        w: Writeback control bit.
        c: Carry-chain control bit.
        a: Alternate-operation control bit.
        b: Branch-marker control bit.
        fmt: ``"M"`` (memory-memory), ``"S"`` (store/immediate) or
            ``"B"`` (branch).
        reads: Number of data-memory operands read (0-2).
        writes: Whether the instruction writes data memory.
    """

    opcode: int
    w: int
    c: int
    a: int
    b: int
    fmt: str
    reads: int
    writes: bool

    @property
    def control_bits(self) -> int:
        """The 4 control bits packed as W C A B (W = MSB)."""
        return (self.w << 3) | (self.c << 2) | (self.a << 1) | self.b


class Mnemonic(enum.Enum):
    """All nineteen TP-ISA instructions (Figure 6)."""

    ADD = "ADD"
    ADC = "ADC"
    SUB = "SUB"
    CMP = "CMP"
    SBB = "SBB"
    AND = "AND"
    TEST = "TEST"
    OR = "OR"
    XOR = "XOR"
    NOT = "NOT"
    RL = "RL"
    RLC = "RLC"
    RR = "RR"
    RRC = "RRC"
    RRA = "RRA"
    STORE = "STORE"
    SETBAR = "SETBAR"
    BR = "BR"
    BRN = "BRN"


# Major opcodes.
OP_ADD, OP_AND, OP_OR, OP_XOR, OP_NOT, OP_RL, OP_RR = range(7)
OP_STORE, OP_BAR, OP_BR = 7, 8, 9

#: Per-mnemonic specification, following Figure 6's control encodings.
OP_TABLE: dict[Mnemonic, OpSpec] = {
    Mnemonic.ADD: OpSpec(OP_ADD, 1, 0, 0, 0, "M", 2, True),
    Mnemonic.ADC: OpSpec(OP_ADD, 1, 1, 0, 0, "M", 2, True),
    Mnemonic.SUB: OpSpec(OP_ADD, 1, 0, 1, 0, "M", 2, True),
    Mnemonic.CMP: OpSpec(OP_ADD, 0, 0, 1, 0, "M", 2, False),
    Mnemonic.SBB: OpSpec(OP_ADD, 1, 1, 1, 0, "M", 2, True),
    Mnemonic.AND: OpSpec(OP_AND, 1, 0, 0, 0, "M", 2, True),
    Mnemonic.TEST: OpSpec(OP_AND, 0, 0, 0, 0, "M", 2, False),
    Mnemonic.OR: OpSpec(OP_OR, 1, 0, 0, 0, "M", 2, True),
    Mnemonic.XOR: OpSpec(OP_XOR, 1, 0, 0, 0, "M", 2, True),
    Mnemonic.NOT: OpSpec(OP_NOT, 1, 0, 0, 0, "M", 1, True),
    Mnemonic.RL: OpSpec(OP_RL, 1, 0, 0, 0, "M", 1, True),
    Mnemonic.RLC: OpSpec(OP_RL, 1, 1, 0, 0, "M", 1, True),
    Mnemonic.RR: OpSpec(OP_RR, 1, 0, 0, 0, "M", 1, True),
    Mnemonic.RRC: OpSpec(OP_RR, 1, 1, 0, 0, "M", 1, True),
    Mnemonic.RRA: OpSpec(OP_RR, 1, 0, 1, 0, "M", 1, True),
    Mnemonic.STORE: OpSpec(OP_STORE, 1, 0, 0, 0, "S", 0, True),
    Mnemonic.SETBAR: OpSpec(OP_BAR, 0, 0, 0, 0, "S", 1, False),
    Mnemonic.BR: OpSpec(OP_BR, 0, 0, 0, 1, "B", 0, False),
    Mnemonic.BRN: OpSpec(OP_BR, 0, 0, 1, 1, "B", 0, False),
}

#: Unary M-type operations (operand2 is the single source).
UNARY_OPS = frozenset(
    {Mnemonic.NOT, Mnemonic.RL, Mnemonic.RLC, Mnemonic.RR, Mnemonic.RRC, Mnemonic.RRA}
)

#: Operations that consume the architectural carry flag.
CARRY_CONSUMERS = frozenset(
    {Mnemonic.ADC, Mnemonic.SBB, Mnemonic.RLC, Mnemonic.RRC}
)


@dataclass(frozen=True)
class MemOperand:
    """A data-memory reference: BAR select plus offset.

    The effective address is ``BAR[bar] + offset``; ``bar=0`` addresses
    memory absolutely since ``BAR[0]`` is hardwired to zero.
    """

    offset: int
    bar: int = 0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise IsaError(f"negative operand offset {self.offset}")
        if self.bar < 0:
            raise IsaError(f"negative BAR index {self.bar}")


@dataclass(frozen=True)
class Instruction:
    """One decoded/constructed TP-ISA instruction.

    The operand fields are interpreted per format:

    * M-type: ``dst`` and ``src`` are :class:`MemOperand`.  Unary
      operations read only ``src`` and write ``dst``.
    * STORE: ``dst`` is a :class:`MemOperand`, ``imm`` the value.
    * SETBAR: ``bar_index`` (an immediate) selects the BAR; ``src`` is
      the *pointer address* -- the data-memory word whose value is
      loaded into the BAR.  This is what makes dynamic array indexing
      possible (Table 7's loop kernels run in ~32 instructions);
      loading a BAR with a constant is the two-instruction idiom
      ``STORE ptr, k`` + ``SETBAR n, ptr``.
    * BR/BRN: ``target`` is the absolute instruction address, ``mask``
      the flag mask tested (BR taken when ``flags & mask != 0``; BRN
      when ``flags & mask == 0``; ``BRN mask=0`` is an unconditional
      jump).
    """

    mnemonic: Mnemonic
    dst: MemOperand | None = None
    src: MemOperand | None = None
    imm: int | None = None
    target: int | None = None
    mask: int | None = None
    bar_index: int | None = None

    def __post_init__(self) -> None:
        spec = OP_TABLE[self.mnemonic]
        if spec.fmt == "M":
            if self.dst is None or self.src is None:
                raise IsaError(f"{self.mnemonic.value} needs dst and src operands")
        elif self.mnemonic is Mnemonic.STORE:
            if self.dst is None or self.imm is None:
                raise IsaError("STORE needs a destination and an immediate")
            if not 0 <= self.imm <= 0xFF:
                raise IsaError(f"STORE immediate {self.imm} out of 8-bit range")
        elif self.mnemonic is Mnemonic.SETBAR:
            if self.bar_index is None or self.src is None:
                raise IsaError("SETBAR needs a BAR index and a pointer address")
            if self.src.bar != 0:
                raise IsaError("SETBAR pointer address must be absolute (BAR 0)")
            if self.bar_index == 0:
                raise IsaError("BAR[0] is hardwired to zero and cannot be set")
            if not 0 <= self.bar_index <= 0xFF:
                raise IsaError(f"BAR index {self.bar_index} out of range")
        else:  # branch
            if self.target is None or self.mask is None:
                raise IsaError(f"{self.mnemonic.value} needs a target and a mask")
            if not 0 <= self.target <= 0xFF:
                raise IsaError(f"branch target {self.target} out of 8-bit PC range")
            if not 0 <= self.mask <= 0xF:
                raise IsaError(f"flag mask {self.mask} out of 4-bit range")

    @property
    def spec(self) -> OpSpec:
        """The static :class:`OpSpec` for this mnemonic."""
        return OP_TABLE[self.mnemonic]

    @property
    def is_branch(self) -> bool:
        return self.spec.b == 1

    def memory_reads(self) -> list[MemOperand]:
        """Memory operands this instruction reads."""
        if self.mnemonic is Mnemonic.SETBAR:
            return [self.src]
        if self.spec.fmt != "M":
            return []
        if self.mnemonic in UNARY_OPS:
            return [self.src]
        return [self.dst, self.src]

    def memory_write(self) -> MemOperand | None:
        """Memory operand this instruction writes, if any."""
        return self.dst if self.spec.writes else None


#: One-line ISA summary used in reports.
ISA_DESCRIPTION = (
    "TP-ISA: 24-bit two-operand memory-memory ISA; 8-bit PC, "
    "1+ base-address registers (BAR[0]=0), 4 flags (S Z C V); "
    "19 instructions incl. carry-chained data-coalescing ops"
)
