"""TP-ISA: the paper's Tiny Printed instruction set architecture.

TP-ISA (Section 5.1, Figure 6) is a two-operand, memory-memory ISA
designed for printed microprocessors: no general-purpose registers
(DFFs are prohibitively expensive in printed technologies), 24-bit
fixed-width instructions, up to 256 words of data memory addressed
through base-address registers (BARs), and a 4-bit flag register
(S, Z, C, V).

This package provides the specification (:mod:`repro.isa.spec`),
binary encoding/decoding (:mod:`repro.isa.encoding`), a two-pass text
assembler (:mod:`repro.isa.assembler`), a disassembler, program
containers, and the static analysis that derives program-specific ISA
variants (Section 7, Table 7).
"""

from repro.isa.spec import (
    Flag,
    Mnemonic,
    Instruction,
    MemOperand,
    ISA_DESCRIPTION,
)
from repro.isa.program import Program
from repro.isa.encoding import encode, decode, INSTRUCTION_BITS
from repro.isa.assembler import assemble
from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.analysis import ProgramSpecificIsa, analyze_program

__all__ = [
    "Flag",
    "Mnemonic",
    "Instruction",
    "MemOperand",
    "ISA_DESCRIPTION",
    "Program",
    "encode",
    "decode",
    "INSTRUCTION_BITS",
    "assemble",
    "disassemble",
    "disassemble_program",
    "ProgramSpecificIsa",
    "analyze_program",
]
