"""Disassembler: instructions back to canonical assembly text."""

from __future__ import annotations

from repro.isa.program import Program
from repro.isa.spec import Flag, Instruction, MemOperand, Mnemonic, UNARY_OPS


def _operand_text(operand: MemOperand) -> str:
    if operand.bar:
        return f"b{operand.bar}:{operand.offset}"
    return str(operand.offset)


def _mask_text(mask: int) -> str:
    if mask == 0:
        return "0"
    letters = [flag.name for flag in (Flag.S, Flag.Z, Flag.C, Flag.V) if mask & flag]
    return "".join(letters)


def disassemble(instruction: Instruction) -> str:
    """Render one instruction as assembly text."""
    mnemonic = instruction.mnemonic
    name = mnemonic.value
    if mnemonic is Mnemonic.STORE:
        return f"STORE {_operand_text(instruction.dst)}, {instruction.imm}"
    if mnemonic is Mnemonic.SETBAR:
        return f"SETBAR {instruction.bar_index}, {_operand_text(instruction.src)}"
    if instruction.is_branch:
        return f"{name} {instruction.target}, {_mask_text(instruction.mask)}"
    return f"{name} {_operand_text(instruction.dst)}, {_operand_text(instruction.src)}"


def disassemble_program(program: Program) -> str:
    """Render a whole program, one addressed line per instruction."""
    lines = [f"; {program.name}: {program.description}".rstrip(": ")]
    lines.append(f".width {program.datawidth}")
    lines.append(f".bars {program.num_bars}")
    for address, instruction in enumerate(program.instructions):
        lines.append(f"{address:4d}:  {disassemble(instruction)}")
    return "\n".join(lines) + "\n"
