"""Reproduction of "Printed Microprocessors" (ISCA 2020).

A full-system Python implementation of the paper's printed-electronics
microprocessor study: standard-cell libraries for the EGFET and
CNT-TFT printing technologies, a gate-level synthesis/timing/power
substrate, the TP-ISA instruction set with toolchain and simulators, a
parametric core generator verified by gate-level co-simulation,
printed memory and battery models, the four baseline microprocessors,
and harnesses regenerating every table and figure.

Most users start from:

* :func:`repro.isa.assemble` / :class:`repro.sim.Machine` -- write and
  run TP-ISA programs;
* :class:`repro.coregen.CoreConfig` /
  :func:`repro.coregen.generate_core` -- elaborate printable cores;
* :func:`repro.eval.evaluate_system` -- full-system PPA of a program
  on a core with right-sized memories;
* :mod:`repro.eval.tables` / :mod:`repro.eval.figures` -- regenerate
  the paper's results (or ``python -m repro table8`` from a shell).
"""

from repro.isa import assemble, Program
from repro.sim import Machine
from repro.coregen import CoreConfig, generate_core
from repro.eval import evaluate_system
from repro.pdk import egfet_library, cnt_tft_library

__version__ = "1.0.0"

__all__ = [
    "assemble",
    "Program",
    "Machine",
    "CoreConfig",
    "generate_core",
    "evaluate_system",
    "egfet_library",
    "cnt_tft_library",
    "__version__",
]
