"""Printed batteries and duty-cycled lifetime modeling (Figures 4-5)."""

from repro.power.battery import PRINTED_BATTERIES, PrintedBattery
from repro.power.lifetime import lifetime_hours, lifetime_curve, max_iterations

__all__ = [
    "PRINTED_BATTERIES",
    "PrintedBattery",
    "lifetime_hours",
    "lifetime_curve",
    "max_iterations",
]
