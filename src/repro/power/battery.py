"""Printed battery catalogue (Section 4).

The paper evaluates four commercially available printed batteries:
Molex 90 mAh, Blue Spark 30 mAh, Zinergy 12 mAh, and Blue Spark
10 mAh.  Capacity is stored as energy at the battery's nominal voltage
(the paper's budget arithmetic: "30 mA x 3.6 ks x 1 V" = 108 J), and
each battery also has a maximum continuous output power -- several
printed batteries cannot source more than ~30 mW, which is why
pre-existing cores "require multiple batteries to run at nominal
frequency".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import mAh, mW


@dataclass(frozen=True)
class PrintedBattery:
    """One printed battery.

    Attributes:
        name: Product name.
        capacity_mah: Rated capacity in mAh.
        voltage: Nominal output voltage in volts.
        max_power: Maximum continuous output power in watts.
    """

    name: str
    capacity_mah: float
    voltage: float
    max_power: float

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage <= 0 or self.max_power <= 0:
            raise ConfigError(f"battery {self.name}: non-positive rating")

    @property
    def energy(self) -> float:
        """Stored energy in joules at the nominal voltage."""
        return mAh(self.capacity_mah, self.voltage)

    def can_power(self, load_watts: float) -> bool:
        """Whether one battery can source ``load_watts`` continuously."""
        return load_watts <= self.max_power

    def batteries_needed(self, load_watts: float) -> int:
        """How many batteries in parallel the load needs."""
        count = 1
        while load_watts > count * self.max_power:
            count += 1
        return count


#: The four batteries of Figures 4-5 (max power per vendor datasheet
#: class: thin-film printed cells top out around 30 mW).
PRINTED_BATTERIES: tuple[PrintedBattery, ...] = (
    PrintedBattery("Molex 90 mAh", 90.0, 1.5, mW(45)),
    PrintedBattery("Blue Spark 30 mAh", 30.0, 1.5, mW(30)),
    PrintedBattery("Zinergy 12 mAh", 12.0, 1.5, mW(15)),
    PrintedBattery("Blue Spark 10 mAh", 10.0, 1.5, mW(10)),
)


def battery_by_name(name: str) -> PrintedBattery:
    """Look up one of the catalogue batteries by (partial) name."""
    for battery in PRINTED_BATTERIES:
        if name.lower() in battery.name.lower():
            return battery
    raise ConfigError(f"no printed battery matching {name!r}")


#: The paper's reference budget: a 30 mAh battery at 1 V stores 108 J.
REFERENCE_BUDGET_J = mAh(30, voltage=1.0)
