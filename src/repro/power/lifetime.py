"""Duty-cycled lifetime model (Figures 4 and 5).

A sensing application wakes the processor for a fixed active window
once per duty-cycle period; between activations the processor is power
gated (printed systems have no appreciable retention cost -- state
lives in the non-volatile ROM and the tiny RAM can be re-initialized).
Lifetime is then simply ``energy / average_power`` where average power
scales with the duty fraction.

The paper's Figure 4/5 x-axis is the duty-cycle *period* with a fixed
active window, sweeping effective duty fractions from 1.0 (continuous)
down to tiny values; at duty 1.0 every pre-existing core drains every
printed battery in under ~2 hours.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError
from repro.power.battery import PrintedBattery
from repro.units import to_hours


def average_power(active_power: float, duty_fraction: float, idle_power: float = 0.0) -> float:
    """Average power at a given duty fraction.

    Args:
        active_power: Power while the processor runs, in watts.
        duty_fraction: Fraction of time active (0 < f <= 1).
        idle_power: Power while gated (default 0).
    """
    if not 0.0 < duty_fraction <= 1.0:
        raise ConfigError(f"duty fraction {duty_fraction} out of (0, 1]")
    return active_power * duty_fraction + idle_power * (1.0 - duty_fraction)


def lifetime_hours(
    battery: PrintedBattery,
    active_power: float,
    duty_fraction: float = 1.0,
    idle_power: float = 0.0,
) -> float:
    """Battery lifetime in hours at the given duty cycle."""
    power = average_power(active_power, duty_fraction, idle_power)
    if power <= 0:
        return float("inf")
    return to_hours(battery.energy / power)


def lifetime_curve(
    battery: PrintedBattery,
    active_power: float,
    duty_fractions: Sequence[float],
    idle_power: float = 0.0,
) -> list[tuple[float, float]]:
    """(duty fraction, lifetime hours) series for one battery/core."""
    return [
        (fraction, lifetime_hours(battery, active_power, fraction, idle_power))
        for fraction in duty_fractions
    ]


def max_iterations(battery_energy: float, energy_per_iteration: float) -> int:
    """How many program iterations a battery can fund (Table 8)."""
    if energy_per_iteration <= 0:
        raise ConfigError("iteration energy must be positive")
    return int(battery_energy // energy_per_iteration)
