"""Printed-fabric placement and wire RC back-annotation.

The wire-blind PPA flow times and powers a netlist as if every net
were free; this package closes that gap.  :mod:`repro.place.fabric`
models the structured-ASIC printed substrate (fixed logic/sequential
slot grids, technology-scaled pitch), :mod:`repro.place.placer` places
a mapped netlist onto it (greedy seed-and-grow + deterministic
simulated annealing) and derives per-net wire RC from placed HPWL, and
:mod:`repro.place.layout` renders the result as a self-contained HTML
layout/heatmap page.  The RC annotation feeds straight back into
:func:`repro.netlist.sta.timing_report` and
:func:`repro.netlist.power.power_report` via their ``rc=`` parameter;
``rc=None`` stays the pinned wire-blind mode.

``python -m repro place CONFIGS... --fabric F --seed S --jobs N`` runs
the flow end to end.
"""

from repro.place.fabric import (
    DEFAULT_SEQ_EVERY,
    Fabric,
    FitReport,
    LOGIC_KIND,
    NAMED_FABRICS,
    SEQ_KIND,
    fabric_for,
    fit_report,
    named_fabric,
    slot_demand,
    slot_kind_for_cell,
)
from repro.place.layout import render_layout, write_layout
from repro.place.placer import (
    DEFAULT_SWEEPS,
    Placement,
    dependency_levels,
    net_lengths,
    place,
    rc_annotation,
    wire_aware_ppa,
)

__all__ = [
    "DEFAULT_SEQ_EVERY",
    "DEFAULT_SWEEPS",
    "Fabric",
    "FitReport",
    "LOGIC_KIND",
    "NAMED_FABRICS",
    "Placement",
    "SEQ_KIND",
    "dependency_levels",
    "fabric_for",
    "fit_report",
    "named_fabric",
    "net_lengths",
    "place",
    "rc_annotation",
    "render_layout",
    "slot_demand",
    "slot_kind_for_cell",
    "wire_aware_ppa",
    "write_layout",
]
