"""Two-stage placement: greedy seed-and-grow + simulated annealing.

The structured-ASIC recipe (SNIPPETS.md snippets 1-3): a constructive
initial placement ordered by dependency level -- flip-flops first
(level 0), then combinational cells level by level, each seeded at the
median of its already-placed drivers and grown onto the nearest free
compatible slot -- followed by simulated-annealing refinement that
swaps/moves cells between same-kind slots to minimize total
half-perimeter wirelength (HPWL).

Everything is deterministic given ``(netlist, fabric, seed)``: the
annealer draws from its own ``random.Random(seed)``, move evaluation
is incremental over the nets touching the moved cells, and the
best-seen placement is returned -- so the annealed HPWL is *never*
worse than the greedy one by construction.  Multi-config sweeps fan
placements out per config via :func:`repro.exec.parallel_map` (each
placement itself stays single-process), so ``--jobs`` cannot perturb
results.

The bridge back into PPA is :func:`net_lengths` /
:func:`rc_annotation`: placed HPWL per net, scaled by the technology's
per-metre wire constants, becomes the
:class:`~repro.netlist.load.RCAnnotation` that
:func:`repro.netlist.sta.timing_report` and the power reports consume.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro import obs
from repro.errors import PlacementError
from repro.netlist.core import CONST0, CONST1, Netlist
from repro.netlist.load import RCAnnotation, WireRC
from repro.netlist.sta import topological_order
from repro.pdk.cells import CellLibrary
from repro.place.fabric import Fabric, fit_report, slot_kind_for_cell

#: Annealing sweeps (each sweep proposes ``MOVES_PER_CELL * cells`` moves).
DEFAULT_SWEEPS = 10

#: Proposed moves per cell per sweep.
MOVES_PER_CELL = 4

#: Initial annealing temperature in slot units of HPWL delta.
_T_INITIAL = 3.0

#: Geometric cooling factor per sweep.
_T_ALPHA = 0.7

_PLACE_RUNS = obs.counter("place.runs")
_ANNEAL_MOVES = obs.counter("place.anneal.moves")
_ANNEAL_ACCEPTED = obs.counter("place.anneal.accepted")
_IMPROVEMENT = obs.histogram("place.improvement_pct")


@dataclass(frozen=True)
class Placement:
    """One placed design.

    Attributes:
        design: Netlist name.
        fabric: The fabric placed onto.
        seed: Annealing seed.
        locations: ``(row, col)`` per instance index.
        greedy_hpwl: Total HPWL of the constructive placement, metres.
        hpwl: Total HPWL after annealing, metres (never worse than
            ``greedy_hpwl``).
        anneal_moves: Moves proposed by the annealer.
        anneal_accepted: Moves accepted.
    """

    design: str
    fabric: Fabric
    seed: int
    locations: tuple[tuple[int, int], ...]
    greedy_hpwl: float
    hpwl: float
    anneal_moves: int
    anneal_accepted: int

    @property
    def improvement_pct(self) -> float:
        """Annealing HPWL improvement over greedy, in percent."""
        if self.greedy_hpwl <= 0.0:
            return 0.0
        return 100.0 * (self.greedy_hpwl - self.hpwl) / self.greedy_hpwl


class _NetModel:
    """Slot-unit geometry of a design's routable nets.

    Cells live at ``(x, y) = (col, row)``; primary-input pins sit one
    pitch off the west edge, primary-output pins one pitch off the
    east edge, each spread evenly along its edge in a deterministic
    (sorted bus name, then bit) order.  Nets tied to the constant
    rails and nets with fewer than two pins are unroutable and carry
    no length.
    """

    def __init__(self, netlist: Netlist, fabric: Fabric) -> None:
        self.netlist = netlist
        self.fabric = fabric
        self.fixed_pins: dict[int, list[tuple[float, float]]] = {}
        self._add_port_pins(netlist.inputs, x=-1.0)
        self._add_port_pins(netlist.outputs, x=float(fabric.cols))

        members: dict[int, list[int]] = {}
        self.inst_nets: list[tuple[int, ...]] = []
        for index, instance in enumerate(netlist.instances):
            touched: list[int] = []
            for net in (*instance.inputs, instance.output):
                if net in (CONST0, CONST1) or net in touched:
                    continue
                touched.append(net)
                members.setdefault(net, []).append(index)
            self.inst_nets.append(tuple(touched))

        # Only nets with >= 2 pins need routing; single-pin nets (an
        # unconsumed output) have zero extent by definition.
        self.net_members: dict[int, tuple[int, ...]] = {}
        for net, insts in members.items():
            if len(insts) + len(self.fixed_pins.get(net, ())) >= 2:
                self.net_members[net] = tuple(insts)
        self.routable = frozenset(self.net_members)

    def _add_port_pins(self, buses, x: float) -> None:
        pins = [
            net
            for name in sorted(buses)
            for net in buses[name].nets
            if net not in (CONST0, CONST1)
        ]
        if not pins:
            return
        spread = self.fabric.rows / len(pins)
        for index, net in enumerate(pins):
            y = (index + 0.5) * spread - 0.5
            self.fixed_pins.setdefault(net, []).append((x, y))

    def net_span(
        self, net: int, locations: list[tuple[int, int]]
    ) -> float:
        """HPWL of one net in slot units."""
        min_x = min_y = math.inf
        max_x = max_y = -math.inf
        for x, y in self.fixed_pins.get(net, ()):
            if x < min_x:
                min_x = x
            if x > max_x:
                max_x = x
            if y < min_y:
                min_y = y
            if y > max_y:
                max_y = y
        for index in self.net_members[net]:
            row, col = locations[index]
            if col < min_x:
                min_x = col
            if col > max_x:
                max_x = col
            if row < min_y:
                min_y = row
            if row > max_y:
                max_y = row
        return (max_x - min_x) + (max_y - min_y)

    def total_hpwl(self, locations: list[tuple[int, int]]) -> float:
        """Total HPWL over every routable net, slot units."""
        return sum(
            self.net_span(net, locations) for net in self.net_members
        )


def dependency_levels(netlist: Netlist) -> list[int]:
    """Per-instance dependency level: sequentials 0, combinational
    cells one past their deepest instance-driven input."""
    index_of = {id(inst): i for i, inst in enumerate(netlist.instances)}
    driver_of: dict[int, int] = {
        inst.output: i for i, inst in enumerate(netlist.instances)
    }
    levels = [0] * len(netlist.instances)
    for instance in topological_order(netlist):
        deepest = 0
        for net in instance.inputs:
            driver = driver_of.get(net)
            if driver is not None and levels[driver] + 1 > deepest:
                deepest = levels[driver] + 1
        levels[index_of[id(instance)]] = deepest
    return levels


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _nearest_free_slot(
    fabric: Fabric,
    occupied: dict[tuple[int, int], int],
    kind: str,
    target: tuple[float, float],
) -> tuple[int, int]:
    """Closest free slot of ``kind`` to ``target`` (expanding rings).

    Candidates at each Chebyshev radius are ranked by true squared
    distance then ``(row, col)``, so the search is deterministic.
    """
    t_row = min(max(target[1], 0.0), fabric.rows - 1.0)
    t_col = min(max(target[0], 0.0), fabric.cols - 1.0)
    centre_row, centre_col = int(round(t_row)), int(round(t_col))
    for radius in range(max(fabric.rows, fabric.cols) + 1):
        best: tuple[float, int, int] | None = None
        for d_row in range(-radius, radius + 1):
            row = centre_row + d_row
            if not 0 <= row < fabric.rows:
                continue
            cols = (
                range(centre_col - radius, centre_col + radius + 1)
                if abs(d_row) == radius
                else (centre_col - radius, centre_col + radius)
            )
            for col in cols:
                if not 0 <= col < fabric.cols:
                    continue
                if (row, col) in occupied:
                    continue
                if fabric.slot_kind(row, col) != kind:
                    continue
                dist = (row - t_row) ** 2 + (col - t_col) ** 2
                key = (dist, row, col)
                if best is None or key < best:
                    best = key
        if best is not None:
            return best[1], best[2]
    raise PlacementError(
        f"no free {kind!r} slot on fabric {fabric.name!r}"
    )


def _greedy_place(
    netlist: Netlist, fabric: Fabric, model: _NetModel
) -> list[tuple[int, int]]:
    """Seed-and-grow constructive placement by dependency level."""
    levels = dependency_levels(netlist)
    order = sorted(range(len(netlist.instances)), key=lambda i: (levels[i], i))
    centre = (fabric.cols / 2.0, fabric.rows / 2.0)
    occupied: dict[tuple[int, int], int] = {}
    locations: list[tuple[int, int] | None] = [None] * len(netlist.instances)
    for index in order:
        xs: list[float] = []
        ys: list[float] = []
        for net in model.inst_nets[index]:
            for x, y in model.fixed_pins.get(net, ()):
                xs.append(x)
                ys.append(y)
            for member in model.net_members.get(net, ()):
                placed = locations[member]
                if member != index and placed is not None:
                    ys.append(placed[0])
                    xs.append(placed[1])
        target = (_median(xs), _median(ys)) if xs else centre
        kind = slot_kind_for_cell(netlist.instances[index].cell)
        slot = _nearest_free_slot(fabric, occupied, kind, target)
        occupied[slot] = index
        locations[index] = slot
    return locations  # type: ignore[return-value]


def _anneal(
    netlist: Netlist,
    fabric: Fabric,
    model: _NetModel,
    locations: list[tuple[int, int]],
    seed: int,
    sweeps: int,
) -> tuple[list[tuple[int, int]], float, int, int]:
    """Refine ``locations`` in place; returns best placement seen.

    Classic Metropolis annealing over swap/relocate moves between
    same-kind slots, with incremental HPWL deltas over only the nets
    touching the moved cell(s) and geometric cooling.  Tracking the
    best-seen state guarantees the result never regresses below the
    constructive placement.
    """
    rng = random.Random(seed)
    count = len(netlist.instances)
    lengths = {net: model.net_span(net, locations) for net in model.net_members}
    cost = sum(lengths.values())
    slot_owner = {slot: index for index, slot in enumerate(locations)}
    kind_slots = {
        kind: fabric.slots_of_kind(kind) for kind in ("logic", "seq")
    }
    inst_kind = [
        slot_kind_for_cell(instance.cell) for instance in netlist.instances
    ]

    best = list(locations)
    best_cost = cost
    moves = accepted = 0
    temperature = _T_INITIAL
    for _ in range(max(0, sweeps)):
        for _ in range(MOVES_PER_CELL * count):
            moves += 1
            index = rng.randrange(count)
            kind = inst_kind[index]
            slots = kind_slots[kind]
            target = slots[rng.randrange(len(slots))]
            source = locations[index]
            if target == source:
                continue
            other = slot_owner.get(target)

            touched = list(model.inst_nets[index])
            if other is not None:
                for net in model.inst_nets[other]:
                    if net not in touched:
                        touched.append(net)
            touched = [net for net in touched if net in model.routable]
            before = sum(lengths[net] for net in touched)

            locations[index] = target
            if other is not None:
                locations[other] = source
            after_lengths = {
                net: model.net_span(net, locations) for net in touched
            }
            delta = sum(after_lengths.values()) - before

            if delta <= 0.0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-9)
            ):
                accepted += 1
                cost += delta
                lengths.update(after_lengths)
                slot_owner[target] = index
                if other is not None:
                    slot_owner[source] = other
                else:
                    del slot_owner[source]
                if cost < best_cost:
                    best_cost = cost
                    best = list(locations)
            else:
                locations[index] = source
                if other is not None:
                    locations[other] = target
        temperature *= _T_ALPHA
    return best, best_cost, moves, accepted


def place(
    netlist: Netlist,
    fabric: Fabric,
    seed: int = 0,
    sweeps: int = DEFAULT_SWEEPS,
) -> Placement:
    """Place ``netlist`` on ``fabric``; deterministic given ``seed``.

    Raises:
        PlacementError: When the design overflows the fabric (the
            message carries the :func:`~repro.place.fabric.fit_report`
            diagnostics).
    """
    with obs.span(
        "place", design=netlist.name, fabric=fabric.name, seed=seed
    ) as sp:
        fit = fit_report(netlist, fabric)
        if not fit.fits:
            raise PlacementError(
                f"design does not fit:\n{fit.render()}"
            )
        model = _NetModel(netlist, fabric)
        with obs.span("place.greedy", design=netlist.name):
            locations = _greedy_place(netlist, fabric, model)
            greedy_units = model.total_hpwl(locations)
        with obs.span("place.anneal", design=netlist.name):
            best, best_units, moves, accepted = _anneal(
                netlist, fabric, model, locations, seed, sweeps
            )
        pitch = fabric.pitch
        placement = Placement(
            design=netlist.name,
            fabric=fabric,
            seed=seed,
            locations=tuple(best),
            greedy_hpwl=greedy_units * pitch,
            hpwl=best_units * pitch,
            anneal_moves=moves,
            anneal_accepted=accepted,
        )
        _PLACE_RUNS.inc()
        _ANNEAL_MOVES.inc(moves)
        _ANNEAL_ACCEPTED.inc(accepted)
        _IMPROVEMENT.observe(placement.improvement_pct)
        sp.note(
            hpwl=placement.hpwl,
            improvement_pct=round(placement.improvement_pct, 2),
        )
        return placement


def net_lengths(netlist: Netlist, placement: Placement) -> dict[int, float]:
    """Routed length estimate (HPWL) per net in metres.

    Only routable nets (two or more pins, constants excluded) appear;
    everything else is a local tie with no wire.
    """
    model = _NetModel(netlist, placement.fabric)
    locations = list(placement.locations)
    pitch = placement.fabric.pitch
    return {
        net: model.net_span(net, locations) * pitch
        for net in sorted(model.net_members)
    }


def rc_annotation(
    netlist: Netlist,
    placement: Placement,
    library: CellLibrary,
) -> RCAnnotation:
    """Per-net wire RC from placed HPWL and the library's constants.

    ``R_net = wire_resistance * L``, ``C_net = wire_capacitance * L``
    with ``L`` the placed HPWL in metres -- the back-annotation that
    :func:`repro.netlist.sta.timing_report` and the power reports
    consume via their ``rc=`` parameter.
    """
    nets = {
        net: WireRC(
            resistance=library.wire_resistance * length,
            capacitance=library.wire_capacitance * length,
            length=length,
        )
        for net, length in net_lengths(netlist, placement).items()
        if length > 0.0
    }
    return RCAnnotation(
        source=f"place:{placement.fabric.name}:seed{placement.seed}",
        nets=nets,
    )


def wire_aware_ppa(
    netlist: Netlist,
    placement: Placement,
    library: CellLibrary,
) -> dict:
    """Wire-blind vs wire-aware PPA for one placed design.

    Runs STA and flat-activity power twice -- once in the pinned
    ``rc=None`` mode, once with the placement's RC annotation -- and
    reports both plus the relative overheads.  Wire parasitics only
    ever add load and delay, so the aware numbers are >= the blind
    ones on every design.
    """
    from repro.netlist.power import power_report
    from repro.netlist.sta import timing_report

    rc = rc_annotation(netlist, placement, library)
    blind_timing = timing_report(netlist, library)
    aware_timing = timing_report(netlist, library, rc=rc)
    blind_power = power_report(netlist, library)
    aware_power = power_report(netlist, library, rc=rc)

    def _overhead(aware: float, blind: float) -> float:
        return 100.0 * (aware - blind) / blind if blind > 0.0 else 0.0

    return {
        "design": netlist.name,
        "technology": library.name,
        "fabric": placement.fabric.name,
        "seed": placement.seed,
        "hpwl_m": placement.hpwl,
        "total_wirelength_m": rc.total_wirelength,
        "wire_blind": {
            "critical_path_delay": blind_timing.critical_path_delay,
            "fmax": blind_timing.fmax,
            "energy_per_cycle": blind_power.energy_per_cycle,
        },
        "wire_aware": {
            "critical_path_delay": aware_timing.critical_path_delay,
            "fmax": aware_timing.fmax,
            "energy_per_cycle": aware_power.energy_per_cycle,
            "wire_energy": aware_power.wire_energy,
        },
        "delay_overhead_pct": _overhead(
            aware_timing.critical_path_delay, blind_timing.critical_path_delay
        ),
        "energy_overhead_pct": _overhead(
            aware_power.energy_per_cycle, blind_power.energy_per_cycle
        ),
    }
