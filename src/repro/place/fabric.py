"""Printed fabrics: fixed-slot SASIC-style substrates.

The paper's cores are printed as sheets of standard cells; a
*fabric* models the structured-ASIC version of that substrate -- a
``rows x cols`` grid of pre-printed cell slots in which placement may
only assign compatible cells to compatible slots.  Two slot kinds
exist, mirroring the cost cliff the paper builds its architecture
argument on: ``"logic"`` slots take any combinational or tristate
cell, ``"seq"`` slots take flip-flops and latches (which are several
times larger, so the fabric provisions them sparsely -- every
``seq_every``-th column).

Geometry is technology-scaled: the slot pitch is the side of the
largest cell in the technology's library (EGFET slots are mm-scale,
CNT-TFT slots ~8x smaller), so the same ``small`` fabric names a
physically different sheet per technology and all derived wirelengths
are in metres.

:func:`fit_report` answers "does p3_16_4 fit on fabric F?" with
per-kind demand/capacity/utilization diagnostics; the placer refuses
to place an overflowing design and carries that report in the raised
:class:`~repro.errors.PlacementError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from math import ceil, sqrt

from repro.errors import PlacementError
from repro.netlist.core import Netlist, SEQUENTIAL_CELLS
from repro.pdk import canonical_technology, technology_library

#: Slot kind accepting combinational and tristate cells.
LOGIC_KIND = "logic"

#: Slot kind accepting flip-flops and latches.
SEQ_KIND = "seq"

#: Default spacing of sequential-slot columns.
DEFAULT_SEQ_EVERY = 8

#: Named fabric geometries (rows, cols), shared by both technologies.
NAMED_FABRICS = {
    "small": (24, 24),
    "medium": (48, 48),
    "large": (96, 96),
}


def slot_kind_for_cell(cell: str) -> str:
    """The slot kind instances of library cell ``cell`` must occupy."""
    return SEQ_KIND if cell in SEQUENTIAL_CELLS else LOGIC_KIND


@dataclass(frozen=True)
class Fabric:
    """A fixed-slot printed substrate.

    Attributes:
        name: Fabric label (``"small"``, ``"auto28x28"``, ...).
        technology: Canonical technology name (``"EGFET"``/``"CNT"``),
            which sets the slot pitch.
        rows: Slot rows.
        cols: Slot columns.
        seq_every: Every ``seq_every``-th column holds sequential
            slots; all other columns hold logic slots.
    """

    name: str
    technology: str
    rows: int
    cols: int
    seq_every: int = DEFAULT_SEQ_EVERY

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise PlacementError(
                f"fabric {self.name!r}: needs at least one row and column"
            )
        if self.seq_every < 2:
            raise PlacementError(
                f"fabric {self.name!r}: seq_every must be >= 2"
            )
        object.__setattr__(
            self, "technology", canonical_technology(self.technology)
        )

    @cached_property
    def pitch(self) -> float:
        """Slot pitch in metres: side of the technology's largest cell."""
        library = technology_library(self.technology)
        return sqrt(max(cell.area for cell in library))

    def slot_kind(self, row: int, col: int) -> str:
        """Kind of the slot at ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise PlacementError(
                f"fabric {self.name!r}: slot ({row}, {col}) out of range"
            )
        if col % self.seq_every == self.seq_every - 1:
            return SEQ_KIND
        return LOGIC_KIND

    def capacity(self) -> dict[str, int]:
        """Slot count per kind."""
        seq_cols = sum(
            1
            for col in range(self.cols)
            if col % self.seq_every == self.seq_every - 1
        )
        seq = self.rows * seq_cols
        return {LOGIC_KIND: self.rows * self.cols - seq, SEQ_KIND: seq}

    def slots_of_kind(self, kind: str) -> list[tuple[int, int]]:
        """Every ``(row, col)`` of ``kind``, row-major order."""
        return [
            (row, col)
            for row in range(self.rows)
            for col in range(self.cols)
            if self.slot_kind(row, col) == kind
        ]

    def position(self, row: int, col: int) -> tuple[float, float]:
        """Slot-centre ``(x, y)`` coordinates in metres."""
        return ((col + 0.5) * self.pitch, (row + 0.5) * self.pitch)

    @property
    def die_area(self) -> float:
        """Sheet area in m^2."""
        return self.rows * self.cols * self.pitch * self.pitch


def named_fabric(
    name: str,
    technology: str = "EGFET",
    seq_every: int = DEFAULT_SEQ_EVERY,
) -> Fabric:
    """One of the :data:`NAMED_FABRICS` geometries, technology-scaled."""
    try:
        rows, cols = NAMED_FABRICS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_FABRICS))
        raise PlacementError(
            f"unknown fabric {name!r} (known: {known}, or 'auto')"
        ) from None
    return Fabric(
        name=name, technology=technology, rows=rows, cols=cols,
        seq_every=seq_every,
    )


def slot_demand(netlist: Netlist) -> dict[str, int]:
    """Slots the design needs, per kind."""
    demand = {LOGIC_KIND: 0, SEQ_KIND: 0}
    for instance in netlist.instances:
        demand[slot_kind_for_cell(instance.cell)] += 1
    return demand


def fabric_for(
    netlist: Netlist,
    technology: str = "EGFET",
    utilization: float = 0.8,
    seq_every: int = DEFAULT_SEQ_EVERY,
) -> Fabric:
    """Smallest square fabric fitting ``netlist`` at ``utilization``.

    Grows the side length until both slot kinds fit with headroom --
    the ``--fabric auto`` mode of the placement CLI.
    """
    if not 0.0 < utilization <= 1.0:
        raise PlacementError(f"utilization must be in (0, 1], got {utilization}")
    demand = slot_demand(netlist)
    total = max(1, sum(demand.values()))
    side = max(seq_every, ceil(sqrt(total / utilization)))
    while True:
        fabric = Fabric(
            name=f"auto{side}x{side}", technology=technology,
            rows=side, cols=side, seq_every=seq_every,
        )
        capacity = fabric.capacity()
        if all(
            demand[kind] <= utilization * capacity[kind] for kind in demand
        ):
            return fabric
        side += 1


@dataclass(frozen=True)
class FitReport:
    """Fit diagnostics for one design on one fabric.

    Attributes:
        design: Netlist name.
        fabric: Fabric name.
        technology: Canonical technology name.
        demand: Slots needed per kind.
        capacity: Slots available per kind.
    """

    design: str
    fabric: str
    technology: str
    demand: dict[str, int]
    capacity: dict[str, int]

    @property
    def overflow(self) -> dict[str, int]:
        """Slots missing per kind (0 where the kind fits)."""
        return {
            kind: max(0, self.demand[kind] - self.capacity.get(kind, 0))
            for kind in self.demand
        }

    @property
    def utilization(self) -> dict[str, float]:
        """Demand / capacity per kind (``inf`` for absent kinds)."""
        return {
            kind: (
                self.demand[kind] / self.capacity[kind]
                if self.capacity.get(kind)
                else float("inf")
            )
            for kind in self.demand
        }

    @property
    def fits(self) -> bool:
        """Whether every slot kind fits."""
        return not any(self.overflow.values())

    def render(self) -> str:
        """Human-readable fit table with overflow diagnostics."""
        verdict = "fits" if self.fits else "OVERFLOW"
        lines = [
            f"fit: {self.design} on {self.fabric} "
            f"({self.technology}): {verdict}"
        ]
        for kind in sorted(self.demand):
            util = self.utilization[kind]
            util_text = f"{100.0 * util:.1f}%" if util != float("inf") else "n/a"
            line = (
                f"  {kind:<5} {self.demand[kind]:>5} / "
                f"{self.capacity.get(kind, 0):>5} slots ({util_text})"
            )
            missing = self.overflow[kind]
            if missing:
                line += f"  -- {missing} slot(s) short"
            lines.append(line)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form for run reports."""
        return {
            "design": self.design,
            "fabric": self.fabric,
            "technology": self.technology,
            "fits": self.fits,
            "demand": dict(self.demand),
            "capacity": dict(self.capacity),
            "overflow": self.overflow,
            "utilization": {
                kind: round(value, 4) if value != float("inf") else None
                for kind, value in self.utilization.items()
            },
        }


def fit_report(netlist: Netlist, fabric: Fabric) -> FitReport:
    """Per-kind demand vs capacity of ``netlist`` on ``fabric``."""
    return FitReport(
        design=netlist.name,
        fabric=fabric.name,
        technology=fabric.technology,
        demand=slot_demand(netlist),
        capacity=fabric.capacity(),
    )
