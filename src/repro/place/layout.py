"""Self-contained HTML view of one placement.

Renders a :class:`~repro.place.placer.Placement` into a single static
HTML file in the dashboard's visual style (:mod:`repro.obs.dashboard`):
two inline-SVG panels -- a module map coloring every occupied slot by
the module that owns its cell, and a wire-pressure heatmap shading each
slot by the total placed HPWL of the nets its cell touches -- plus the
fit table and headline placement stats.  Zero third-party dependencies
and **byte-deterministic given a placement**: no timestamps, stable
sort orders, one fixed float format (``%.6g``).
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.netlist.core import Netlist
from repro.netlist.probe import module_map
from repro.place.fabric import SEQ_KIND, fit_report
from repro.place.placer import Placement, _NetModel, net_lengths

#: Slot cell size (px) in the SVG panels.
_SLOT_PX = 12

#: Gap between slots (px).
_GAP_PX = 2

#: Fixed module palette, assigned to sorted module names round-robin.
_PALETTE = (
    "#2a78d6", "#d03b3b", "#006300", "#b8860b", "#7b3fb2",
    "#0c8f8f", "#c2521f", "#5f5fd3", "#8f0c5c", "#4d6b1f",
)

_CSS = """\
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --ring: rgba(11,11,11,0.10);
  --heat: #d03b3b; --empty: rgba(11,11,11,0.04);
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --ring: rgba(255,255,255,0.10);
    --heat: #e66767; --empty: rgba(255,255,255,0.06);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.panels { display: flex; flex-wrap: wrap; gap: 24px; }
.panel {
  background: var(--surface); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 14px;
}
.legend { margin: 8px 0 0; font-size: 12px; color: var(--ink-2); }
.legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin: 0 4px 0 10px;
}
table { border-collapse: collapse; background: var(--surface); }
th, td {
  text-align: left; padding: 4px 12px; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 600; }
svg .slot-empty { fill: var(--empty); }
svg .slot-seq-empty { fill: var(--empty); stroke: var(--grid); }
svg .heat { fill: var(--heat); }
"""


def _fmt(value: float) -> str:
    """One fixed, deterministic number format for the whole page."""
    if isinstance(value, int) and not isinstance(value, bool):
        return str(value)
    return f"{value:.6g}"


def _slot_rect(row: int, col: int, extra: str) -> str:
    x = col * (_SLOT_PX + _GAP_PX)
    y = row * (_SLOT_PX + _GAP_PX)
    return (
        f'<rect x="{x}" y="{y}" width="{_SLOT_PX}" height="{_SLOT_PX}" '
        f'rx="2" {extra}/>'
    )


def _grid_svg(fabric, body: list[str]) -> str:
    width = fabric.cols * (_SLOT_PX + _GAP_PX) - _GAP_PX
    height = fabric.rows * (_SLOT_PX + _GAP_PX) - _GAP_PX
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        + "".join(body)
        + "</svg>"
    )


def _empty_rects(fabric, occupied: set) -> list[str]:
    rects = []
    for row in range(fabric.rows):
        for col in range(fabric.cols):
            if (row, col) in occupied:
                continue
            cls = (
                "slot-seq-empty"
                if fabric.slot_kind(row, col) == SEQ_KIND
                else "slot-empty"
            )
            rects.append(_slot_rect(row, col, f'class="{cls}"'))
    return rects


def render_layout(netlist: Netlist, placement: Placement) -> str:
    """The placement as one self-contained HTML page."""
    fabric = placement.fabric
    modules = module_map(netlist)
    palette = {
        name: _PALETTE[index % len(_PALETTE)]
        for index, name in enumerate(sorted(set(modules)))
    }
    occupied = set(placement.locations)

    module_rects = _empty_rects(fabric, occupied)
    for index, (row, col) in enumerate(placement.locations):
        instance = netlist.instances[index]
        tip = html.escape(
            f"{modules[index]} {instance.cell} @ ({row}, {col})"
        )
        module_rects.append(
            _slot_rect(
                row, col,
                f'fill="{palette[modules[index]]}"><title>{tip}</title',
            )
        )

    # Wire pressure: total placed HPWL of the nets each cell touches.
    lengths = net_lengths(netlist, placement)
    model = _NetModel(netlist, fabric)
    pressure = [
        sum(lengths.get(net, 0.0) for net in nets)
        for nets in model.inst_nets
    ]
    peak = max(pressure, default=0.0) or 1.0
    heat_rects = _empty_rects(fabric, occupied)
    for index, (row, col) in enumerate(placement.locations):
        opacity = 0.08 + 0.92 * pressure[index] / peak
        tip = html.escape(
            f"{netlist.instances[index].cell} @ ({row}, {col}): "
            f"{_fmt(pressure[index])} m"
        )
        heat_rects.append(
            _slot_rect(
                row, col,
                f'class="heat" fill-opacity="{opacity:.3f}">'
                f"<title>{tip}</title",
            )
        )

    legend = "".join(
        f'<span class="swatch" style="background:{palette[name]}"></span>'
        f"{html.escape(name)}"
        for name in sorted(palette)
    )

    fit = fit_report(netlist, fabric)
    stats = [
        ("fabric", f"{fabric.name} ({fabric.rows}x{fabric.cols}, "
                   f"{fabric.technology})"),
        ("slot pitch", f"{_fmt(fabric.pitch)} m"),
        ("seed", str(placement.seed)),
        ("greedy HPWL", f"{_fmt(placement.greedy_hpwl)} m"),
        ("annealed HPWL", f"{_fmt(placement.hpwl)} m"),
        ("improvement", f"{_fmt(placement.improvement_pct)}%"),
        ("anneal moves", f"{placement.anneal_accepted} accepted / "
                         f"{placement.anneal_moves} proposed"),
        ("total wirelength", f"{_fmt(sum(lengths.values()))} m"),
    ]
    stat_rows = "".join(
        f"<tr><th>{html.escape(key)}</th><td>{html.escape(value)}</td></tr>"
        for key, value in stats
    )
    fit_rows = "".join(
        f"<tr><td>{html.escape(kind)}</td>"
        f"<td>{fit.demand[kind]}</td><td>{fit.capacity[kind]}</td>"
        f"<td>{_fmt(100.0 * fit.utilization[kind])}%</td></tr>"
        for kind in sorted(fit.demand)
    )

    title = html.escape(f"{placement.design} on {fabric.name}")
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>layout: {title}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>layout: {title}</h1>
<p class="sub">printed-fabric placement &mdash; hover a slot for its
cell; sequential columns are outlined.</p>
<div class="panels">
<div class="panel"><h2>module map</h2>
{_grid_svg(fabric, module_rects)}
<p class="legend">{legend}</p></div>
<div class="panel"><h2>wire pressure</h2>
{_grid_svg(fabric, heat_rects)}
<p class="legend">opacity &prop; total placed HPWL of the nets each
cell touches</p></div>
<div class="panel"><h2>placement</h2>
<table>{stat_rows}</table>
<h2>fit</h2>
<table><tr><th>kind</th><th>demand</th><th>capacity</th>
<th>utilization</th></tr>{fit_rows}</table></div>
</div>
</body>
</html>
"""


def write_layout(
    netlist: Netlist, placement: Placement, path: str | Path
) -> Path:
    """Render and write the layout page; returns the path."""
    out = Path(path)
    out.write_text(render_layout(netlist, placement), encoding="utf-8")
    return out
