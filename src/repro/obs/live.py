"""Live telemetry bus: in-process pub/sub for a long-running service.

The rest of :mod:`repro.obs` is *post-hoc*: spans, metrics, and run
reports only become visible when the process exits and writes its
artifacts.  A long-running server (``python -m repro serve``) needs the
same telemetry *live* — jobs in flight, progress rates, spans as they
close — so this module adds one **bus** the existing instrumentation
sites publish into when (and only when) a bus is active:

* **off by default, one branch per site when off** — the hooks in
  :mod:`repro.obs.trace` / :mod:`repro.obs.progress` /
  :mod:`repro.obs.report` / :mod:`repro.obs.history` read the module
  global :data:`ACTIVE` and return when it is ``None``, the same
  contract the obs switch itself follows;
* **bounded everywhere** — the bus keeps a bounded ring of recent
  events (:meth:`LiveBus.recent` serves late-joining dashboards), and
  every subscriber owns a *bounded* queue: a slow consumer drops its
  oldest events (counted per subscription and in the
  ``live.events_dropped`` metric) instead of ever blocking a
  publisher;
* **taps** — synchronous callbacks for in-process consumers (the serve
  job table folds ``progress`` events into per-job ETA this way)
  that must never throw into an instrumentation site;
* **periodic snapshot deltas** — :class:`SnapshotTicker` publishes a
  ``metrics`` event every interval carrying only the series that
  *changed* since the previous tick, so SSE streams and the live
  status page get cheap incremental registry updates.

Event shape (JSON-serializable): ``{"seq": int, "ts": epoch_seconds,
"kind": str, "data": {...}}`` with ``kind`` one of ``span`` / ``spans``
(worker batch summaries) / ``progress`` / ``metrics`` / ``report`` /
``ledger`` / ``job`` / ``shutdown``.  See ``docs/SERVE.md``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Sequence

from repro.obs.metrics import REGISTRY, counter as _obs_counter
from repro.obs.metrics import flatten_snapshot

_PUBLISHED = _obs_counter("live.events_published")
_DROPPED = _obs_counter("live.events_dropped")

#: Recent events kept in the bus ring (late-joiner catch-up window).
DEFAULT_BUFFER = 512

#: Per-subscription bounded queue size (events, not bytes).
DEFAULT_QUEUE = 256


class Subscription:
    """One consumer's bounded event queue (drop-oldest on overflow).

    Producers call :meth:`put` (never blocks); the consumer loops on
    :meth:`get`, which waits up to ``timeout`` seconds and drains every
    queued event at once.  ``dropped`` counts events this subscriber
    lost to its own bound — the serve SSE handler reports it so a slow
    client can tell its stream has holes.
    """

    __slots__ = ("maxlen", "dropped", "closed", "_events", "_cond")

    def __init__(self, maxlen: int = DEFAULT_QUEUE) -> None:
        self.maxlen = max(1, int(maxlen))
        self.dropped = 0
        self.closed = False
        self._events: deque = deque()
        self._cond = threading.Condition()

    def put(self, event: dict) -> None:
        """Enqueue one event; drop the oldest (and count) when full."""
        with self._cond:
            if self.closed:
                return
            if len(self._events) >= self.maxlen:
                self._events.popleft()
                self.dropped += 1
                _DROPPED.inc()
            self._events.append(event)
            self._cond.notify_all()

    def get(self, timeout: float | None = None) -> list[dict]:
        """Every queued event (oldest first); ``[]`` on timeout/close."""
        with self._cond:
            if not self._events and not self.closed:
                self._cond.wait(timeout)
            events = list(self._events)
            self._events.clear()
            return events

    def close(self) -> None:
        """Wake the consumer and refuse further events."""
        with self._cond:
            self.closed = True
            self._cond.notify_all()


class LiveBus:
    """Thread-safe fan-out of telemetry events to bounded consumers."""

    def __init__(self, buffer: int = DEFAULT_BUFFER) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._recent: deque = deque(maxlen=max(1, int(buffer)))
        self._subs: list[Subscription] = []
        self._taps: list[Callable[[dict], None]] = []

    # -- publishing --------------------------------------------------------

    def publish(self, kind: str, data: dict) -> dict:
        """Stamp, buffer, and fan one event out; returns the event.

        Never blocks and never raises into the instrumentation site:
        a failing tap is swallowed, a full subscriber queue drops its
        oldest event.
        """
        with self._lock:
            self._seq += 1
            event = {
                "seq": self._seq,
                "ts": round(time.time(), 6),
                "kind": kind,
                "data": data,
            }
            self._recent.append(event)
            subs = list(self._subs)
            taps = list(self._taps)
        _PUBLISHED.inc()
        for tap in taps:
            try:
                tap(event)
            except Exception:
                pass
        for sub in subs:
            sub.put(event)
        return event

    # -- consumers ---------------------------------------------------------

    def subscribe(self, maxlen: int = DEFAULT_QUEUE) -> Subscription:
        sub = Subscription(maxlen=maxlen)
        with self._lock:
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        sub.close()
        with self._lock:
            if sub in self._subs:
                self._subs.remove(sub)

    def close_all(self) -> None:
        """Close every subscription (the serve shutdown path)."""
        with self._lock:
            subs, self._subs = list(self._subs), []
        for sub in subs:
            sub.close()

    def add_tap(self, tap: Callable[[dict], None]) -> None:
        with self._lock:
            self._taps.append(tap)

    def remove_tap(self, tap: Callable[[dict], None]) -> None:
        with self._lock:
            if tap in self._taps:
                self._taps.remove(tap)

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subs)

    def recent(self, kinds: Sequence[str] | None = None) -> list[dict]:
        """Snapshot of the ring buffer, optionally filtered by kind."""
        with self._lock:
            events = list(self._recent)
        if kinds is None:
            return events
        wanted = set(kinds)
        return [e for e in events if e["kind"] in wanted]


class SnapshotTicker:
    """Background thread publishing periodic metrics snapshot deltas.

    Every ``interval`` seconds the process-wide registry is flattened
    (:func:`repro.obs.metrics.flatten_snapshot`) and diffed against the
    previous tick; only changed series ship, as one ``metrics`` event.
    A tick with no changes publishes nothing, so an idle server's
    event stream carries only SSE heartbeats.
    """

    def __init__(self, bus: LiveBus, interval: float = 2.0) -> None:
        self.bus = bus
        self.interval = max(0.05, float(interval))
        self._stop = threading.Event()
        self._last: dict = {}
        self._thread: threading.Thread | None = None

    def tick(self) -> dict | None:
        """One snapshot delta (also used directly by tests); None = no change."""
        # Bus-internal counters are excluded: the tick's own publish
        # bumps live.events_published, which would otherwise make every
        # tick "changed" and the idle stream never quiesce.
        flat = {
            name: value
            for name, value in flatten_snapshot(REGISTRY.snapshot()).items()
            if not name.startswith(("live.", "metric.live."))
        }
        delta = {
            name: value
            for name, value in flat.items()
            if self._last.get(name) != value
        }
        self._last = flat
        if not delta:
            return None
        return self.bus.publish("metrics", {"delta": delta})

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def start(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-serve-metrics", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


#: The process-wide active bus; ``None`` keeps every hook a no-op.
ACTIVE: LiveBus | None = None


def activate(bus: LiveBus | None = None) -> LiveBus:
    """Install (and return) the process-wide bus; idempotent-friendly."""
    global ACTIVE
    ACTIVE = bus if bus is not None else LiveBus()
    return ACTIVE


def deactivate() -> None:
    """Remove the bus: every instrumentation hook goes back to a branch."""
    global ACTIVE
    ACTIVE = None


def active() -> LiveBus | None:
    """The currently installed bus, or ``None``."""
    return ACTIVE


def publish(kind: str, data: dict) -> None:
    """Publish onto the active bus, if any (the hook entry point)."""
    bus = ACTIVE
    if bus is not None:
        bus.publish(kind, data)
